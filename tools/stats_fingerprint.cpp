// Prints a full-precision RunStats fingerprint for seeded Fig. 4-7 style
// runs. Used to verify that scheduler refactors keep seeded runs
// bit-identical (compare the output before and after a change).
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "experiments/runner.hpp"
#include "workload/presets.hpp"

namespace {

void print(const char* label, const mbts::RunStats& s) {
  std::printf(
      "%s submitted=%zu accepted=%zu rejected=%zu completed=%zu dropped=%zu "
      "total_yield=%.17g yield_rate=%.17g first_arrival=%.17g "
      "last_completion=%.17g utilization=%.17g preemptions=%" PRIu64
      " dispatches=%" PRIu64
      " delay_mean=%.17g delay_max=%.17g ryield_mean=%.17g\n",
      label, s.submitted, s.accepted, s.rejected, s.completed, s.dropped,
      s.total_yield, s.yield_rate, s.first_arrival, s.last_completion,
      s.utilization, s.preemptions, s.dispatches, s.delay.mean(),
      s.delay.max(), s.realized_yield.mean());
}

}  // namespace

int main() {
  using namespace mbts;
  const std::size_t jobs = 1500;
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;

  // Fig. 4: bounded penalties, FirstReward sweep point.
  {
    Xoshiro256 rng = SeedSequence(42).stream(4);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, jobs), rng);
    print("fig4_fr0.3",
          run_single_site(trace, config, PolicySpec::first_reward(0.3),
                          std::nullopt));
    print("fig4_pv", run_single_site(trace, config,
                                     PolicySpec::present_value(), std::nullopt));
  }
  // Fig. 5: unbounded penalties.
  {
    Xoshiro256 rng = SeedSequence(42).stream(5);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, jobs), rng);
    print("fig5_fr0.1",
          run_single_site(trace, config, PolicySpec::first_reward(0.1),
                          std::nullopt));
    print("fig5_fp", run_single_site(trace, config, PolicySpec::first_price(),
                                     std::nullopt));
  }
  // Fig. 6: admission under overload.
  {
    Xoshiro256 rng = SeedSequence(42).stream(6);
    const Trace trace =
        generate_trace(presets::admission_mix(1.6, jobs), rng);
    print("fig6_admit",
          run_single_site(trace, config, PolicySpec::first_reward(0.3),
                          SlackAdmissionConfig{180.0, false}));
    print("fig6_noadmit",
          run_single_site(trace, config, PolicySpec::first_reward(0.3),
                          std::nullopt));
  }
  // Fig. 7: slack-threshold sweep point.
  {
    Xoshiro256 rng = SeedSequence(42).stream(7);
    const Trace trace =
        generate_trace(presets::admission_mix(1.3, jobs), rng);
    print("fig7_thresh0",
          run_single_site(trace, config, PolicySpec::first_reward(0.3),
                          SlackAdmissionConfig{0.0, false}));
    print("fig7_thresh400",
          run_single_site(trace, config, PolicySpec::first_reward(0.3),
                          SlackAdmissionConfig{400.0, false}));
  }
  return 0;
}
