// Prints the full-precision behavioral fingerprint for seeded Fig. 4-7
// style runs plus the canonical economy run. Used to verify that scheduler
// and market refactors keep seeded runs bit-identical: compare the output
// before and after a change, or regenerate tests/golden/
// stats_fingerprint.txt when a change is *meant* to move the numbers
// (tests/test_fingerprint.cpp pins the golden copy in ctest).
#include <cstdio>

#include "experiments/fingerprint.hpp"

int main() {
  const std::string fingerprint = mbts::stats_fingerprint();
  std::fwrite(fingerprint.data(), 1, fingerprint.size(), stdout);
  return 0;
}
