#!/usr/bin/env python3
"""Report-only benchmark comparison for the nightly bench lane.

Compares two google-benchmark JSON files (committed baseline vs a fresh
run) benchmark-by-benchmark and prints a delta table. Regressions beyond
the threshold are called out loudly, but the exit code is always 0: shared
CI runners are too noisy to gate merges on wall-clock numbers, so this lane
exists to leave a visible trail in the nightly logs, not to block.

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return data.get("context", {}), out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="percent slowdown that counts as a regression (default 10)")
    args = parser.parse_args()

    base_ctx, base = load_benchmarks(args.baseline)
    cand_ctx, cand = load_benchmarks(args.candidate)

    for label, ctx in (("baseline", base_ctx), ("candidate", cand_ctx)):
        build = ctx.get("mbts_build_type", "unknown")
        print(f"{label}: mbts_build_type={build}")
        if build != "release":
            print(f"  warning: {label} numbers are not from a release build")

    # Core counts travel with the numbers (bench_main.hpp records
    # "mbts_nproc"): the sharded sweeps scale with the host, so a delta
    # between JSONs from different machines is a host change, not a
    # regression.
    base_nproc = base_ctx.get("mbts_nproc")
    cand_nproc = cand_ctx.get("mbts_nproc")
    if base_nproc is None or cand_nproc is None:
        print("warning: mbts_nproc missing from "
              + ", ".join(label for label, v in
                          (("baseline", base_nproc), ("candidate", cand_nproc))
                          if v is None)
              + " — cannot tell whether both ran on comparable hosts")
    elif base_nproc != cand_nproc:
        print(f"warning: core counts differ (baseline {base_nproc} vs "
              f"candidate {cand_nproc}); wall-clock deltas below mostly "
              f"reflect the host, not the code")

    regressions = []
    # Width over the union: a freshly-added benchmark (present only in the
    # candidate, e.g. BM_ShardedScaling before its baseline lands) must not
    # break the table layout — or the lane.
    name_width = max((len(n) for n in set(base) | set(cand)), default=4)
    print(f"{'benchmark':<{name_width}}  {'baseline':>12}  {'candidate':>12}"
          f"  {'delta':>8}")
    for name in sorted(base):
        b = base[name]
        c = cand.get(name)
        if c is None:
            print(f"{name:<{name_width}}  {'(missing in candidate)':>12}")
            continue
        bt, ct = b["real_time"], c["real_time"]
        unit = b.get("time_unit", "ns")
        delta = (ct - bt) / bt * 100.0 if bt else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{name_width}}  {bt:>10.0f}{unit}  {ct:>10.0f}{unit}"
              f"  {delta:>+7.1f}%{marker}")
    # Candidate-only benchmarks are informational, never regressions: show
    # their timing so the first nightly after adding one still has numbers.
    for name in sorted(set(cand) - set(base)):
        c = cand[name]
        ct = c["real_time"]
        unit = c.get("time_unit", "ns")
        print(f"{name:<{name_width}}  {'(no baseline)':>14}  "
              f"{ct:>10.0f}{unit}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% (report-only, not failing the job):")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
    else:
        print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
