#!/usr/bin/env bash
# Sharded scaling-study runner. Runs bench/micro_sharded's 1024-site sweep
# (1/2/4/8 shards x epoch batching on/off x score kernels on/off, every
# iteration bit-compared against the single-engine reference) and writes
# the google-benchmark JSON to BENCH_sharded.json at the repo root — the
# perf trajectory record for the sharded execution engine. The "barriers"
# and "batched_epochs" counters in the output are deterministic, so the
# epoch-batching barrier reduction is comparable across hosts even when
# the wall-clock numbers are not.
#
# The committed JSON must come from an optimized build: the default build
# dir is a dedicated Release tree (build-bench), configured here if absent,
# and the script refuses to write the output when the binary reports a
# non-release "mbts_build_type" context (the stock "library_build_type" key
# only describes how the google-benchmark *library* was compiled).
#
# The binary also records the host core count as "mbts_nproc" context
# (bench_main.hpp): the sharded sweep scales with it, and
# tools/bench_compare.py warns when two JSONs come from different hosts.
#
# Usage: tools/bench_sharded.sh [build_dir] (default: build-bench)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_sharded.json"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j "$(nproc)" --target micro_sharded

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Refuses to bless results from an unoptimized or assert-laden binary.
require_release() {
  if ! grep -q '"mbts_build_type": "release"' "$1"; then
    echo "error: $(basename "$1") was produced by a non-release build" >&2
    grep -o '"mbts_build_type": "[^"]*"' "$1" >&2 || true
    echo "rerun against a -DCMAKE_BUILD_TYPE=Release build dir" >&2
    exit 1
  fi
}

"$BUILD/bench/micro_sharded" \
  --benchmark_filter='BM_ShardedScaling' \
  --benchmark_out="$TMP/sharded.json" --benchmark_out_format=json

require_release "$TMP/sharded.json"
cp "$TMP/sharded.json" "$OUT"
echo "wrote $OUT"
