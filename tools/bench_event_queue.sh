#!/usr/bin/env bash
# Queue-backend sweep runner. Runs the BM_Backend* family of
# bench/micro_event_queue — schedule-heavy, cancel-heavy, strided run_until,
# and typed-event dispatch, each under both the tombstone and indexed queue
# backends — and writes the google-benchmark JSON to BENCH_event_queue.json
# at the repo root. Same Release-build gating as bench_dispatch.sh.
#
# Usage: tools/bench_event_queue.sh [build_dir] (default: build-bench)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_event_queue.json"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j "$(nproc)" --target micro_event_queue

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/micro_event_queue" \
  --benchmark_filter='BM_Backend' \
  --benchmark_out="$TMP/event_queue.json" --benchmark_out_format=json

if ! grep -q '"mbts_build_type": "release"' "$TMP/event_queue.json"; then
  echo "error: results came from a non-release build" >&2
  grep -o '"mbts_build_type": "[^"]*"' "$TMP/event_queue.json" >&2 || true
  echo "rerun against a -DCMAKE_BUILD_TYPE=Release build dir" >&2
  exit 1
fi

cp "$TMP/event_queue.json" "$OUT"
echo "wrote $OUT"
