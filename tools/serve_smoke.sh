#!/usr/bin/env bash
# End-to-end smoke for service mode (the CI push lane runs this): start
# mbts_serve on an ephemeral port, drive >= 100 bids through serve_client
# over loopback — one lockstep session and one pipelined (tagged, 32-deep
# window) session — SIGTERM the server, and require a clean drain whose
# stats are bit-identical to a batch replay of the admitted stream
# ("replay: MATCH" — mbts_serve exits 1 itself on a mismatch).
#
# Usage: tools/serve_smoke.sh [build_dir] (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BIDS="${SERVE_SMOKE_BIDS:-150}"

cmake --build "$BUILD" -j "$(nproc)" --target mbts_serve_bin serve_client

LOG="$(mktemp)"
trap 'rm -f "$LOG"; [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true' EXIT

"$BUILD/tools/mbts_serve" --port=0 --scale=200 >"$LOG" 2>&1 &
SERVER_PID=$!

# The daemon prints its ephemeral port once the socket is live.
PORT=""
for _ in $(seq 50); do
  PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "error: server never reported its port" >&2; cat "$LOG" >&2; exit 1; }

"$BUILD/examples/serve_client" --port="$PORT" --bids="$BIDS" --stats=true
# Same bid count again over a pipelined session: the drain replay below
# then covers tagged out-of-order traffic too, not just lockstep.
"$BUILD/examples/serve_client" --port="$PORT" --bids="$BIDS" --pipeline=32

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
cat "$LOG"
[ "$STATUS" -eq 0 ] || { echo "error: mbts_serve exited $STATUS" >&2; exit 1; }
grep -q "replay: MATCH" "$LOG" || { echo "error: no replay verification in the drain output" >&2; exit 1; }
echo "serve smoke OK ($BIDS lockstep + $BIDS pipelined bids, drain replay matched)"
