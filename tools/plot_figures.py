#!/usr/bin/env python3
"""Render the bench CSVs (bench_out/*.csv) as PNG line charts.

The bench binaries emit long-format CSVs: figure,series,x,y,y_sem. This
script draws one chart per CSV with error bars from the replication SEM.
Requires matplotlib; the C++ build has no plotting dependency.

Usage:
    python3 tools/plot_figures.py [bench_out] [output_dir]
"""

import csv
import sys
from collections import defaultdict
from pathlib import Path


def load_series(path: Path):
    """Returns {series_label: (xs, ys, sems)} and the figure id."""
    series = defaultdict(lambda: ([], [], []))
    figure_id = path.stem
    with path.open() as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "series" not in reader.fieldnames:
            return figure_id, {}
        for row in reader:
            figure_id = row.get("figure", figure_id)
            xs, ys, sems = series[row["series"]]
            xs.append(float(row["x"]))
            ys.append(float(row["y"]))
            sems.append(float(row.get("y_sem", 0.0) or 0.0))
    return figure_id, series


def plot(path: Path, out_dir: Path, plt) -> bool:
    figure_id, series = load_series(path)
    if not series:
        return False
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, (xs, ys, sems) in sorted(series.items()):
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        xs = [xs[i] for i in order]
        ys = [ys[i] for i in order]
        sems = [sems[i] for i in order]
        ax.errorbar(xs, ys, yerr=sems, marker="o", markersize=3,
                    capsize=2, linewidth=1.2, label=label)
    ax.set_title(figure_id)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    if figure_id.startswith("fig3") or "yield_basis" in figure_id:
        ax.set_xscale("log")
    out = out_dir / f"{path.stem}.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)
    print(f"wrote {out}")
    return True


def main() -> int:
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib",
              file=sys.stderr)
        return 1

    src = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("bench_out")
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else src / "plots"
    if not src.is_dir():
        print(f"no such directory: {src}", file=sys.stderr)
        return 1
    out_dir.mkdir(parents=True, exist_ok=True)

    plotted = sum(plot(p, out_dir, plt) for p in sorted(src.glob("*.csv")))
    print(f"{plotted} charts rendered to {out_dir}")
    return 0 if plotted else 1


if __name__ == "__main__":
    raise SystemExit(main())
