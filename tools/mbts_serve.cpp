// mbts_serve: the live broker daemon (DESIGN.md §9).
//
// Serves the Figure-1 three-site economy over a line TCP protocol
// (serve/protocol.hpp): clients connect, send `BID runtime value decay
// bound`, and get AWARD/REJECT back from the real negotiation stack while
// contracts settle as wall time advances through the pacing clock.
//
// On SIGTERM/SIGINT the server drains gracefully: stop accepting, settle
// every open contract, print the final stats fingerprint, and — unless
// --no-replay-check — replay the admitted bid stream through a batch
// Market::run() with the same config and verify the stats are bit-identical
// ("replay: MATCH"). A mismatch is an exit-1 bug, not a warning.
#include <csignal>
#include <fstream>
#include <iostream>

#include "experiments/fingerprint.hpp"
#include "market/market.hpp"
#include "serve/broker_service.hpp"
#include "serve/pacing_clock.hpp"
#include "serve/preset.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  // Block the shutdown signals in every thread the process will spawn;
  // main() collects them with sigwait so the drain runs on a normal stack
  // instead of inside a handler.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  CliParser cli("mbts_serve",
                "live broker server over the Fig. 1 three-site economy");
  cli.add_flag("port", "0", "TCP port (0 picks an ephemeral one)");
  cli.add_flag("bind", "127.0.0.1", "bind address");
  cli.add_flag("scale", "60",
               "sim seconds per wall second (pacing speed-up)");
  cli.add_flag("queue-cap", "256", "admission queue capacity (backpressure)");
  cli.add_flag("sessions", "4", "session worker threads");
  cli.add_flag("idle-timeout", "60", "idle session eviction, wall seconds");
  cli.add_flag("seed", "42", "market rng seed");
  cli.add_flag("stats-out", "", "write the final metrics CSV here");
  cli.add_flag("trace-out", "", "write the admitted bid stream CSV here");
  cli.add_flag("replay-check", "true",
               "verify drained stats against a batch replay of the "
               "admitted stream");
  if (!cli.parse(argc, argv)) return 1;

  const double scale = cli.get_double("scale");
  MBTS_CHECK_MSG(scale > 0.0, "--scale must be positive");
  const std::uint64_t port = cli.get_uint("port");
  MBTS_CHECK_MSG(port <= 65535, "--port must fit in 16 bits");

  serve::ServeConfig serve_config;
  serve_config.market = serve::fig1_market(cli.get_uint("seed"));
  serve_config.queue_capacity =
      static_cast<std::size_t>(cli.get_uint("queue-cap"));

  WallPacingClock clock(scale);
  serve::BrokerService service(serve_config, &clock);
  service.start();

  serve::ServerConfig server_config;
  server_config.bind_address = cli.get_string("bind");
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.session_threads =
      static_cast<std::size_t>(cli.get_uint("sessions"));
  server_config.idle_timeout_s = cli.get_double("idle-timeout");
  serve::ServeServer server(server_config, &service);
  server.start();

  std::cout << "mbts_serve listening on port " << server.port() << std::endl;

  int sig = 0;
  sigwait(&sigs, &sig);
  std::cout << "signal " << sig << ": draining\n";

  server.stop();
  const MarketStats stats = service.drain(server.external_gauges());
  std::cout << "sessions " << server.sessions_opened() << ", admitted "
            << service.admitted() << ", busy-rejected "
            << service.rejected_backpressure() << ", drain-rejected "
            << service.rejected_draining() << '\n';
  std::cout << fingerprint_line("serve", stats);

  if (!cli.get_string("stats-out").empty()) {
    std::ofstream out(cli.get_string("stats-out"));
    MBTS_CHECK_MSG(out.good(), "cannot write " + cli.get_string("stats-out"));
    out << service.final_metrics_csv();
  }
  if (!cli.get_string("trace-out").empty())
    save_trace_csv(service.admitted_trace(), cli.get_string("trace-out"));

  if (cli.get_bool("replay-check")) {
    Market replay(serve_config.market);
    replay.inject(service.admitted_trace());
    const std::string batch = fingerprint_line("serve", replay.run());
    if (batch == fingerprint_line("serve", stats)) {
      std::cout << "replay: MATCH\n";
    } else {
      std::cout << "replay: MISMATCH\nbatch was: " << batch;
      return 1;
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
