#!/usr/bin/env bash
# Full verification pass: optimized build + tier-1 tests, then the same
# tests under ASan+UBSan (the MBTS_SANITIZE CMake option) so the scheduler's
# incremental bookkeeping — index-swap queue erases, score-cache stamps,
# event tombstones — is exercised with memory and UB checking on. Debug mode
# additionally enables the MBTS_DCHECK cross-checks (incremental mix vs.
# rebuild, batch vs. scalar scoring), which NDEBUG builds compile out.
#
# By default the ctest label `slow` (soak/stress tier) is excluded to keep
# the loop tight; pass --all to run everything, sanitizers included.
#
# Usage: tools/check.sh [--all] [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CTEST_FILTER=(-LE slow)
if [[ "${1:-}" == "--all" ]]; then
  CTEST_FILTER=()
  shift
fi
JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -S "$ROOT" -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" -j "$JOBS" --output-on-failure \
    ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"}
}

echo "== optimized build + tests =="
run_suite "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== ASan+UBSan build + tests =="
run_suite "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=Debug -DMBTS_SANITIZE=ON

echo "check.sh: all suites passed"
