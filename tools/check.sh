#!/usr/bin/env bash
# Full verification pass: optimized build + tier-1 tests, then the same
# tests under ASan+UBSan (the MBTS_SANITIZE CMake option) so the scheduler's
# incremental bookkeeping — index-swap queue erases, score-cache stamps,
# event tombstones — is exercised with memory and UB checking on. Debug mode
# additionally enables the MBTS_DCHECK cross-checks (incremental mix vs.
# rebuild, batch vs. scalar scoring), which NDEBUG builds compile out.
#
# By default the ctest label `slow` (soak/stress tier) is excluded to keep
# the loop tight; pass --all to run everything, sanitizers included.
#
# --coverage instead builds an instrumented tree (build-cov), runs the
# tier-1 tests, and gates line coverage of src/core + src/market against
# tools/coverage_baseline.txt via tools/coverage_report.py (plain gcov +
# python3, no lcov/gcovr). The HTML report lands in build-cov/coverage/.
#
# Usage: tools/check.sh [--all|--coverage] [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE=default
CTEST_FILTER=(-LE slow)
if [[ "${1:-}" == "--all" ]]; then
  MODE=all
  CTEST_FILTER=()
  shift
elif [[ "${1:-}" == "--coverage" ]]; then
  MODE=coverage
  shift
fi
JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -S "$ROOT" -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" -j "$JOBS" --output-on-failure \
    ${CTEST_FILTER[@]+"${CTEST_FILTER[@]}"}
}

if [[ "$MODE" == "coverage" ]]; then
  echo "== coverage build + tests =="
  cmake -S "$ROOT" -B "$ROOT/build-cov" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage \
    >/dev/null
  cmake --build "$ROOT/build-cov" -j "$JOBS"
  # Drop stale counters so the report reflects exactly this test run.
  find "$ROOT/build-cov" -name '*.gcda' -delete
  ctest --test-dir "$ROOT/build-cov" -j "$JOBS" --output-on-failure -LE slow
  echo "== coverage report + baseline gate =="
  python3 "$ROOT/tools/coverage_report.py" "$ROOT/build-cov" \
    --baseline "$ROOT/tools/coverage_baseline.txt"
  echo "check.sh: coverage gate passed"
  exit 0
fi

echo "== optimized build + tests =="
run_suite "$ROOT/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== ASan+UBSan build + tests =="
run_suite "$ROOT/build-asan" -DCMAKE_BUILD_TYPE=Debug -DMBTS_SANITIZE=ON

echo "check.sh: all suites passed"
