// Inspector for binary traces written by TraceRecorder::write_binary.
//
//   trace_view run.trace                      # pretty-print every event
//   trace_view run.trace --summary            # counts + time span digest
//   trace_view run.trace --kind=complete      # filter by event kind
//   trace_view run.trace --site=0 --from=100 --to=200
//   trace_view run.trace --jsonl              # re-emit as JSONL
//
// All output is deterministic for a given trace file, so CI can golden it.
#include <fstream>
#include <iostream>

#include "obs/trace.hpp"
#include "obs/trace_format.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("trace_view",
                "filter, pretty-print, and summarize binary run traces");
  cli.add_flag("kind", "", "only events of this kind (e.g. complete, award)");
  cli.add_flag("site", "-1", "only events of this site id");
  cli.add_flag("task", "-1", "only events of this task id");
  cli.add_flag("from", "", "only events at t >= this (inclusive)");
  cli.add_flag("to", "", "only events at t < this (exclusive)");
  cli.add_flag("limit", "0", "print at most N events (0 = all)");
  cli.add_flag("summary", "false", "print a digest instead of events");
  cli.add_flag("jsonl", "false", "emit matching events as JSONL");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().size() != 1) {
    std::cerr << "trace_view: expected exactly one trace file\n"
              << cli.usage();
    return 1;
  }

  TraceFilter filter;
  if (!cli.get_string("kind").empty()) {
    filter.kind = parse_event_kind(cli.get_string("kind"));
    if (!filter.kind) {
      std::cerr << "trace_view: unknown event kind '"
                << cli.get_string("kind") << "'\n";
      return 1;
    }
  }
  if (cli.get_int("site") >= 0)
    filter.site = static_cast<SiteId>(cli.get_int("site"));
  if (cli.get_int("task") >= 0)
    filter.task = static_cast<TaskId>(cli.get_int("task"));
  if (!cli.get_string("from").empty()) filter.t_from = cli.get_double("from");
  if (!cli.get_string("to").empty()) filter.t_to = cli.get_double("to");

  const std::string& path = cli.positional()[0];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_view: cannot open " << path << '\n';
    return 1;
  }

  std::vector<TraceEvent> events;
  try {
    events = TraceRecorder::read_binary(in);
  } catch (const CheckError& e) {
    std::cerr << "trace_view: " << path << ": " << e.what() << '\n';
    return 1;
  }
  events = filter_trace(events, filter);

  if (cli.get_bool("summary")) {
    std::cout << summarize_trace(events);
    return 0;
  }

  const auto limit = static_cast<std::size_t>(cli.get_uint("limit"));
  std::size_t shown = 0;
  if (cli.get_bool("jsonl")) {
    TraceRecorder out;
    for (const TraceEvent& e : events) {
      out.record(e);
      if (limit != 0 && ++shown >= limit) break;
    }
    out.write_jsonl(std::cout);
    return 0;
  }
  for (const TraceEvent& e : events) {
    std::cout << format_trace_event(e) << '\n';
    if (limit != 0 && ++shown >= limit) break;
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
