// Differential fuzzer: sweeps randomized scenarios through the optimized
// scheduler/market stack and the src/oracle reference implementations,
// asserting bit-level agreement. On divergence it greedily shrinks the
// scenario and prints a ready-to-paste regression reproducer.
//
// Usage:
//   diff_fuzz [--scenarios N] [--seed S] [--faults on|off]
//             [--kernels on|off|mixed] [--batching on|off|mixed]
//   diff_fuzz --replay "seed=... tasks=... ..."
//   diff_fuzz --self-test [--seed S]
//
// Exit codes: 0 all scenarios agree (or self-test passed), 1 divergence
// (or self-test failed to detect its planted bug), 2 usage error.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "oracle/diff.hpp"
#include "workload/generator.hpp"

namespace {

using mbts::oracle::DiffReport;
using mbts::oracle::Scenario;
using mbts::oracle::SelfTest;

enum class FaultFilter { kMixed, kOn, kOff };
enum class KernelFilter { kMixed, kOn, kOff };
enum class BatchingFilter { kMixed, kOn, kOff };

/// Forces the fault model on or off after generation, so one sweep can be
/// pinned all-faulty or all-clean without changing any other draw.
void apply_fault_filter(Scenario& sc, FaultFilter filter) {
  if (filter == FaultFilter::kOff) {
    sc.faults = false;
    sc.outage_rate = 0.0;
    sc.quote_timeout_prob = 0.0;
  } else if (filter == FaultFilter::kOn && !sc.faults) {
    sc.faults = true;
    // Roughly two outages per site over the arrival span.
    const double span_est =
        static_cast<double>(sc.n_tasks) * 100.0 /
        (static_cast<double>(sc.processors) * sc.load_factor);
    sc.outage_rate = 2.0 / std::max(span_est, 1.0);
    sc.mean_outage = 150.0;
    sc.quote_timeout_prob = sc.market ? 0.1 : 0.0;
  }
}

/// Forces the SoA score-kernel toggle after generation — CI pins one sweep
/// all-kernels-on so every fuzzed config also differentially tests the
/// vectorized dispatch path.
void apply_kernel_filter(Scenario& sc, KernelFilter filter) {
  if (filter == KernelFilter::kOn) sc.kernels = true;
  else if (filter == KernelFilter::kOff) sc.kernels = false;
}

/// Forces the sharded coordinator's epoch batching after generation — only
/// observable on sharded scenarios, where CI pins one sweep batching-on so
/// every fuzzed sharded config also covers the inline negotiation runs.
void apply_batching_filter(Scenario& sc, BatchingFilter filter) {
  if (filter == BatchingFilter::kOn) sc.batching = true;
  else if (filter == BatchingFilter::kOff) sc.batching = false;
}

void print_divergence(const Scenario& scenario, const DiffReport& report,
                      const SelfTest& self_test) {
  std::cout << "DIVERGENCE: " << report.detail << "\n"
            << "  replay: diff_fuzz --replay \""
            << mbts::oracle::to_replay_string(scenario) << "\"\n"
            << "  shrinking...\n";
  std::vector<std::string> steps;
  const Scenario shrunk = mbts::oracle::shrink(
      scenario,
      [&](const Scenario& candidate) {
        return mbts::oracle::run_diff(candidate, self_test).diverged;
      },
      &steps);
  for (const std::string& step : steps)
    std::cout << "    - " << step << "\n";
  const DiffReport final_report = mbts::oracle::run_diff(shrunk, self_test);
  std::cout << "  shrunk: diff_fuzz --replay \""
            << mbts::oracle::to_replay_string(shrunk) << "\"\n"
            << "  shrunk detail: " << final_report.detail << "\n"
            << "  regression test scenario (paste into "
               "tests/differential/test_differential.cpp):\n"
            << mbts::oracle::to_cpp_literal(shrunk) << "\n";
}

int run_sweep(std::size_t scenarios, std::uint64_t seed, FaultFilter filter,
              KernelFilter kernel_filter, BatchingFilter batching_filter) {
  std::size_t with_faults = 0;
  std::size_t with_market = 0;
  std::size_t with_kernels = 0;
  std::size_t with_batching = 0;
  for (std::size_t i = 0; i < scenarios; ++i) {
    Scenario sc = mbts::oracle::generate_scenario(seed, i);
    apply_fault_filter(sc, filter);
    apply_kernel_filter(sc, kernel_filter);
    apply_batching_filter(sc, batching_filter);
    with_faults += sc.faults ? 1 : 0;
    with_market += sc.market ? 1 : 0;
    with_kernels += sc.kernels ? 1 : 0;
    with_batching += (sc.shards >= 2 && sc.batching) ? 1 : 0;
    const DiffReport report = mbts::oracle::run_diff(sc);
    if (report.diverged) {
      std::cout << "scenario " << i << " of " << scenarios << " diverged\n";
      print_divergence(sc, report, SelfTest{});
      return 1;
    }
    if ((i + 1) % 100 == 0)
      std::cout << "  " << (i + 1) << "/" << scenarios << " scenarios agree\n";
  }
  std::cout << "OK: " << scenarios << " scenarios, zero divergences ("
            << with_faults << " with faults, " << with_market
            << " market-mode, " << with_kernels << " kernel-path, "
            << with_batching << " sharded-batched)\n";
  return 0;
}

int run_replay(const std::string& text) {
  const auto scenario = mbts::oracle::parse_replay(text);
  if (!scenario) {
    std::cerr << "could not parse replay string: " << text << "\n";
    return 2;
  }
  const DiffReport report = mbts::oracle::run_diff(*scenario);
  if (report.diverged) {
    print_divergence(*scenario, report, SelfTest{});
    return 1;
  }
  std::cout << "OK: replayed scenario agrees\n";
  return 0;
}

/// Plants two known bug classes and checks the harness reports and shrinks
/// both: a stale remaining-time cache (scheduler side) and a corrupted
/// settlement aggregate (market side).
int run_self_test(std::uint64_t seed) {
  int failures = 0;

  // A contended single-site scenario; a 0.1% skew on believed remaining
  // times must surface as a bit-level record divergence.
  Scenario contended;
  contended.seed = seed | 1;
  contended.n_tasks = 80;
  contended.market = false;
  contended.processors = 4;
  contended.load_factor = 2.0;
  contended.policy = mbts::PolicySpec::Kind::kFirstReward;
  contended.use_slack_admission = true;
  const SelfTest stale_cache{.rpt_skew = 1e-3, .corrupt_settlement = false};
  DiffReport report = mbts::oracle::run_diff(contended, stale_cache);
  if (report.diverged) {
    std::cout << "self-test 1 (stale rpt cache): detected\n";
    print_divergence(contended, report, stale_cache);
  } else {
    std::cout << "self-test 1 (stale rpt cache): NOT DETECTED — the "
                 "differential harness is blind\n";
    ++failures;
  }

  // A market scenario with settled contracts; a one-ulp corruption of the
  // reported revenue total must fail the settlement audit.
  Scenario economy;
  economy.seed = seed | 1;
  economy.n_tasks = 80;
  economy.market = true;
  economy.n_sites = 2;
  economy.processors = 4;
  economy.load_factor = 1.2;
  const SelfTest broken_settlement{.rpt_skew = 0.0,
                                   .corrupt_settlement = true};
  report = mbts::oracle::run_diff(economy, broken_settlement);
  if (report.diverged) {
    std::cout << "self-test 2 (corrupted settlement): detected\n"
              << "  detail: " << report.detail << "\n";
  } else {
    std::cout << "self-test 2 (corrupted settlement): NOT DETECTED — the "
                 "settlement audit is blind\n";
    ++failures;
  }

  // Both planted scenarios must pass clean without the perturbations.
  if (mbts::oracle::run_diff(contended).diverged ||
      mbts::oracle::run_diff(economy).diverged) {
    std::cout << "self-test 3 (clean baseline): the self-test scenarios "
                 "diverge without a planted bug\n";
    ++failures;
  } else {
    std::cout << "self-test 3 (clean baseline): agree\n";
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scenarios = 200;
  std::uint64_t seed = 1;
  FaultFilter filter = FaultFilter::kMixed;
  KernelFilter kernel_filter = KernelFilter::kMixed;
  BatchingFilter batching_filter = BatchingFilter::kMixed;
  std::string replay;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenarios") {
      scenarios = std::stoull(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--replay") {
      replay = next();
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--faults") {
      const std::string mode = next();
      if (mode == "on") filter = FaultFilter::kOn;
      else if (mode == "off") filter = FaultFilter::kOff;
      else if (mode == "mixed") filter = FaultFilter::kMixed;
      else {
        std::cerr << "--faults takes on|off|mixed\n";
        return 2;
      }
    } else if (arg == "--kernels") {
      const std::string mode = next();
      if (mode == "on") kernel_filter = KernelFilter::kOn;
      else if (mode == "off") kernel_filter = KernelFilter::kOff;
      else if (mode == "mixed") kernel_filter = KernelFilter::kMixed;
      else {
        std::cerr << "--kernels takes on|off|mixed\n";
        return 2;
      }
    } else if (arg == "--batching") {
      const std::string mode = next();
      if (mode == "on") batching_filter = BatchingFilter::kOn;
      else if (mode == "off") batching_filter = BatchingFilter::kOff;
      else if (mode == "mixed") batching_filter = BatchingFilter::kMixed;
      else {
        std::cerr << "--batching takes on|off|mixed\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: diff_fuzz [--scenarios N] [--seed S] "
                   "[--faults on|off|mixed] [--kernels on|off|mixed] "
                   "[--batching on|off|mixed] [--replay STR] [--self-test]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  if (self_test) return run_self_test(seed);
  if (!replay.empty()) return run_replay(replay);
  return run_sweep(scenarios, seed, filter, kernel_filter, batching_filter);
}
