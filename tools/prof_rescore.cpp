// Hot-path profile of the pending-queue rescore: the same 100k-pending
// dispatch burst the `highload100k_*` fingerprint lines pin, run once per
// score-kernel mode with the scoped profiler enabled. The flat scope table
// (the Profiler's flamegraph view: every MBTS_PROF_SCOPE with calls, total
// time, and mean) shows where the burst spends its time before and after
// the SoA kernels take the rescore — `scheduler/rescore` (the scalar
// per-task path) versus `scheduler/kernel_rescore` (the batched SoA path).
// EXPERIMENTS.md "Rescore profile" records a committed run of this tool.
//
// Usage: prof_rescore [--tasks N] (default 100000)
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/scheduler.hpp"
#include "obs/profile.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace mbts;

/// Mirrors the fingerprint burst: every task arrives at t=0 and the site
/// drains at 16 processors until t=5, so each completion rescores the full
/// backlog. Every 16th task carries a two-segment piecewise profile to keep
/// the kernels' scalar-fixup lane hot.
RunStats run_burst(std::size_t n, ScoreKernelMode mode) {
  Xoshiro256 rng(23);
  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task& t = tasks[i];
    t.id = static_cast<TaskId>(i + 1);
    t.arrival = 0.0;
    t.runtime = rng.uniform(1.0, 10.0);
    const double value = rng.uniform(10.0, 100.0);
    const double decay = rng.uniform(0.001, 0.05);
    if (i % 16 == 0) {
      t.value = ValueFunction::piecewise(
          value, {{rng.uniform(2.0, 8.0), decay}, {kInf, decay * 2.0}}, kInf);
    } else {
      t.value = ValueFunction::unbounded(value, decay);
    }
  }
  SchedulerConfig config;
  config.processors = 16;
  config.preemption = true;
  config.discount_rate = 0.01;
  config.score_kernels = mode;
  SimEngine engine;
  SiteScheduler site(engine, config,
                     make_policy(PolicySpec::first_reward(0.3)),
                     std::make_unique<AcceptAllAdmission>());
  site.preload(tasks);
  engine.run_until(5.0);
  return site.stats();
}

void profile_mode(std::size_t n, ScoreKernelMode mode, const char* label) {
  Profiler::instance().reset();
  Profiler::set_enabled(true);
  const RunStats stats = run_burst(n, mode);
  Profiler::set_enabled(false);
  std::cout << "=== " << label << " (" << n << " pending, dispatches="
            << stats.dispatches << ", total_yield=" << stats.total_yield
            << ") ===\n"
            << Profiler::instance().report() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 100000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tasks" && i + 1 < argc) {
      n = std::stoull(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: prof_rescore [--tasks N]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  // Before: the scalar per-task cache path (kernels off).
  profile_mode(n, ScoreKernelMode::kOff, "before: score_kernels=kOff");
  // After: the SoA batch kernels (the scheduler default).
  profile_mode(n, ScoreKernelMode::kExact, "after: score_kernels=kExact");
  return 0;
}
