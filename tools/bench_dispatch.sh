#!/usr/bin/env bash
# Dispatch/quote hot-path benchmark runner. Runs the large-mix cases of
# bench/micro_schedule (backlog dispatch, quote-vs-backlog) and
# bench/micro_event_queue (cancel churn, bounded-horizon drains) and merges
# their google-benchmark JSON into BENCH_dispatch.json at the repo root —
# the perf trajectory record for the hot-path work.
#
# Usage: tools/bench_dispatch.sh [build_dir] (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="$ROOT/BENCH_dispatch.json"

cmake --build "$BUILD" -j "$(nproc)" --target micro_schedule micro_event_queue

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/micro_schedule" \
  --benchmark_filter='BM_DispatchBacklog|BM_QuoteBacklog' \
  --benchmark_out="$TMP/schedule.json" --benchmark_out_format=json
"$BUILD/bench/micro_event_queue" \
  --benchmark_filter='BM_CancelHeavyChurn|BM_RunUntilStrided' \
  --benchmark_out="$TMP/event_queue.json" --benchmark_out_format=json

if command -v python3 >/dev/null; then
  python3 - "$TMP/schedule.json" "$TMP/event_queue.json" "$OUT" <<'EOF'
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
first["benchmarks"].extend(second["benchmarks"])
json.dump(first, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} ({len(first['benchmarks'])} benchmarks)")
EOF
else
  # No python: keep the dispatch benchmarks, the headline numbers.
  cp "$TMP/schedule.json" "$OUT"
  echo "python3 not found; wrote micro_schedule results only to $OUT"
fi
