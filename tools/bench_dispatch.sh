#!/usr/bin/env bash
# Dispatch/quote hot-path benchmark runner. Runs the large-mix cases of
# bench/micro_schedule (backlog dispatch, quote-vs-backlog) and
# bench/micro_event_queue (cancel churn, bounded-horizon drains) and merges
# their google-benchmark JSON into BENCH_dispatch.json at the repo root —
# the perf trajectory record for the hot-path work.
#
# The committed JSON must come from an optimized build: the default build
# dir is a dedicated Release tree (build-bench), configured here if absent,
# and the script refuses to write the output when the binaries report a
# non-release "mbts_build_type" context (the stock "library_build_type" key
# only describes how the google-benchmark *library* was compiled, which is
# how a debug-build baseline once got committed).
#
# Usage: tools/bench_dispatch.sh [build_dir] (default: build-bench)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_dispatch.json"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j "$(nproc)" --target micro_schedule micro_event_queue

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Refuses to bless results from an unoptimized or assert-laden binary.
require_release() {
  if ! grep -q '"mbts_build_type": "release"' "$1"; then
    echo "error: $(basename "$1") was produced by a non-release build" >&2
    grep -o '"mbts_build_type": "[^"]*"' "$1" >&2 || true
    echo "rerun against a -DCMAKE_BUILD_TYPE=Release build dir" >&2
    exit 1
  fi
}

"$BUILD/bench/micro_schedule" \
  --benchmark_filter='BM_DispatchBacklog|BM_DispatchBurst|BM_QuoteBacklog' \
  --benchmark_out="$TMP/schedule.json" --benchmark_out_format=json
"$BUILD/bench/micro_event_queue" \
  --benchmark_filter='BM_CancelHeavyChurn|BM_RunUntilStrided' \
  --benchmark_out="$TMP/event_queue.json" --benchmark_out_format=json

require_release "$TMP/schedule.json"
require_release "$TMP/event_queue.json"

if command -v python3 >/dev/null; then
  python3 - "$TMP/schedule.json" "$TMP/event_queue.json" \
    "$OUT" <<'EOF'
import json, sys
first = json.load(open(sys.argv[1]))
for extra in sys.argv[2:-1]:
    first["benchmarks"].extend(json.load(open(extra))["benchmarks"])
json.dump(first, open(sys.argv[-1], "w"), indent=1)
print(f"wrote {sys.argv[-1]} ({len(first['benchmarks'])} benchmarks)")
EOF
else
  # No python: keep the dispatch benchmarks, the headline numbers.
  cp "$TMP/schedule.json" "$OUT"
  echo "python3 not found; wrote micro_schedule results only to $OUT"
fi
