#!/usr/bin/env python3
"""Aggregate gcov JSON output into an HTML + text coverage report.

Walks a --coverage build tree, runs `gcov --json-format --stdout` on every
.gcno it finds, merges line counts across translation units, and writes

  * OUT/index.html        — per-file table plus annotated source pages
  * OUT/summary.txt       — the same numbers as plain text
  * stdout                — group summary and the baseline verdict

The gate: line coverage of the src/core and src/market groups must not drop
below the percentages recorded in the baseline file (one `<group> <pct>`
pair per line). Regenerate the baseline deliberately when coverage
legitimately moves: tools/check.sh --coverage prints the measured numbers.

No lcov/gcovr dependency — plain gcov 12+ and the standard library only.
"""

import argparse
import html
import json
import os
import subprocess
import sys
from collections import defaultdict

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATED_GROUPS = ("src/core", "src/market")


def collect_line_counts(build_dir):
    """file (repo-relative) -> {line_number: summed execution count}."""
    counts = defaultdict(lambda: defaultdict(int))
    gcnos = []
    for root, _dirs, files in os.walk(build_dir):
        gcnos.extend(os.path.join(root, f) for f in files
                     if f.endswith(".gcno"))
    if not gcnos:
        sys.exit(f"coverage_report: no .gcno files under {build_dir}; "
                 "build with --coverage first")
    for gcno in sorted(gcnos):
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout",
             "--object-directory", os.path.dirname(gcno), gcno],
            capture_output=True, text=True, cwd=build_dir)
        if proc.returncode != 0:
            continue
        for doc in proc.stdout.splitlines():
            doc = doc.strip()
            if not doc.startswith("{"):
                continue
            try:
                data = json.loads(doc)
            except json.JSONDecodeError:
                continue
            for entry in data.get("files", []):
                path = os.path.realpath(
                    os.path.join(build_dir, entry["file"]))
                if not path.startswith(REPO + os.sep):
                    continue
                rel = os.path.relpath(path, REPO)
                if not rel.startswith("src" + os.sep):
                    continue
                for line in entry.get("lines", []):
                    counts[rel][line["line_number"]] += line["count"]
    return counts


def group_of(rel):
    parts = rel.split(os.sep)
    return "/".join(parts[:2]) if len(parts) > 2 else parts[0]


def percent(covered, total):
    return 100.0 * covered / total if total else 100.0


def file_stats(counts):
    """rel -> (covered, total) over executable lines."""
    return {rel: (sum(1 for c in lines.values() if c > 0), len(lines))
            for rel, lines in counts.items()}


def page_name(rel):
    return rel.replace(os.sep, "_") + ".html"


def write_annotated_page(out_dir, rel, lines):
    src_path = os.path.join(REPO, rel)
    try:
        with open(src_path, encoding="utf-8") as f:
            source = f.read().splitlines()
    except OSError:
        return False
    rows = []
    for i, text in enumerate(source, start=1):
        count = lines.get(i)
        if count is None:
            cls, shown = "na", ""
        elif count > 0:
            cls, shown = "hit", str(count)
        else:
            cls, shown = "miss", "0"
        rows.append(f'<tr class="{cls}"><td class="n">{i}</td>'
                    f'<td class="c">{shown}</td>'
                    f"<td><pre>{html.escape(text)}</pre></td></tr>")
    page = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(rel)}</title><style>"
        "body{font-family:monospace}table{border-collapse:collapse}"
        "td{padding:0 8px;vertical-align:top}pre{margin:0}"
        ".n,.c{text-align:right;color:#888}"
        ".hit{background:#e6ffe6}.miss{background:#ffe6e6}"
        "</style></head><body>"
        f"<h2>{html.escape(rel)}</h2><p><a href='index.html'>index</a></p>"
        f"<table>{''.join(rows)}</table></body></html>")
    with open(os.path.join(out_dir, page_name(rel)), "w",
              encoding="utf-8") as f:
        f.write(page)
    return True


def write_report(out_dir, counts, stats, groups):
    os.makedirs(out_dir, exist_ok=True)
    annotated = set()
    for rel in stats:
        if group_of(rel) in GATED_GROUPS and write_annotated_page(
                out_dir, rel, counts[rel]):
            annotated.add(rel)

    def row(name, covered, total, link=None):
        pct = percent(covered, total)
        label = (f"<a href='{link}'>{html.escape(name)}</a>"
                 if link else html.escape(name))
        return (f"<tr><td>{label}</td><td class='r'>{covered}</td>"
                f"<td class='r'>{total}</td>"
                f"<td class='r'>{pct:.1f}%</td></tr>")

    rows = [row(f"{g} (group)", c, t) for g, (c, t) in sorted(groups.items())]
    rows += [row(rel, c, t,
                 page_name(rel) if rel in annotated else None)
             for rel, (c, t) in sorted(stats.items())]
    page = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>coverage</title><style>"
        "body{font-family:monospace}table{border-collapse:collapse}"
        "td,th{padding:2px 10px;border-bottom:1px solid #ddd}"
        ".r{text-align:right}</style></head><body><h2>Line coverage</h2>"
        "<table><tr><th>file</th><th>covered</th><th>lines</th>"
        f"<th>%</th></tr>{''.join(rows)}</table></body></html>")
    with open(os.path.join(out_dir, "index.html"), "w",
              encoding="utf-8") as f:
        f.write(page)

    with open(os.path.join(out_dir, "summary.txt"), "w",
              encoding="utf-8") as f:
        for g, (c, t) in sorted(groups.items()):
            f.write(f"{g} {percent(c, t):.2f} ({c}/{t} lines)\n")
        for rel, (c, t) in sorted(stats.items()):
            f.write(f"  {rel} {percent(c, t):.2f} ({c}/{t})\n")


def load_baseline(path):
    baseline = {}
    try:
        with open(path, encoding="utf-8") as f:
            for raw in f:
                raw = raw.split("#", 1)[0].strip()
                if not raw:
                    continue
                name, pct = raw.split()
                baseline[name] = float(pct)
    except OSError:
        sys.exit(f"coverage_report: missing baseline file {path}")
    return baseline


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir")
    parser.add_argument("--baseline", default=os.path.join(
        REPO, "tools", "coverage_baseline.txt"))
    parser.add_argument("--out", default=None,
                        help="report directory (default BUILD/coverage)")
    args = parser.parse_args()

    counts = collect_line_counts(args.build_dir)
    stats = file_stats(counts)
    groups = defaultdict(lambda: [0, 0])
    for rel, (covered, total) in stats.items():
        g = group_of(rel)
        groups[g][0] += covered
        groups[g][1] += total
    groups = {g: tuple(v) for g, v in groups.items()}

    out_dir = args.out or os.path.join(args.build_dir, "coverage")
    write_report(out_dir, counts, stats, groups)

    for g, (c, t) in sorted(groups.items()):
        print(f"coverage: {g} {percent(c, t):.2f}% ({c}/{t} lines)")
    print(f"coverage: report written to {out_dir}/index.html")

    baseline = load_baseline(args.baseline)
    failed = False
    for g in GATED_GROUPS:
        want = baseline.get(g)
        if want is None:
            print(f"coverage: WARNING no baseline recorded for {g}")
            continue
        got = percent(*groups.get(g, (0, 0))) if g in groups else 0.0
        if got + 1e-9 < want:
            print(f"coverage: FAIL {g} at {got:.2f}% is below the "
                  f"recorded baseline {want:.2f}%")
            failed = True
        else:
            print(f"coverage: OK {g} {got:.2f}% >= baseline {want:.2f}%")
    if failed:
        sys.exit(1)


if __name__ == "__main__":
    main()
