#!/usr/bin/env bash
# Serve-path throughput benchmark runner. Runs bench/micro_serve — lockstep
# vs pipelined sessions at 1/8/64/256 connections against a real reactor
# server on loopback, plus the no-transport engine ceiling — and writes the
# google-benchmark JSON to BENCH_serve.json at the repo root. Counters per
# case: items_per_second (sustained bids/sec), p50_ms/p99_ms (client-side
# quote latency), conns, window.
#
# The committed JSON must come from an optimized build: the default build
# dir is a dedicated Release tree (build-bench), configured here if absent,
# and the script refuses to write the output when the binary reports a
# non-release "mbts_build_type" context.
#
# Usage: tools/bench_serve.sh [build_dir] (default: build-bench)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_serve.json"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j "$(nproc)" --target micro_serve

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Refuses to bless results from an unoptimized or assert-laden binary.
require_release() {
  if ! grep -q '"mbts_build_type": "release"' "$1"; then
    echo "error: $(basename "$1") was produced by a non-release build" >&2
    grep -o '"mbts_build_type": "[^"]*"' "$1" >&2 || true
    echo "rerun against a -DCMAKE_BUILD_TYPE=Release build dir" >&2
    exit 1
  fi
}

# min_time well above one drive (a few tens of ms) so every case gets at
# least a couple of full measurement iterations.
"$BUILD/bench/micro_serve" \
  --benchmark_filter='BM_ServeLockstep|BM_ServePipelined|BM_EngineOnly' \
  --benchmark_min_time=0.2 \
  --benchmark_out="$TMP/serve.json" --benchmark_out_format=json

require_release "$TMP/serve.json"
cp "$TMP/serve.json" "$OUT"
echo "wrote $OUT"

# Headline check (informational): pipelined vs lockstep at 64 connections.
if command -v python3 >/dev/null; then
  python3 - "$OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rate = {}
for b in data["benchmarks"]:
    name = b["name"].split("/manual_time")[0]
    rate[name] = b.get("items_per_second", 0.0)
lock = rate.get("BM_ServeLockstep/64", 0.0)
pipe = rate.get("BM_ServePipelined/64", 0.0)
if lock > 0:
    print(f"64-conn: lockstep {lock/1e3:.1f}k bids/s, "
          f"pipelined {pipe/1e3:.1f}k bids/s ({pipe/lock:.2f}x)")
EOF
fi
