// trace_view's library core: filters, kind parsing, and the pretty/summary
// renderings pinned golden (the CLI is a thin shell over these).
#include "obs/trace_format.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace mbts {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      TraceEvent{0.0, TraceEventKind::kSubmit, 0, 1, 0.0, 0.0},
      TraceEvent{0.0, TraceEventKind::kAdmitAccept, 0, 1, 125.5, 80.25},
      TraceEvent{5.0, TraceEventKind::kStart, 0, 1, 0.0, 0.0},
      TraceEvent{42.5, TraceEventKind::kComplete, 0, 1, 300.0, 12.5},
      TraceEvent{50.0, TraceEventKind::kBid, kNoSite, 2, 3.0, 0.0},
      TraceEvent{50.0, TraceEventKind::kAward, 1, 2, 99.0, 75.0},
  };
}

TEST(TraceFormat, KindNamesRoundTrip) {
  for (std::uint32_t k = 0;
       k <= static_cast<std::uint32_t>(TraceEventKind::kEvtExecute); ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    const auto parsed = parse_event_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_event_kind("no_such_kind").has_value());
  EXPECT_FALSE(parse_event_kind("").has_value());
}

TEST(TraceFormat, FormatEventGolden) {
  EXPECT_EQ(format_trace_event(
                TraceEvent{42.5, TraceEventKind::kComplete, 0, 1, 300.0,
                           12.5}),
            "[     42.500000] complete      site=0 task=1 a=300 b=12.5");
  // Events without a site/task subject omit those columns.
  EXPECT_EQ(format_trace_event(TraceEvent{50.0, TraceEventKind::kBid, kNoSite,
                                          2, 3.0, 0.0}),
            "[     50.000000] bid           task=2 a=3 b=0");
  EXPECT_EQ(format_trace_event(TraceEvent{1.0, TraceEventKind::kDispatch, 2,
                                          kInvalidTask, 4.0, 3.0}),
            "[      1.000000] dispatch      site=2 a=4 b=3");
}

TEST(TraceFormat, SummaryGolden) {
  EXPECT_EQ(summarize_trace(sample_events()),
            "6 events over t=[0, 50]\n"
            "by kind:\n"
            "  submit                 1\n"
            "  admit_accept           1\n"
            "  start                  1\n"
            "  complete               1\n"
            "  bid                    1\n"
            "  award                  1\n"
            "by site:\n"
            "  site0                  4\n"
            "  site1                  1\n");
  EXPECT_EQ(summarize_trace({}), "empty trace (0 events)\n");
}

TEST(TraceFormat, FilterByKindSiteTaskAndTime) {
  const std::vector<TraceEvent> events = sample_events();

  TraceFilter by_kind;
  by_kind.kind = TraceEventKind::kComplete;
  EXPECT_EQ(filter_trace(events, by_kind).size(), 1u);

  TraceFilter by_site;
  by_site.site = 0;
  EXPECT_EQ(filter_trace(events, by_site).size(), 4u);

  TraceFilter by_task;
  by_task.task = 2;
  EXPECT_EQ(filter_trace(events, by_task).size(), 2u);

  TraceFilter window;
  window.t_from = 5.0;   // inclusive
  window.t_to = 50.0;    // exclusive
  const auto in_window = filter_trace(events, window);
  ASSERT_EQ(in_window.size(), 2u);
  EXPECT_EQ(in_window[0].kind, TraceEventKind::kStart);
  EXPECT_EQ(in_window[1].kind, TraceEventKind::kComplete);

  TraceFilter conjunctive;
  conjunctive.site = 0;
  conjunctive.kind = TraceEventKind::kSubmit;
  EXPECT_EQ(filter_trace(events, conjunctive).size(), 1u);

  EXPECT_EQ(filter_trace(events, TraceFilter{}).size(), events.size());
}

}  // namespace
}  // namespace mbts
