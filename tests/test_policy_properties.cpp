// Optimality and exchange-argument properties of the classical heuristics,
// verified against brute-force enumeration on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/scheduler.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

struct Job {
  double runtime;
  double weight;  // decay
};

/// Total weighted completion time of jobs run in the given order on one
/// processor, all released at time zero.
double twct(const std::vector<Job>& jobs, const std::vector<int>& order) {
  double clock = 0.0;
  double total = 0.0;
  for (int i : order) {
    clock += jobs[static_cast<std::size_t>(i)].runtime;
    total += jobs[static_cast<std::size_t>(i)].weight * clock;
  }
  return total;
}

double best_twct_bruteforce(const std::vector<Job>& jobs) {
  std::vector<int> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end());
  double best = kInf;
  do {
    best = std::min(best, twct(jobs, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

double swpt_twct(const std::vector<Job>& jobs) {
  std::vector<int> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Job& ja = jobs[static_cast<std::size_t>(a)];
    const Job& jb = jobs[static_cast<std::size_t>(b)];
    return ja.weight / ja.runtime > jb.weight / jb.runtime;
  });
  return twct(jobs, order);
}

class SwptOptimality : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SwptOptimality, MatchesBruteForceOnRandomInstances) {
  // Smith's rule: SWPT is optimal for 1 || sum w_j C_j.
  Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 20; ++instance) {
    std::vector<Job> jobs;
    const std::size_t n = 3 + rng.below(5);  // 3..7 jobs: 5040 perms max
    for (std::size_t i = 0; i < n; ++i)
      jobs.push_back({rng.uniform(1.0, 20.0), rng.uniform(0.1, 5.0)});
    EXPECT_NEAR(swpt_twct(jobs), best_twct_bruteforce(jobs), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwptOptimality,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

/// End-to-end: the SWPT site scheduler achieves the brute-force-optimal
/// total weighted completion time when all tasks arrive together on one
/// processor (the regime where SWPT is provably optimal).
TEST(SwptScheduler, EndToEndMatchesBruteForce) {
  Xoshiro256 rng(99);
  for (int instance = 0; instance < 10; ++instance) {
    const std::size_t n = 3 + rng.below(4);
    std::vector<Job> jobs;
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
      Job j{rng.uniform(1.0, 20.0), rng.uniform(0.1, 5.0)};
      jobs.push_back(j);
      Task t;
      t.id = i;
      t.arrival = 0.0;
      t.runtime = j.runtime;
      // Large value keeps yields positive; decay is the weight.
      t.value = ValueFunction::unbounded(1e6, j.weight);
      tasks.push_back(t);
    }

    SimEngine engine;
    SchedulerConfig config;
    config.processors = 1;
    config.preemption = false;
    SiteScheduler site(engine, config, make_policy(PolicySpec::swpt()),
                       std::make_unique<AcceptAllAdmission>());
    site.inject(tasks);
    engine.run();

    double scheduled_twct = 0.0;
    for (const TaskRecord& r : site.records())
      scheduled_twct += r.task.value.decay() * r.completion;
    EXPECT_NEAR(scheduled_twct, best_twct_bruteforce(jobs), 1e-6)
        << "instance " << instance;
  }
}

/// With simultaneous release, equal decay, and unbounded linear value, the
/// yield-optimal order minimizes total completion time — SRPT (== SPT here)
/// must match brute force.
TEST(SrptScheduler, MinimizesTotalDelayCostForUniformDecay) {
  Xoshiro256 rng(7);
  for (int instance = 0; instance < 10; ++instance) {
    const std::size_t n = 3 + rng.below(4);
    std::vector<Task> tasks;
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < n; ++i) {
      const double runtime = rng.uniform(1.0, 20.0);
      jobs.push_back({runtime, 1.0});
      Task t;
      t.id = i;
      t.arrival = 0.0;
      t.runtime = runtime;
      t.value = ValueFunction::unbounded(1e6, 1.0);
      tasks.push_back(t);
    }
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 1;
    config.preemption = false;
    SiteScheduler site(engine, config, make_policy(PolicySpec::srpt()),
                       std::make_unique<AcceptAllAdmission>());
    site.inject(tasks);
    engine.run();
    double total_yield = 0.0;
    for (const TaskRecord& r : site.records())
      total_yield += r.realized_yield;

    // Brute-force the maximum achievable yield.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    double best = -kInf;
    std::sort(order.begin(), order.end());
    do {
      double clock = 0.0, yield = 0.0;
      for (int i : order) {
        const Task& t = tasks[static_cast<std::size_t>(i)];
        clock += t.runtime;
        yield += t.yield_at_completion(clock);
      }
      best = std::max(best, yield);
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_NEAR(total_yield, best, 1e-6) << "instance " << instance;
  }
}

/// FirstReward at alpha=0 under unbounded penalties must order by decay
/// (Eq. 5): verify the realized schedule runs tasks in decay order when
/// runtimes are equal.
TEST(FirstRewardScheduler, AlphaZeroRunsByDecayOrder) {
  std::vector<Task> tasks;
  // A blocker is injected first so it occupies the processor while the
  // probe tasks queue up; the dispatch at its completion then ranks the
  // whole probe set at once.
  Task blocker;
  blocker.id = 99;
  blocker.arrival = 0.0;
  blocker.runtime = 5.0;
  blocker.value = ValueFunction::unbounded(100.0, 50.0);
  tasks.push_back(blocker);
  const std::vector<double> decays{0.3, 1.7, 0.9, 2.5, 0.1};
  for (std::size_t i = 0; i < decays.size(); ++i) {
    Task t;
    t.id = i;
    t.arrival = 0.0;
    t.runtime = 10.0;
    t.value = ValueFunction::unbounded(100.0, decays[i]);
    tasks.push_back(t);
  }
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  config.preemption = false;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_reward(0)),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(tasks);
  engine.run();

  std::vector<std::pair<double, double>> completion_by_decay;
  for (const TaskRecord& r : site.records()) {
    if (r.task.id == 99) continue;  // skip the blocker
    completion_by_decay.emplace_back(r.task.value.decay(), r.completion);
  }
  std::sort(completion_by_decay.begin(), completion_by_decay.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  // Highest decay completes first, and so on down.
  for (std::size_t i = 1; i < completion_by_decay.size(); ++i)
    EXPECT_LT(completion_by_decay[i - 1].second,
              completion_by_decay[i].second);
}

/// PV with discount 0 must produce the exact same schedule as FirstPrice on
/// any trace (Fig. 3's anchor point).
TEST(PvScheduler, DiscountZeroIdenticalToFirstPrice) {
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 4;
  spec.runtime = DistSpec::exponential(15.0);
  spec.runtime.floor = 0.5;
  Xoshiro256 rng(21);
  const Trace trace = generate_trace(spec, rng);

  auto run = [&](const PolicySpec& policy) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.discount_rate = 0.0;
    SiteScheduler site(engine, config, make_policy(policy),
                       std::make_unique<AcceptAllAdmission>());
    site.inject(trace.tasks);
    engine.run();
    std::vector<double> completions;
    for (const TaskRecord& r : site.records())
      completions.push_back(r.completion);
    return completions;
  };

  EXPECT_EQ(run(PolicySpec::first_price()), run(PolicySpec::present_value()));
}

/// FirstReward at alpha=1 with discount 0 likewise reduces to FirstPrice.
TEST(FirstRewardScheduler, AlphaOneDiscountZeroIdenticalToFirstPrice) {
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 4;
  spec.runtime = DistSpec::exponential(15.0);
  spec.runtime.floor = 0.5;
  Xoshiro256 rng(23);
  const Trace trace = generate_trace(spec, rng);

  auto run = [&](const PolicySpec& policy) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.discount_rate = 0.0;
    SiteScheduler site(engine, config, make_policy(policy),
                       std::make_unique<AcceptAllAdmission>());
    site.inject(trace.tasks);
    engine.run();
    std::vector<double> completions;
    for (const TaskRecord& r : site.records())
      completions.push_back(r.completion);
    return completions;
  };

  EXPECT_EQ(run(PolicySpec::first_price()),
            run(PolicySpec::first_reward(1.0)));
}

}  // namespace
}  // namespace mbts
