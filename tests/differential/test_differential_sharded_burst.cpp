// Pinned high-load sharded differential burst: a 10k-task arrival wave
// onto a three-site market (load factor 8 against the aggregate capacity)
// run through the sharded engine with epoch batching on, so the pending
// queues grow to ~10k entries while the coordinator executes long inline
// negotiation runs between barriers. Every site's record stream is replayed
// through the O(n^2) oracle reference and compared bit-for-bit — the scale
// at which a mis-ordered inline epoch, a stale member-engine boundary, or
// a batched-command handoff bug would first surface, with the SoA score
// kernels active underneath (the batching x kernels interaction).
//
// The oracle side is quadratic in the backlog, so this lives in its own
// slow-labeled binary next to test_differential_burst: tier-1 (plain
// ctest) and the nightly --all pass run it; push-time CI and the default
// check.sh loop (-LE slow) skip it.
#include <gtest/gtest.h>

#include <string>

#include "oracle/diff.hpp"

namespace mbts {
namespace {

using oracle::DiffReport;
using oracle::Scenario;

// Validated via: tools/diff_fuzz --replay "seed=77 tasks=10000 market=1
//   sites=3 procs=2 preempt=1 discount=0.01 policy=firstreward alpha=0.5
//   admission=0 load=8 penalty=unbounded pricing=second shards=3
//   kernels=1 batching=1"
const Scenario kShardedBurst{
    .seed = 77ULL,
    .n_tasks = 10000,
    .market = true,
    .n_sites = 3,
    .processors = 2,
    .preemption = true,
    .discount_rate = 0.01,
    .mix_full_rebuild = false,
    .policy = PolicySpec::Kind::kFirstReward,
    .alpha = 0.5,
    .use_slack_admission = false,
    .threshold = 0,
    .literal_eq8 = false,
    .load_factor = 8,
    .penalty = PenaltyModel::kUnbounded,
    .penalty_value_scale = 1,
    .uniform_decay = false,
    .decay_skew = 5,
    .estimate_error_sigma = 0,
    .max_width = 1,
    .strategy = ClientStrategy::kMaxExpectedValue,
    .pricing = PricingModel::kSecondPrice,
    .budgets = false,
    .faults = false,
    .outage_rate = 0,
    .mean_outage = 150,
    .quote_timeout_prob = 0,
    .crash_mode = CrashMode::kKill,
    .shards = 3,
    .kernels = true,
    .batching = true,
};

TEST(DifferentialShardedBurst, TenThousandPendingBatchedShardsAgree) {
  const DiffReport report = oracle::run_diff(kShardedBurst);
  EXPECT_FALSE(report.diverged)
      << "10k-pending sharded batched burst diverged: " << report.detail
      << "\n  replay: \"" << oracle::to_replay_string(kShardedBurst) << "\"";
}

// The same wave with batching off pins the one-barrier-per-epoch protocol
// at scale, so a future divergence isolates to the batched coordinator by
// comparing the two tests' outcomes.
TEST(DifferentialShardedBurst, TenThousandPendingUnbatchedShardsAgree) {
  Scenario unbatched = kShardedBurst;
  unbatched.batching = false;
  const DiffReport report = oracle::run_diff(unbatched);
  EXPECT_FALSE(report.diverged)
      << "10k-pending sharded unbatched burst diverged: " << report.detail
      << "\n  replay: \"" << oracle::to_replay_string(unbatched) << "\"";
}

}  // namespace
}  // namespace mbts
