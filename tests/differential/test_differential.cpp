// Differential oracle tests: pinned scenario sweeps through run_diff, the
// replay codec, the shrinking reporter, the harness self-test (planted
// bugs must be caught), and shrunk regression reproducers.
//
// To add a regression from a diff_fuzz divergence, paste the printed
// Scenario literal into kRegressions below — the suite asserts every entry
// stays bit-identical between the optimized stack and the oracle.
#include <gtest/gtest.h>

#include <vector>

#include "invariants.hpp"
#include "market/market.hpp"
#include "oracle/diff.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

using oracle::DiffReport;
using oracle::Scenario;
using oracle::SelfTest;

/// Asserts one scenario agrees bit-for-bit between both implementations.
void expect_agreement(const Scenario& scenario, const std::string& label) {
  const DiffReport report = oracle::run_diff(scenario);
  EXPECT_FALSE(report.diverged)
      << label << " diverged: " << report.detail << "\n  replay: \""
      << oracle::to_replay_string(scenario) << "\"";
}

TEST(Differential, PinnedScenarioSweepAgrees) {
  for (std::uint64_t i = 0; i < 40; ++i) {
    expect_agreement(oracle::generate_scenario(20260806, i),
                     "scenario " + std::to_string(i));
  }
}

TEST(Differential, FaultHeavySweepAgrees) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    Scenario sc = oracle::generate_scenario(7, i);
    if (!sc.faults) {
      sc.faults = true;
      sc.outage_rate =
          2.0 * static_cast<double>(sc.processors) * sc.load_factor /
          (static_cast<double>(sc.n_tasks) * 100.0);
      sc.mean_outage = 150.0;
      sc.quote_timeout_prob = sc.market ? 0.1 : 0.0;
    }
    expect_agreement(sc, "fault scenario " + std::to_string(i));
  }
}

TEST(Differential, ShardedSweepAgrees) {
  // Every market scenario of the sweep, forced through the sharded engine:
  // the optimized side must stay bit-identical to the oracle no matter how
  // many workers execute the sites.
  for (std::uint64_t i = 0; i < 12; ++i) {
    Scenario sc = oracle::generate_scenario(31, i);
    if (!sc.market) {
      sc.market = true;
      sc.n_sites = 3;
    }
    sc.shards = 1 + i % 3;
    expect_agreement(sc, "sharded scenario " + std::to_string(i));
  }
}

TEST(Differential, ReplayCodecAcceptsPreShardingLines) {
  // Replay lines recorded before the shards knob existed have no shards=
  // key; they must still parse, defaulting to the single-engine reference.
  const auto decoded = oracle::parse_replay(
      "seed=5 tasks=80 market=1 sites=2 procs=4");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shards, 1u);
}

TEST(Differential, ReplayCodecAcceptsPreKernelLines) {
  // Replay lines recorded before the kernels knob existed have no kernels=
  // key; they must still parse, defaulting to the scheduler's kernel path.
  const auto decoded = oracle::parse_replay(
      "seed=5 tasks=80 market=1 sites=2 procs=4 shards=2");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->kernels);
}

TEST(Differential, ReplayCodecAcceptsPreBatchingLines) {
  // Replay lines recorded before the epoch-batching knob existed have no
  // batching= key; they must still parse, defaulting to the batched
  // coordinator (the sharded default).
  const auto decoded = oracle::parse_replay(
      "seed=5 tasks=80 market=1 sites=2 procs=4 shards=2 kernels=0");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->batching);
  EXPECT_FALSE(decoded->kernels);
}

TEST(Differential, ReplayCodecRoundTrips) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario sc = oracle::generate_scenario(99, i);
    const std::string encoded = oracle::to_replay_string(sc);
    const auto decoded = oracle::parse_replay(encoded);
    ASSERT_TRUE(decoded.has_value()) << encoded;
    EXPECT_EQ(encoded, oracle::to_replay_string(*decoded));
  }
}

TEST(Differential, ReplayCodecRejectsGarbage) {
  EXPECT_FALSE(oracle::parse_replay("seed").has_value());
  EXPECT_FALSE(oracle::parse_replay("unknown=1").has_value());
  EXPECT_FALSE(oracle::parse_replay("policy=bogus").has_value());
  EXPECT_FALSE(oracle::parse_replay("seed=notanumber").has_value());
}

/// The contended scenario the harness self-test plants its bugs in.
Scenario contended_scenario() {
  Scenario sc;
  sc.seed = 1;
  sc.n_tasks = 80;
  sc.market = false;
  sc.processors = 4;
  sc.load_factor = 2.0;
  sc.policy = PolicySpec::Kind::kFirstReward;
  sc.use_slack_admission = true;
  return sc;
}

TEST(DifferentialSelfTest, StaleRemainingTimeCacheIsCaught) {
  const Scenario sc = contended_scenario();
  ASSERT_FALSE(oracle::run_diff(sc).diverged)
      << "baseline must agree before planting the bug";
  const SelfTest stale{.rpt_skew = 1e-3, .corrupt_settlement = false};
  const DiffReport report = oracle::run_diff(sc, stale);
  EXPECT_TRUE(report.diverged)
      << "a 0.1% remaining-time skew went unnoticed — the harness is blind";
}

TEST(DifferentialSelfTest, StaleCacheDivergenceShrinks) {
  const SelfTest stale{.rpt_skew = 1e-3, .corrupt_settlement = false};
  std::vector<std::string> steps;
  const Scenario shrunk = oracle::shrink(
      contended_scenario(),
      [&](const Scenario& candidate) {
        return oracle::run_diff(candidate, stale).diverged;
      },
      &steps);
  EXPECT_FALSE(steps.empty()) << "the shrinker made no progress";
  EXPECT_LE(shrunk.n_tasks, 20u)
      << "expected the 80-task scenario to shrink well below 20 tasks";
  EXPECT_TRUE(oracle::run_diff(shrunk, stale).diverged)
      << "the shrunk scenario no longer reproduces the planted bug";
}

TEST(DifferentialSelfTest, CorruptedSettlementIsCaught) {
  Scenario sc;
  sc.seed = 1;
  sc.n_tasks = 80;
  sc.market = true;
  sc.n_sites = 2;
  sc.processors = 4;
  sc.load_factor = 1.2;
  ASSERT_FALSE(oracle::run_diff(sc).diverged);
  const SelfTest corrupt{.rpt_skew = 0.0, .corrupt_settlement = true};
  const DiffReport report = oracle::run_diff(sc, corrupt);
  EXPECT_TRUE(report.diverged)
      << "a one-ulp settlement corruption passed the audit";
  EXPECT_NE(report.detail.find("settlement audit"), std::string::npos)
      << report.detail;
}

// --- Shrunk regression reproducers --------------------------------------
// Each entry came out of a diff_fuzz shrink; the suite pins that the
// minimized scenario stays in bit-level agreement. The first entry is the
// self-test's own shrunk output — the minimal footprint the harness
// watches: 5 FCFS tasks, no preemption, accept-all admission.
const Scenario kRegressions[] = {
    oracle::Scenario{
        .seed = 1ULL,
        .n_tasks = 5,
        .market = false,
        .n_sites = 1,
        .processors = 4,
        .preemption = false,
        .discount_rate = 0,
        .mix_full_rebuild = false,
        .policy = PolicySpec::Kind::kFcfs,
        .alpha = 0.5,
        .use_slack_admission = false,
        .threshold = 0,
        .literal_eq8 = false,
        .load_factor = 2,
        .penalty = PenaltyModel::kUnbounded,
        .penalty_value_scale = 1,
        .uniform_decay = true,
        .decay_skew = 5,
        .estimate_error_sigma = 0,
        .max_width = 1,
        .strategy = ClientStrategy::kMaxExpectedValue,
        .pricing = PricingModel::kBidPrice,
        .budgets = false,
        .faults = false,
        .outage_rate = 0,
        .mean_outage = 150,
        .quote_timeout_prob = 0,
        .crash_mode = CrashMode::kKill,
    },
    // Sharded seam coverage: a contended two-site market with faults and
    // quote timeouts, executed on two shard workers. Pins the conservative
    // epoch boundary (completion-before-fault at equal t) and the serial
    // Phase-1 timeout draws against the oracle.
    oracle::Scenario{
        .seed = 11ULL,
        .n_tasks = 60,
        .market = true,
        .n_sites = 2,
        .processors = 4,
        .preemption = true,
        .discount_rate = 0.01,
        .mix_full_rebuild = false,
        .policy = PolicySpec::Kind::kFirstReward,
        .alpha = 0.5,
        .use_slack_admission = true,
        .threshold = 0,
        .literal_eq8 = false,
        .load_factor = 1.5,
        .penalty = PenaltyModel::kUnbounded,
        .penalty_value_scale = 1,
        .uniform_decay = false,
        .decay_skew = 5,
        .estimate_error_sigma = 0,
        .max_width = 1,
        .strategy = ClientStrategy::kMaxExpectedValue,
        .pricing = PricingModel::kSecondPrice,
        .budgets = true,
        .faults = true,
        .outage_rate = 0.002,
        .mean_outage = 150,
        .quote_timeout_prob = 0.1,
        .crash_mode = CrashMode::kKill,
        .shards = 2,
    },
};

TEST(DifferentialRegressions, ShrunkReproducersAgree) {
  for (std::size_t i = 0; i < std::size(kRegressions); ++i)
    expect_agreement(kRegressions[i], "regression " + std::to_string(i));
}

// --- Invariants applied through the harness -----------------------------

TEST(DifferentialInvariants, MarketRunSatisfiesInvariants) {
  WorkloadSpec spec;
  spec.num_jobs = 150;
  spec.processors = 8;
  spec.load_factor = 1.5;
  const Trace trace = generate_trace(spec, SeedSequence(11), 0);

  MarketConfig mc;
  for (std::size_t s = 0; s < 2; ++s) {
    SiteAgentConfig agent;
    agent.id = static_cast<SiteId>(s);
    agent.scheduler.processors = 4;
    agent.scheduler.discount_rate = 0.01;
    agent.policy = PolicySpec::first_reward(0.5);
    agent.admission.threshold = 40.0 * static_cast<double>(s);
    mc.sites.push_back(agent);
  }
  mc.client_budgets[0] = ClientBudget{2500.0, 800.0};
  mc.faults.outage_rate = 2.0 / 1500.0;
  mc.faults.mean_outage = 150.0;
  Market market(mc);
  market.inject(trace);
  const MarketStats stats = market.run();

  EXPECT_EQ("", invariants::check_money_conservation(market, stats));
  std::vector<TaskRecord> all_records;
  for (const auto& site : market.sites()) {
    const auto& records = site->scheduler().records();
    all_records.insert(all_records.end(), records.begin(), records.end());
    EXPECT_EQ("", invariants::check_mix_counts(site->scheduler()));
    EXPECT_EQ("", invariants::check_schedule_feasibility(
                      records, site->config().scheduler.processors,
                      /*continuous_service=*/false));
  }
  EXPECT_EQ("", invariants::check_outcome_exclusivity(all_records));
  EXPECT_GT(stats.awarded, 0u) << "the invariant run awarded nothing";
}

TEST(DifferentialInvariants, NonPreemptiveRunIsFeasible) {
  WorkloadSpec spec;
  spec.num_jobs = 200;
  spec.processors = 8;
  spec.load_factor = 1.2;
  const Trace trace = generate_trace(spec, SeedSequence(5), 0);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 8;
  config.preemption = false;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(trace.tasks);
  engine.run();

  EXPECT_EQ("", invariants::check_mix_counts(site));
  EXPECT_EQ("", invariants::check_outcome_exclusivity(site.records()));
  EXPECT_EQ("", invariants::check_schedule_feasibility(
                    site.records(), config.processors,
                    /*continuous_service=*/true));
  EXPECT_GT(site.stats().completed, 0u);
}

}  // namespace
}  // namespace mbts
