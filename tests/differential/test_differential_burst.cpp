// Pinned high-load differential burst: a 10k-task arrival wave onto two
// processors (load factor 8) so the pending queue grows to ~10k entries
// before the backlog drains. Every arrival rescores the whole backlog, so
// this run drives the SoA score kernels (ScoreKernelMode::kExact) through
// millions of batched elements and pins them bit-for-bit against the
// O(n^2) oracle reference — the scale at which a reassociated reduction,
// a stale column slot, or a bad swap_erase mirror would first surface.
//
// The oracle side is quadratic in the backlog, so this lives in its own
// slow-labeled binary: tier-1 (plain ctest) and the nightly --all pass run
// it; push-time CI and the default check.sh loop (-LE slow) skip it.
#include <gtest/gtest.h>

#include <string>

#include "oracle/diff.hpp"

namespace mbts {
namespace {

using oracle::DiffReport;
using oracle::Scenario;

// Validated via: tools/diff_fuzz --replay "seed=77 tasks=10000 market=0
//   procs=2 preempt=1 discount=0.01 policy=firstreward alpha=0.5
//   admission=0 load=8 penalty=unbounded kernels=1"
const Scenario kKernelBurst{
    .seed = 77ULL,
    .n_tasks = 10000,
    .market = false,
    .n_sites = 1,
    .processors = 2,
    .preemption = true,
    .discount_rate = 0.01,
    .mix_full_rebuild = false,
    .policy = PolicySpec::Kind::kFirstReward,
    .alpha = 0.5,
    .use_slack_admission = false,
    .threshold = 0,
    .literal_eq8 = false,
    .load_factor = 8,
    .penalty = PenaltyModel::kUnbounded,
    .penalty_value_scale = 1,
    .uniform_decay = false,
    .decay_skew = 5,
    .estimate_error_sigma = 0,
    .max_width = 1,
    .strategy = ClientStrategy::kMaxExpectedValue,
    .pricing = PricingModel::kBidPrice,
    .budgets = false,
    .faults = false,
    .outage_rate = 0,
    .mean_outage = 150,
    .quote_timeout_prob = 0,
    .crash_mode = CrashMode::kKill,
    .shards = 1,
    .kernels = true,
};

TEST(DifferentialBurst, TenThousandPendingKernelPathAgrees) {
  const DiffReport report = oracle::run_diff(kKernelBurst);
  EXPECT_FALSE(report.diverged)
      << "10k-pending kernel burst diverged: " << report.detail
      << "\n  replay: \"" << oracle::to_replay_string(kKernelBurst) << "\"";
}

}  // namespace
}  // namespace mbts
