#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(ConsoleTable, RendersHeaderAndRule) {
  ConsoleTable table({"name", "value"});
  table.row({"x", "1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(ConsoleTable, ColumnsPadToWidestCell) {
  ConsoleTable table({"a", "b"});
  table.row({"longvalue", "1"});
  table.row({"s", "2"});
  const std::string out = table.render();
  // Both rows should place column b at the same offset.
  const auto lines = [&] {
    std::vector<std::string> ls;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const auto nl = out.find('\n', pos);
      ls.push_back(out.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return ls;
  }();
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(ConsoleTable, RowWidthMismatchThrows) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.row({"only"}), CheckError);
}

TEST(ConsoleTable, NumFormatsPrecision) {
  EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::num(-1.5, 0), "-2");  // round-half-even via printf
  EXPECT_EQ(ConsoleTable::num(100.0, 1), "100.0");
}

TEST(ConsoleTable, SizeCountsRows) {
  ConsoleTable table({"a"});
  EXPECT_EQ(table.size(), 0u);
  table.row({"1"});
  table.row({"2"});
  EXPECT_EQ(table.size(), 2u);
}

TEST(ConsoleTable, EmptyHeaderThrows) {
  EXPECT_THROW(ConsoleTable({}), CheckError);
}

}  // namespace
}  // namespace mbts
