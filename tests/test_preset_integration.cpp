// Integration sweep over the experiment presets themselves: every workload
// family used by Figs. 3–7 must drive the scheduler through a clean run
// under every figure-relevant policy configuration (TEST_P). This binds the
// preset definitions to the scheduler contract so a preset change cannot
// silently break an experiment.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/scheduler.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

using Param = std::tuple<std::string /*preset*/, std::string /*policy*/,
                         bool /*admission*/>;

WorkloadSpec spec_for(const std::string& preset, std::size_t jobs) {
  if (preset == "millennium") return presets::millennium_mix(4.0, jobs);
  if (preset == "decay_bounded")
    return presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, jobs);
  if (preset == "decay_unbounded")
    return presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, jobs);
  if (preset == "admission_light") return presets::admission_mix(0.7, jobs);
  return presets::admission_mix(2.0, jobs);  // admission_heavy
}

class PresetIntegration : public testing::TestWithParam<Param> {};

TEST_P(PresetIntegration, CleanRunWithConsistentAccounting) {
  const auto& [preset, policy_text, admission] = GetParam();
  const WorkloadSpec spec = spec_for(preset, 500);
  Xoshiro256 rng = SeedSequence(4242).stream(1);
  const Trace trace = generate_trace(spec, rng);
  ASSERT_TRUE(validate_trace(trace).empty());

  SimEngine engine;
  SchedulerConfig config;
  config.processors = spec.processors;
  config.preemption = true;
  config.discount_rate = 0.01;
  std::unique_ptr<AdmissionPolicy> admit;
  if (admission)
    admit = std::make_unique<SlackAdmission>(
        SlackAdmissionConfig{180.0, false});
  else
    admit = std::make_unique<AcceptAllAdmission>();
  SiteScheduler site(engine, config,
                     make_policy(parse_policy_spec(policy_text)),
                     std::move(admit));
  site.inject(trace.tasks);
  engine.run();

  EXPECT_TRUE(site.idle());
  EXPECT_TRUE(engine.empty());
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.submitted, trace.size());
  EXPECT_EQ(stats.accepted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.completed, stats.accepted);
  if (!admission) {
    EXPECT_EQ(stats.rejected, 0u);
  }

  // Settlement consistency and value-function bounds per preset.
  for (const TaskRecord& r : site.records()) {
    if (r.outcome != TaskOutcome::kCompleted) continue;
    EXPECT_NEAR(r.realized_yield, r.task.yield_at_completion(r.completion),
                1e-9);
    EXPECT_LE(r.realized_yield, r.task.value.max_value() + 1e-9);
    if (r.task.value.bounded()) {
      EXPECT_GE(r.realized_yield, -r.task.value.penalty_bound() - 1e-9);
    }
  }
}

std::string preset_name(const testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (char& c : name)
    if (c == ':' || c == '.') c = '_';
  name += std::get<2>(info.param) ? "_gated" : "_open";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PresetByPolicyByAdmission, PresetIntegration,
    testing::Combine(testing::Values("millennium", "decay_bounded",
                                     "decay_unbounded", "admission_light",
                                     "admission_heavy"),
                     testing::Values("firstprice", "pv", "firstreward:0",
                                     "firstreward:0.3", "swpt"),
                     testing::Bool()),
    preset_name);

}  // namespace
}  // namespace mbts
