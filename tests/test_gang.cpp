// Tests for the gang-scheduling / backfilling extension: multi-processor
// tasks (the paper's general model before its width-1 simplification).
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, std::size_t width,
               double value, double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.width = width;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

struct Harness {
  SimEngine engine;
  SiteScheduler site;
  Harness(std::size_t procs, const PolicySpec& policy, bool preemption)
      : site(engine,
             SchedulerConfig{.processors = procs, .preemption = preemption},
             make_policy(policy), std::make_unique<AcceptAllAdmission>()) {}
  const TaskRecord& record(TaskId id) const {
    for (const TaskRecord& r : site.records())
      if (r.task.id == id) return r;
    throw std::runtime_error("no record");
  }
};

TEST(Gang, WideTaskOccupiesWholeSite) {
  Harness h(4, PolicySpec::fcfs(), false);
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 4, 100.0, 0.0),
      make_task(1, 0.0, 5.0, 1, 100.0, 0.0),
  });
  h.engine.run();
  // Task 0 takes all 4 processors; task 1 must wait for it.
  EXPECT_EQ(h.record(0).completion, 10.0);
  EXPECT_EQ(h.record(1).completion, 15.0);
}

TEST(Gang, NarrowTasksRunConcurrentlyWithWide) {
  Harness h(4, PolicySpec::fcfs(), false);
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 2, 100.0, 0.0),
      make_task(1, 0.0, 10.0, 1, 100.0, 0.0),
      make_task(2, 0.0, 10.0, 1, 100.0, 0.0),
  });
  h.engine.run();
  for (TaskId id : {0u, 1u, 2u}) EXPECT_EQ(h.record(id).completion, 10.0);
}

TEST(Gang, BackfillSkipsTooWideTask) {
  // FCFS order: wide task 1 can't fit behind task 0; narrow task 2 arrives
  // later in FCFS order but fits the free processor — aggressive backfill
  // runs it immediately.
  Harness h(2, PolicySpec::fcfs(), false);
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 1, 100.0, 0.0),
      make_task(1, 0.0, 10.0, 2, 100.0, 0.0),
      make_task(2, 0.0, 4.0, 1, 100.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(2).completion, 4.0);    // backfilled at t=0
  EXPECT_EQ(h.record(0).completion, 10.0);
  EXPECT_EQ(h.record(1).completion, 20.0);   // waits for both processors
}

TEST(Gang, PreemptionFreesEnoughProcessors) {
  // A high-priority wide arrival preempts enough narrow work to fit.
  Harness h(2, PolicySpec::first_price(), true);
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1, 100.0, 0.0),
      make_task(1, 0.0, 100.0, 1, 100.0, 0.0),
      make_task(2, 10.0, 10.0, 2, 100000.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(2).completion, 20.0);
  EXPECT_EQ(h.record(2).first_start, 10.0);
  // Both narrow tasks lost 10 units to the preemption.
  EXPECT_EQ(h.record(0).completion, 110.0);
  EXPECT_EQ(h.record(1).completion, 110.0);
  EXPECT_EQ(h.site.stats().preemptions, 2u);
}

TEST(Gang, WidthBeyondCapacityThrows) {
  Harness h(2, PolicySpec::fcfs(), false);
  EXPECT_THROW(h.site.submit(make_task(0, 0.0, 10.0, 3, 100.0, 0.0)),
               CheckError);
}

TEST(Gang, ZeroWidthInvalid) {
  Task t = make_task(0, 0.0, 10.0, 1, 100.0, 0.0);
  t.width = 0;
  EXPECT_FALSE(validate_task(t).empty());
}

TEST(Gang, QuoteProjectsGangStart) {
  // Site with 2 processors, one busy until 10, one until 4. A width-2 bid
  // must be quoted to start at 10 (when both are free).
  Harness h(2, PolicySpec::fcfs(), false);
  h.site.submit(make_task(0, 0.0, 10.0, 1, 100.0, 0.0));
  h.site.submit(make_task(1, 0.0, 4.0, 1, 100.0, 0.0));
  h.engine.schedule_at(1.0, EventPriority::kControl, [&] {
    const AdmissionDecision d =
        h.site.quote(make_task(9, 1.0, 5.0, 2, 100.0, 0.0));
    EXPECT_DOUBLE_EQ(d.expected_completion, 15.0);  // start 10, run 5
  });
  h.engine.run();
}

TEST(Gang, UnitGainNormalizedByWidth) {
  // Same value and runtime: the wider task consumes more resource, so
  // FirstPrice must prefer the narrow one.
  Harness h(4, PolicySpec::first_price(), false);
  h.site.inject(std::vector<Task>{
      make_task(9, 0.0, 5.0, 4, 1000.0, 0.0),  // blocker fills the site
      make_task(0, 0.0, 10.0, 4, 100.0, 0.0),
      make_task(1, 0.0, 10.0, 1, 100.0, 0.0),
  });
  h.engine.run();
  EXPECT_LT(h.record(1).first_start, h.record(0).first_start);
}

TEST(Gang, MixedWidthTraceDrainsAndConservesWork) {
  WorkloadSpec spec;
  spec.num_jobs = 500;
  spec.processors = 8;
  spec.load_factor = 1.2;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.width = DistSpec::uniform(1.0, 5.0);
  Xoshiro256 rng(11);
  const Trace trace = generate_trace(spec, rng);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 8;
  config.preemption = true;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(PolicySpec::first_reward(0.3)),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(trace.tasks);
  engine.run();
  EXPECT_TRUE(site.idle());
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.completed, 500u);
  // Work conservation with widths: busy integral equals sum of
  // width * runtime.
  double node_seconds = 0.0;
  for (const Task& t : trace.tasks)
    node_seconds += t.runtime * static_cast<double>(t.width);
  const double busy_integral =
      stats.utilization * 8.0 * (engine.now() - stats.first_arrival);
  EXPECT_NEAR(busy_integral, node_seconds, node_seconds * 1e-6);
}

TEST(Gang, GeneratorClampsWidths) {
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 4;
  spec.width = DistSpec::normal(3.0, 4.0);  // samples outside [1, 4]
  Xoshiro256 rng(3);
  for (const Task& t : generate_trace(spec, rng).tasks) {
    EXPECT_GE(t.width, 1u);
    EXPECT_LE(t.width, 4u);
  }
}

TEST(Gang, ValueScalesWithWidth) {
  WorkloadSpec spec;
  spec.num_jobs = 200;
  spec.processors = 8;
  spec.width = DistSpec::uniform(1.0, 8.0);
  spec.value_unit = {.p_high = 0.0, .skew = 1.0, .low_mean = 2.0, .cv = 0.0,
                     .floor = 1e-3};
  Xoshiro256 rng(5);
  for (const Task& t : generate_trace(spec, rng).tasks)
    EXPECT_NEAR(t.value.max_value(),
                2.0 * t.runtime * static_cast<double>(t.width), 1e-9);
}

}  // namespace
}  // namespace mbts
