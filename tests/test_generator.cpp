#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.num_jobs = 1000;
  spec.processors = 8;
  spec.load_factor = 1.0;
  spec.runtime = DistSpec::exponential(50.0);
  return spec;
}

TEST(Generator, ProducesRequestedJobCount) {
  WorkloadSpec spec = small_spec();
  Xoshiro256 rng(1);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_EQ(trace.size(), 1000u);
}

TEST(Generator, IdsSequentialFromFirstId) {
  WorkloadSpec spec = small_spec();
  spec.num_jobs = 10;
  spec.first_id = 500;
  Xoshiro256 rng(1);
  const Trace trace = generate_trace(spec, rng);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace.tasks[i].id, 500 + i);
}

TEST(Generator, ArrivalsSortedAndValid) {
  WorkloadSpec spec = small_spec();
  Xoshiro256 rng(2);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_TRUE(validate_trace(trace).empty());
}

TEST(Generator, DeterministicForSameSeed) {
  WorkloadSpec spec = small_spec();
  Xoshiro256 a(7), b(7);
  const Trace ta = generate_trace(spec, a);
  const Trace tb = generate_trace(spec, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.tasks[i].arrival, tb.tasks[i].arrival);
    EXPECT_EQ(ta.tasks[i].runtime, tb.tasks[i].runtime);
    EXPECT_EQ(ta.tasks[i].value, tb.tasks[i].value);
  }
}

TEST(Generator, DifferentReplicationsDiffer) {
  const WorkloadSpec spec = small_spec();
  const SeedSequence seeds(3);
  const Trace a = generate_trace(spec, seeds, 0);
  const Trace b = generate_trace(spec, seeds, 1);
  EXPECT_NE(a.tasks[0].arrival, b.tasks[0].arrival);
}

TEST(Generator, MeanGapFormula) {
  WorkloadSpec spec = small_spec();
  // 1 * 50 / (8 * 1.0)
  EXPECT_DOUBLE_EQ(spec.mean_gap(), 6.25);
  spec.load_factor = 2.0;
  EXPECT_DOUBLE_EQ(spec.mean_gap(), 3.125);
  spec.arrival_model = ArrivalModel::kNormalBatch;
  spec.batch_size = 16;
  EXPECT_DOUBLE_EQ(spec.mean_gap(), 16.0 * 50.0 / (8.0 * 2.0));
}

TEST(Generator, OfferedLoadApproximatesTarget) {
  for (double load : {0.5, 1.0, 2.0}) {
    WorkloadSpec spec = small_spec();
    spec.num_jobs = 20000;
    spec.load_factor = load;
    Xoshiro256 rng(11);
    const Trace trace = generate_trace(spec, rng);
    const TraceStats stats = compute_stats(trace, spec.processors);
    EXPECT_NEAR(stats.offered_load / load, 1.0, 0.06)
        << "load factor " << load;
  }
}

TEST(Generator, BatchArrivalsShareTimestamps) {
  WorkloadSpec spec = small_spec();
  spec.arrival_model = ArrivalModel::kNormalBatch;
  spec.batch_size = 16;
  spec.num_jobs = 160;
  Xoshiro256 rng(13);
  const Trace trace = generate_trace(spec, rng);
  for (std::size_t i = 0; i < trace.size(); i += 16) {
    for (std::size_t k = 1; k < 16; ++k)
      EXPECT_EQ(trace.tasks[i + k].arrival, trace.tasks[i].arrival);
  }
}

TEST(Generator, PartialLastBatch) {
  WorkloadSpec spec = small_spec();
  spec.arrival_model = ArrivalModel::kNormalBatch;
  spec.batch_size = 16;
  spec.num_jobs = 40;  // 16 + 16 + 8
  Xoshiro256 rng(17);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_EQ(trace.size(), 40u);
}

TEST(Generator, PenaltyModelsSetBounds) {
  WorkloadSpec spec = small_spec();
  spec.num_jobs = 50;

  spec.penalty = PenaltyModel::kBoundedAtZero;
  Xoshiro256 r1(19);
  for (const Task& t : generate_trace(spec, r1).tasks)
    EXPECT_EQ(t.value.penalty_bound(), 0.0);

  spec.penalty = PenaltyModel::kUnbounded;
  Xoshiro256 r2(19);
  for (const Task& t : generate_trace(spec, r2).tasks)
    EXPECT_FALSE(t.value.bounded());

  spec.penalty = PenaltyModel::kBoundedAtValue;
  spec.penalty_value_scale = 0.5;
  Xoshiro256 r3(19);
  for (const Task& t : generate_trace(spec, r3).tasks)
    EXPECT_NEAR(t.value.penalty_bound(), 0.5 * t.value.max_value(), 1e-9);
}

TEST(Generator, ValueProportionalToRuntime) {
  // With cv=0 and skew=1 the unit value is exactly 1, so value == runtime.
  WorkloadSpec spec = small_spec();
  spec.value_unit = {.p_high = 0.0, .skew = 1.0, .low_mean = 1.0, .cv = 0.0,
                     .floor = 1e-3};
  spec.num_jobs = 100;
  Xoshiro256 rng(23);
  for (const Task& t : generate_trace(spec, rng).tasks)
    EXPECT_NEAR(t.value.max_value(), t.runtime, 1e-9);
}

TEST(Generator, UniformDecayAppliesMixWideConstant) {
  WorkloadSpec spec = small_spec();
  spec.uniform_decay = true;
  spec.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = 0.1, .cv = 0.25,
                .floor = 1e-4};
  spec.num_jobs = 100;
  Xoshiro256 rng(29);
  const Trace trace = generate_trace(spec, rng);
  const double expected = spec.decay.mean();
  for (const Task& t : trace.tasks)
    EXPECT_DOUBLE_EQ(t.value.decay(), expected);
}

TEST(Generator, ValueSkewShiftsMeanUnitValue) {
  WorkloadSpec lo = small_spec(), hi = small_spec();
  lo.num_jobs = hi.num_jobs = 5000;
  lo.value_unit.skew = 1.0;
  hi.value_unit.skew = 9.0;
  Xoshiro256 r1(31), r2(31);
  const TraceStats slo = compute_stats(generate_trace(lo, r1), 8);
  const TraceStats shi = compute_stats(generate_trace(hi, r2), 8);
  EXPECT_GT(shi.total_value, 2.0 * slo.total_value);
}

TEST(Generator, InvalidSpecsThrow) {
  WorkloadSpec spec = small_spec();
  spec.num_jobs = 0;
  Xoshiro256 rng(1);
  EXPECT_THROW(generate_trace(spec, rng), CheckError);
  spec = small_spec();
  spec.load_factor = 0.0;
  EXPECT_THROW(spec.mean_gap(), CheckError);
}

TEST(Presets, MillenniumMixShape) {
  const WorkloadSpec spec = presets::millennium_mix(4.0, 320);
  EXPECT_EQ(spec.arrival_model, ArrivalModel::kNormalBatch);
  EXPECT_EQ(spec.batch_size, 16u);
  EXPECT_TRUE(spec.uniform_decay);
  EXPECT_EQ(spec.penalty, PenaltyModel::kBoundedAtZero);
  EXPECT_DOUBLE_EQ(spec.value_unit.skew, 4.0);
  Xoshiro256 rng(1);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_TRUE(validate_trace(trace).empty());
}

TEST(Presets, DecaySkewMixShape) {
  const WorkloadSpec spec =
      presets::decay_skew_mix(7.0, PenaltyModel::kUnbounded, 100);
  EXPECT_EQ(spec.arrival_model, ArrivalModel::kPoisson);
  EXPECT_FALSE(spec.uniform_decay);
  EXPECT_DOUBLE_EQ(spec.decay.skew, 7.0);
  EXPECT_DOUBLE_EQ(spec.value_unit.skew, 2.0);
  EXPECT_EQ(spec.penalty, PenaltyModel::kUnbounded);
}

TEST(Presets, AdmissionMixShape) {
  const WorkloadSpec spec = presets::admission_mix(2.5, 100);
  EXPECT_DOUBLE_EQ(spec.load_factor, 2.5);
  EXPECT_DOUBLE_EQ(spec.value_unit.skew, 3.0);
  EXPECT_DOUBLE_EQ(spec.decay.skew, 5.0);
  EXPECT_EQ(spec.penalty, PenaltyModel::kUnbounded);
}

}  // namespace
}  // namespace mbts
