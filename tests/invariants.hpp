// Cross-cutting run invariants shared by the property tests and the
// differential harness (tests/differential, tools/diff_fuzz).
//
// Every check returns "" when the invariant holds and a human-readable
// diagnostic otherwise, so tests can write EXPECT_EQ("", check_...(...))
// and get the violation in the failure message.
#pragma once

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "market/market.hpp"

namespace mbts::invariants {

/// Mix-count consistency: the scheduler's live queues must agree with its
/// own records — every kPending/kRunning record corresponds to exactly one
/// queued or running task.
inline std::string check_mix_counts(const SiteScheduler& site) {
  std::size_t live = 0;
  for (const TaskRecord& record : site.records()) {
    if (record.outcome == TaskOutcome::kPending ||
        record.outcome == TaskOutcome::kRunning)
      ++live;
  }
  const std::size_t queued = site.pending_count() + site.running_count();
  if (live != queued) {
    std::ostringstream os;
    os << "mix count mismatch: " << live
       << " live records (pending/running) but " << queued
       << " tasks in the scheduler's queues";
    return os.str();
  }
  return "";
}

/// Outcome exclusivity across (possibly multi-site) records of one run: a
/// task id completes at most once, and completion is terminal — no record
/// of the same id finishes after its completion. A breach (kFailed) before
/// a re-bid completion elsewhere is legal; the reverse is not.
template <typename Records>
inline std::string check_outcome_exclusivity(const Records& records) {
  std::map<TaskId, std::size_t> completed_count;
  std::map<TaskId, double> completed_at;
  for (const TaskRecord& record : records) {
    if (record.outcome == TaskOutcome::kCompleted) {
      ++completed_count[record.task.id];
      completed_at[record.task.id] = record.completion;
    }
  }
  for (const auto& [id, count] : completed_count) {
    if (count > 1) {
      std::ostringstream os;
      os << "task " << id << " completed " << count << " times";
      return os.str();
    }
  }
  for (const TaskRecord& record : records) {
    if (record.outcome != TaskOutcome::kFailed &&
        record.outcome != TaskOutcome::kDropped)
      continue;
    const auto it = completed_at.find(record.task.id);
    if (it != completed_at.end() && record.completion > it->second) {
      std::ostringstream os;
      os << "task " << record.task.id
         << " finished (outcome " << static_cast<int>(record.outcome)
         << ") at " << record.completion
         << " after already completing at " << it->second;
      return os.str();
    }
  }
  return "";
}

/// Schedule feasibility over one site's records: started tasks start no
/// earlier than submission and finish no earlier than they start. When
/// `continuous_service` is set (non-preemptive, crash-free runs) completed
/// tasks occupy [first_start, completion) and the width-weighted overlap
/// must never exceed capacity.
template <typename Records>
inline std::string check_schedule_feasibility(const Records& records,
                                              std::size_t processors,
                                              bool continuous_service) {
  std::vector<std::pair<double, long long>> deltas;
  for (const TaskRecord& record : records) {
    if (record.first_start < 0.0) continue;
    if (record.first_start + 1e-9 < record.submitted_at) {
      std::ostringstream os;
      os << "task " << record.task.id << " started at " << record.first_start
         << " before its submission at " << record.submitted_at;
      return os.str();
    }
    if (record.completion >= 0.0 && record.completion < record.first_start) {
      std::ostringstream os;
      os << "task " << record.task.id << " completed at " << record.completion
         << " before it started at " << record.first_start;
      return os.str();
    }
    if (continuous_service && record.outcome == TaskOutcome::kCompleted) {
      deltas.emplace_back(record.first_start,
                          static_cast<long long>(record.task.width));
      deltas.emplace_back(record.completion,
                          -static_cast<long long>(record.task.width));
    }
  }
  std::sort(deltas.begin(), deltas.end());
  long long busy = 0;
  for (const auto& [at, delta] : deltas) {
    busy += delta;
    if (busy > static_cast<long long>(processors)) {
      std::ostringstream os;
      os << "capacity exceeded: " << busy << " processors busy at t=" << at
         << " with only " << processors << " available";
      return os.str();
    }
  }
  return "";
}

/// Double-entry money conservation after a drained, settled market run:
/// no contract settles above its agreed price, site revenue re-adds from
/// its contract book, the economy-wide totals re-add from the sites, and
/// every constrained client's ledger spending equals the agreed prices of
/// its surviving (non-breached) contracts.
inline std::string check_money_conservation(const Market& market,
                                            const MarketStats& stats) {
  double total_revenue = 0.0;
  for (std::size_t s = 0; s < market.sites().size(); ++s) {
    const SiteAgent& site = *market.sites()[s];
    double site_revenue = 0.0;
    for (const Contract& contract : site.contracts()) {
      if (contract.settled && !contract.breached &&
          contract.settled_price > contract.agreed_price + 1e-9) {
        std::ostringstream os;
        os << "site " << s << " task " << contract.task
           << " settled at " << contract.settled_price
           << ", above its agreed price " << contract.agreed_price;
        return os.str();
      }
      if (contract.settled) site_revenue += contract.settled_price;
    }
    if (s < stats.site_revenue.size() &&
        std::fabs(site_revenue - stats.site_revenue[s]) >
            1e-6 * std::max(1.0, std::fabs(site_revenue))) {
      std::ostringstream os;
      os.precision(17);
      os << "site " << s << " revenue " << stats.site_revenue[s]
         << " does not re-add from its contract book (" << site_revenue << ")";
      return os.str();
    }
    total_revenue += site_revenue;
  }
  if (std::fabs(total_revenue - stats.total_revenue) >
      1e-6 * std::max(1.0, std::fabs(total_revenue))) {
    std::ostringstream os;
    os.precision(17);
    os << "total revenue " << stats.total_revenue
       << " does not re-add from the sites (" << total_revenue << ")";
    return os.str();
  }

  std::set<ClientId> clients;
  for (const auto& site : market.sites())
    for (const Contract& contract : site->contracts())
      clients.insert(contract.client);
  for (ClientId client : clients) {
    if (!market.ledger().is_constrained(client)) continue;
    double surviving = 0.0;
    for (const auto& site : market.sites())
      for (const Contract& contract : site->contracts())
        if (contract.client == client && !contract.breached)
          surviving += contract.agreed_price;
    const double spent = market.ledger().total_spent(client);
    if (std::fabs(spent - surviving) >
        1e-6 * std::max(1.0, std::fabs(surviving))) {
      std::ostringstream os;
      os.precision(17);
      os << "client " << client << " ledger spent " << spent
         << " but its surviving contracts total " << surviving;
      return os.str();
    }
  }
  return "";
}

}  // namespace mbts::invariants
