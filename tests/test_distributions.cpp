#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

constexpr int kSamples = 50000;

Summary sample_many(const Sampler& sampler, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  Summary s;
  for (int i = 0; i < kSamples; ++i) s.add(sampler.sample(rng));
  return s;
}

TEST(DistSpec, ConstantAlwaysSame) {
  const Sampler s(DistSpec::constant(42.0));
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 42.0);
  EXPECT_EQ(DistSpec::constant(42.0).mean(), 42.0);
}

TEST(DistSpec, UniformBoundsAndMean) {
  const Sampler s(DistSpec::uniform(2.0, 6.0));
  const Summary sum = sample_many(s);
  EXPECT_GE(sum.min(), 2.0);
  EXPECT_LT(sum.max(), 6.0);
  EXPECT_NEAR(sum.mean(), 4.0, 0.05);
  EXPECT_EQ(DistSpec::uniform(2.0, 6.0).mean(), 4.0);
}

TEST(DistSpec, ExponentialMeanMatches) {
  const Sampler s(DistSpec::exponential(100.0));
  const Summary sum = sample_many(s);
  EXPECT_NEAR(sum.mean(), 100.0, 2.0);
  // Exponential: stddev == mean.
  EXPECT_NEAR(sum.stddev(), 100.0, 3.0);
}

TEST(DistSpec, ExponentialStrictlyPositive) {
  const Sampler s(DistSpec::exponential(1.0));
  const Summary sum = sample_many(s);
  EXPECT_GT(sum.min(), 0.0);
}

TEST(DistSpec, NormalMomentsMatch) {
  DistSpec spec = DistSpec::normal(50.0, 5.0);
  spec.floor = -1e9;  // effectively untruncated
  const Summary sum = sample_many(Sampler(spec));
  EXPECT_NEAR(sum.mean(), 50.0, 0.2);
  EXPECT_NEAR(sum.stddev(), 5.0, 0.2);
}

TEST(DistSpec, NormalTruncationRespectsFloor) {
  DistSpec spec = DistSpec::normal(1.0, 2.0);
  spec.floor = 0.5;
  const Summary sum = sample_many(Sampler(spec));
  EXPECT_GE(sum.min(), 0.5);
}

TEST(DistSpec, LogNormalMeanFormula) {
  const DistSpec spec = DistSpec::lognormal(2.0, 0.5);
  const Summary sum = sample_many(Sampler(spec));
  EXPECT_NEAR(sum.mean() / spec.mean(), 1.0, 0.05);
  EXPECT_GT(sum.min(), 0.0);
}

TEST(DistSpec, PathologicalFloorClampsInsteadOfHanging) {
  DistSpec spec = DistSpec::normal(-100.0, 0.1);
  spec.floor = 1.0;  // unreachable by sampling
  Xoshiro256 rng(4);
  const Sampler s(spec);
  EXPECT_EQ(s.sample(rng), 1.0);
}

TEST(DistSpec, InvalidSpecsThrow) {
  EXPECT_THROW(DistSpec::uniform(5.0, 5.0), CheckError);
  EXPECT_THROW(DistSpec::exponential(0.0), CheckError);
  EXPECT_THROW(DistSpec::normal(0.0, -1.0), CheckError);
  EXPECT_THROW(DistSpec::lognormal(0.0, -0.1), CheckError);
}

TEST(DistSpec, ToStringNamesKind) {
  EXPECT_NE(DistSpec::exponential(3.0).to_string().find("exp"),
            std::string::npos);
  EXPECT_NE(DistSpec::normal(1.0, 2.0).to_string().find("normal"),
            std::string::npos);
}

TEST(Bimodal, ClassProportionsMatchPHigh) {
  const BimodalSpec spec{.p_high = 0.2, .skew = 4.0, .low_mean = 1.0,
                         .cv = 0.1, .floor = 1e-3};
  const BimodalSampler sampler(spec);
  Xoshiro256 rng(6);
  int high = 0;
  for (int i = 0; i < kSamples; ++i) {
    bool is_high = false;
    sampler.sample(rng, &is_high);
    if (is_high) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kSamples, 0.2, 0.01);
}

TEST(Bimodal, PopulationMeanMatchesFormula) {
  const BimodalSpec spec{.p_high = 0.2, .skew = 4.0, .low_mean = 1.0,
                         .cv = 0.1, .floor = 1e-3};
  EXPECT_DOUBLE_EQ(spec.mean(), 0.8 + 0.2 * 4.0);
  const BimodalSampler sampler(spec);
  Xoshiro256 rng(8);
  Summary s;
  for (int i = 0; i < kSamples; ++i) s.add(sampler.sample(rng));
  EXPECT_NEAR(s.mean(), spec.mean(), 0.03);
}

TEST(Bimodal, SkewOneCollapsesClasses) {
  const BimodalSpec spec{.p_high = 0.2, .skew = 1.0, .low_mean = 2.0,
                         .cv = 0.0, .floor = 1e-3};
  const BimodalSampler sampler(spec);
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(sampler.sample(rng), 2.0);
}

TEST(Bimodal, HighClassMeanScalesWithSkew) {
  const BimodalSpec spec{.p_high = 1.0, .skew = 5.0, .low_mean = 2.0,
                         .cv = 0.05, .floor = 1e-3};
  const BimodalSampler sampler(spec);
  Xoshiro256 rng(12);
  Summary s;
  for (int i = 0; i < kSamples; ++i) s.add(sampler.sample(rng));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
}

TEST(Bimodal, InvalidSpecsThrow) {
  EXPECT_THROW(BimodalSampler({.p_high = -0.1, .skew = 2.0, .low_mean = 1.0,
                               .cv = 0.1, .floor = 1e-3}),
               CheckError);
  EXPECT_THROW(BimodalSampler({.p_high = 0.2, .skew = 0.5, .low_mean = 1.0,
                               .cv = 0.1, .floor = 1e-3}),
               CheckError);
  EXPECT_THROW(BimodalSampler({.p_high = 0.2, .skew = 2.0, .low_mean = 0.0,
                               .cv = 0.1, .floor = 1e-3}),
               CheckError);
}

}  // namespace
}  // namespace mbts
