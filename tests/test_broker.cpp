#include "market/broker.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

Quote make_quote(SiteId site, bool accepted, double completion,
                 double price) {
  Quote q;
  q.site = site;
  q.accepted = accepted;
  q.expected_completion = completion;
  q.expected_price = price;
  return q;
}

TEST(SelectQuote, NoAcceptedReturnsNothing) {
  Xoshiro256 rng(1);
  const std::vector<Quote> quotes{make_quote(0, false, 10.0, 100.0),
                                  make_quote(1, false, 5.0, 200.0)};
  EXPECT_FALSE(select_quote(quotes, ClientStrategy::kMaxExpectedValue, rng)
                   .has_value());
}

TEST(SelectQuote, MaxValuePicksHighestPrice) {
  Xoshiro256 rng(1);
  const std::vector<Quote> quotes{make_quote(0, true, 10.0, 100.0),
                                  make_quote(1, true, 50.0, 300.0),
                                  make_quote(2, true, 5.0, 200.0)};
  const auto pick =
      select_quote(quotes, ClientStrategy::kMaxExpectedValue, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(SelectQuote, EarliestPicksSoonestCompletion) {
  Xoshiro256 rng(1);
  const std::vector<Quote> quotes{make_quote(0, true, 10.0, 100.0),
                                  make_quote(1, true, 50.0, 300.0),
                                  make_quote(2, true, 5.0, 200.0)};
  const auto pick =
      select_quote(quotes, ClientStrategy::kEarliestCompletion, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(SelectQuote, SkipsRejectedQuotes) {
  Xoshiro256 rng(1);
  const std::vector<Quote> quotes{make_quote(0, false, 1.0, 9999.0),
                                  make_quote(1, true, 50.0, 10.0)};
  const auto pick =
      select_quote(quotes, ClientStrategy::kMaxExpectedValue, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(SelectQuote, RandomOnlyPicksAccepted) {
  Xoshiro256 rng(7);
  const std::vector<Quote> quotes{make_quote(0, false, 1.0, 1.0),
                                  make_quote(1, true, 1.0, 1.0),
                                  make_quote(2, false, 1.0, 1.0),
                                  make_quote(3, true, 1.0, 1.0)};
  for (int i = 0; i < 100; ++i) {
    const auto pick = select_quote(quotes, ClientStrategy::kRandom, rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(*pick == 1u || *pick == 3u);
  }
}

TEST(SelectQuote, RandomCoversAllAccepted) {
  Xoshiro256 rng(11);
  const std::vector<Quote> quotes{make_quote(0, true, 1.0, 1.0),
                                  make_quote(1, true, 1.0, 1.0),
                                  make_quote(2, true, 1.0, 1.0)};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(*select_quote(quotes, ClientStrategy::kRandom, rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ClientStrategy, Names) {
  EXPECT_EQ(to_string(ClientStrategy::kMaxExpectedValue),
            "max-expected-value");
  EXPECT_EQ(to_string(ClientStrategy::kEarliestCompletion),
            "earliest-completion");
  EXPECT_EQ(to_string(ClientStrategy::kRandom), "random");
}

}  // namespace
}  // namespace mbts
