#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/check.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace mbts {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.description = "hand-built";
  Task a;
  a.id = 0;
  a.arrival = 0.0;
  a.runtime = 10.0;
  a.value = ValueFunction::bounded_at_zero(100.0, 0.5);
  Task b;
  b.id = 1;
  b.arrival = 5.0;
  b.runtime = 20.0;
  b.value = ValueFunction::unbounded(50.0, 1.5);
  Task c;
  c.id = 2;
  c.arrival = 5.0;
  c.runtime = 1.0;
  c.value = ValueFunction(30.0, 0.25, 12.5);
  trace.tasks = {a, b, c};
  return trace;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const std::string path = testing::TempDir() + "mbts_trace_roundtrip.csv";
  const Trace original = sample_trace();
  save_trace_csv(original, path);
  const Trace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.tasks[i].id, original.tasks[i].id);
    EXPECT_EQ(loaded.tasks[i].arrival, original.tasks[i].arrival);
    EXPECT_EQ(loaded.tasks[i].runtime, original.tasks[i].runtime);
    EXPECT_EQ(loaded.tasks[i].value, original.tasks[i].value);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, UnboundedSerializesAsInf) {
  const std::string path = testing::TempDir() + "mbts_trace_inf.csv";
  save_trace_csv(sample_trace(), path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find(",inf"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIo, GeneratedTraceRoundTrips) {
  const std::string path = testing::TempDir() + "mbts_trace_gen.csv";
  WorkloadSpec spec;
  spec.num_jobs = 200;
  Xoshiro256 rng(5);
  const Trace original = generate_trace(spec, rng);
  save_trace_csv(original, path);
  const Trace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); i += 17) {
    EXPECT_DOUBLE_EQ(loaded.tasks[i].arrival, original.tasks[i].arrival);
    EXPECT_DOUBLE_EQ(loaded.tasks[i].value.decay(),
                     original.tasks[i].value.decay());
  }
  std::remove(path.c_str());
}

TEST(TraceStats, ComputesAggregates) {
  const Trace trace = sample_trace();
  const TraceStats stats = compute_stats(trace, 2);
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_DOUBLE_EQ(stats.span, 5.0);
  EXPECT_DOUBLE_EQ(stats.total_work, 31.0);
  EXPECT_DOUBLE_EQ(stats.total_value, 180.0);
  EXPECT_DOUBLE_EQ(stats.mean_runtime, 31.0 / 3.0);
  // offered load: 31 work over span 5 with 2 processors.
  EXPECT_DOUBLE_EQ(stats.offered_load, 31.0 / 10.0);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats stats = compute_stats(Trace{}, 4);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.offered_load, 0.0);
}

TEST(TraceValidate, DetectsUnsortedArrivals) {
  Trace trace = sample_trace();
  std::swap(trace.tasks[0], trace.tasks[1]);
  EXPECT_FALSE(validate_trace(trace).empty());
}

TEST(TraceValidate, DetectsBadTask) {
  Trace trace = sample_trace();
  trace.tasks[1].runtime = -3.0;
  EXPECT_FALSE(validate_trace(trace).empty());
}

TEST(TraceIo, LoadRejectsInvalidTrace) {
  const std::string path = testing::TempDir() + "mbts_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "id,arrival,runtime,value,decay,bound\n";
    out << "0,10,5,100,1,0\n";
    out << "1,5,5,100,1,0\n";  // arrival goes backwards
  }
  EXPECT_THROW(load_trace_csv(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbts
