#include "market/market.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

SiteAgentConfig site_config(SiteId id, std::size_t procs, double threshold,
                            bool admission = true) {
  SiteAgentConfig config;
  config.id = id;
  config.name = "site" + std::to_string(id);
  config.scheduler.processors = procs;
  config.scheduler.discount_rate = 0.01;
  config.policy = PolicySpec::first_reward(0.3);
  config.use_slack_admission = admission;
  config.admission.threshold = threshold;
  return config;
}

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

TEST(SiteAgent, QuoteMatchesSchedulerProjection) {
  SimEngine engine;
  SiteAgent agent(engine, site_config(3, 2, 0.0));
  Bid bid{7, make_task(1, 0.0, 10.0, 100.0, 0.5)};
  const Quote quote = agent.quote(bid);
  EXPECT_EQ(quote.site, 3u);
  EXPECT_TRUE(quote.accepted);
  EXPECT_EQ(quote.expected_completion, 10.0);
  EXPECT_EQ(quote.expected_price, 100.0);
  // Quoting does not commit.
  EXPECT_TRUE(agent.scheduler().idle());
}

TEST(SiteAgent, AwardFormsContract) {
  SimEngine engine;
  SiteAgent agent(engine, site_config(0, 2, 0.0));
  Bid bid{7, make_task(1, 0.0, 10.0, 100.0, 0.5)};
  const Quote quote = agent.quote(bid);
  ASSERT_TRUE(agent.award(bid, quote));
  ASSERT_EQ(agent.contracts().size(), 1u);
  const Contract& contract = agent.contracts()[0];
  EXPECT_EQ(contract.task, 1u);
  EXPECT_EQ(contract.client, 7u);
  EXPECT_EQ(contract.agreed_completion, 10.0);
  EXPECT_EQ(contract.agreed_price, 100.0);
  EXPECT_FALSE(contract.settled);
}

TEST(SiteAgent, SettleFillsActuals) {
  SimEngine engine;
  SiteAgent agent(engine, site_config(0, 1, -1e9));
  // Two tasks: the second is delayed behind the first.
  Bid b1{1, make_task(1, 0.0, 10.0, 100.0, 0.5)};
  Bid b2{1, make_task(2, 0.0, 10.0, 100.0, 0.5)};
  agent.award(b1, agent.quote(b1));
  agent.award(b2, agent.quote(b2));
  engine.run();
  agent.settle();
  ASSERT_EQ(agent.contracts().size(), 2u);
  const Contract& late = agent.contracts()[1];
  EXPECT_TRUE(late.settled);
  EXPECT_EQ(late.actual_completion, 20.0);
  EXPECT_DOUBLE_EQ(late.settled_price, 95.0);
  EXPECT_DOUBLE_EQ(agent.revenue(), 195.0);
}

TEST(SiteAgent, ContractViolationDetected) {
  SimEngine engine;
  SiteAgent agent(engine, site_config(0, 1, -1e9));
  Bid b1{1, make_task(1, 0.0, 10.0, 100.0, 0.5)};
  agent.award(b1, agent.quote(b1));
  // A far more valuable later bid preempts and delays task 1.
  engine.schedule_at(2.0, EventPriority::kArrival, [&] {
    Bid b2{1, make_task(2, 2.0, 10.0, 100000.0, 0.5)};
    agent.award(b2, agent.quote(b2));
  });
  engine.run();
  agent.settle();
  const Contract& first = agent.contracts()[0];
  EXPECT_TRUE(first.settled);
  EXPECT_TRUE(first.violated());
  EXPECT_GT(first.shortfall(), 0.0);
}

TEST(Market, SingleSiteRunsAllAccepted) {
  MarketConfig config;
  config.sites.push_back(site_config(0, 4, -1e12));
  Market market(config);
  WorkloadSpec spec = presets::admission_mix(0.8, 200);
  spec.processors = 4;
  Xoshiro256 rng(3);
  market.inject(generate_trace(spec, rng));
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.bids, 200u);
  EXPECT_EQ(stats.awarded, 200u);
  EXPECT_EQ(stats.rejected_everywhere, 0u);
  EXPECT_EQ(stats.site_stats[0].completed, 200u);
  EXPECT_DOUBLE_EQ(stats.total_revenue, stats.site_revenue[0]);
}

TEST(Market, LoadSpreadsAcrossSites) {
  MarketConfig config;
  config.sites.push_back(site_config(0, 4, 0.0));
  config.sites.push_back(site_config(1, 4, 0.0));
  config.sites.push_back(site_config(2, 4, 0.0));
  Market market(config);
  WorkloadSpec spec = presets::admission_mix(1.0, 600);
  spec.processors = 12;  // market-wide capacity
  Xoshiro256 rng(5);
  market.inject(generate_trace(spec, rng));
  const MarketStats stats = market.run();
  // Every site should have won a meaningful share of contracts.
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_GT(market.sites()[i]->contracts().size(), 50u) << "site " << i;
}

TEST(Market, StrictSitesRejectEverywhere) {
  MarketConfig config;
  config.sites.push_back(site_config(0, 2, 1e12));
  config.sites.push_back(site_config(1, 2, 1e12));
  Market market(config);
  Trace trace;
  trace.tasks = {make_task(0, 0.0, 10.0, 100.0, 0.5)};
  market.inject(trace);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 0u);
  EXPECT_EQ(stats.rejected_everywhere, 1u);
  EXPECT_EQ(stats.total_revenue, 0.0);
}

TEST(Market, RevenueNeverExceedsAgreedOnDelays) {
  MarketConfig config;
  config.sites.push_back(site_config(0, 2, -1e12));
  Market market(config);
  WorkloadSpec spec = presets::admission_mix(2.0, 300);
  spec.processors = 2;
  Xoshiro256 rng(7);
  market.inject(generate_trace(spec, rng));
  const MarketStats stats = market.run();
  // Overloaded with unbounded penalties: settled < agreed.
  EXPECT_LT(stats.total_revenue, stats.total_agreed);
  EXPECT_GT(stats.violated_contracts, 0u);
}

TEST(Market, NeedsAtLeastOneSite) {
  EXPECT_THROW(Market(MarketConfig{}), CheckError);
}

}  // namespace
}  // namespace mbts
