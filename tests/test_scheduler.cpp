#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

struct Harness {
  SimEngine engine;
  SiteScheduler site;

  explicit Harness(SchedulerConfig config,
                   PolicySpec policy = PolicySpec::fcfs(),
                   std::unique_ptr<AdmissionPolicy> admission = nullptr)
      : site(engine, config, make_policy(policy),
             admission ? std::move(admission)
                       : std::make_unique<AcceptAllAdmission>()) {}

  const TaskRecord& record(TaskId id) const {
    for (const TaskRecord& r : site.records())
      if (r.task.id == id) return r;
    throw std::runtime_error("no record");
  }
};

SchedulerConfig config(std::size_t processors, bool preemption = true) {
  SchedulerConfig c;
  c.processors = processors;
  c.preemption = preemption;
  return c;
}

TEST(Scheduler, SingleTaskRunsToCompletion) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 100.0, 1.0)});
  h.engine.run();
  EXPECT_TRUE(h.site.idle());
  const TaskRecord& r = h.record(0);
  EXPECT_EQ(r.outcome, TaskOutcome::kCompleted);
  EXPECT_EQ(r.first_start, 0.0);
  EXPECT_EQ(r.completion, 10.0);
  EXPECT_EQ(r.realized_yield, 100.0);
}

TEST(Scheduler, FcfsRunsInArrivalOrderOnOneProcessor) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 10.0, 0.0),
      make_task(1, 1.0, 10.0, 999.0, 0.0),
      make_task(2, 2.0, 10.0, 5.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(0).completion, 10.0);
  EXPECT_EQ(h.record(1).completion, 20.0);
  EXPECT_EQ(h.record(2).completion, 30.0);
}

TEST(Scheduler, CapacityBoundsConcurrency) {
  Harness h(config(2));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 1.0, 0.0),
      make_task(1, 0.0, 10.0, 1.0, 0.0),
      make_task(2, 0.0, 10.0, 1.0, 0.0),
  });
  h.engine.run();
  // Two run immediately; the third waits for a free processor.
  EXPECT_EQ(h.record(0).completion, 10.0);
  EXPECT_EQ(h.record(1).completion, 10.0);
  EXPECT_EQ(h.record(2).completion, 20.0);
}

TEST(Scheduler, YieldReflectsQueueingDelay) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 100.0, 1.0),
      make_task(1, 0.0, 10.0, 100.0, 2.0),
  });
  h.engine.run();
  // Task 1 waits 10 units: yield = 100 - 2*10.
  EXPECT_EQ(h.record(0).realized_yield, 100.0);
  EXPECT_EQ(h.record(1).realized_yield, 80.0);
}

TEST(Scheduler, UnboundedPenaltyGoesNegative) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1000.0, 0.0),
      make_task(1, 0.0, 10.0, 5.0, 1.0, kInf),
  });
  h.engine.run();
  // Task 1 completes at 110 with delay 100: yield 5 - 100 = -95.
  EXPECT_EQ(h.record(1).realized_yield, -95.0);
}

TEST(Scheduler, BoundedPenaltyFloors) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1000.0, 0.0),
      make_task(1, 0.0, 10.0, 5.0, 1.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(1).realized_yield, 0.0);
}

TEST(Scheduler, PreemptionDisplacesLowerPriority) {
  // FirstPrice: the late, far more valuable task preempts.
  Harness h(config(1), PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 100.0, 0.0),
      make_task(1, 10.0, 10.0, 10000.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(1).completion, 20.0);  // runs immediately on arrival
  EXPECT_EQ(h.record(0).completion, 110.0); // resumes, loses no work
  EXPECT_EQ(h.record(0).preemptions, 1);
  EXPECT_EQ(h.site.stats().preemptions, 1u);
}

TEST(Scheduler, NoPreemptionWhenDisabled) {
  Harness h(config(1, /*preemption=*/false), PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 100.0, 0.0),
      make_task(1, 10.0, 10.0, 10000.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(0).completion, 100.0);
  EXPECT_EQ(h.record(1).completion, 110.0);
  EXPECT_EQ(h.site.stats().preemptions, 0u);
}

TEST(Scheduler, EqualPriorityDoesNotPreempt) {
  Harness h(config(1), PolicySpec::first_price());
  // Identical unit gain and no decay: the newcomer must wait.
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 100.0, 0.0),
      make_task(1, 5.0, 10.0, 100.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(0).preemptions, 0);
  EXPECT_EQ(h.record(0).completion, 10.0);
}

TEST(Scheduler, PreemptedWorkIsConserved) {
  Harness h(config(1), PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 50.0, 50.0, 0.0),
      make_task(1, 20.0, 10.0, 10000.0, 0.0),
  });
  h.engine.run();
  // Task 0 ran 20 units, was preempted 10, then finished the remaining 30.
  EXPECT_EQ(h.record(0).completion, 60.0);
}

TEST(Scheduler, RejectedTaskNeverRuns) {
  // Slack admission with an impossible threshold rejects everything.
  Harness h(config(1), PolicySpec::first_price(),
            std::make_unique<SlackAdmission>(
                SlackAdmissionConfig{.threshold = 1e12}));
  h.site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 100.0, 1.0)});
  h.engine.run();
  const TaskRecord& r = h.record(0);
  EXPECT_EQ(r.outcome, TaskOutcome::kRejected);
  EXPECT_EQ(r.first_start, -1.0);
  EXPECT_EQ(r.realized_yield, 0.0);
  const RunStats stats = h.site.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.total_yield, 0.0);
}

TEST(Scheduler, QuoteDoesNotCommit) {
  Harness h(config(1));
  const AdmissionDecision d =
      h.site.quote(make_task(0, 0.0, 10.0, 100.0, 1.0));
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.expected_completion, 10.0);
  EXPECT_TRUE(h.site.idle());
  EXPECT_TRUE(h.site.records().empty());
}

TEST(Scheduler, QuoteReflectsQueueState) {
  Harness h(config(1));
  h.site.submit(make_task(0, 0.0, 25.0, 100.0, 0.0));
  const AdmissionDecision d =
      h.site.quote(make_task(1, 0.0, 10.0, 100.0, 0.0));
  EXPECT_EQ(d.expected_completion, 35.0);
}

TEST(Scheduler, DuplicateIdThrows) {
  Harness h(config(1));
  h.site.submit(make_task(0, 0.0, 10.0, 100.0, 1.0));
  EXPECT_THROW(h.site.submit(make_task(0, 0.0, 5.0, 10.0, 1.0)), CheckError);
}

TEST(Scheduler, InvalidTaskThrows) {
  Harness h(config(1));
  Task bad = make_task(0, 0.0, -1.0, 100.0, 1.0);
  EXPECT_THROW(h.site.submit(bad), CheckError);
}

TEST(Scheduler, StatsAggregateCorrectly) {
  Harness h(config(1));
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 100.0, 1.0),
      make_task(1, 5.0, 10.0, 100.0, 1.0),
  });
  h.engine.run();
  const RunStats stats = h.site.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  // Task 1 completes at 20, earliest possible 15: delay 5, yield 95.
  EXPECT_DOUBLE_EQ(stats.total_yield, 195.0);
  EXPECT_EQ(stats.first_arrival, 0.0);
  EXPECT_EQ(stats.last_completion, 20.0);
  EXPECT_DOUBLE_EQ(stats.yield_rate, 195.0 / 20.0);
  EXPECT_DOUBLE_EQ(stats.delay.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.utilization, 1.0);
}

TEST(Scheduler, DropExpiredDiscardsAtFloor) {
  SchedulerConfig c = config(1);
  c.drop_expired = true;
  Harness h(c, PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1000.0, 0.0),
      // Expires at t = 10 + 5 = 15 (value 10, decay 2, bound 0), long
      // before the first task finishes.
      make_task(1, 0.0, 10.0, 10.0, 2.0, 0.0),
  });
  h.engine.run();
  const TaskRecord& r = h.record(1);
  EXPECT_EQ(r.outcome, TaskOutcome::kDropped);
  EXPECT_EQ(r.realized_yield, 0.0);
  const RunStats stats = h.site.stats();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(Scheduler, WithoutDropExpiredEverythingCompletes) {
  Harness h(config(1), PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1000.0, 0.0),
      make_task(1, 0.0, 10.0, 10.0, 2.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(1).outcome, TaskOutcome::kCompleted);
  EXPECT_EQ(h.site.stats().completed, 2u);
}

TEST(Scheduler, QuotedCompletionRecordedAtSubmit) {
  Harness h(config(1));
  h.site.submit(make_task(0, 0.0, 25.0, 100.0, 0.0));
  h.site.submit(make_task(1, 0.0, 10.0, 100.0, 0.5));
  const TaskRecord& r = h.record(1);
  EXPECT_EQ(r.quoted_completion, 35.0);
  EXPECT_DOUBLE_EQ(r.quoted_yield, 100.0 - 0.5 * 25.0);
}

TEST(Scheduler, SrptPreemptsForShorterWork) {
  Harness h(config(1), PolicySpec::srpt());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 1.0, 0.0),
      make_task(1, 10.0, 5.0, 1.0, 0.0),
  });
  h.engine.run();
  EXPECT_EQ(h.record(1).completion, 15.0);
  EXPECT_EQ(h.record(0).completion, 105.0);
}

TEST(Scheduler, ManyTasksDrainCompletely) {
  Harness h(config(4), PolicySpec::first_price());
  std::vector<Task> tasks;
  for (TaskId i = 0; i < 200; ++i)
    tasks.push_back(make_task(i, static_cast<double>(i), 7.0,
                              100.0 + static_cast<double>(i % 13), 0.3));
  h.site.inject(tasks);
  h.engine.run();
  EXPECT_TRUE(h.site.idle());
  EXPECT_EQ(h.site.stats().completed, 200u);
  // Work conservation: total busy time equals total runtime.
  const RunStats stats = h.site.stats();
  EXPECT_GT(stats.utilization, 0.0);
}

TEST(Scheduler, ZeroDiscountRateRequired) {
  SchedulerConfig c = config(1);
  c.discount_rate = -0.5;
  SimEngine engine;
  EXPECT_THROW(SiteScheduler(engine, c, make_policy(PolicySpec::fcfs()),
                             std::make_unique<AcceptAllAdmission>()),
               CheckError);
}

}  // namespace
}  // namespace mbts
