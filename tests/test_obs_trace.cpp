// TraceRecorder: ring semantics, binary round-trip and byte identity,
// JSONL stability, and the engine tap adapter.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/engine_tap.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

TraceEvent make_event(double t, TraceEventKind kind, SiteId site, TaskId task,
                      double a = 0.0, double b = 0.0) {
  return TraceEvent{t, kind, site, task, a, b};
}

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder rec;
  rec.record(1.0, TraceEventKind::kSubmit, 0, 10, 1.0);
  rec.record(2.0, TraceEventKind::kStart, 0, 10);
  rec.record(3.0, TraceEventKind::kComplete, 0, 10, 42.0, 0.5);
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.at(0).kind, TraceEventKind::kSubmit);
  EXPECT_EQ(rec.at(2).kind, TraceEventKind::kComplete);
  EXPECT_EQ(rec.at(2).a, 42.0);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder rec(TraceConfig{4});
  for (int i = 0; i < 10; ++i)
    rec.record(static_cast<double>(i), TraceEventKind::kDispatch, 0,
               kInvalidTask, static_cast<double>(i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Oldest-first iteration yields the last four events in order.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(rec.at(i).t, static_cast<double>(6 + i));
  EXPECT_THROW(rec.at(4), CheckError);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(TraceConfig{2});
  rec.record(1.0, TraceEventKind::kStart, 0, 1);
  rec.record(2.0, TraceEventKind::kStart, 0, 2);
  rec.record(3.0, TraceEventKind::kStart, 0, 3);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  rec.record(9.0, TraceEventKind::kComplete, 1, 7);
  EXPECT_EQ(rec.at(0).t, 9.0);
}

TEST(TraceRecorder, BinaryRoundTrip) {
  TraceRecorder rec;
  rec.record(make_event(0.125, TraceEventKind::kSubmit, 3, 17, -1.5, 2.25));
  rec.record(make_event(7.5, TraceEventKind::kAward, kNoSite, kInvalidTask));
  rec.record(make_event(-3.0, TraceEventKind::kOutageDown, 0, 0, 1e300,
                        -1e-300));
  std::ostringstream out;
  rec.write_binary(out);
  std::istringstream in(out.str());
  const std::vector<TraceEvent> parsed = TraceRecorder::read_binary(in);
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < parsed.size(); ++i)
    EXPECT_EQ(parsed[i], rec.at(i)) << "event " << i;
}

TEST(TraceRecorder, BinaryWriteIsByteIdenticalForEqualSequences) {
  auto fill = [](TraceRecorder& rec) {
    for (int i = 0; i < 100; ++i)
      rec.record(0.5 * i, static_cast<TraceEventKind>(i % 26),
                 static_cast<SiteId>(i % 3), static_cast<TaskId>(i),
                 1.0 / (i + 1), -static_cast<double>(i));
  };
  TraceRecorder a, b;
  fill(a);
  fill(b);
  std::ostringstream oa, ob;
  a.write_binary(oa);
  b.write_binary(ob);
  EXPECT_EQ(oa.str(), ob.str());
}

TEST(TraceRecorder, JsonlIsStableAndWellFormed) {
  TraceRecorder rec;
  rec.record(1.5, TraceEventKind::kComplete, 2, 42, 0.1, -7.0);
  rec.record(2.0, TraceEventKind::kBid, kNoSite, 9, 3.0);
  std::ostringstream a, b;
  rec.write_jsonl(a);
  rec.write_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
  const std::string text = a.str();
  EXPECT_NE(text.find("\"kind\":\"complete\""), std::string::npos);
  EXPECT_NE(text.find("\"site\":2"), std::string::npos);
  EXPECT_NE(text.find("\"task\":42"), std::string::npos);
  // Absent site renders as -1, not as the sentinel bit pattern.
  EXPECT_NE(text.find("\"site\":-1"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(TraceRecorder, ReadRejectsGarbage) {
  std::istringstream bad_magic("NOTATRACEFILE###################");
  EXPECT_THROW(TraceRecorder::read_binary(bad_magic), CheckError);

  TraceRecorder rec;
  rec.record(1.0, TraceEventKind::kStart, 0, 1);
  std::ostringstream out;
  rec.write_binary(out);
  const std::string full = out.str();
  std::istringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_THROW(TraceRecorder::read_binary(truncated), CheckError);
}

TEST(EngineTap, RecordsScheduleExecuteCancel) {
  SimEngine engine;
  TraceRecorder rec;
  EngineTap tap(engine, rec);
  engine.set_observer(&tap);

  int fired = 0;
  engine.schedule_at(1.0, EventPriority::kArrival, [&] { ++fired; });
  const EventId cancelled =
      engine.schedule_at(2.0, EventPriority::kArrival, [&] { ++fired; });
  engine.cancel(cancelled);
  engine.run();
  engine.set_observer(nullptr);

  ASSERT_EQ(fired, 1);
  std::size_t schedules = 0, cancels = 0, executes = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == TraceEventKind::kEvtSchedule) ++schedules;
    if (e.kind == TraceEventKind::kEvtCancel) ++cancels;
    if (e.kind == TraceEventKind::kEvtExecute) ++executes;
  }
  EXPECT_EQ(schedules, 2u);
  EXPECT_EQ(cancels, 1u);
  EXPECT_EQ(executes, 1u);
}

}  // namespace
}  // namespace mbts
