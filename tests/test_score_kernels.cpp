// SoA batch-scoring kernel properties (see src/core/score_kernels.hpp):
//
//  - kExact bit-identity: for every kernelizable policy, the columnwise
//    kernel_make_cache / kernel_priority pair reproduces the scalar
//    make_cache / priority_from_cache / priority chain bit-for-bit over
//    randomized populations salted with the nasty inputs (denormal and
//    zero decay, huge decay, negative slack, infinite penalty bounds).
//  - Dispatch equivalence: the runtime-dispatched entry points (AVX2 when
//    the host has it) agree bitwise with the portable reference loops.
//  - kFast ulp contract: the reciprocal-multiply variant stays within a
//    few ulp of kExact and never manufactures a NaN.
//  - ScoreColumns bookkeeping: push / swap_erase mirror a naive queue
//    model slot-for-slot under random churn.
//  - Whole-run identity: a full simulation with kernels on equals the
//    scalar path (ScoreKernelMode::kOff) on every RunStats field,
//    including piecewise value functions (the scalar-fixup lane).
#include "core/score_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/policies/first_price.hpp"
#include "core/policies/first_reward.hpp"
#include "core/policies/present_value.hpp"
#include "core/policies/swpt.hpp"
#include "core/policy.hpp"
#include "core/score_columns.hpp"
#include "experiments/runner.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

// --- population ---------------------------------------------------------

/// Tasks live in a deque so pointers stored in ScoreColumns stay stable.
struct Population {
  std::deque<Task> tasks;
  std::vector<double> rpts;
  ScoreColumns columns;

  void add(Task task, double rpt) {
    tasks.push_back(task);
    rpts.push_back(rpt);
    columns.push(tasks.back(), rpt);
  }
};

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

/// Random single-segment population, salted with the adversarial inputs
/// the kernels must not mangle: denormal / zero / huge decay rates,
/// negative slack (now far past the anchor), unbounded (-inf floor) and
/// zero-bound functions, wide tasks, sub-unit rpt.
Population edge_population(std::uint64_t seed, std::size_t n,
                           bool fast_safe = false) {
  Xoshiro256 rng(seed);
  Population pop;
  for (std::size_t i = 0; i < n; ++i) {
    const double arrival = rng.uniform(0.0, 50.0);
    const double runtime = rng.uniform(0.5, 30.0);
    double decay = rng.uniform(0.001, 2.0);
    double value = rng.uniform(1.0, 100.0);
    double bound = kInf;
    switch (i % 8) {
      case 0: bound = 0.0; break;                    // floors at zero
      case 1: bound = value * rng.uniform(0.5, 2.0); break;
      case 2: decay = 0.0; break;                    // never decays
      case 3: decay = 1e4; break;                    // expires ~instantly
      case 4:
        // Denormal decay: the yield line is numerically flat but every
        // intermediate must stay a number. kFast multiplies by 1/rptw, so
        // its denormal products are allowed to differ in the last ulps —
        // keep the fast-variant population in the normal range instead.
        if (!fast_safe) decay = 5e-324;
        break;
      default: break;
    }
    Task t = make_task(static_cast<TaskId>(i + 1), arrival, runtime, value,
                       decay, bound);
    if (i % 5 == 0) t.width = 1 + i % 7;
    // Declared runtime below the true one: negative slack once running.
    if (i % 6 == 0) t.declared_runtime = runtime * 0.5;
    const double rpt = (i % 4 == 0) ? rng.uniform(0.01, 0.5)
                                    : rng.uniform(0.5, runtime);
    pop.add(t, rpt);
  }
  return pop;
}

/// Mix snapshot at `now`. The kernels may read now, discount_rate,
/// total_live_decay, and any_bounded; competitors stay empty (the
/// bounded-mix opportunity cost is a scalar lane by design).
MixView mix_at(double now, double discount = 0.01,
               double total_live_decay = 7.25, bool any_bounded = false) {
  MixView mix;
  mix.now = now;
  mix.discount_rate = discount;
  mix.total_live_decay = total_live_decay;
  mix.any_bounded = any_bounded;
  return mix;
}

// --- bit-level comparison helpers ---------------------------------------

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Monotone sign-magnitude key: adjacent doubles (across +/-0 too) map to
/// adjacent keys, so ulp distance is plain integer distance.
std::uint64_t ulp_key(double x) {
  const std::uint64_t u = bits(x);
  return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
}

std::uint64_t ulp_distance(double a, double b) {
  const std::uint64_t ka = ulp_key(a);
  const std::uint64_t kb = ulp_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// Runs the policy's kernel pair (make_cache + priority) over the columns.
std::vector<double> kernel_scores(const SchedulingPolicy& policy,
                                  Population& pop, const MixView& mix,
                                  KernelVariant variant) {
  ScoreColumns& cols = pop.columns;
  const ScoreColumnsView view = cols.view();
  policy.kernel_make_cache(view, mix, variant, cols.cache_a(), cols.cache_b(),
                           cols.cache_c());
  std::vector<double> out(view.n);
  policy.kernel_priority(view, cols.cache_a(), cols.cache_b(), cols.cache_c(),
                         mix, variant, out.data());
  return out;
}

/// Scalar reference: make_cache -> priority_from_cache per task, asserted
/// equal to the direct priority() (the cacheable() contract) on the way.
std::vector<double> scalar_scores(const SchedulingPolicy& policy,
                                  const Population& pop, const MixView& mix) {
  std::vector<double> out;
  for (std::size_t i = 0; i < pop.tasks.size(); ++i) {
    const Task& task = pop.tasks[i];
    const double rpt = pop.rpts[i];
    const ScoreCache cache = policy.make_cache(task, rpt, mix);
    const double score = policy.priority_from_cache(cache, task, rpt, mix);
    EXPECT_EQ(bits(score), bits(policy.priority(task, rpt, mix)))
        << policy.name() << " cacheable() contract broke at slot " << i;
    out.push_back(score);
  }
  return out;
}

/// Every kernelizable policy under test, in both yield bases where the
/// basis matters.
std::vector<std::unique_ptr<SchedulingPolicy>> kernel_policies() {
  std::vector<std::unique_ptr<SchedulingPolicy>> ps;
  ps.push_back(std::make_unique<FirstPricePolicy>(YieldBasis::kAtCompletion));
  ps.push_back(std::make_unique<FirstPricePolicy>(YieldBasis::kAtNow));
  ps.push_back(
      std::make_unique<PresentValuePolicy>(YieldBasis::kAtCompletion));
  ps.push_back(std::make_unique<PresentValuePolicy>(YieldBasis::kAtNow));
  ps.push_back(std::make_unique<SwptPolicy>());
  ps.push_back(
      std::make_unique<FirstRewardPolicy>(0.5, YieldBasis::kAtCompletion));
  ps.push_back(
      std::make_unique<FirstRewardPolicy>(0.3, YieldBasis::kAtNow));
  return ps;
}

// --- kExact bit-identity ------------------------------------------------

TEST(ScoreKernels, ExactVariantMatchesScalarBitwise) {
  for (const auto& policy : kernel_policies()) {
    ASSERT_TRUE(policy->kernelizable()) << policy->name();
    for (std::uint64_t seed : {11u, 12u, 13u}) {
      Population pop = edge_population(seed, 257);  // odd: exercises tails
      // Scoring instants before, inside, and far past the population's
      // anchors (the last one drives every slack negative).
      for (double now : {0.0, 40.0, 1e4}) {
        const MixView mix = mix_at(now);
        const auto kernel =
            kernel_scores(*policy, pop, mix, KernelVariant::kExact);
        const auto scalar = scalar_scores(*policy, pop, mix);
        for (std::size_t i = 0; i < kernel.size(); ++i) {
          ASSERT_EQ(bits(kernel[i]), bits(scalar[i]))
              << policy->name() << " slot " << i << " at now=" << now
              << ": kernel " << kernel[i] << " vs scalar " << scalar[i];
          EXPECT_FALSE(std::isnan(kernel[i]))
              << policy->name() << " slot " << i;
        }
      }
    }
  }
}

TEST(ScoreKernels, BoundedMixFallsBackToScalarLane) {
  // With a bounded competitor in the mix FirstReward's combine must price
  // the Eq. 4 opportunity cost through the scalar lane — still bit-equal.
  const FirstRewardPolicy policy(0.5);
  Population pop = edge_population(21, 64);
  const MixView mix = mix_at(30.0, 0.01, 5.0, /*any_bounded=*/true);
  const auto kernel = kernel_scores(policy, pop, mix, KernelVariant::kExact);
  const auto scalar = scalar_scores(policy, pop, mix);
  for (std::size_t i = 0; i < kernel.size(); ++i)
    EXPECT_EQ(bits(kernel[i]), bits(scalar[i])) << "slot " << i;
}

// A policy that opts into the kernel path but keeps the base-class
// kernel_make_cache / kernel_priority defaults (scalar loops over
// make_cache / priority_from_cache, which themselves default to
// priority()). The scheduler must get bit-correct scores from a policy
// that only implements the paper's pure priority index.
class DefaultKernelPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "default-kernel"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override {
    return task.value.max_value() / rpt - mix.now * 1e-6;
  }
  bool kernelizable() const override { return true; }
};

TEST(ScoreKernels, BaseClassDefaultsFallBackToScalarPriority) {
  const DefaultKernelPolicy policy;
  Population pop = edge_population(51, 97);
  const MixView mix = mix_at(12.0);
  const auto kernel = kernel_scores(policy, pop, mix, KernelVariant::kExact);
  for (std::size_t i = 0; i < kernel.size(); ++i)
    EXPECT_EQ(bits(kernel[i]),
              bits(policy.priority(pop.tasks[i], pop.rpts[i], mix)))
        << "slot " << i;
}

// --- dispatched vs portable ---------------------------------------------

TEST(ScoreKernels, DispatchedMatchesPortableBitwise) {
  // On AVX2 hosts this pins the vector lanes against the portable loops;
  // elsewhere the dispatcher *is* the portable loop and the test is a
  // tautology that still guards the plumbing.
  if (kernels::avx2_active())
    std::puts("[ note ] AVX2 lanes active: comparing against portable");
  Population pop = edge_population(31, 203);
  const ScoreColumnsView view = pop.columns.view();
  const std::size_t n = view.n;
  std::vector<double> a(n), b(n), c(n), pa(n), pb(n), pc(n), out(n), pout(n);
  for (const auto variant : {KernelVariant::kExact, KernelVariant::kFast}) {
    for (const bool at_completion : {true, false}) {
      for (const double now : {0.0, 55.0}) {
        kernels::unit_gain_scores(view, now, at_completion, variant,
                                  out.data());
        kernels::portable::unit_gain_scores(view, now, at_completion, variant,
                                            pout.data());
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(bits(out[i]), bits(pout[i])) << "unit_gain slot " << i;

        kernels::present_value_scores(view, now, 0.01, at_completion, variant,
                                      out.data());
        kernels::portable::present_value_scores(view, now, 0.01, at_completion,
                                                variant, pout.data());
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(bits(out[i]), bits(pout[i])) << "pv slot " << i;

        kernels::swpt_scores(view, now, variant, out.data());
        kernels::portable::swpt_scores(view, now, variant, pout.data());
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(bits(out[i]), bits(pout[i])) << "swpt slot " << i;

        kernels::first_reward_cache(view, now, 0.01, 0.5, at_completion,
                                    a.data(), b.data(), c.data());
        kernels::portable::first_reward_cache(view, now, 0.01, 0.5,
                                              at_completion, pa.data(),
                                              pb.data(), pc.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(bits(a[i]), bits(pa[i])) << "fr cache a slot " << i;
          ASSERT_EQ(bits(b[i]), bits(pb[i])) << "fr cache b slot " << i;
          ASSERT_EQ(bits(c[i]), bits(pc[i])) << "fr cache c slot " << i;
        }

        kernels::first_reward_combine(view, a.data(), b.data(), c.data(), 9.5,
                                      0.5, variant, out.data());
        kernels::portable::first_reward_combine(view, pa.data(), pb.data(),
                                                pc.data(), 9.5, 0.5, variant,
                                                pout.data());
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(bits(out[i]), bits(pout[i])) << "fr combine slot " << i;
      }
    }
  }
}

// --- kFast ulp contract -------------------------------------------------

TEST(ScoreKernels, FastVariantWithinUlpBound) {
  // Reciprocal multiply replaces at most two divisions per score; each is
  // a correctly-rounded value fed through one extra rounding, so the
  // documented tolerance (DESIGN.md §6) is a handful of ulps.
  constexpr std::uint64_t kMaxUlps = 8;
  for (const auto& policy : kernel_policies()) {
    Population pop = edge_population(41, 180, /*fast_safe=*/true);
    for (double now : {0.0, 35.0}) {
      const MixView mix = mix_at(now);
      const auto exact =
          kernel_scores(*policy, pop, mix, KernelVariant::kExact);
      const auto fast = kernel_scores(*policy, pop, mix, KernelVariant::kFast);
      for (std::size_t i = 0; i < exact.size(); ++i) {
        ASSERT_FALSE(std::isnan(fast[i]))
            << policy->name() << " kFast slot " << i;
        EXPECT_LE(ulp_distance(exact[i], fast[i]), kMaxUlps)
            << policy->name() << " slot " << i << ": exact " << exact[i]
            << " fast " << fast[i];
      }
    }
  }
}

// --- ScoreColumns bookkeeping -------------------------------------------

TEST(ScoreColumns, PushAndSwapEraseMirrorNaiveQueue) {
  Xoshiro256 rng(71);
  std::deque<Task> storage;
  ScoreColumns cols;
  // Naive model of the index-swap queue: (task, rpt) pairs.
  std::vector<std::pair<const Task*, double>> model;

  const auto check = [&] {
    ASSERT_EQ(cols.size(), model.size());
    std::size_t nonlinear = 0;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(&cols.task(i), model[i].first) << "slot " << i;
      ASSERT_EQ(cols.rpt(i), model[i].second) << "slot " << i;
      ASSERT_EQ(cols.linear(i), model[i].first->value.is_linear())
          << "slot " << i;
      nonlinear += model[i].first->value.is_linear() ? 0u : 1u;
    }
    ASSERT_EQ(cols.nonlinear_count(), nonlinear);
  };

  for (int step = 0; step < 2000; ++step) {
    const bool push = model.empty() || rng.uniform(0.0, 1.0) < 0.55;
    if (push) {
      Task t = make_task(static_cast<TaskId>(step + 1),
                         rng.uniform(0.0, 10.0), rng.uniform(1.0, 20.0),
                         rng.uniform(1.0, 50.0), rng.uniform(0.01, 1.0));
      if (step % 3 == 0) {
        // Piecewise profile: must be tracked in nonlinear_count.
        t.value = ValueFunction::piecewise(
            40.0, {{10.0, 0.5}, {kInf, 1.0}}, kInf);
      }
      storage.push_back(t);
      const double rpt = rng.uniform(0.5, 20.0);
      cols.push(storage.back(), rpt);
      model.emplace_back(&storage.back(), rpt);
    } else {
      const std::size_t slot =
          static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                   static_cast<double>(model.size())) %
          model.size();
      cols.swap_erase(slot);
      model[slot] = model.back();
      model.pop_back();
    }
    check();
  }
  cols.clear();
  EXPECT_EQ(cols.size(), 0u);
  EXPECT_EQ(cols.nonlinear_count(), 0u);
}

// --- whole-run identity -------------------------------------------------

WorkloadSpec run_spec(bool piecewise) {
  WorkloadSpec spec;
  spec.num_jobs = 500;
  spec.processors = 4;
  spec.load_factor = 2.5;
  if (piecewise) spec.cliff_grace = 0.3;  // deadline-cliff profiles
  return spec;
}

RunStats run_with(const Trace& trace, const PolicySpec& policy,
                  ScoreKernelMode mode) {
  SchedulerConfig config;
  config.processors = 4;
  config.preemption = true;
  config.discount_rate = 0.01;
  config.score_kernels = mode;
  return run_single_site(trace, config, policy, std::nullopt);
}

void expect_identical_stats(const RunStats& on, const RunStats& off,
                            const std::string& label) {
  EXPECT_EQ(on.submitted, off.submitted) << label;
  EXPECT_EQ(on.accepted, off.accepted) << label;
  EXPECT_EQ(on.completed, off.completed) << label;
  EXPECT_EQ(on.dropped, off.dropped) << label;
  EXPECT_EQ(bits(on.total_yield), bits(off.total_yield)) << label;
  EXPECT_EQ(bits(on.yield_rate), bits(off.yield_rate)) << label;
  EXPECT_EQ(bits(on.last_completion), bits(off.last_completion)) << label;
  EXPECT_EQ(bits(on.utilization), bits(off.utilization)) << label;
  EXPECT_EQ(on.preemptions, off.preemptions) << label;
  EXPECT_EQ(on.dispatches, off.dispatches) << label;
  EXPECT_EQ(bits(on.delay.mean()), bits(off.delay.mean())) << label;
  EXPECT_EQ(bits(on.delay.max()), bits(off.delay.max())) << label;
  EXPECT_EQ(bits(on.realized_yield.mean()), bits(off.realized_yield.mean()))
      << label;
}

TEST(ScoreKernels, WholeRunBitIdenticalToScalarPath) {
  const PolicySpec policies[] = {
      PolicySpec{.kind = PolicySpec::Kind::kFirstPrice},
      PolicySpec{.kind = PolicySpec::Kind::kPresentValue},
      PolicySpec{.kind = PolicySpec::Kind::kSwpt},
      PolicySpec{.kind = PolicySpec::Kind::kFirstReward, .alpha = 0.3},
  };
  for (const bool piecewise : {false, true}) {
    Xoshiro256 rng(2026);
    const Trace trace = generate_trace(run_spec(piecewise), rng);
    for (const auto& policy : policies) {
      const RunStats on = run_with(trace, policy, ScoreKernelMode::kExact);
      const RunStats off = run_with(trace, policy, ScoreKernelMode::kOff);
      expect_identical_stats(
          on, off,
          policy.to_string() + (piecewise ? " piecewise" : " linear"));
    }
  }
}

TEST(ScoreKernels, FastVariantRunCompletesSanely) {
  // kFast may legitimately flip near-tie rankings, so the run is only
  // sanity-checked: every task settles and the totals stay finite.
  Xoshiro256 rng(2027);
  const Trace trace = generate_trace(run_spec(false), rng);
  const PolicySpec policy{.kind = PolicySpec::Kind::kFirstReward};
  const RunStats stats = run_with(trace, policy, ScoreKernelMode::kFast);
  EXPECT_EQ(stats.submitted, 500u);
  EXPECT_EQ(stats.completed + stats.dropped + stats.rejected + stats.failed,
            stats.submitted);
  EXPECT_TRUE(std::isfinite(stats.total_yield));
  // And it should land close to the exact-kernel run.
  const RunStats exact = run_with(trace, policy, ScoreKernelMode::kExact);
  EXPECT_NEAR(stats.total_yield, exact.total_yield,
              1e-6 * std::abs(exact.total_yield) + 1e-6);
}

}  // namespace
}  // namespace mbts
