#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/policies/first_price.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

/// Builds a self-consistent AdmissionContext over the given pending tasks
/// (already sorted by FirstPrice priority, highest first).
struct ContextFixture {
  SimTime now;
  FirstPricePolicy policy;
  MixTracker tracker;
  std::vector<Task> tasks;
  std::vector<const Task*> pending;
  std::vector<double> rpts;
  std::vector<double> proc_free;

  ContextFixture(SimTime t, std::vector<Task> pending_tasks,
                 std::vector<double> free_times, const Task* candidate)
      : now(t), tasks(std::move(pending_tasks)),
        proc_free(std::move(free_times)) {
    std::vector<CompetitorInfo> infos;
    for (const Task& task : tasks) {
      pending.push_back(&task);
      rpts.push_back(task.runtime);
      infos.push_back({task.id, task.value.decay(), kInf});
    }
    if (candidate != nullptr)
      infos.push_back({candidate->id, candidate->value.decay(), kInf});
    tracker.set_discount_rate(0.0);
    tracker.rebuild(now, std::move(infos), false);
  }

  AdmissionContext context() const {
    AdmissionContext ctx;
    ctx.now = now;
    ctx.mix = &tracker.view();
    ctx.policy = &policy;
    ctx.proc_free = proc_free;
    ctx.pending_sorted = pending;
    ctx.pending_rpt = rpts;
    return ctx;
  }
};

TEST(Projection, EmptySiteRunsImmediately) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 1.0);
  ContextFixture fx(0.0, {}, {0.0, 0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 0u);
  EXPECT_EQ(d.expected_completion, 10.0);
  EXPECT_EQ(d.expected_yield, 100.0);
}

TEST(Projection, RanksAheadOfLowerPriority) {
  // Candidate unit gain 100/10 = 10; queued task unit gain 10/10 = 1.
  const Task queued = make_task(1, 0.0, 10.0, 10.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 0u);
  EXPECT_EQ(d.expected_completion, 10.0);
}

TEST(Projection, RanksBehindHigherPriority) {
  const Task queued = make_task(1, 0.0, 10.0, 1000.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 1u);
  EXPECT_EQ(d.expected_completion, 20.0);
  // Yield at completion: delay 10, decay 0.1 => 99.
  EXPECT_DOUBLE_EQ(d.expected_yield, 99.0);
}

TEST(Projection, TiesGoBehindIncumbents) {
  const Task queued = make_task(1, 0.0, 10.0, 100.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 1u);
}

TEST(Projection, BusyProcessorsDelayCompletion) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {}, {7.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.expected_completion, 17.0);
}

TEST(AdmissionCost, ChargesDecayOfTasksBehind) {
  // Two queued tasks with decay 0.2 and 0.3; candidate slots in front.
  const Task q1 = make_task(1, 0.0, 10.0, 10.0, 0.2);
  const Task q2 = make_task(2, 0.0, 20.0, 10.0, 0.3);
  const Task candidate = make_task(9, 0.0, 8.0, 100.0, 0.1);
  ContextFixture fx(0.0, {q1, q2}, {0.0}, &candidate);
  // Corrected Eq. 8: each task behind is delayed by the candidate's runtime.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 0, false),
                   (0.2 + 0.3) * 8.0);
  // Literal Eq. 8: decay_j * runtime_j.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 0, true),
                   0.2 * 10.0 + 0.3 * 20.0);
  // At the back of the queue nothing is behind: no cost.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 2, false), 0.0);
}

TEST(AdmissionSlack, MatchesEquationSeven) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  AdmissionDecision projection;
  projection.expected_completion = 10.0;
  projection.expected_yield = 100.0;
  // slack = (PV - cost) / decay with discount 0: (100 - 20) / 0.5 = 160.
  EXPECT_DOUBLE_EQ(
      admission_slack(candidate, fx.context(), projection, 20.0), 160.0);
}

TEST(AdmissionSlack, ZeroDecayProfitableIsInfinite) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.0);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  AdmissionDecision projection;
  projection.expected_completion = 10.0;
  projection.expected_yield = 100.0;
  EXPECT_EQ(admission_slack(candidate, fx.context(), projection, 10.0), kInf);
  EXPECT_EQ(admission_slack(candidate, fx.context(), projection, 200.0),
            -kInf);
}

TEST(AcceptAll, AlwaysAccepts) {
  const AcceptAllAdmission admission;
  const Task candidate = make_task(9, 0.0, 10.0, 0.0, 5.0);  // worthless
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.slack, kInf);
  EXPECT_EQ(d.expected_completion, 10.0);
}

TEST(SlackAdmission, AcceptsAboveThreshold) {
  const SlackAdmission admission({.threshold = 100.0});
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  // slack = 100 / 0.5 = 200 >= 100.
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_TRUE(d.accept);
  EXPECT_DOUBLE_EQ(d.slack, 200.0);
}

TEST(SlackAdmission, RejectsBelowThreshold) {
  const SlackAdmission admission({.threshold = 300.0});
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_FALSE(d.accept);
  EXPECT_DOUBLE_EQ(d.slack, 200.0);  // still reported for diagnostics
}

TEST(SlackAdmission, QueueDepthErodesSlack) {
  const SlackAdmission admission({.threshold = 0.0});
  // Deep queue of high-priority urgent work ahead and behind.
  std::vector<Task> queued;
  for (TaskId i = 0; i < 10; ++i)
    queued.push_back(make_task(i, 0.0, 50.0, 5000.0, 2.0));
  const Task candidate = make_task(99, 0.0, 10.0, 100.0, 0.5);
  ContextFixture shallow(0.0, {}, {0.0}, &candidate);
  ContextFixture deep(0.0, queued, {0.0}, &candidate);
  const double slack_shallow =
      admission.evaluate(candidate, shallow.context()).slack;
  const double slack_deep =
      admission.evaluate(candidate, deep.context()).slack;
  EXPECT_LT(slack_deep, slack_shallow);
}

TEST(SlackAdmission, NegativeThresholdAcceptsLosingTasksUpToBound) {
  // A task whose expected yield is negative can still be accepted when the
  // operator sets a negative (risk-seeking) threshold.
  const Task candidate = make_task(9, 0.0, 10.0, 5.0, 2.0);
  ContextFixture fx(0.0, {}, {100.0}, &candidate);  // busy site
  // completion 110 => delay 100 => yield 5 - 200 = -195; slack = -97.5.
  const SlackAdmission strict({.threshold = 0.0});
  EXPECT_FALSE(strict.evaluate(candidate, fx.context()).accept);
  const SlackAdmission lenient({.threshold = -100.0});
  EXPECT_TRUE(lenient.evaluate(candidate, fx.context()).accept);
}

TEST(SlackAdmission, NameIncludesThreshold) {
  EXPECT_EQ(SlackAdmission({.threshold = 180.0}).name(),
            "Slack(threshold=180)");
}

TEST(SlackAdmission, DiscountReducesSlack) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  // Same geometry, but the mix discounts future gains at 10%/unit.
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  ContextFixture fx_discounted(0.0, {}, {0.0}, &candidate);
  fx_discounted.tracker.set_discount_rate(0.10);
  fx_discounted.tracker.rebuild(0.0, {{9, 0.5, kInf}}, false);
  const SlackAdmission admission({.threshold = 0.0});
  const double plain = admission.evaluate(candidate, fx.context()).slack;
  const double discounted =
      admission.evaluate(candidate, fx_discounted.context()).slack;
  EXPECT_LT(discounted, plain);
}

}  // namespace
}  // namespace mbts
