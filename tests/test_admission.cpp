#include "core/admission.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/policies/first_price.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

/// Builds a self-consistent AdmissionContext over the given pending tasks
/// (already sorted by FirstPrice priority, highest first).
struct ContextFixture {
  SimTime now;
  FirstPricePolicy policy;
  MixTracker tracker;
  std::vector<Task> tasks;
  std::vector<const Task*> pending;
  std::vector<double> rpts;
  std::vector<double> proc_free;

  ContextFixture(SimTime t, std::vector<Task> pending_tasks,
                 std::vector<double> free_times, const Task* candidate)
      : now(t), tasks(std::move(pending_tasks)),
        proc_free(std::move(free_times)) {
    std::vector<CompetitorInfo> infos;
    for (const Task& task : tasks) {
      pending.push_back(&task);
      rpts.push_back(task.runtime);
      infos.push_back({task.id, task.value.decay(), kInf});
    }
    if (candidate != nullptr)
      infos.push_back({candidate->id, candidate->value.decay(), kInf});
    tracker.set_discount_rate(0.0);
    tracker.rebuild(now, std::move(infos), false);
  }

  AdmissionContext context() const {
    AdmissionContext ctx;
    ctx.now = now;
    ctx.mix = &tracker.view();
    ctx.policy = &policy;
    ctx.proc_free = proc_free;
    ctx.pending_sorted = pending;
    ctx.pending_rpt = rpts;
    return ctx;
  }
};

TEST(Projection, EmptySiteRunsImmediately) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 1.0);
  ContextFixture fx(0.0, {}, {0.0, 0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 0u);
  EXPECT_EQ(d.expected_completion, 10.0);
  EXPECT_EQ(d.expected_yield, 100.0);
}

TEST(Projection, RanksAheadOfLowerPriority) {
  // Candidate unit gain 100/10 = 10; queued task unit gain 10/10 = 1.
  const Task queued = make_task(1, 0.0, 10.0, 10.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 0u);
  EXPECT_EQ(d.expected_completion, 10.0);
}

TEST(Projection, RanksBehindHigherPriority) {
  const Task queued = make_task(1, 0.0, 10.0, 1000.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 1u);
  EXPECT_EQ(d.expected_completion, 20.0);
  // Yield at completion: delay 10, decay 0.1 => 99.
  EXPECT_DOUBLE_EQ(d.expected_yield, 99.0);
}

TEST(Projection, TiesGoBehindIncumbents) {
  const Task queued = make_task(1, 0.0, 10.0, 100.0, 0.1);
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {queued}, {0.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.queue_position, 1u);
}

TEST(Projection, BusyProcessorsDelayCompletion) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.1);
  ContextFixture fx(0.0, {}, {7.0}, &candidate);
  const AdmissionDecision d = project_candidate(candidate, fx.context());
  EXPECT_EQ(d.expected_completion, 17.0);
}

TEST(AdmissionCost, ChargesDecayOfTasksBehind) {
  // Two queued tasks with decay 0.2 and 0.3; candidate slots in front.
  const Task q1 = make_task(1, 0.0, 10.0, 10.0, 0.2);
  const Task q2 = make_task(2, 0.0, 20.0, 10.0, 0.3);
  const Task candidate = make_task(9, 0.0, 8.0, 100.0, 0.1);
  ContextFixture fx(0.0, {q1, q2}, {0.0}, &candidate);
  // Corrected Eq. 8: each task behind is delayed by the candidate's runtime.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 0, false),
                   (0.2 + 0.3) * 8.0);
  // Literal Eq. 8: decay_j * runtime_j.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 0, true),
                   0.2 * 10.0 + 0.3 * 20.0);
  // At the back of the queue nothing is behind: no cost.
  EXPECT_DOUBLE_EQ(admission_cost(candidate, fx.context(), 2, false), 0.0);
}

TEST(AdmissionSlack, MatchesEquationSeven) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  AdmissionDecision projection;
  projection.expected_completion = 10.0;
  projection.expected_yield = 100.0;
  // slack = (PV - cost) / decay with discount 0: (100 - 20) / 0.5 = 160.
  EXPECT_DOUBLE_EQ(
      admission_slack(candidate, fx.context(), projection, 20.0), 160.0);
}

TEST(AdmissionSlack, ZeroDecayProfitableIsInfinite) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.0);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  AdmissionDecision projection;
  projection.expected_completion = 10.0;
  projection.expected_yield = 100.0;
  EXPECT_EQ(admission_slack(candidate, fx.context(), projection, 10.0), kInf);
  EXPECT_EQ(admission_slack(candidate, fx.context(), projection, 200.0),
            -kInf);
}

TEST(AcceptAll, AlwaysAccepts) {
  const AcceptAllAdmission admission;
  const Task candidate = make_task(9, 0.0, 10.0, 0.0, 5.0);  // worthless
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.slack, kInf);
  EXPECT_EQ(d.expected_completion, 10.0);
}

TEST(SlackAdmission, AcceptsAboveThreshold) {
  const SlackAdmission admission({.threshold = 100.0});
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  // slack = 100 / 0.5 = 200 >= 100.
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_TRUE(d.accept);
  EXPECT_DOUBLE_EQ(d.slack, 200.0);
}

TEST(SlackAdmission, RejectsBelowThreshold) {
  const SlackAdmission admission({.threshold = 300.0});
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  const AdmissionDecision d = admission.evaluate(candidate, fx.context());
  EXPECT_FALSE(d.accept);
  EXPECT_DOUBLE_EQ(d.slack, 200.0);  // still reported for diagnostics
}

TEST(SlackAdmission, QueueDepthErodesSlack) {
  const SlackAdmission admission({.threshold = 0.0});
  // Deep queue of high-priority urgent work ahead and behind.
  std::vector<Task> queued;
  for (TaskId i = 0; i < 10; ++i)
    queued.push_back(make_task(i, 0.0, 50.0, 5000.0, 2.0));
  const Task candidate = make_task(99, 0.0, 10.0, 100.0, 0.5);
  ContextFixture shallow(0.0, {}, {0.0}, &candidate);
  ContextFixture deep(0.0, queued, {0.0}, &candidate);
  const double slack_shallow =
      admission.evaluate(candidate, shallow.context()).slack;
  const double slack_deep =
      admission.evaluate(candidate, deep.context()).slack;
  EXPECT_LT(slack_deep, slack_shallow);
}

TEST(SlackAdmission, NegativeThresholdAcceptsLosingTasksUpToBound) {
  // A task whose expected yield is negative can still be accepted when the
  // operator sets a negative (risk-seeking) threshold.
  const Task candidate = make_task(9, 0.0, 10.0, 5.0, 2.0);
  ContextFixture fx(0.0, {}, {100.0}, &candidate);  // busy site
  // completion 110 => delay 100 => yield 5 - 200 = -195; slack = -97.5.
  const SlackAdmission strict({.threshold = 0.0});
  EXPECT_FALSE(strict.evaluate(candidate, fx.context()).accept);
  const SlackAdmission lenient({.threshold = -100.0});
  EXPECT_TRUE(lenient.evaluate(candidate, fx.context()).accept);
}

TEST(SlackAdmission, NameIncludesThreshold) {
  EXPECT_EQ(SlackAdmission({.threshold = 180.0}).name(),
            "Slack(threshold=180)");
}

TEST(SlackAdmission, DiscountReducesSlack) {
  const Task candidate = make_task(9, 0.0, 10.0, 100.0, 0.5);
  // Same geometry, but the mix discounts future gains at 10%/unit.
  ContextFixture fx(0.0, {}, {0.0}, &candidate);
  ContextFixture fx_discounted(0.0, {}, {0.0}, &candidate);
  fx_discounted.tracker.set_discount_rate(0.10);
  fx_discounted.tracker.rebuild(0.0, {{9, 0.5, kInf}}, false);
  const SlackAdmission admission({.threshold = 0.0});
  const double plain = admission.evaluate(candidate, fx.context()).slack;
  const double discounted =
      admission.evaluate(candidate, fx_discounted.context()).slack;
  EXPECT_LT(discounted, plain);
}

// --- reads_ranked_suffix() prefix-truncation contract --------------------

/// Accepts iff the projected yield is positive. The decision reads only the
/// candidate's own projection — the tasks ranked *behind* it never matter —
/// so it is a legal reads_ranked_suffix() == false policy. The twin that
/// (conservatively) declares true forces the scheduler to hand evaluate()
/// the fully ranked context; both must decide every bid identically.
class ProjectedYieldAdmission final : public AdmissionPolicy {
 public:
  explicit ProjectedYieldAdmission(bool prefix_only)
      : prefix_only_(prefix_only) {}
  std::string name() const override { return "ProjectedYield"; }
  AdmissionDecision evaluate(const Task& candidate,
                             const AdmissionContext& ctx) const override {
    AdmissionDecision decision = project_candidate(candidate, ctx);
    decision.slack = decision.expected_yield;
    decision.accept = decision.expected_yield > 0.0;
    return decision;
  }
  bool reads_ranked_suffix() const override { return !prefix_only_; }

 private:
  bool prefix_only_;
};

TEST(AdmissionContextTruncation, PrefixOnlyPolicySeesIdenticalQuotes) {
  // When a policy declares reads_ranked_suffix() == false the scheduler
  // truncates the pending spans to the prefix outranking the candidate and
  // skips the pending_decay fill. The projection must be bit-identical to
  // the full-context path: same accepts, same quoted completions, yields,
  // queue positions, and the same end-to-end RunStats.
  std::vector<Task> tasks(300);
  Xoshiro256 rng(606);
  double arrival = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    arrival += rng.uniform(0.0, 1.2);
    tasks[i] = make_task(static_cast<TaskId>(i + 1), arrival,
                         rng.uniform(1.0, 20.0), rng.uniform(10.0, 100.0),
                         rng.uniform(0.01, 0.5));
  }
  struct Outcome {
    std::deque<TaskRecord> records;
    RunStats stats;
    double end_time = 0.0;
  };
  const auto run = [&](bool prefix_only) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.preemption = true;
    config.discount_rate = 0.01;
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.3)),
                       std::make_unique<ProjectedYieldAdmission>(prefix_only));
    site.inject(tasks);
    engine.run();
    return Outcome{site.records(), site.stats(), engine.now()};
  };
  const Outcome truncated = run(true);
  const Outcome full = run(false);
  EXPECT_EQ(truncated.end_time, full.end_time);
  ASSERT_EQ(truncated.records.size(), full.records.size());
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const TaskRecord& a = truncated.records[i];
    const TaskRecord& b = full.records[i];
    EXPECT_EQ(a.outcome, b.outcome) << "task " << a.task.id;
    EXPECT_EQ(a.quoted_completion, b.quoted_completion) << "task " << a.task.id;
    EXPECT_EQ(a.quoted_yield, b.quoted_yield) << "task " << a.task.id;
    EXPECT_EQ(a.completion, b.completion) << "task " << a.task.id;
    EXPECT_EQ(a.realized_yield, b.realized_yield) << "task " << a.task.id;
  }
  EXPECT_EQ(truncated.stats.accepted, full.stats.accepted);
  EXPECT_EQ(truncated.stats.rejected, full.stats.rejected);
  EXPECT_EQ(truncated.stats.total_yield, full.stats.total_yield);
  EXPECT_EQ(truncated.stats.preemptions, full.stats.preemptions);
  EXPECT_EQ(truncated.stats.dispatches, full.stats.dispatches);
}

}  // namespace
}  // namespace mbts
