// Edge cases the benches and examples depend on but that no single module
// suite owns: empty-value CLI flags, idle-gap arrivals, unsorted injection,
// giant bounded draws, boundary quantiles, run_until with cancelled events.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "stats/histogram.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

TEST(EdgeCli, EqualsEmptyValueMeansEmptyString) {
  // The benches use --out="" to suppress CSV output.
  CliParser cli("prog", "test");
  cli.add_flag("out", "default.csv", "path");
  const std::vector<const char*> argv{"prog", "--out="};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_string("out"), "");
}

TEST(EdgeCli, FlagValueStartingWithDashViaEquals) {
  CliParser cli("prog", "test");
  cli.add_flag("threshold", "0", "slack threshold");
  const std::vector<const char*> argv{"prog", "--threshold=-150"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("threshold"), -150);
}

TEST(EdgeRng, BelowHandlesHugeBounds) {
  Xoshiro256 rng(3);
  const std::uint64_t huge = (1ULL << 62);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.below(huge), huge);
}

TEST(EdgeRng, BelowZeroThrows) {
  Xoshiro256 rng(3);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(EdgeHistogram, BoundaryQuantiles) {
  Histogram h(0.0, 10.0, 4);
  for (double x : {1.0, 2.0, 3.0}) h.add(x);
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 3.0);
  EXPECT_THROW(h.quantile(1.5), CheckError);
}

TEST(EdgeEngine, RunUntilWithOnlyCancelledEventsBeyondBoundary) {
  SimEngine engine;
  const EventId id = engine.schedule_at(100.0, EventPriority::kControl, [] {});
  engine.cancel(id);
  EXPECT_EQ(engine.run_until(50.0), 50.0);
  EXPECT_TRUE(engine.empty());
}

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

TEST(EdgeScheduler, ArrivalAfterLongIdleGap) {
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 2;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 100.0, 0.5),
      make_task(1, 100000.0, 10.0, 100.0, 0.5),  // far-future arrival
  });
  engine.run();
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.last_completion, 100010.0);
  // Both ran with zero queueing delay: full value.
  EXPECT_DOUBLE_EQ(stats.total_yield, 200.0);
}

TEST(EdgeScheduler, InjectToleratesUnsortedTraceVector) {
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  SiteScheduler site(engine, config, make_policy(PolicySpec::fcfs()),
                     std::make_unique<AcceptAllAdmission>());
  // Reverse arrival order in the vector: the engine orders by time.
  site.inject(std::vector<Task>{
      make_task(1, 20.0, 5.0, 50.0, 0.0),
      make_task(0, 0.0, 5.0, 50.0, 0.0),
  });
  engine.run();
  EXPECT_EQ(site.stats().completed, 2u);
  for (const TaskRecord& r : site.records())
    EXPECT_GE(r.first_start, r.task.arrival);
}

TEST(EdgeScheduler, ZeroValueTaskStillCompletes) {
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  Task worthless = make_task(0, 0.0, 10.0, 0.0, 0.0);
  site.inject(std::vector<Task>{worthless});
  engine.run();
  EXPECT_EQ(site.stats().completed, 1u);
  EXPECT_EQ(site.stats().total_yield, 0.0);
}

TEST(EdgeScheduler, RecordPointersSurviveManySubmissions) {
  // The scheduler hands out TaskRecord references backed by a deque; they
  // must stay valid as thousands of later submissions arrive.
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 4;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  std::vector<Task> tasks;
  for (TaskId i = 0; i < 3000; ++i)
    tasks.push_back(make_task(i, static_cast<double>(i) * 0.5, 3.0, 10.0,
                              0.01));
  site.inject(tasks);
  engine.run();
  const TaskRecord& first = site.records().front();
  EXPECT_EQ(first.task.id, 0u);
  EXPECT_EQ(first.outcome, TaskOutcome::kCompleted);
  EXPECT_EQ(site.records().size(), 3000u);
}

TEST(EdgeGenerator, SingleJobTrace) {
  WorkloadSpec spec;
  spec.num_jobs = 1;
  Xoshiro256 rng(1);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_EQ(trace.size(), 1u);
  const TraceStats stats = compute_stats(trace, 16);
  EXPECT_EQ(stats.span, 0.0);
  EXPECT_EQ(stats.offered_load, 0.0);  // undefined span => reported as 0
}

}  // namespace
}  // namespace mbts
