#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mbts {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, KnownGoodSequenceIsStable) {
  // Regression pin: changing the generator silently would invalidate every
  // recorded experiment result.
  Xoshiro256 rng(12345);
  const std::uint64_t first = rng.next();
  Xoshiro256 rng2(12345);
  EXPECT_EQ(first, rng2.next());
  EXPECT_NE(rng.next(), first);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Xoshiro256, BelowIsBoundedAndCoversRange) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(6);
    EXPECT_LT(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.2)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SeedSequence, StreamsAreReproducible) {
  const SeedSequence seeds(99);
  Xoshiro256 a = seeds.stream(5);
  Xoshiro256 b = seeds.stream(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SeedSequence, DifferentKeysGiveDifferentStreams) {
  const SeedSequence seeds(99);
  Xoshiro256 a = seeds.stream(1);
  Xoshiro256 b = seeds.stream(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SeedSequence, TwoCoordinateStreamsIndependent) {
  const SeedSequence seeds(7);
  Xoshiro256 ab = seeds.stream(1, 2);
  Xoshiro256 ba = seeds.stream(2, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (ab.next() == ba.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SeedSequence, AddingConsumersDoesNotPerturbExisting) {
  const SeedSequence seeds(55);
  const std::uint64_t before = seeds.stream(3).next();
  // "Allocate" other streams; stream(3) must be unaffected.
  (void)seeds.stream(4).next();
  (void)seeds.stream(5, 6).next();
  EXPECT_EQ(seeds.stream(3).next(), before);
}

}  // namespace
}  // namespace mbts
