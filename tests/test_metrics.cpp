#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

MixView make_mix(SimTime now, double discount,
                 std::vector<CompetitorInfo>& storage, bool any_bounded) {
  MixView mix;
  mix.now = now;
  mix.discount_rate = discount;
  double total = 0.0;
  for (const auto& c : storage)
    if (c.time_to_expire > 0.0) total += c.decay;
  mix.total_live_decay = total;
  mix.competitors = storage;
  mix.any_bounded = any_bounded;
  return mix;
}

TEST(Metrics, ExpectedYieldFreshTask) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  // Started at arrival: completes at 10, no delay.
  EXPECT_EQ(expected_yield_if_started(t, 0.0, 10.0), 100.0);
}

TEST(Metrics, ExpectedYieldAfterWaiting) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  // Started at 5: completes at 15, delay 5, yield 90.
  EXPECT_EQ(expected_yield_if_started(t, 5.0, 10.0), 90.0);
}

TEST(Metrics, ExpectedYieldPartiallyRun) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  // 4 units remain at time 20: completes 24, delay 14, yield 72.
  EXPECT_EQ(expected_yield_if_started(t, 20.0, 4.0), 72.0);
}

TEST(Metrics, YieldBasisAtNowIgnoresRemainingTime) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  // At time 15: delay so far 5 => 90, regardless of rpt.
  EXPECT_EQ(yield_for_ranking(t, 15.0, 10.0, YieldBasis::kAtNow), 90.0);
  EXPECT_EQ(yield_for_ranking(t, 15.0, 1.0, YieldBasis::kAtNow), 90.0);
  EXPECT_EQ(yield_for_ranking(t, 15.0, 10.0, YieldBasis::kAtCompletion),
            70.0);
}

TEST(Metrics, PresentValueIdentityAtZeroRate) {
  EXPECT_EQ(present_value(100.0, 0.0, 50.0), 100.0);
}

TEST(Metrics, PresentValueSimpleInterest) {
  // 110 maturing in 10 units at 1%/unit: PV = 110 / 1.1 = 100.
  EXPECT_NEAR(present_value(110.0, 0.01, 10.0), 100.0, 1e-12);
}

TEST(Metrics, PresentValueDiscountsPenaltiesToo) {
  EXPECT_NEAR(present_value(-110.0, 0.01, 10.0), -100.0, 1e-12);
}

TEST(Metrics, PresentValueMonotoneInHorizon) {
  double prev = present_value(100.0, 0.05, 0.0);
  for (double h = 1.0; h < 100.0; h += 10.0) {
    const double pv = present_value(100.0, 0.05, h);
    EXPECT_LT(pv, prev);
    prev = pv;
  }
}

TEST(Metrics, OpportunityCostUnboundedUsesAggregate) {
  // Eq. 5: cost_i = (total decay - d_i) * RPT_i.
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage{
      {1, 2.0, kInf}, {2, 3.0, kInf}, {3, 0.5, kInf}};
  const MixView mix = make_mix(0.0, 0.0, storage, false);
  EXPECT_DOUBLE_EQ(opportunity_cost(t, 10.0, mix), (3.0 + 0.5) * 10.0);
}

TEST(Metrics, OpportunityCostBoundedCapsAtExpiry) {
  // Eq. 4: competitor 2 stops decaying after 4 more units.
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0, 0.0);
  std::vector<CompetitorInfo> storage{
      {1, 2.0, 50.0}, {2, 3.0, 4.0}, {3, 0.5, kInf}};
  const MixView mix = make_mix(0.0, 0.0, storage, true);
  EXPECT_DOUBLE_EQ(opportunity_cost(t, 10.0, mix),
                   3.0 * 4.0 + 0.5 * 10.0);
}

TEST(Metrics, OpportunityCostSkipsExpiredCompetitors) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0, 0.0);
  std::vector<CompetitorInfo> storage{{1, 2.0, 50.0}, {2, 3.0, 0.0}};
  const MixView mix = make_mix(0.0, 0.0, storage, true);
  EXPECT_DOUBLE_EQ(opportunity_cost(t, 10.0, mix), 0.0);
}

TEST(Metrics, OpportunityCostExcludesSelf) {
  const Task t = make_task(7, 0.0, 10.0, 100.0, 5.0);
  std::vector<CompetitorInfo> storage{{7, 5.0, kInf}};
  const MixView mix = make_mix(0.0, 0.0, storage, false);
  EXPECT_DOUBLE_EQ(opportunity_cost(t, 10.0, mix), 0.0);
}

TEST(Metrics, OpportunityCostAloneIsZero) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage;
  const MixView mix = make_mix(0.0, 0.0, storage, false);
  EXPECT_DOUBLE_EQ(opportunity_cost(t, 10.0, mix), 0.0);
}

TEST(Metrics, UnitGainMatchesDefinition) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(unit_gain(t, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(unit_gain(t, 5.0, 10.0), 9.0);
}

TEST(Metrics, UnitGainRejectsZeroRpt) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  EXPECT_THROW(unit_gain(t, 0.0, 0.0), CheckError);
}

TEST(Metrics, FirstRewardAlphaOneZeroDiscountEqualsFirstPrice) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage{{1, 2.0, kInf}, {2, 9.0, kInf}};
  const MixView mix = make_mix(0.0, 0.0, storage, false);
  EXPECT_DOUBLE_EQ(first_reward_index(t, 10.0, mix, 1.0),
                   unit_gain(t, 0.0, 10.0));
}

TEST(Metrics, FirstRewardAlphaZeroIsPureCost) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage{{1, 2.0, kInf}, {2, 9.0, kInf}};
  const MixView mix = make_mix(0.0, 0.01, storage, false);
  EXPECT_DOUBLE_EQ(first_reward_index(t, 10.0, mix, 0.0),
                   -opportunity_cost(t, 10.0, mix) / 10.0);
}

TEST(Metrics, FirstRewardBlendsLinearly) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage{{1, 2.0, kInf}, {2, 9.0, kInf}};
  const MixView mix = make_mix(0.0, 0.01, storage, false);
  const double at0 = first_reward_index(t, 10.0, mix, 0.0);
  const double at1 = first_reward_index(t, 10.0, mix, 1.0);
  const double at_half = first_reward_index(t, 10.0, mix, 0.5);
  EXPECT_NEAR(at_half, 0.5 * (at0 + at1), 1e-12);
}

TEST(Metrics, FirstRewardRejectsBadAlpha) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> storage;
  const MixView mix = make_mix(0.0, 0.0, storage, false);
  EXPECT_THROW(first_reward_index(t, 10.0, mix, -0.1), CheckError);
  EXPECT_THROW(first_reward_index(t, 10.0, mix, 1.1), CheckError);
}

TEST(Metrics, HigherDecayCompetitorRaisesCost) {
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  std::vector<CompetitorInfo> low{{1, 2.0, kInf}, {2, 1.0, kInf}};
  std::vector<CompetitorInfo> high{{1, 2.0, kInf}, {2, 8.0, kInf}};
  const MixView mix_low = make_mix(0.0, 0.0, low, false);
  const MixView mix_high = make_mix(0.0, 0.0, high, false);
  EXPECT_LT(opportunity_cost(t, 10.0, mix_low),
            opportunity_cost(t, 10.0, mix_high));
}

}  // namespace
}  // namespace mbts
