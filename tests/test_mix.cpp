#include "core/mix.hpp"

#include <gtest/gtest.h>

namespace mbts {
namespace {

TEST(MixTracker, EmptyRebuild) {
  MixTracker tracker;
  tracker.rebuild(5.0, {}, false);
  EXPECT_EQ(tracker.view().now, 5.0);
  EXPECT_EQ(tracker.view().total_live_decay, 0.0);
  EXPECT_TRUE(tracker.view().competitors.empty());
  EXPECT_FALSE(tracker.view().any_bounded);
}

TEST(MixTracker, SumsLiveDecay) {
  MixTracker tracker;
  tracker.rebuild(0.0, {{1, 2.0, kInf}, {2, 3.0, 10.0}}, true);
  EXPECT_DOUBLE_EQ(tracker.view().total_live_decay, 5.0);
}

TEST(MixTracker, ExpiredCompetitorsExcludedFromAggregate) {
  MixTracker tracker;
  tracker.rebuild(0.0, {{1, 2.0, kInf}, {2, 3.0, 0.0}}, true);
  EXPECT_DOUBLE_EQ(tracker.view().total_live_decay, 2.0);
  // But they remain visible in the competitor list.
  EXPECT_EQ(tracker.view().competitors.size(), 2u);
}

TEST(MixTracker, DiscountRateCarriesIntoView) {
  MixTracker tracker;
  tracker.set_discount_rate(0.05);
  tracker.rebuild(1.0, {}, false);
  EXPECT_EQ(tracker.view().discount_rate, 0.05);
  EXPECT_EQ(tracker.discount_rate(), 0.05);
}

TEST(MixTracker, RebuildReplacesPreviousState) {
  MixTracker tracker;
  tracker.rebuild(0.0, {{1, 2.0, kInf}}, false);
  tracker.rebuild(10.0, {{2, 7.0, kInf}, {3, 1.0, kInf}}, false);
  EXPECT_EQ(tracker.view().now, 10.0);
  EXPECT_DOUBLE_EQ(tracker.view().total_live_decay, 8.0);
  EXPECT_EQ(tracker.view().competitors.size(), 2u);
  EXPECT_EQ(tracker.view().competitors[0].id, 2u);
}

TEST(MixTracker, ViewSpanStaysValidAfterRebuild) {
  MixTracker tracker;
  tracker.rebuild(0.0, {{1, 2.0, kInf}}, false);
  const MixView& view = tracker.view();
  tracker.rebuild(1.0, {{9, 4.0, kInf}}, true);
  // The view reference is to the tracker's storage, which was replaced.
  EXPECT_EQ(view.competitors[0].id, 9u);
  EXPECT_TRUE(view.any_bounded);
}

}  // namespace
}  // namespace mbts
