// Tests for the pricing extension: agreed-price settlement caps and the
// Vickrey-style second-price option (§2 references Spawn's Vickrey
// auctions; our default is the paper's "price equals bid value").
#include <gtest/gtest.h>

#include "market/market.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

SiteAgentConfig site_config(SiteId id, std::size_t procs) {
  SiteAgentConfig config;
  config.id = id;
  config.name = "site" + std::to_string(id);
  config.scheduler.processors = procs;
  config.policy = PolicySpec::first_price();
  config.use_slack_admission = false;
  return config;
}

TEST(Pricing, ModelNames) {
  EXPECT_EQ(to_string(PricingModel::kBidPrice), "bid-price");
  EXPECT_EQ(to_string(PricingModel::kSecondPrice), "second-price");
}

TEST(Pricing, SettlementCappedAtAgreedPrice) {
  // Quote is made while the site looks busy; the blocker is withdrawn-ish
  // scenario can't happen here, so emulate: award at a manual lower agreed
  // price and finish on time — settlement must not exceed the agreement.
  SimEngine engine;
  SiteAgent agent(engine, site_config(0, 1));
  Bid bid{1, make_task(1, 0.0, 10.0, 100.0, 0.5)};
  const Quote quote = agent.quote(bid);
  ASSERT_TRUE(agent.award(bid, quote, 60.0));  // negotiated down to 60
  engine.run();
  agent.settle();
  const Contract& contract = agent.contracts()[0];
  EXPECT_TRUE(contract.settled);
  // Value function at completion is 100, but the agreement caps at 60.
  EXPECT_DOUBLE_EQ(contract.settled_price, 60.0);
}

TEST(Pricing, DelayStillReducesBelowAgreed) {
  SimEngine engine;
  SiteAgent agent(engine, site_config(0, 1));
  Bid b1{1, make_task(1, 0.0, 50.0, 1000.0, 0.0)};
  Bid b2{1, make_task(2, 0.0, 10.0, 100.0, 1.0)};
  agent.award(b1, agent.quote(b1));
  const Quote q2 = agent.quote(b2);
  agent.award(b2, q2, 90.0);
  engine.run();
  agent.settle();
  const Contract& late = agent.contracts()[1];
  // Completes at 60 with 50 delay: value fn gives 50 < agreed 90.
  EXPECT_DOUBLE_EQ(late.settled_price, 50.0);
}

TEST(Pricing, SecondPriceChargesRunnerUp) {
  // Two idle sites quote the same completion (price 100 each? No — make
  // them differ: site 1 is busy so it quotes later/cheaper).
  MarketConfig config;
  config.pricing = PricingModel::kSecondPrice;
  config.sites.push_back(site_config(0, 1));
  config.sites.push_back(site_config(1, 1));
  Market market(config);

  // Pre-load site 1 with work via a direct bid so its quote for the probe
  // is lower (delayed completion).
  market.engine().schedule_at(0.0, EventPriority::kArrival, [&] {
    Bid filler{0, make_task(100, 0.0, 40.0, 1000.0, 0.0)};
    market.sites()[1]->award(filler, market.sites()[1]->quote(filler));
  });

  Trace trace;
  Task probe = make_task(1, 1.0, 10.0, 100.0, 1.0);
  trace.tasks = {probe};
  market.inject(trace);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 1u);

  // Winner: site 0 (idle, full price 100). Runner-up: site 1, completion
  // ~51 => delay ~40 => price ~60. Second-price contract binds at ~60.
  const auto& contracts = market.sites()[0]->contracts();
  ASSERT_EQ(contracts.size(), 1u);
  EXPECT_NEAR(contracts[0].agreed_price, 60.0, 1.0);
  EXPECT_LT(contracts[0].settled_price, 100.0);
}

TEST(Pricing, SecondPriceWithSoleAcceptorUsesOwnQuote) {
  MarketConfig config;
  config.pricing = PricingModel::kSecondPrice;
  config.sites.push_back(site_config(0, 1));
  Market market(config);
  Trace trace;
  trace.tasks = {make_task(1, 0.0, 10.0, 100.0, 1.0)};
  market.inject(trace);
  market.run();
  const auto& contracts = market.sites()[0]->contracts();
  ASSERT_EQ(contracts.size(), 1u);
  EXPECT_DOUBLE_EQ(contracts[0].agreed_price, 100.0);
}

TEST(Pricing, SecondPriceRevenueAtMostBidPrice) {
  // Economy-wide: second-price settled revenue never exceeds bid-price
  // revenue on the same trace and sites.
  auto run = [](PricingModel pricing) {
    MarketConfig config;
    config.pricing = pricing;
    config.sites.push_back(site_config(0, 2));
    config.sites.push_back(site_config(1, 2));
    Market market(config);
    Trace trace;
    for (TaskId i = 0; i < 60; ++i)
      trace.tasks.push_back(
          make_task(i, static_cast<double>(i), 8.0, 80.0, 0.5));
    market.inject(trace);
    return market.run().total_revenue;
  };
  EXPECT_LE(run(PricingModel::kSecondPrice), run(PricingModel::kBidPrice));
}

}  // namespace
}  // namespace mbts
