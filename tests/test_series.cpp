#include "experiments/series.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace mbts {
namespace {

FigureResult sample_figure() {
  FigureResult figure;
  figure.id = "figX";
  figure.title = "sample";
  figure.xlabel = "x";
  figure.ylabel = "y";
  Series a{"alpha", {{1.0, 10.0, 0.1}, {2.0, 20.0, 0.2}}};
  Series b{"beta", {{1.0, -1.0, 0.0}, {2.0, -2.0, 0.0}}};
  figure.series = {a, b};
  return figure;
}

TEST(ImprovementPct, Basics) {
  EXPECT_DOUBLE_EQ(improvement_pct(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(improvement_pct(90.0, 100.0), -10.0);
  // Negative baselines normalize by magnitude.
  EXPECT_DOUBLE_EQ(improvement_pct(50.0, -100.0), 150.0);
  EXPECT_DOUBLE_EQ(improvement_pct(5.0, 0.0), 0.0);
}

TEST(PrintFigure, RendersAllSeries) {
  std::ostringstream out;
  print_figure(sample_figure(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("figX"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("10.00"), std::string::npos);
  EXPECT_NE(text.find("-2.00"), std::string::npos);
}

TEST(PrintFigure, MismatchedGridsThrow) {
  FigureResult figure = sample_figure();
  figure.series[1].points.pop_back();
  std::ostringstream out;
  EXPECT_THROW(print_figure(figure, out), CheckError);
}

TEST(SaveFigureCsv, LongFormatRoundTrip) {
  const std::string path = testing::TempDir() + "mbts_figure.csv";
  save_figure_csv(sample_figure(), path);
  const CsvDocument doc = read_csv_file(path);
  EXPECT_EQ(doc.rows.size(), 4u);
  EXPECT_EQ(doc.header,
            (std::vector<std::string>{"figure", "series", "x", "y",
                                      "y_sem"}));
  EXPECT_EQ(doc.rows[0][doc.column("series")], "alpha");
  EXPECT_EQ(doc.rows[3][doc.column("y")], "-2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbts
