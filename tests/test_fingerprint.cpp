// Golden-fingerprint regression: the full-precision stats of the seeded
// Fig. 4-7 preset runs and the canonical economy run must match the
// checked-in golden file byte for byte. A legitimate behavior change must
// regenerate the file (build/tools/stats_fingerprint >
// tests/golden/stats_fingerprint.txt) and justify the diff in the PR.
#include "experiments/fingerprint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace mbts {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string token;
  while (in >> token) fields.push_back(token);
  return fields;
}

// Compares two `label k=v ...` lines field by field so a drift failure
// names the exact counter or statistic that moved, not two pages of digits.
void expect_line_matches(const std::string& got, const std::string& want,
                         std::size_t line_no) {
  if (got == want) return;
  const std::vector<std::string> got_fields = split_fields(got);
  const std::vector<std::string> want_fields = split_fields(want);
  const std::string label = want_fields.empty() ? "?" : want_fields[0];
  const std::size_t common = std::min(got_fields.size(), want_fields.size());
  for (std::size_t f = 0; f < common; ++f) {
    EXPECT_EQ(got_fields[f], want_fields[f])
        << "fingerprint line " << line_no << " (" << label << ") field "
        << f << " drifted";
  }
  EXPECT_EQ(got_fields.size(), want_fields.size())
      << "fingerprint line " << line_no << " (" << label
      << ") gained or lost fields";
}

TEST(Fingerprint, MatchesGoldenFile) {
  std::ifstream in(MBTS_GOLDEN_FINGERPRINT);
  ASSERT_TRUE(in.good()) << "missing golden file " << MBTS_GOLDEN_FINGERPRINT;
  std::ostringstream golden;
  golden << in.rdbuf();

  const std::vector<std::string> want = split_lines(golden.str());
  const std::vector<std::string> got = split_lines(stats_fingerprint());
  const std::size_t common = std::min(want.size(), got.size());
  for (std::size_t i = 0; i < common; ++i)
    expect_line_matches(got[i], want[i], i);
  EXPECT_EQ(got.size(), want.size()) << "fingerprint gained or lost lines";
}

TEST(Fingerprint, BothQueueBackendsProduceIdenticalFingerprints) {
  // The engine's two queue backends pop the same strict (t, priority, id)
  // minimum, so the entire corpus — every seeded preset and economy run —
  // must be bit-identical under either, and identical to the golden file.
  const QueueBackend original = SimEngine::default_backend();
  SimEngine::set_default_backend(QueueBackend::kTombstone);
  const std::string tombstone = stats_fingerprint();
  SimEngine::set_default_backend(QueueBackend::kIndexed);
  const std::string indexed = stats_fingerprint();
  SimEngine::set_default_backend(original);

  const std::vector<std::string> t_lines = split_lines(tombstone);
  const std::vector<std::string> i_lines = split_lines(indexed);
  ASSERT_EQ(t_lines.size(), i_lines.size());
  for (std::size_t i = 0; i < t_lines.size(); ++i)
    expect_line_matches(i_lines[i], t_lines[i], i);
}

TEST(Fingerprint, CorpusCoversRequiredRuns) {
  // The corpus must keep at least the fault-enabled economy, the high-α
  // FirstReward point, and the SWPT-limit run alongside the Fig. 4-7 lines.
  const std::string fp = stats_fingerprint();
  for (const char* label :
       {"fr_alpha0.9 ", "swpt_limit ", "market ", "market_faults "})
    EXPECT_NE(fp.find(label), std::string::npos)
        << "fingerprint corpus lost the '" << label << "' line";
  EXPECT_GE(split_lines(fp).size(), 12u);
}

TEST(Fingerprint, ZeroRateFaultPathIsBitInvisible) {
  // force_enable builds the injector, arms an (empty) plan, and routes
  // every quote through the timeout check — with all rates zero this must
  // not move a single bit relative to the no-injector run.
  FaultConfig zero;
  zero.force_enable = true;
  const MarketStats plain = run_fingerprint_market();
  const MarketStats faulted = run_fingerprint_market(zero);

  EXPECT_EQ(fingerprint_line("market", plain),
            fingerprint_line("market", faulted));
  ASSERT_EQ(plain.site_stats.size(), faulted.site_stats.size());
  for (std::size_t i = 0; i < plain.site_stats.size(); ++i)
    EXPECT_EQ(fingerprint_line("site", plain.site_stats[i]),
              fingerprint_line("site", faulted.site_stats[i]));
  EXPECT_EQ(faulted.outages, 0u);
  EXPECT_EQ(faulted.quote_timeouts, 0u);
  EXPECT_EQ(faulted.retries, 0u);
}

}  // namespace
}  // namespace mbts
