// Golden-fingerprint regression: the full-precision stats of the seeded
// Fig. 4-7 preset runs and the canonical economy run must match the
// checked-in golden file byte for byte. A legitimate behavior change must
// regenerate the file (build/tools/stats_fingerprint >
// tests/golden/stats_fingerprint.txt) and justify the diff in the PR.
#include "experiments/fingerprint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mbts {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Fingerprint, MatchesGoldenFile) {
  std::ifstream in(MBTS_GOLDEN_FINGERPRINT);
  ASSERT_TRUE(in.good()) << "missing golden file " << MBTS_GOLDEN_FINGERPRINT;
  std::ostringstream golden;
  golden << in.rdbuf();

  const std::vector<std::string> want = split_lines(golden.str());
  const std::vector<std::string> got = split_lines(stats_fingerprint());
  // Line-by-line first: a drift failure should name the run that moved,
  // not dump two pages of digits.
  const std::size_t common = std::min(want.size(), got.size());
  for (std::size_t i = 0; i < common; ++i)
    EXPECT_EQ(got[i], want[i]) << "fingerprint line " << i << " drifted";
  EXPECT_EQ(got.size(), want.size());
}

TEST(Fingerprint, ZeroRateFaultPathIsBitInvisible) {
  // force_enable builds the injector, arms an (empty) plan, and routes
  // every quote through the timeout check — with all rates zero this must
  // not move a single bit relative to the no-injector run.
  FaultConfig zero;
  zero.force_enable = true;
  const MarketStats plain = run_fingerprint_market();
  const MarketStats faulted = run_fingerprint_market(zero);

  EXPECT_EQ(fingerprint_line("market", plain),
            fingerprint_line("market", faulted));
  ASSERT_EQ(plain.site_stats.size(), faulted.site_stats.size());
  for (std::size_t i = 0; i < plain.site_stats.size(); ++i)
    EXPECT_EQ(fingerprint_line("site", plain.site_stats[i]),
              fingerprint_line("site", faulted.site_stats[i]));
  EXPECT_EQ(faulted.outages, 0u);
  EXPECT_EQ(faulted.quote_timeouts, 0u);
  EXPECT_EQ(faulted.retries, 0u);
}

}  // namespace
}  // namespace mbts
