// Loopback-socket smoke tests for the mbts_serve TCP front end (ctest label
// `serve`): the full wire path — accept loop, session threads, protocol,
// admission, pacing — against a real server on an ephemeral port.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "experiments/fingerprint.hpp"
#include "serve/broker_service.hpp"
#include "serve/pacing_clock.hpp"
#include "serve/preset.hpp"
#include "serve/server.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

using serve::BrokerService;
using serve::ServeConfig;
using serve::ServeServer;
using serve::ServerConfig;

/// Minimal blocking line client over the wire protocol. `rcvbuf` > 0
/// shrinks SO_RCVBUF before connecting (it must be set pre-handshake to
/// stick), so a test can play a slow consumer that backs the server's
/// writes up.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    if (rcvbuf > 0)
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Ships bytes verbatim — no newline appended, so a test can split one
  /// request across many sends (short reads on the server side).
  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[2048];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string roundtrip(const std::string& line) {
    EXPECT_TRUE(send_line(line));
    std::string reply;
    EXPECT_TRUE(recv_line(&reply));
    return reply;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

MarketConfig loopback_market() { return serve::fig1_market(11); }

std::string bid_line(const Task& task) {
  char out[256];
  std::snprintf(out, sizeof(out), "BID %.17g %.17g %.17g ", task.runtime,
                task.value.max_value(), task.value.decay());
  std::string line = out;
  if (task.value.bounded()) {
    std::snprintf(out, sizeof(out), "%.17g", task.value.penalty_bound());
    line += out;
  } else {
    line += "inf";
  }
  return line;
}

Trace bid_stream(std::size_t jobs, std::uint64_t seed) {
  WorkloadSpec spec = presets::admission_mix(2.0, jobs);
  Xoshiro256 rng = SeedSequence(seed).stream(0x7A5C);
  return generate_trace(spec, rng);
}

TEST(ServeLoopback, EndToEndHundredBidsMatchBatchReplay) {
  // Fast pacing so the whole session spans well under a second of sim load.
  WallPacingClock clock(500.0);
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();
  ASSERT_GT(server.port(), 0);

  const Trace trace = bid_stream(120, 7);
  std::size_t awarded = 0, rejected = 0;
  {
    LineClient client(server.port());
    EXPECT_EQ(client.roundtrip("PING"), "PONG");
    for (const Task& task : trace.tasks) {
      const std::string reply = client.roundtrip(bid_line(task));
      if (reply.rfind("AWARD", 0) == 0)
        ++awarded;
      else if (reply.rfind("REJECT", 0) == 0)
        ++rejected;
      else
        FAIL() << "unexpected reply: " << reply;
    }
    EXPECT_EQ(client.roundtrip("QUIT"), "BYE");
  }
  EXPECT_EQ(awarded + rejected, trace.tasks.size());

  server.stop();
  const MarketStats live = service.drain(server.external_gauges());
  EXPECT_EQ(live.bids, trace.tasks.size());
  EXPECT_EQ(live.awarded, awarded);

  Market batch(serve_config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServeLoopback, BackpressureUnderConcurrentLoad) {
  WallPacingClock clock(500.0);
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  serve_config.queue_capacity = 2;
  serve_config.retry_after = 0.5;
  // Stall each negotiation so concurrent sessions pile up on the tiny queue.
  serve_config.process_stall = std::chrono::milliseconds(5);
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.session_threads = 8;
  ServeServer server(server_config, &service);
  server.start();

  const Trace trace = bid_stream(6, 3);
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kBidsEach = 6;
  std::atomic<std::size_t> resolved{0}, busy{0}, other{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client(server.port());
      for (std::size_t i = 0; i < kBidsEach; ++i) {
        const std::string reply =
            client.roundtrip(bid_line(trace.tasks[(c + i) % 6]));
        if (reply.rfind("AWARD", 0) == 0 || reply.rfind("REJECT", 0) == 0)
          ++resolved;
        else if (reply.rfind("BUSY", 0) == 0)
          ++busy;
        else
          ++other;
      }
    });
  }
  for (auto& t : clients) t.join();

  // Conservation: every bid got exactly one verdict, nothing deadlocked,
  // nothing was lost — and the hint rode along with the rejection.
  EXPECT_EQ(resolved + busy, kClients * kBidsEach);
  EXPECT_EQ(other, 0u);
  EXPECT_GT(busy.load(), 0u) << "load never tripped the bounded queue";
  EXPECT_EQ(service.rejected_backpressure(), busy.load());

  server.stop();
  const MarketStats stats = service.drain(server.external_gauges());
  EXPECT_EQ(stats.bids, resolved.load());
  EXPECT_NE(service.final_metrics_csv().find("serve/bids_rejected_backpressure"),
            std::string::npos);
}

TEST(ServeLoopback, IdleSessionsAreEvicted) {
  VirtualPacingClock clock;  // sim time irrelevant here
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.idle_timeout_s = 0.3;
  ServeServer server(server_config, &service);
  server.start();

  LineClient client(server.port());
  std::string line;
  // Say nothing: the server must evict us, announcing the timeout first.
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_EQ(line, "TIMEOUT idle");
  EXPECT_FALSE(client.recv_line(&line));  // connection closed
  EXPECT_EQ(server.sessions_idle_evicted(), 1u);
}

TEST(ServeLoopback, StatsDuringDrainAnswersDraining) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  EXPECT_EQ(client.roundtrip("PING"), "PONG");
  // Drain the service while the session stays open: STATS can no longer be
  // fulfilled and must answer DRAINING — not a bare END, which the protocol
  // does not define and clients would misparse as an empty snapshot.
  service.drain();
  EXPECT_EQ(client.roundtrip("STATS"), "DRAINING");
  EXPECT_EQ(client.roundtrip("BID 60 10 0.1 inf"), "DRAINING");
  EXPECT_EQ(client.roundtrip("QUIT"), "BYE");
  server.stop();
}

TEST(ServeLoopback, MalformedBidsGetLineAndFieldDiagnostics) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  EXPECT_EQ(client.roundtrip("BID 1.5 abc 0 inf"),
            "ERR line 1 field 2 (value): malformed number 'abc'");
  EXPECT_EQ(client.roundtrip("NONSENSE"), "ERR line 2 unknown verb 'NONSENSE'");
  EXPECT_EQ(client.roundtrip("BID 1.5x 10 0 inf"),
            "ERR line 3 field 1 (runtime): malformed number '1.5x'");
  // The session survives protocol errors; a well-formed bid still works.
  const std::string reply = client.roundtrip("BID 60 10 0.1 inf");
  EXPECT_TRUE(reply.rfind("AWARD", 0) == 0 || reply.rfind("REJECT", 0) == 0)
      << reply;
  EXPECT_EQ(server.protocol_errors(), 3u);

  // STATS over the wire ends with the END sentinel and carries the server's
  // own counters as gauges.
  EXPECT_TRUE(client.send_line("STATS"));
  std::string line;
  bool saw_errors_gauge = false, saw_end = false;
  while (client.recv_line(&line)) {
    if (line.rfind("serve/protocol_errors,gauge,,3", 0) == 0)
      saw_errors_gauge = true;
    if (line == "END") {
      saw_end = true;
      break;
    }
  }
  EXPECT_TRUE(saw_errors_gauge);
  EXPECT_TRUE(saw_end);
}

TEST(ServeLoopback, LockstepRoundTripsStayUnderTheNagleFloor) {
  // TCP_NODELAY guard: a lockstep session is exactly the small-write
  // request/response pattern Nagle + delayed ACK punishes with ~40ms
  // stalls. With the option set on accepted sockets, loopback round trips
  // are sub-millisecond; the bound below is ~25x slack for loaded CI yet
  // far under the delayed-ACK floor a regression would reintroduce.
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  constexpr int kRoundTrips = 60;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kRoundTrips; ++i)
    ASSERT_EQ(client.roundtrip("PING"), "PONG");
  const double avg_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count() /
      kRoundTrips;
  EXPECT_LT(avg_ms, 25.0) << "lockstep round trips look Nagle-delayed";
  server.stop();
  service.drain();
}

TEST(ServeLoopback, ShortReadsReassembleAcrossArbitrarySplits) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  // One bid trickled byte-cluster by byte-cluster, split mid-verb and
  // mid-token: the server must reassemble it into a single request.
  const char* pieces[] = {"BI", "D 6", "0 1", "0 0", ".1 in", "f\n"};
  for (const char* piece : pieces) {
    ASSERT_TRUE(client.send_raw(piece));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.rfind("AWARD", 0) == 0 || reply.rfind("REJECT", 0) == 0)
      << reply;

  // The flip side: several requests in one segment all get answered.
  ASSERT_TRUE(client.send_raw("PING\nPING\nPING\n"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.recv_line(&reply));
    EXPECT_EQ(reply, "PONG");
  }
  EXPECT_EQ(server.protocol_errors(), 0u);
  server.stop();
  service.drain();
}

TEST(ServeLoopback, PartialWritesSurviveABackedUpClient) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  serve_config.queue_capacity = 4096;
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.sndbuf = 4096;  // tiny kernel buffer: EAGAIN comes early
  ServeServer server(server_config, &service);
  server.start();

  // A tiny receive window plus a client that submits everything before
  // reading anything: replies must back up into the server's bounded write
  // queue, hit EAGAIN, and drain losslessly once the client catches up.
  constexpr std::size_t kBids = 2000;
  LineClient client(server.port(), /*rcvbuf=*/2048);
  for (std::size_t i = 0; i < kBids; ++i)
    ASSERT_TRUE(client.send_line("BID t" + std::to_string(i) +
                                 " 60 10 0.1 inf"));
  // Replies are corked per drain pass, so EAGAIN only fires once the
  // accumulated backlog overruns the kernel buffers — hold off reading
  // until the server has actually reported a backed-up write.
  for (int spins = 0;
       spins < 500 && server.write_backpressure_events() == 0; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<int> answers(kBids, 0);
  std::string reply;
  for (std::size_t i = 0; i < kBids; ++i) {
    ASSERT_TRUE(client.recv_line(&reply)) << "after " << i << " replies";
    // Reply shapes: AWARD <tag> ... | REJECT <tag> ... | BUSY <tag> ...
    const std::size_t space = reply.find(' ');
    ASSERT_NE(space, std::string::npos) << reply;
    const std::string verdict = reply.substr(0, space);
    ASSERT_TRUE(verdict == "AWARD" || verdict == "REJECT" ||
                verdict == "BUSY")
        << reply;
    std::size_t end = reply.find(' ', space + 2);
    if (end == std::string::npos) end = reply.size();
    const std::string tag = reply.substr(space + 1, end - space - 1);
    ASSERT_EQ(tag[0], 't') << reply;
    const std::size_t index = std::stoul(tag.substr(1));
    ASSERT_LT(index, kBids);
    ++answers[index];
  }
  for (std::size_t i = 0; i < kBids; ++i)
    EXPECT_EQ(answers[i], 1) << "tag t" << i;
  // The tiny window must actually have backed writes up at least once —
  // otherwise this test is not exercising the partial-write path.
  EXPECT_GT(server.write_backpressure_events(), 0u);
  EXPECT_EQ(server.sessions_overflow_evicted(), 0u);
  EXPECT_EQ(client.roundtrip("QUIT"), "BYE");
  server.stop();
  service.drain();
}

TEST(ServeLoopback, TaggedRepliesInterleaveWithControlTraffic) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  // Stall negotiations so tagged replies are still pending while PINGs fly.
  serve_config.process_stall = std::chrono::milliseconds(50);
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  ASSERT_TRUE(client.send_line("BID a 60 10 0.1 inf"));
  ASSERT_TRUE(client.send_line("PING"));
  ASSERT_TRUE(client.send_line("BID b 45 8 0.05 inf"));
  ASSERT_TRUE(client.send_line("PING"));
  // Control replies overtake the stalled negotiations; the tagged replies
  // then land in submission order (the admission queue is FIFO).
  std::string reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "PONG");
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "PONG");
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.find(" a ") != std::string::npos ||
              reply.rfind("REJECT a", 0) == 0)
      << reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.find(" b ") != std::string::npos ||
              reply.rfind("REJECT b", 0) == 0)
      << reply;

  // QUIT with a tag still in flight: BYE waits for the answer.
  ASSERT_TRUE(client.send_line("BID c 30 5 0 inf"));
  ASSERT_TRUE(client.send_line("QUIT"));
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.find(" c ") != std::string::npos ||
              reply.rfind("REJECT c", 0) == 0)
      << reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "BYE");
  EXPECT_FALSE(client.recv_line(&reply));  // connection closed

  server.stop();
  service.drain();
}

TEST(ServeLoopback, DuplicateInFlightTagIsAProtocolError) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  serve_config.process_stall = std::chrono::milliseconds(50);
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  LineClient client(server.port());
  ASSERT_TRUE(client.send_line("BID job 60 10 0.1 inf"));
  ASSERT_TRUE(client.send_line("BID job 45 8 0.05 inf"));
  std::string reply;
  // The reuse is refused immediately, before the first bid even resolves.
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "ERR line 2 duplicate tag 'job' still in flight");
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.find(" job ") != std::string::npos ||
              reply.rfind("REJECT job", 0) == 0)
      << reply;
  // Once answered, the tag is free again.
  ASSERT_TRUE(client.send_line("BID job 30 5 0 inf"));
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_TRUE(reply.rfind("AWARD job", 0) == 0 ||
              reply.rfind("REJECT job", 0) == 0)
      << reply;
  EXPECT_EQ(server.protocol_errors(), 1u);
  server.stop();
  service.drain();
}

TEST(ServeLoopback, OverlongLineFloodIsEvicted) {
  VirtualPacingClock clock;
  ServeConfig serve_config;
  serve_config.market = loopback_market();
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.max_line = 256;
  ServeServer server(server_config, &service);
  server.start();

  LineClient client(server.port());
  // A newline-free flood well past max_line: the session is told off and
  // closed instead of buffering without bound. (Sized to one segment so the
  // server has read it all before closing — no RST racing the ERR reply.)
  ASSERT_TRUE(client.send_raw(std::string(600, 'x')));
  std::string reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "ERR line too long");
  EXPECT_FALSE(client.recv_line(&reply));  // connection closed
  EXPECT_EQ(server.protocol_errors(), 1u);
  server.stop();
  service.drain();
}

}  // namespace
}  // namespace mbts
