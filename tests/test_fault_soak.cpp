// Randomized chaos soak (ctest label: slow). Each repetition draws a fault
// model, market shape, and workload from a per-rep seed, runs the economy
// twice, and checks (a) the two runs are bit-identical and (b) the
// accounting invariants hold no matter what the chaos did.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "experiments/fingerprint.hpp"
#include "market/market.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

struct SoakCase {
  MarketConfig config;
  Trace trace;
};

SoakCase draw_case(std::uint64_t rep) {
  SeedSequence seeds(0x50AC + rep);
  Xoshiro256 knobs = seeds.stream(1);

  SoakCase c;
  const std::size_t n_sites = 2 + knobs.below(3);
  for (std::size_t i = 0; i < n_sites; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = 4 + knobs.below(9);
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.policy = PolicySpec::first_reward(0.1 + 0.2 * knobs.uniform01());
    site.admission = SlackAdmissionConfig{200.0 * knobs.uniform01(), false};
    c.config.sites.push_back(site);
  }
  c.config.strategy = knobs.below(2) == 0
                          ? ClientStrategy::kMaxExpectedValue
                          : ClientStrategy::kEarliestCompletion;
  c.config.pricing = knobs.below(2) == 0 ? PricingModel::kBidPrice
                                         : PricingModel::kSecondPrice;
  if (knobs.below(2) == 0)
    c.config.client_budgets[0] = ClientBudget{3000.0, 400.0};
  c.config.rng_seed = 0xF00D + rep;

  FaultConfig& faults = c.config.faults;
  faults.outage_rate = 0.002 + 0.006 * knobs.uniform01();
  faults.mean_outage = 40.0 + 200.0 * knobs.uniform01();
  faults.quote_timeout_prob = 0.1 * knobs.uniform01();
  faults.crash_mode =
      knobs.below(2) == 0 ? CrashMode::kKill : CrashMode::kCheckpoint;
  c.config.retry.rebid_on_breach = knobs.below(4) != 0;

  Xoshiro256 trace_rng = seeds.stream(2);
  c.trace = generate_trace(presets::admission_mix(1.3, 300), trace_rng);
  return c;
}

MarketStats run_case(const SoakCase& c, std::string* fingerprint) {
  Market market(c.config);
  market.inject(c.trace);
  const MarketStats stats = market.run();
  *fingerprint = fingerprint_line("soak", stats);
  for (const RunStats& s : stats.site_stats)
    *fingerprint += fingerprint_line("soak_site", s);

  // Accounting invariants, chaos or not:
  EXPECT_EQ(stats.awarded + stats.rejected_everywhere + stats.unaffordable,
            stats.bids);
  double site_sum = 0.0;
  for (double r : stats.site_revenue) site_sum += r;
  EXPECT_NEAR(site_sum, stats.total_revenue, 1e-6);
  std::size_t contracts = 0;
  std::size_t breached = 0;
  std::set<TaskId> live;  // tasks holding an unbreached contract
  for (const auto& site : market.sites()) {
    for (const Contract& contract : site->contracts()) {
      ++contracts;
      EXPECT_TRUE(contract.settled);  // the run drained
      EXPECT_LE(contract.settled_price, contract.agreed_price + 1e-9);
      if (contract.breached)
        ++breached;
      else
        EXPECT_TRUE(live.insert(contract.task).second)
            << "task " << contract.task << " has two live contracts";
    }
  }
  // Each award (first-round or re-award) formed exactly one contract.
  EXPECT_EQ(contracts, stats.awarded + stats.re_awards);
  EXPECT_EQ(breached, stats.breached_contracts);
  EXPECT_GE(stats.rebids, stats.re_awards);
  if (c.config.faults.crash_mode == CrashMode::kCheckpoint) {
    EXPECT_EQ(stats.breached_contracts, 0u);
    EXPECT_EQ(stats.rebids, 0u);
  }
  return stats;
}

TEST(FaultSoak, RandomizedChaosHoldsInvariantsAndReproduces) {
  std::size_t total_outages = 0;
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    SCOPED_TRACE("rep " + std::to_string(rep));
    const SoakCase c = draw_case(rep);
    std::string first;
    std::string second;
    const MarketStats stats = run_case(c, &first);
    run_case(c, &second);
    EXPECT_EQ(first, second) << "chaos run is not reproducible";
    total_outages += stats.outages;
  }
  // Across the sweep the fault model must have actually fired.
  EXPECT_GT(total_outages, 0u);
}

}  // namespace
}  // namespace mbts
