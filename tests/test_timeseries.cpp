#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(TimeWeighted, EmptyAverageIsZero) {
  TimeWeighted tw;
  EXPECT_TRUE(tw.empty());
  EXPECT_EQ(tw.average(10.0), 0.0);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.set(0.0, 5.0);
  EXPECT_DOUBLE_EQ(tw.average(10.0), 5.0);
}

TEST(TimeWeighted, PiecewiseConstant) {
  TimeWeighted tw;
  tw.set(0.0, 0.0);
  tw.set(5.0, 10.0);  // 0 for 5 units, then 10 for 5 units
  EXPECT_DOUBLE_EQ(tw.average(10.0), 5.0);
}

TEST(TimeWeighted, WeightsByDuration) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);
  tw.set(9.0, 11.0);  // 1 for 9 units, 11 for 1 unit => avg 2
  EXPECT_DOUBLE_EQ(tw.average(10.0), 2.0);
}

TEST(TimeWeighted, StartsAtFirstSample) {
  TimeWeighted tw;
  tw.set(100.0, 4.0);
  EXPECT_DOUBLE_EQ(tw.average(110.0), 4.0);
  EXPECT_EQ(tw.start_time(), 100.0);
}

TEST(TimeWeighted, ZeroElapsedIsZero) {
  TimeWeighted tw;
  tw.set(5.0, 3.0);
  EXPECT_EQ(tw.average(5.0), 0.0);
}

TEST(TimeWeighted, RepeatedSameTimeUpdates) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);
  tw.set(0.0, 9.0);  // instant change: no area from the first value
  EXPECT_DOUBLE_EQ(tw.average(1.0), 9.0);
}

TEST(TimeWeighted, OutOfOrderThrows) {
  TimeWeighted tw;
  tw.set(5.0, 1.0);
  EXPECT_THROW(tw.set(4.0, 2.0), CheckError);
}

TEST(TimeWeighted, CurrentReflectsLastSet) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);
  tw.set(1.0, 7.0);
  EXPECT_EQ(tw.current(), 7.0);
}

TEST(SampledSeries, StoresPointsInOrder) {
  SampledSeries series;
  series.add(1.0, 10.0);
  series.add(2.0, 20.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.time(1), 2.0);
  EXPECT_EQ(series.value(1), 20.0);
}

TEST(SampledSeries, RejectsOutOfOrder) {
  SampledSeries series;
  series.add(5.0, 1.0);
  EXPECT_THROW(series.add(4.0, 1.0), CheckError);
}

TEST(SampledSeries, SumInHalfOpenWindow) {
  SampledSeries series;
  series.add(0.0, 1.0);
  series.add(1.0, 2.0);
  series.add(2.0, 4.0);
  EXPECT_DOUBLE_EQ(series.sum_in(0.0, 2.0), 3.0);  // excludes t=2
  EXPECT_DOUBLE_EQ(series.sum_in(0.0, 2.5), 7.0);
  EXPECT_DOUBLE_EQ(series.sum_in(3.0, 4.0), 0.0);
}

}  // namespace
}  // namespace mbts
