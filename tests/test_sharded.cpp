// Sharded execution: bit-identical determinism against the single-engine
// reference, the epoch boundary semantics, error propagation across the
// shard seam, and the SPSC mailbox the coordination runs on.
//
// The determinism suite is the contract from DESIGN.md §8: for every shard
// count, fault setting, and queue backend, a sharded market run reproduces
// the reference run's MarketStats and every site's RunStats bit-for-bit
// (compared through the %.17g fingerprint codec, the same representation
// the golden-file test pins).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiments/fingerprint.hpp"
#include "market/market.hpp"
#include "obs/trace.hpp"
#include "sim/sharded_engine.hpp"
#include "util/check.hpp"
#include "util/spsc.hpp"

namespace mbts {
namespace {

FaultConfig chaos_faults() {
  FaultConfig faults;
  faults.outage_rate = 0.002;
  faults.mean_outage = 120.0;
  faults.quote_timeout_prob = 0.05;
  return faults;
}

/// Restores the process-default queue backend on scope exit.
class ScopedDefaultBackend {
 public:
  explicit ScopedDefaultBackend(QueueBackend backend)
      : original_(SimEngine::default_backend()) {
    SimEngine::set_default_backend(backend);
  }
  ~ScopedDefaultBackend() { SimEngine::set_default_backend(original_); }

 private:
  QueueBackend original_;
};

/// Full textual identity of a market run: the economy line plus one line
/// per site's RunStats, all at %.17g.
std::string run_identity(const MarketStats& stats) {
  std::string out = fingerprint_line("market", stats);
  for (std::size_t i = 0; i < stats.site_stats.size(); ++i)
    out += fingerprint_line("site" + std::to_string(i), stats.site_stats[i]);
  return out;
}

struct ShardCase {
  std::size_t shards;
  bool faults;
  QueueBackend backend;
};

class ShardedDeterminism : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedDeterminism, MatchesSingleEngineBitForBit) {
  const ShardCase c = GetParam();
  ScopedDefaultBackend backend(c.backend);
  const FaultConfig faults = c.faults ? chaos_faults() : FaultConfig{};
  const std::string reference =
      run_identity(run_fingerprint_market(faults, 1));
  const std::string sharded =
      run_identity(run_fingerprint_market(faults, c.shards));
  EXPECT_EQ(sharded, reference)
      << "shards=" << c.shards << " faults=" << c.faults
      << " backend=" << to_string(c.backend);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsFaultsBackends, ShardedDeterminism,
    ::testing::Values(
        ShardCase{2, false, QueueBackend::kTombstone},
        ShardCase{2, true, QueueBackend::kTombstone},
        ShardCase{4, false, QueueBackend::kTombstone},
        ShardCase{4, true, QueueBackend::kTombstone},
        ShardCase{2, false, QueueBackend::kIndexed},
        ShardCase{2, true, QueueBackend::kIndexed},
        ShardCase{4, false, QueueBackend::kIndexed},
        ShardCase{4, true, QueueBackend::kIndexed}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return "shards" + std::to_string(info.param.shards) +
             (info.param.faults ? "_faults_" : "_clean_") +
             to_string(info.param.backend);
    });

TEST(ShardedMarket, MoreShardsThanSitesClampsAndStillMatches) {
  // The fingerprint market has 3 sites; 8 requested shards clamp to 3
  // workers and the run stays bit-identical.
  const std::string reference = run_identity(run_fingerprint_market({}, 1));
  EXPECT_EQ(run_identity(run_fingerprint_market({}, 8)), reference);
}

TEST(ShardedMarket, ConfigBackendBeatsProcessDefault) {
  ScopedDefaultBackend backend(QueueBackend::kTombstone);
  MarketConfig config;
  SiteAgentConfig site;
  site.id = 0;
  config.sites.push_back(site);
  site.id = 1;
  config.sites.push_back(site);
  config.shards = 2;
  config.queue_backend = QueueBackend::kIndexed;
  Market market(config);
  // The explicit per-market choice reaches the broker engine and every
  // member engine, regardless of the process default.
  EXPECT_EQ(market.engine().backend(), QueueBackend::kIndexed);
  EXPECT_EQ(market.site_engine(0).backend(), QueueBackend::kIndexed);
  EXPECT_EQ(market.site_engine(1).backend(), QueueBackend::kIndexed);
}

TEST(ShardedMarket, TelemetryIsRejectedInShardedMode) {
  MarketConfig config;
  SiteAgentConfig site;
  site.id = 0;
  config.sites.push_back(site);
  site.id = 1;
  config.sites.push_back(site);
  config.shards = 2;
  Market market(config);
  TraceRecorder trace;
  EXPECT_THROW(market.attach_telemetry(&trace, nullptr), CheckError);
  // Null pointers are a no-op attach and stay legal.
  EXPECT_NO_THROW(market.attach_telemetry(nullptr, nullptr));
}

TEST(ShardedEngineTest, AdvanceStopsStrictlyBeforeBoundary) {
  ShardedEngine engine(2, 2, QueueBackend::kTombstone);
  int fired[2] = {0, 0};
  for (std::size_t m = 0; m < 2; ++m) {
    for (double t : {1.0, 2.0, 3.0})
      engine.member_engine(m).schedule_at(
          t, EventPriority::kControl, [&fired, m] { ++fired[m]; });
  }
  engine.start();
  // Boundary (2.0, kControl): the t=2 events tie the boundary priority and
  // must NOT run — only strictly-before events execute.
  engine.advance_all(2.0, static_cast<int>(EventPriority::kControl));
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 1);
  // One priority later at the same time, the t=2 events are inside.
  engine.advance_all(2.0, static_cast<int>(EventPriority::kControl) + 1);
  EXPECT_EQ(fired[0], 2);
  EXPECT_EQ(fired[1], 2);
  engine.drain_all();
  EXPECT_EQ(fired[0], 3);
  EXPECT_EQ(fired[1], 3);
  engine.stop();
}

TEST(ShardedEngineTest, EpochJobRunsOncePerShardInParallelWindow) {
  ShardedEngine engine(3, 3, QueueBackend::kTombstone);
  engine.start();
  std::atomic<int> runs{0};
  bool seen[3] = {false, false, false};
  const ShardedEngine::EpochJob job = [&](std::size_t shard) {
    ++runs;
    seen[shard] = true;
  };
  engine.advance_all(1.0, 0, &job);
  EXPECT_EQ(runs.load(), 3);
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  engine.stop();
}

TEST(ShardedEngineTest, WorkerErrorPropagatesAndDoesNotDeadlock) {
  ShardedEngine engine(2, 2, QueueBackend::kTombstone);
  engine.member_engine(0).schedule_at(1.0, EventPriority::kControl, [] {
    throw std::runtime_error("shard-side failure");
  });
  engine.member_engine(1).schedule_at(1.0, EventPriority::kControl, [] {});
  engine.start();
  // The failing shard still acknowledges the barrier (no coordinator hang)
  // and its exception surfaces here, with its original type.
  EXPECT_THROW(engine.advance_all(5.0, 0), std::runtime_error);
  // The poisoned shard keeps acking later epochs; the engine stays usable
  // enough to wind down cleanly.
  EXPECT_NO_THROW(engine.advance_all(6.0, 0));
  engine.stop();
}

TEST(ShardedEngineTest, PastBoundaryIsRejected) {
  ShardedEngine engine(1, 1, QueueBackend::kTombstone);
  engine.start();
  engine.advance_all(10.0, 0);
  EXPECT_THROW(engine.advance_all(5.0, 0), CheckError);
  engine.stop();
}

// SPSC mailbox soak: one producer and one consumer hammer the ring far past
// its capacity, through both the spin path (hot handoff) and the parked
// path (capacity stalls). Run under TSan (-DMBTS_TSAN=ON; the CI smoke
// lane) this pins the acquire/release protocol as race-free; run plain it
// pins FIFO order and losslessness.
TEST(SpscMailboxTest, SoakHandoffPreservesOrderAndLosesNothing) {
  SpscMailbox<std::uint64_t, 8> mailbox;
  constexpr std::uint64_t kMessages = 100000;
  std::thread producer([&mailbox] {
    for (std::uint64_t i = 0; i < kMessages; ++i) mailbox.push(i);
  });
  bool in_order = true;
  for (std::uint64_t i = 0; i < kMessages; ++i)
    if (mailbox.pop() != i) in_order = false;
  producer.join();
  EXPECT_TRUE(in_order);
}

TEST(SpscMailboxTest, TryPopOnEmptyReturnsFalse) {
  SpscMailbox<int, 2> mailbox;
  int out = 0;
  EXPECT_FALSE(mailbox.try_pop(&out));
  mailbox.push(7);
  EXPECT_TRUE(mailbox.try_pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(mailbox.try_pop(&out));
}

// The full sharded market exercised under TSan: the chaos run drives every
// cross-seam path (parallel quote windows, fault transitions against
// quiescent shards, re-bids, drain). Kept small enough for the
// instrumented build.
TEST(ShardedMarket, ChaosRunExercisesMailboxExchange) {
  const MarketStats stats = run_fingerprint_market(chaos_faults(), 3);
  EXPECT_GT(stats.bids, 0u);
  EXPECT_GT(stats.total_revenue, 0.0);
}

}  // namespace
}  // namespace mbts
