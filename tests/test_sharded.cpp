// Sharded execution: bit-identical determinism against the single-engine
// reference, the epoch boundary semantics, error propagation across the
// shard seam, and the SPSC mailbox the coordination runs on.
//
// The determinism suite is the contract from DESIGN.md §8: for every shard
// count, fault setting, and queue backend, a sharded market run reproduces
// the reference run's MarketStats and every site's RunStats bit-for-bit
// (compared through the %.17g fingerprint codec, the same representation
// the golden-file test pins).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "experiments/fingerprint.hpp"
#include "market/market.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/sharded_engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/spsc.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

FaultConfig chaos_faults() {
  FaultConfig faults;
  faults.outage_rate = 0.002;
  faults.mean_outage = 120.0;
  faults.quote_timeout_prob = 0.05;
  return faults;
}

/// Restores the process-default queue backend on scope exit.
class ScopedDefaultBackend {
 public:
  explicit ScopedDefaultBackend(QueueBackend backend)
      : original_(SimEngine::default_backend()) {
    SimEngine::set_default_backend(backend);
  }
  ~ScopedDefaultBackend() { SimEngine::set_default_backend(original_); }

 private:
  QueueBackend original_;
};

/// Full textual identity of a market run: the economy line plus one line
/// per site's RunStats, all at %.17g.
std::string run_identity(const MarketStats& stats) {
  std::string out = fingerprint_line("market", stats);
  for (std::size_t i = 0; i < stats.site_stats.size(); ++i)
    out += fingerprint_line("site" + std::to_string(i), stats.site_stats[i]);
  return out;
}

struct ShardCase {
  std::size_t shards;
  bool faults;
  QueueBackend backend;
  bool kernels;
  bool batching;
};

/// The full cross-product the acceptance matrix sweeps: shards x faults x
/// queue backend x score-kernel mode x epoch batching. Every combination
/// must reproduce the single-engine reference byte-for-byte.
std::vector<ShardCase> full_shard_matrix() {
  std::vector<ShardCase> cases;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}})
    for (const bool faults : {false, true})
      for (const QueueBackend backend :
           {QueueBackend::kTombstone, QueueBackend::kIndexed})
        for (const bool kernels : {true, false})
          for (const bool batching : {true, false})
            cases.push_back(ShardCase{shards, faults, backend, kernels,
                                      batching});
  return cases;
}

class ShardedDeterminism : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedDeterminism, MatchesSingleEngineBitForBit) {
  const ShardCase c = GetParam();
  ScopedDefaultBackend backend(c.backend);
  // The reference is a pure function of (faults, kernels, backend); caching
  // it keeps the 32-combo sweep from re-running the single-engine market
  // once per batching/shard variation.
  static std::map<std::tuple<bool, QueueBackend, bool>, std::string> refs;
  const auto key = std::make_tuple(c.faults, c.backend, c.kernels);
  auto it = refs.find(key);
  if (it == refs.end()) {
    FingerprintMarketOptions ref_options;
    ref_options.faults = c.faults ? chaos_faults() : FaultConfig{};
    ref_options.kernels = c.kernels;
    it = refs.emplace(key, run_identity(run_fingerprint_market(ref_options)))
             .first;
  }
  FingerprintMarketOptions options;
  options.faults = c.faults ? chaos_faults() : FaultConfig{};
  options.shards = c.shards;
  options.kernels = c.kernels;
  options.batching = c.batching;
  const std::string sharded = run_identity(run_fingerprint_market(options));
  EXPECT_EQ(sharded, it->second)
      << "shards=" << c.shards << " faults=" << c.faults
      << " backend=" << to_string(c.backend) << " kernels=" << c.kernels
      << " batching=" << c.batching;
}

INSTANTIATE_TEST_SUITE_P(
    ShardsFaultsBackendsKernelsBatching, ShardedDeterminism,
    ::testing::ValuesIn(full_shard_matrix()),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return "shards" + std::to_string(info.param.shards) +
             (info.param.faults ? "_faults_" : "_clean_") +
             to_string(info.param.backend) +
             (info.param.kernels ? "_kexact" : "_koff") +
             (info.param.batching ? "_batched" : "_unbatched");
    });

TEST(ShardedMarket, MoreShardsThanSitesClampsAndStillMatches) {
  // The fingerprint market has 3 sites; 8 requested shards clamp to 3
  // workers and the run stays bit-identical.
  const std::string reference = run_identity(run_fingerprint_market({}, 1));
  EXPECT_EQ(run_identity(run_fingerprint_market({}, 8)), reference);
}

TEST(ShardedMarket, ConfigBackendBeatsProcessDefault) {
  ScopedDefaultBackend backend(QueueBackend::kTombstone);
  MarketConfig config;
  SiteAgentConfig site;
  site.id = 0;
  config.sites.push_back(site);
  site.id = 1;
  config.sites.push_back(site);
  config.shards = 2;
  config.queue_backend = QueueBackend::kIndexed;
  Market market(config);
  // The explicit per-market choice reaches the broker engine and every
  // member engine, regardless of the process default.
  EXPECT_EQ(market.engine().backend(), QueueBackend::kIndexed);
  EXPECT_EQ(market.site_engine(0).backend(), QueueBackend::kIndexed);
  EXPECT_EQ(market.site_engine(1).backend(), QueueBackend::kIndexed);
}

TEST(ShardedMarket, TelemetryIsRejectedInShardedMode) {
  MarketConfig config;
  SiteAgentConfig site;
  site.id = 0;
  config.sites.push_back(site);
  site.id = 1;
  config.sites.push_back(site);
  config.shards = 2;
  Market market(config);
  TraceRecorder trace;
  MetricsRegistry metrics;
  // Recorders are single-threaded, so a sharded market refuses to attach
  // them — an error return, not a crash, so shard sweeps can probe and
  // fall back to an unsharded telemetry run.
  EXPECT_FALSE(market.attach_telemetry(&trace, nullptr));
  EXPECT_FALSE(market.attach_telemetry(nullptr, &metrics));
  EXPECT_FALSE(market.attach_telemetry(&trace, &metrics));
  // Null pointers are a no-op attach and stay legal.
  EXPECT_TRUE(market.attach_telemetry(nullptr, nullptr));
}

TEST(ShardedEngineTest, AdvanceStopsStrictlyBeforeBoundary) {
  ShardedEngine engine(2, 2, QueueBackend::kTombstone);
  int fired[2] = {0, 0};
  for (std::size_t m = 0; m < 2; ++m) {
    for (double t : {1.0, 2.0, 3.0})
      engine.member_engine(m).schedule_at(
          t, EventPriority::kControl, [&fired, m] { ++fired[m]; });
  }
  engine.start();
  // Boundary (2.0, kControl): the t=2 events tie the boundary priority and
  // must NOT run — only strictly-before events execute.
  engine.advance_all(2.0, static_cast<int>(EventPriority::kControl));
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 1);
  // One priority later at the same time, the t=2 events are inside.
  engine.advance_all(2.0, static_cast<int>(EventPriority::kControl) + 1);
  EXPECT_EQ(fired[0], 2);
  EXPECT_EQ(fired[1], 2);
  engine.drain_all();
  EXPECT_EQ(fired[0], 3);
  EXPECT_EQ(fired[1], 3);
  engine.stop();
}

TEST(ShardedEngineTest, EpochJobRunsOncePerShardInParallelWindow) {
  ShardedEngine engine(3, 3, QueueBackend::kTombstone);
  engine.start();
  std::atomic<int> runs{0};
  bool seen[3] = {false, false, false};
  const ShardedEngine::EpochJob job = [&](std::size_t shard) {
    ++runs;
    seen[shard] = true;
  };
  engine.advance_all(1.0, 0, &job);
  EXPECT_EQ(runs.load(), 3);
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  engine.stop();
}

TEST(ShardedEngineTest, WorkerErrorPropagatesAndDoesNotDeadlock) {
  ShardedEngine engine(2, 2, QueueBackend::kTombstone);
  engine.member_engine(0).schedule_at(1.0, EventPriority::kControl, [] {
    throw std::runtime_error("shard-side failure");
  });
  engine.member_engine(1).schedule_at(1.0, EventPriority::kControl, [] {});
  engine.start();
  // The failing shard still acknowledges the barrier (no coordinator hang)
  // and its exception surfaces here, with its original type.
  EXPECT_THROW(engine.advance_all(5.0, 0), std::runtime_error);
  // The poisoned shard keeps acking later epochs; the engine stays usable
  // enough to wind down cleanly.
  EXPECT_NO_THROW(engine.advance_all(6.0, 0));
  engine.stop();
}

TEST(ShardedEngineTest, PastBoundaryIsRejected) {
  ShardedEngine engine(1, 1, QueueBackend::kTombstone);
  engine.start();
  engine.advance_all(10.0, 0);
  EXPECT_THROW(engine.advance_all(5.0, 0), CheckError);
  engine.stop();
}

TEST(ShardedEngineTest, BatchCommandWalksBoundariesInOneBarrier) {
  ShardedEngine engine(2, 3, QueueBackend::kTombstone);
  int fired[3] = {0, 0, 0};
  for (std::size_t m = 0; m < 3; ++m) {
    for (double t : {1.0, 2.0, 3.0})
      engine.member_engine(m).schedule_at(
          t, EventPriority::kControl, [&fired, m] { ++fired[m]; });
  }
  engine.start();
  // Two boundaries ride one command: a single ack round (one barrier) but
  // two conservative windows (two epochs) per member.
  const ShardedEngine::BatchStep steps[] = {
      {1.5, 0}, {2.5, static_cast<int>(EventPriority::kControl)}};
  engine.batch_all(steps, 2);
  EXPECT_EQ(engine.barriers(), 1u);
  EXPECT_EQ(engine.epochs(), 2u);
  for (const int f : fired) EXPECT_EQ(f, 2);
  // drain_after runs the members to completion behind the last boundary,
  // still within the same single broadcast.
  const ShardedEngine::BatchStep tail[] = {
      {3.0, static_cast<int>(EventPriority::kControl)}};
  engine.batch_all(tail, 1, /*drain_after=*/true);
  EXPECT_EQ(engine.barriers(), 2u);
  EXPECT_EQ(engine.epochs(), 4u);
  for (const int f : fired) EXPECT_EQ(f, 3);
  engine.stop();
}

TEST(ShardedEngineTest, BatchAdvanceInterleaveSoak) {
  // Mixed advance/batch command stream across the mailboxes: pins the
  // batched worker path (boundary walk + optional drain) against the
  // plain-advance path under load; the TSan smoke lane runs this against
  // the instrumented build.
  ShardedEngine engine(3, 7, QueueBackend::kIndexed);
  std::atomic<int> fired{0};
  for (std::size_t m = 0; m < 7; ++m)
    for (int k = 0; k < 64; ++k)
      engine.member_engine(m).schedule_at(0.5 + static_cast<double>(k),
                                          EventPriority::kControl,
                                          [&fired] { ++fired; });
  engine.start();
  double t = 0.0;
  std::vector<ShardedEngine::BatchStep> steps;
  for (int round = 0; round < 2000; ++round) {
    if (round % 3 == 0) {
      t += 0.01;
      engine.advance_all(t, 0);
    } else {
      steps.clear();
      for (int s = 0; s < (round % 5) + 1; ++s) {
        t += 0.003;
        steps.push_back({t, s});
      }
      engine.batch_all(steps.data(), steps.size());
    }
  }
  engine.drain_all();
  engine.stop();
  EXPECT_EQ(fired.load(), 7 * 64);
  EXPECT_EQ(engine.barriers(), 2001u);
  EXPECT_GT(engine.epochs(), engine.barriers());
}

// SPSC mailbox soak: one producer and one consumer hammer the ring far past
// its capacity, through both the spin path (hot handoff) and the parked
// path (capacity stalls). Run under TSan (-DMBTS_TSAN=ON; the CI smoke
// lane) this pins the acquire/release protocol as race-free; run plain it
// pins FIFO order and losslessness.
TEST(SpscMailboxTest, SoakHandoffPreservesOrderAndLosesNothing) {
  SpscMailbox<std::uint64_t, 8> mailbox;
  constexpr std::uint64_t kMessages = 100000;
  std::thread producer([&mailbox] {
    for (std::uint64_t i = 0; i < kMessages; ++i) mailbox.push(i);
  });
  bool in_order = true;
  for (std::uint64_t i = 0; i < kMessages; ++i)
    if (mailbox.pop() != i) in_order = false;
  producer.join();
  EXPECT_TRUE(in_order);
}

// Batched-command soak: 100k commands with mixed batch sizes, each carrying
// a pointer into producer-owned boundary storage the consumer dereferences
// — the exact shape of the sharded engine's kBatch mailbox payload. The
// steps pool holds twice the ring depth: to reuse a block the producer must
// first observe (acquire, via push()'s capacity wait) a pop that the
// consumer issued strictly after its last read of that block, mirroring the
// coordinator's "steps stay valid until the barrier returns" rule. Under
// TSan this pins the release/acquire pairing that makes the pointed-at
// storage safe to read; run plain it pins order and content integrity.
TEST(SpscMailboxTest, BatchedCommandSoakDeliversEveryBoundaryBlock) {
  struct BatchCommand {
    std::uint64_t seq = 0;
    const double* steps = nullptr;
    std::size_t n_steps = 0;
  };
  constexpr std::uint64_t kCommands = 100000;
  constexpr std::size_t kRing = 8;
  constexpr std::size_t kBlocks = 2 * kRing;
  constexpr std::size_t kMaxBatch = 7;
  SpscMailbox<BatchCommand, kRing> mailbox;
  std::vector<std::array<double, kMaxBatch>> blocks(kBlocks);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      auto& block = blocks[i % kBlocks];
      const std::size_t n = i % kMaxBatch + 1;
      for (std::size_t s = 0; s < n; ++s)
        block[s] = static_cast<double>(i * kMaxBatch + s);
      mailbox.push(BatchCommand{i, block.data(), n});
    }
  });
  std::uint64_t bad = 0;
  for (std::uint64_t i = 0; i < kCommands; ++i) {
    const BatchCommand command = mailbox.pop();
    if (command.seq != i || command.n_steps != i % kMaxBatch + 1) ++bad;
    for (std::size_t s = 0; s < command.n_steps; ++s)
      if (command.steps[s] != static_cast<double>(i * kMaxBatch + s)) ++bad;
  }
  producer.join();
  EXPECT_EQ(bad, 0u);
}

TEST(SpscMailboxTest, TryPopOnEmptyReturnsFalse) {
  SpscMailbox<int, 2> mailbox;
  int out = 0;
  EXPECT_FALSE(mailbox.try_pop(&out));
  mailbox.push(7);
  EXPECT_TRUE(mailbox.try_pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(mailbox.try_pop(&out));
}

// The full sharded market exercised under TSan: the chaos run drives every
// cross-seam path (parallel quote windows, batched negotiation runs, fault
// transitions against quiescent shards, re-bids, drain). Kept small enough
// for the instrumented build.
TEST(ShardedMarket, ChaosRunExercisesMailboxExchange) {
  const MarketStats stats = run_fingerprint_market(chaos_faults(), 3);
  EXPECT_GT(stats.bids, 0u);
  EXPECT_GT(stats.total_revenue, 0.0);
}

/// A small heterogeneous economy with the Market object exposed, so tests
/// can read the synchronization counters the fingerprint helpers hide.
MarketConfig counter_market_config(std::size_t shards, bool batching,
                                   const FaultConfig& faults) {
  MarketConfig config;
  for (std::size_t i = 0; i < 8; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = 2 + i % 3;
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.policy = PolicySpec::first_reward(0.3);
    site.admission = SlackAdmissionConfig{90.0 + 30.0 * (i % 4), false};
    config.sites.push_back(site);
  }
  config.pricing = PricingModel::kSecondPrice;
  config.rng_seed = 42;
  config.shards = shards;
  config.epoch_batching = batching;
  config.faults = faults;
  return config;
}

std::string run_counter_market(std::size_t shards, bool batching,
                               const FaultConfig& faults, Market** out) {
  static std::deque<Market> markets;  // keep counters alive for the caller
  markets.emplace_back(counter_market_config(shards, batching, faults));
  Market& market = markets.back();
  Xoshiro256 rng = SeedSequence(7).stream(3);
  market.inject(generate_trace(presets::admission_mix(1.2, 400), rng));
  const MarketStats stats = market.run();
  if (out != nullptr) *out = &market;
  return run_identity(stats);
}

TEST(ShardedMarket, EpochBatchingCollapsesBarriersBitIdentically) {
  Market* batched = nullptr;
  Market* unbatched = nullptr;
  const std::string reference = run_counter_market(1, true, {}, nullptr);
  const std::string on = run_counter_market(4, true, {}, &batched);
  const std::string off = run_counter_market(4, false, {}, &unbatched);
  EXPECT_EQ(on, reference);
  EXPECT_EQ(off, reference);
  // The bid stream is one long negotiation run: batching executes it inline
  // between barriers, so the barrier count collapses (the acceptance bar is
  // >= 5x; here it is orders of magnitude) while batching off pays roughly
  // one barrier per negotiation event.
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(unbatched, nullptr);
  EXPECT_GT(batched->batched_epochs(), 0u);
  EXPECT_GE(unbatched->barriers(), 5 * batched->barriers());
  EXPECT_EQ(unbatched->batched_epochs(), 0u);
}

TEST(ShardedMarket, LocalFaultHandlingSkipsTheBarrierBitIdentically) {
  FaultConfig faults;
  faults.outage_rate = 0.004;
  faults.mean_outage = 80.0;
  faults.quote_timeout_prob = 0.05;
  Market* batched = nullptr;
  Market* unbatched = nullptr;
  const std::string reference = run_counter_market(1, true, faults, nullptr);
  const std::string on = run_counter_market(3, true, faults, &batched);
  const std::string off = run_counter_market(3, false, faults, &unbatched);
  EXPECT_EQ(on, reference);
  EXPECT_EQ(off, reference);
  // Outage transitions touch exactly one site; with batching on they
  // advance only that member engine and skip the global barrier.
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(unbatched, nullptr);
  EXPECT_GT(batched->local_fault_epochs(), 0u);
  EXPECT_EQ(unbatched->local_fault_epochs(), 0u);
  EXPECT_GE(unbatched->barriers(), 5 * batched->barriers());
}

}  // namespace
}  // namespace mbts
