#include "core/policy.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/mix.hpp"
#include "core/policies/baselines.hpp"
#include "core/policies/first_price.hpp"
#include "core/policies/first_reward.hpp"
#include "core/policies/present_value.hpp"
#include "core/policies/swpt.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

MixView empty_mix(SimTime now = 0.0, double discount = 0.0) {
  MixView mix;
  mix.now = now;
  mix.discount_rate = discount;
  return mix;
}

TEST(Fcfs, EarlierArrivalWins) {
  const FcfsPolicy policy;
  const MixView mix = empty_mix();
  const Task early = make_task(1, 1.0, 10.0, 50.0, 1.0);
  const Task late = make_task(2, 2.0, 10.0, 500.0, 9.0);
  EXPECT_GT(policy.priority(early, 10.0, mix),
            policy.priority(late, 10.0, mix));
}

TEST(Srpt, ShorterRemainingWins) {
  const SrptPolicy policy;
  const MixView mix = empty_mix();
  const Task a = make_task(1, 0.0, 10.0, 50.0, 1.0);
  const Task b = make_task(2, 0.0, 30.0, 500.0, 9.0);
  EXPECT_GT(policy.priority(a, 10.0, mix), policy.priority(b, 30.0, mix));
  // Remaining time, not total runtime, is what counts.
  EXPECT_GT(policy.priority(b, 5.0, mix), policy.priority(a, 10.0, mix));
}

TEST(Swpt, OrdersByDecayOverRpt) {
  const SwptPolicy policy;
  const MixView mix = empty_mix();
  const Task urgent_short = make_task(1, 0.0, 10.0, 100.0, 4.0);
  const Task calm_long = make_task(2, 0.0, 40.0, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(policy.priority(urgent_short, 10.0, mix), 0.4);
  EXPECT_DOUBLE_EQ(policy.priority(calm_long, 40.0, mix), 0.025);
}

TEST(Swpt, ValueBlind) {
  const SwptPolicy policy;
  const MixView mix = empty_mix();
  const Task cheap = make_task(1, 0.0, 10.0, 1.0, 2.0);
  const Task precious = make_task(2, 0.0, 10.0, 1000.0, 2.0);
  EXPECT_EQ(policy.priority(cheap, 10.0, mix),
            policy.priority(precious, 10.0, mix));
}

TEST(Random, StablePerTask) {
  const RandomPolicy policy(42);
  const MixView mix = empty_mix();
  const Task t = make_task(7, 0.0, 10.0, 1.0, 1.0);
  EXPECT_EQ(policy.priority(t, 10.0, mix), policy.priority(t, 3.0, mix));
}

TEST(Random, DifferentSeedsDifferentOrder) {
  const RandomPolicy a(1), b(2);
  const MixView mix = empty_mix();
  const Task t = make_task(7, 0.0, 10.0, 1.0, 1.0);
  EXPECT_NE(a.priority(t, 10.0, mix), b.priority(t, 10.0, mix));
}

TEST(FirstPrice, RanksByUnitGain) {
  const FirstPricePolicy policy;
  const MixView mix = empty_mix(0.0);
  const Task dense = make_task(1, 0.0, 10.0, 200.0, 0.0);  // 20/unit
  const Task sparse = make_task(2, 0.0, 100.0, 500.0, 0.0);  // 5/unit
  EXPECT_GT(policy.priority(dense, 10.0, mix),
            policy.priority(sparse, 100.0, mix));
}

TEST(FirstPrice, DecayedTaskSinks) {
  const FirstPricePolicy policy;
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  const MixView fresh = empty_mix(0.0);
  const MixView later = empty_mix(40.0);
  EXPECT_GT(policy.priority(t, 10.0, fresh), policy.priority(t, 10.0, later));
}

TEST(FirstPrice, UnboundedGoesNegative) {
  const FirstPricePolicy policy;
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0, kInf);
  const MixView late = empty_mix(1000.0);
  EXPECT_LT(policy.priority(t, 10.0, late), 0.0);
}

TEST(FirstPrice, BoundedFloorsAtZero) {
  const FirstPricePolicy policy;
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0, 0.0);
  const MixView late = empty_mix(1000.0);
  EXPECT_EQ(policy.priority(t, 10.0, late), 0.0);
}

TEST(PresentValue, ZeroDiscountEqualsFirstPrice) {
  const FirstPricePolicy fp;
  const PresentValuePolicy pv;
  const MixView mix = empty_mix(3.0, 0.0);
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(pv.priority(t, 10.0, mix), fp.priority(t, 10.0, mix));
}

TEST(PresentValue, DiscountPenalizesLongTasks) {
  const PresentValuePolicy pv;
  const MixView mix = empty_mix(0.0, 0.05);
  // Same unit gain 10; PV must favor the shorter.
  const Task short_task = make_task(1, 0.0, 10.0, 100.0, 0.0);
  const Task long_task = make_task(2, 0.0, 100.0, 1000.0, 0.0);
  EXPECT_GT(pv.priority(short_task, 10.0, mix),
            pv.priority(long_task, 100.0, mix));
}

TEST(PresentValue, HigherDiscountMoreRiskAverse) {
  const PresentValuePolicy pv;
  const Task long_task = make_task(2, 0.0, 100.0, 1000.0, 0.0);
  const MixView mild = empty_mix(0.0, 0.01);
  const MixView harsh = empty_mix(0.0, 0.10);
  EXPECT_GT(pv.priority(long_task, 100.0, mild),
            pv.priority(long_task, 100.0, harsh));
}

TEST(FirstReward, AlphaOneNoDiscountMatchesFirstPrice) {
  const FirstRewardPolicy fr(1.0);
  const FirstPricePolicy fp;
  std::vector<CompetitorInfo> storage{{2, 3.0, kInf}};
  MixTracker tracker;
  tracker.rebuild(0.0, storage, false);
  const Task t = make_task(1, 0.0, 10.0, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(fr.priority(t, 10.0, tracker.view()),
                   fp.priority(t, 10.0, tracker.view()));
}

TEST(FirstReward, AlphaZeroPrefersHighDecayUnderUnbounded) {
  // Eq. 5: cost_i/RPT_i = total - d_i, so the highest-decay task wins.
  const FirstRewardPolicy fr(0.0);
  MixTracker tracker;
  tracker.rebuild(0.0,
                  {{1, 1.0, kInf}, {2, 6.0, kInf}, {3, 2.0, kInf}}, false);
  const Task calm = make_task(1, 0.0, 10.0, 500.0, 1.0);
  const Task urgent = make_task(2, 0.0, 10.0, 5.0, 6.0);
  EXPECT_GT(fr.priority(urgent, 10.0, tracker.view()),
            fr.priority(calm, 10.0, tracker.view()));
}

TEST(FirstReward, NameEncodesAlpha) {
  EXPECT_EQ(FirstRewardPolicy(0.25).name(), "FirstReward(a=0.25)");
}

TEST(FirstReward, RejectsBadAlpha) {
  EXPECT_THROW(FirstRewardPolicy(-0.5), CheckError);
  EXPECT_THROW(FirstRewardPolicy(2.0), CheckError);
}

TEST(PolicyFactory, MakesEveryKind) {
  EXPECT_EQ(make_policy(PolicySpec::fcfs())->name(), "FCFS");
  EXPECT_EQ(make_policy(PolicySpec::srpt())->name(), "SRPT");
  EXPECT_EQ(make_policy(PolicySpec::swpt())->name(), "SWPT");
  EXPECT_EQ(make_policy(PolicySpec::first_price())->name(), "FirstPrice");
  EXPECT_EQ(make_policy(PolicySpec::present_value())->name(), "PV");
  EXPECT_EQ(make_policy(PolicySpec::first_reward(0.5))->name(),
            "FirstReward(a=0.5)");
  EXPECT_EQ(make_policy(PolicySpec::random(9))->name(), "RANDOM");
}

TEST(PolicyFactory, ParseRoundTrips) {
  for (const std::string text :
       {"fcfs", "srpt", "swpt", "firstprice", "pv", "firstreward:0.3",
        "random"}) {
    const PolicySpec spec = parse_policy_spec(text);
    EXPECT_EQ(spec.to_string(), text) << text;
  }
}

TEST(PolicyFactory, ParseRejectsUnknown) {
  EXPECT_THROW(parse_policy_spec("lottery"), CheckError);
  EXPECT_THROW(parse_policy_spec("firstreward:2"), CheckError);
  EXPECT_THROW(parse_policy_spec("firstreward:abc"), CheckError);
}

TEST(PolicySpec, WithBasisCopies) {
  const PolicySpec spec =
      PolicySpec::first_price().with_basis(YieldBasis::kAtNow);
  EXPECT_EQ(spec.yield_basis, YieldBasis::kAtNow);
  EXPECT_EQ(spec.kind, PolicySpec::Kind::kFirstPrice);
}

}  // namespace
}  // namespace mbts
