#include "cluster/processor_pool.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(ProcessorPool, StartsIdle) {
  ProcessorPool pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.busy(), 0u);
  EXPECT_EQ(pool.free_count(), 4u);
  EXPECT_TRUE(pool.has_free());
}

TEST(ProcessorPool, AcquireReleaseRoundTrip) {
  ProcessorPool pool(2);
  pool.acquire(0.0);
  EXPECT_EQ(pool.busy(), 1u);
  pool.acquire(1.0);
  EXPECT_EQ(pool.busy(), 2u);
  EXPECT_FALSE(pool.has_free());
  pool.release(2.0);
  EXPECT_EQ(pool.busy(), 1u);
  EXPECT_TRUE(pool.has_free());
}

TEST(ProcessorPool, OverAcquireThrows) {
  ProcessorPool pool(1);
  pool.acquire(0.0);
  EXPECT_THROW(pool.acquire(1.0), CheckError);
}

TEST(ProcessorPool, ReleaseIdleThrows) {
  ProcessorPool pool(1);
  EXPECT_THROW(pool.release(0.0), CheckError);
}

TEST(ProcessorPool, ZeroCapacityRejected) {
  EXPECT_THROW(ProcessorPool(0), CheckError);
}

TEST(ProcessorPool, UtilizationBeforeAnyUseIsZero) {
  ProcessorPool pool(2);
  EXPECT_EQ(pool.utilization(100.0), 0.0);
}

TEST(ProcessorPool, UtilizationFullyBusy) {
  ProcessorPool pool(1);
  pool.acquire(0.0);
  EXPECT_DOUBLE_EQ(pool.utilization(10.0), 1.0);
}

TEST(ProcessorPool, UtilizationHalfBusyHalfTime) {
  ProcessorPool pool(1);
  pool.acquire(0.0);
  pool.release(5.0);
  EXPECT_DOUBLE_EQ(pool.utilization(10.0), 0.5);
}

TEST(ProcessorPool, UtilizationAveragesOverProcessors) {
  ProcessorPool pool(4);
  pool.acquire(0.0);  // 1 of 4 busy the whole time
  EXPECT_DOUBLE_EQ(pool.utilization(8.0), 0.25);
}

}  // namespace
}  // namespace mbts
