// The paper's claim-level conclusions, pinned as regression tests at
// moderate scale (1500-job traces, fixed seeds). These protect the science:
// if a refactor flips any of these, the reproduction is broken even if
// every unit test still passes. EXPERIMENTS.md documents the full-scale
// numbers behind each claim.
#include <gtest/gtest.h>

#include "experiments/runner.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

constexpr std::size_t kJobs = 1500;

SchedulerConfig config16(double discount = 0.01) {
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = discount;
  return config;
}

Trace make(const WorkloadSpec& spec, std::uint64_t seed_key) {
  Xoshiro256 rng = SeedSequence(42).stream(seed_key);
  return generate_trace(spec, rng);
}

// --- §5.3 / Fig. 5: with unbounded penalties, cost dominates gains -------

TEST(Headline, CostAwareBeatsFirstPriceUnderUnboundedPenalties) {
  // FirstPrice's penalty spiral compounds with trace length and depends on
  // whether a backlog episode develops, so single seeds are noisy: average
  // three 3000-job seeds (the full 5000-job benches show 40–300%).
  double fp = 0.0, fr = 0.0;
  for (std::uint64_t key : {1u, 11u, 21u}) {
    const Trace trace = make(
        presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, 3000), key);
    fp += run_single_site(trace, config16(0.0), PolicySpec::first_price(),
                          std::nullopt)
              .total_yield;
    fr += run_single_site(trace, config16(), PolicySpec::first_reward(0.1),
                          std::nullopt)
              .total_yield;
  }
  EXPECT_GT(fr, fp * 1.15);
  EXPECT_GT(fp, 0.0);  // baseline meaningful (positive) at this calibration
}

TEST(Headline, LowAlphaBeatsHighAlphaUnderUnboundedPenalties) {
  const Trace trace = make(
      presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, kJobs), 2);
  const double lo = run_single_site(trace, config16(),
                                    PolicySpec::first_reward(0.1),
                                    std::nullopt)
                        .total_yield;
  const double hi = run_single_site(trace, config16(),
                                    PolicySpec::first_reward(0.9),
                                    std::nullopt)
                        .total_yield;
  EXPECT_GT(lo, hi);
}

// --- Fig. 4: with bounded penalties, the hybrid is best ------------------

TEST(Headline, HybridBeatsFirstPriceUnderBoundedPenalties) {
  const Trace trace = make(
      presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, kJobs), 3);
  const double fp = run_single_site(trace, config16(0.0),
                                    PolicySpec::first_price(), std::nullopt)
                        .total_yield;
  const double hybrid = run_single_site(trace, config16(),
                                        PolicySpec::first_reward(0.3),
                                        std::nullopt)
                            .total_yield;
  EXPECT_GT(hybrid, fp);
}

// --- Fig. 6: admission control is what makes overload profitable ---------

TEST(Headline, AdmissionControlRescuesOverload) {
  const Trace trace = make(presets::admission_mix(3.0, kJobs), 4);
  const double open = run_single_site(trace, config16(0.0),
                                      PolicySpec::first_price(),
                                      std::nullopt)
                          .yield_rate;
  const double gated = run_single_site(trace, config16(),
                                       PolicySpec::first_reward(0.2),
                                       SlackAdmissionConfig{180.0, false})
                           .yield_rate;
  EXPECT_LT(open, 0.0);    // penalties eat the open site alive
  EXPECT_GT(gated, 10.0);  // the gated site stays solidly profitable
}

TEST(Headline, YieldRateRisesWithLoadUnderAdmission) {
  auto rate_at = [&](double load, std::uint64_t key) {
    const Trace trace = make(presets::admission_mix(load, kJobs), key);
    return run_single_site(trace, config16(),
                           PolicySpec::first_reward(0.2),
                           SlackAdmissionConfig{180.0, false})
        .yield_rate;
  };
  const double at_1 = rate_at(1.0, 5);
  const double at_3 = rate_at(3.0, 6);
  // "Increasing load factor initially increases the yield per unit time,
  // since the scheduler ... is free to reject the tasks that are least
  // worthwhile."
  EXPECT_GT(at_3, at_1 * 1.3);
}

// --- Fig. 7: the optimal threshold depends on load -----------------------

TEST(Headline, PositiveThresholdHurtsAtUnderload) {
  const Trace trace = make(presets::admission_mix(0.6, kJobs), 7);
  const double open = run_single_site(trace, config16(),
                                      PolicySpec::first_reward(0.2),
                                      std::nullopt)
                          .yield_rate;
  const double strict = run_single_site(trace, config16(),
                                        PolicySpec::first_reward(0.2),
                                        SlackAdmissionConfig{400.0, false})
                            .yield_rate;
  EXPECT_LT(strict, open);
}

TEST(Headline, ModerateThresholdWinsAtOverload) {
  const Trace trace = make(presets::admission_mix(2.0, kJobs), 8);
  const double open = run_single_site(trace, config16(),
                                      PolicySpec::first_reward(0.2),
                                      std::nullopt)
                          .yield_rate;
  const double gated = run_single_site(trace, config16(),
                                       PolicySpec::first_reward(0.2),
                                       SlackAdmissionConfig{100.0, false})
                           .yield_rate;
  EXPECT_GT(gated, open + std::abs(open) * 0.5);
}

// --- Fig. 3 anchor: PV degenerates to FirstPrice at discount zero --------

TEST(Headline, PvEqualsFirstPriceAtDiscountZero) {
  const Trace trace = make(presets::millennium_mix(4.0, kJobs), 9);
  const double fp = run_single_site(trace, config16(0.0),
                                    PolicySpec::first_price(), std::nullopt)
                        .total_yield;
  const double pv = run_single_site(trace, config16(0.0),
                                    PolicySpec::present_value(),
                                    std::nullopt)
                        .total_yield;
  EXPECT_EQ(fp, pv);
}

// --- §4: value-aware policies beat the value-blind baselines -------------

TEST(Headline, FirstPriceBeatsRandomAndFcfsOnValue) {
  const Trace trace = make(
      presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, kJobs), 10);
  const double fp = run_single_site(trace, config16(0.0),
                                    PolicySpec::first_price(), std::nullopt)
                        .total_yield;
  for (const PolicySpec& baseline :
       {PolicySpec::fcfs(), PolicySpec::random(1)}) {
    const double y =
        run_single_site(trace, config16(0.0), baseline, std::nullopt)
            .total_yield;
    EXPECT_GT(fp, y) << baseline.to_string();
  }
}

}  // namespace
}  // namespace mbts
