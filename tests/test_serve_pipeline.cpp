// Pipelined-protocol tests for the serve front end (ctest label `serve`):
// tagged bids with many in flight per connection, against a real server on
// an ephemeral port. The headline assertion is the replay contract under
// pipelining — a 120-bid tagged session drains to the same fingerprint a
// batch Market::run() produces from the admitted stream — plus a concurrent
// multi-connection soak (every submitted tag answered exactly once) that
// doubles as the TSan workout for the reactor, and a run on the poll(2)
// fallback backend so the non-epoll path stays covered on Linux CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "experiments/fingerprint.hpp"
#include "serve/broker_service.hpp"
#include "serve/pacing_clock.hpp"
#include "serve/preset.hpp"
#include "serve/server.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

using serve::BrokerService;
using serve::ServeConfig;
using serve::ServeServer;
using serve::ServerConfig;

/// Blocking line client with a sliding tagged-bid window (the serve_client
/// --pipeline mode, distilled).
class PipelineClient {
 public:
  explicit PipelineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~PipelineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_line(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// "AWARD t7 ..." -> ("AWARD", "t7"). Returns false on malformed replies.
  static bool split_reply(const std::string& reply, std::string* verdict,
                          std::string* tag) {
    const std::size_t a = reply.find(' ');
    if (a == std::string::npos) return false;
    std::size_t b = reply.find(' ', a + 1);
    if (b == std::string::npos) b = reply.size();
    *verdict = reply.substr(0, a);
    *tag = reply.substr(a + 1, b - a - 1);
    return true;
  }

  /// Drives `bids` tagged bids with at most `window` in flight; returns the
  /// number of replies whose verdict was AWARD or REJECT (the rest BUSY),
  /// or -1 on any wire/conservation violation. Tags are "<prefix><index>".
  int run_window(const std::vector<Task>& bids, std::size_t window,
                 const std::string& prefix) {
    std::size_t inflight = 0;
    int resolved = 0;
    std::unordered_map<std::string, int> answers;
    std::string line, verdict, tag;
    for (std::size_t i = 0; i < bids.size(); ++i) {
      char bound[64] = "inf";
      if (bids[i].value.bounded())
        std::snprintf(bound, sizeof(bound), "%.17g",
                      bids[i].value.penalty_bound());
      char bid[320];
      std::snprintf(bid, sizeof(bid), "BID %s%zu %.17g %.17g %.17g %s",
                    prefix.c_str(), i, bids[i].runtime,
                    bids[i].value.max_value(), bids[i].value.decay(), bound);
      if (!send_line(bid)) return -1;
      ++inflight;
      while (inflight >= window) {
        if (!recv_line(&line) || !split_reply(line, &verdict, &tag))
          return -1;
        ++answers[tag];
        --inflight;
        if (verdict == "AWARD" || verdict == "REJECT") ++resolved;
        else if (verdict != "BUSY") return -1;
      }
    }
    while (inflight > 0) {
      if (!recv_line(&line) || !split_reply(line, &verdict, &tag)) return -1;
      ++answers[tag];
      --inflight;
      if (verdict == "AWARD" || verdict == "REJECT") ++resolved;
      else if (verdict != "BUSY") return -1;
    }
    // Conservation: every tag answered exactly once, no strays.
    if (answers.size() != bids.size()) return -1;
    for (std::size_t i = 0; i < bids.size(); ++i) {
      auto it = answers.find(prefix + std::to_string(i));
      if (it == answers.end() || it->second != 1) return -1;
    }
    return resolved;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

Trace bid_stream(std::size_t jobs, std::uint64_t seed) {
  WorkloadSpec spec = presets::admission_mix(2.0, jobs);
  Xoshiro256 rng = SeedSequence(seed).stream(0x7A5C);
  return generate_trace(spec, rng);
}

TEST(ServePipeline, TaggedWindowMatchesBatchReplayBitForBit) {
  // The acceptance bar of the pipelined protocol: a full 120-bid session
  // with 32 bids in flight — admission batching engaged — drains to stats
  // that a batch run over the admitted stream reproduces exactly.
  WallPacingClock clock(500.0);
  ServeConfig serve_config;
  serve_config.market = serve::fig1_market(11);
  BrokerService service(serve_config, &clock);
  service.start();
  ServeServer server(ServerConfig{}, &service);
  server.start();

  const Trace trace = bid_stream(120, 7);
  int resolved = 0;
  {
    PipelineClient client(server.port());
    resolved = client.run_window(trace.tasks, 32, "t");
  }
  ASSERT_GE(resolved, 0) << "wire or conservation violation";
  // Default queue capacity (256) swallows a 32-deep window: nothing BUSY.
  EXPECT_EQ(static_cast<std::size_t>(resolved), trace.tasks.size());

  server.stop();
  const MarketStats live = service.drain(server.external_gauges());
  EXPECT_EQ(live.bids, trace.tasks.size());
  // Pipelining actually batched admissions (else this test regressed to
  // lockstep and proves nothing about the batched pop path).
  EXPECT_LT(service.admission_batches(), service.batched_bids());

  Market batch(serve_config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServePipeline, ConcurrentPipelinedSoakConservesEveryTag) {
  // Many pipelined connections against few reactor threads, with a stalled
  // engine forcing BUSY rejections to interleave with awards. Every one of
  // the 8x60 tags must come back exactly once. This is the TSan workout:
  // completions, adoptions, and wakeups cross threads on every bid.
  WallPacingClock clock(500.0);
  ServeConfig serve_config;
  serve_config.market = serve::fig1_market(11);
  serve_config.queue_capacity = 32;
  serve_config.process_stall = std::chrono::milliseconds(1);
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.session_threads = 2;
  ServeServer server(server_config, &service);
  server.start();

  const Trace trace = bid_stream(60, 3);
  constexpr std::size_t kClients = 8;
  std::atomic<int> bad{0};
  std::atomic<long> resolved{0};
  std::vector<std::thread> drivers;
  for (std::size_t c = 0; c < kClients; ++c) {
    drivers.emplace_back([&, c] {
      // Built up piecewise: GCC 12's -O2 restrict checker false-positives
      // on the `"c" + std::to_string(c) + "-"` rvalue chain.
      std::string prefix = "c";
      prefix += std::to_string(c);
      prefix += '-';
      PipelineClient client(server.port());
      const int r = client.run_window(trace.tasks, 16, prefix);
      if (r < 0) ++bad;
      else resolved += r;
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(bad.load(), 0) << "a connection lost or double-answered a tag";
  EXPECT_EQ(static_cast<std::uint64_t>(resolved.load()), service.admitted());
  EXPECT_EQ(service.admitted() + service.rejected_backpressure(),
            kClients * trace.tasks.size());

  server.stop();
  const MarketStats live = service.drain(server.external_gauges());
  EXPECT_EQ(live.bids, service.admitted());
  // And even under concurrent interleaved admission, the replay contract
  // holds for whatever order the bids landed in.
  Market batch(serve_config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServePipeline, PollBackendServesPipelinedSessions) {
  // Same protocol over the portable poll(2) reactor backend — the fallback
  // must not rot just because Linux CI defaults to epoll.
  WallPacingClock clock(500.0);
  ServeConfig serve_config;
  serve_config.market = serve::fig1_market(11);
  BrokerService service(serve_config, &clock);
  service.start();
  ServerConfig server_config;
  server_config.force_poll_backend = true;
  server_config.session_threads = 2;
  ServeServer server(server_config, &service);
  server.start();

  const Trace trace = bid_stream(50, 5);
  PipelineClient client(server.port());
  const int resolved = client.run_window(trace.tasks, 8, "p");
  ASSERT_GE(resolved, 0) << "wire or conservation violation";
  EXPECT_EQ(static_cast<std::size_t>(resolved), trace.tasks.size());
  EXPECT_TRUE(client.send_line("QUIT"));
  std::string line;
  ASSERT_TRUE(client.recv_line(&line));
  EXPECT_EQ(line, "BYE");

  server.stop();
  const MarketStats live = service.drain(server.external_gauges());
  Market batch(serve_config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

}  // namespace
}  // namespace mbts
