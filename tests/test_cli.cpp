#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "job count");
  const auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("jobs"), 5000);
}

TEST(Cli, EqualsFormParses) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "job count");
  const auto argv = argv_of({"--jobs=123"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("jobs"), 123);
}

TEST(Cli, SpaceFormParses) {
  CliParser cli("prog", "test");
  cli.add_flag("load", "1.0", "load factor");
  const auto argv = argv_of({"--load", "2.5"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 2.5);
}

TEST(Cli, BareBooleanSetsTrue) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "false", "chatty");
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, NoPrefixDisablesBoolean) {
  CliParser cli("prog", "test");
  cli.add_flag("preempt", "true", "preemption");
  const auto argv = argv_of({"--no-preempt"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_bool("preempt"));
}

TEST(Cli, BooleanEqualsForm) {
  CliParser cli("prog", "test");
  cli.add_flag("preempt", "true", "preemption");
  const auto argv = argv_of({"--preempt=false"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_bool("preempt"));
}

TEST(Cli, UnknownFlagFailsParse) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--bogus=1"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const auto argv = argv_of({"--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"first", "--jobs=3", "second"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(Cli, NonNumericIntThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--jobs=abc"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_int("jobs"), CheckError);
}

TEST(Cli, NonNumericDoubleThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("load", "1.0", "load");
  const auto argv = argv_of({"--load=fast"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_double("load"), CheckError);
}

TEST(Cli, UnregisteredAccessThrows) {
  CliParser cli("prog", "test");
  EXPECT_THROW(cli.get_string("nope"), CheckError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("x", "1", "x");
  EXPECT_THROW(cli.add_flag("x", "2", "again"), CheckError);
}

TEST(Cli, NegativeNumberAsValue) {
  CliParser cli("prog", "test");
  cli.add_flag("threshold", "0", "slack threshold");
  const auto argv = argv_of({"--threshold=-200"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("threshold"), -200);
}

// Regression: a value-typed flag at end of argv used to be silently set to
// "true" (the bare-boolean branch) and only exploded later in get_int.
TEST(Cli, ValueFlagAtEndOfArgvIsUsageError) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--jobs"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

// Regression: same footgun when the next token is another --flag.
TEST(Cli, ValueFlagFollowedByFlagIsUsageError) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  cli.add_flag("verbose", "false", "chatty");
  const auto argv = argv_of({"--jobs", "--verbose"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

// Regression: --no-jobs used to set jobs="false"; the no- form is only
// meaningful for flags with boolean defaults.
TEST(Cli, NoPrefixRejectedForNonBoolean) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--no-jobs"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, NoPrefixWithValueIsUsageError) {
  CliParser cli("prog", "test");
  cli.add_flag("preempt", "true", "preemption");
  const auto argv = argv_of({"--no-preempt=yes"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

// Pinned: --flag= is an explicit empty value, not an error. get_string
// returns "", and the numeric accessors reject it loudly.
TEST(Cli, ExplicitEmptyValueIsKept) {
  CliParser cli("prog", "test");
  cli.add_flag("save", "default.csv", "output path");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--save=", "--jobs="});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_string("save"), "");
  EXPECT_THROW(cli.get_int("jobs"), CheckError);
  EXPECT_THROW(cli.get_uint("jobs"), CheckError);
}

TEST(Cli, GetUintParsesNonNegative) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "jobs");
  const auto argv = argv_of({"--jobs=123"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_uint("jobs"), 123u);
}

// The motivating bug: --jobs=-1 cast through get_int became ~2^64.
TEST(Cli, GetUintRejectsNegative) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "jobs");
  cli.add_flag("shards", "1", "shards");
  const auto argv = argv_of({"--jobs=-1", "--shards=-3"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_uint("jobs"), CheckError);
  EXPECT_THROW(cli.get_uint("shards"), CheckError);
}

TEST(Cli, GetUintRejectsNonNumeric) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--jobs=12x"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_uint("jobs"), CheckError);
}

// A value-typed flag may still consume a following non-flag token, even a
// negative number (space form): only ---prefixed lookahead is refused.
TEST(Cli, SpaceFormStillConsumesNegativeValue) {
  CliParser cli("prog", "test");
  cli.add_flag("threshold", "0", "slack threshold");
  const auto argv = argv_of({"--threshold", "-200"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("threshold"), -200);
}

// A bare boolean at end of argv is still fine — only value-typed flags
// require a value.
TEST(Cli, BareBooleanAtEndOfArgvStillTrue) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "false", "chatty");
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

// Booleans never consume the next token, so "--verbose true" leaves "true"
// as a positional (pinned, pre-existing behavior).
TEST(Cli, BooleanDoesNotConsumeNextToken) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "false", "chatty");
  const auto argv = argv_of({"--verbose", "extra"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"extra"}));
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  CliParser cli("prog", "does things");
  cli.add_flag("jobs", "5000", "how many jobs");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("5000"), std::string::npos);
  EXPECT_NE(usage.find("how many jobs"), std::string::npos);
}

}  // namespace
}  // namespace mbts
