#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "job count");
  const auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("jobs"), 5000);
}

TEST(Cli, EqualsFormParses) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "5000", "job count");
  const auto argv = argv_of({"--jobs=123"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("jobs"), 123);
}

TEST(Cli, SpaceFormParses) {
  CliParser cli("prog", "test");
  cli.add_flag("load", "1.0", "load factor");
  const auto argv = argv_of({"--load", "2.5"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 2.5);
}

TEST(Cli, BareBooleanSetsTrue) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "false", "chatty");
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, NoPrefixDisablesBoolean) {
  CliParser cli("prog", "test");
  cli.add_flag("preempt", "true", "preemption");
  const auto argv = argv_of({"--no-preempt"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_bool("preempt"));
}

TEST(Cli, BooleanEqualsForm) {
  CliParser cli("prog", "test");
  cli.add_flag("preempt", "true", "preemption");
  const auto argv = argv_of({"--preempt=false"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(cli.get_bool("preempt"));
}

TEST(Cli, UnknownFlagFailsParse) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--bogus=1"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const auto argv = argv_of({"--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"first", "--jobs=3", "second"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(Cli, NonNumericIntThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("jobs", "10", "jobs");
  const auto argv = argv_of({"--jobs=abc"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_int("jobs"), CheckError);
}

TEST(Cli, NonNumericDoubleThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("load", "1.0", "load");
  const auto argv = argv_of({"--load=fast"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_double("load"), CheckError);
}

TEST(Cli, UnregisteredAccessThrows) {
  CliParser cli("prog", "test");
  EXPECT_THROW(cli.get_string("nope"), CheckError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("x", "1", "x");
  EXPECT_THROW(cli.add_flag("x", "2", "again"), CheckError);
}

TEST(Cli, NegativeNumberAsValue) {
  CliParser cli("prog", "test");
  cli.add_flag("threshold", "0", "slack threshold");
  const auto argv = argv_of({"--threshold=-200"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("threshold"), -200);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  CliParser cli("prog", "does things");
  cli.add_flag("jobs", "5000", "how many jobs");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("5000"), std::string::npos);
  EXPECT_NE(usage.find("how many jobs"), std::string::npos);
}

}  // namespace
}  // namespace mbts
