// Tests for client budgets (§2: per-interval budgets on computing spend).
#include <gtest/gtest.h>

#include "market/market.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

TEST(Ledger, UnconfiguredClientIsUnconstrained) {
  ClientLedger ledger;
  EXPECT_FALSE(ledger.is_constrained(7));
  EXPECT_EQ(ledger.remaining(7, 0.0), kInf);
  EXPECT_TRUE(ledger.try_charge(7, 0.0, 1e12));
}

TEST(Ledger, ChargesAgainstBudget) {
  ClientLedger ledger;
  ledger.configure(1, {.budget_per_interval = 100.0, .interval = kInf});
  EXPECT_TRUE(ledger.is_constrained(1));
  EXPECT_TRUE(ledger.try_charge(1, 0.0, 60.0));
  EXPECT_DOUBLE_EQ(ledger.remaining(1, 0.0), 40.0);
  EXPECT_FALSE(ledger.try_charge(1, 0.0, 50.0));
  EXPECT_DOUBLE_EQ(ledger.remaining(1, 0.0), 40.0);  // failed charge is free
  EXPECT_TRUE(ledger.try_charge(1, 0.0, 40.0));
  EXPECT_DOUBLE_EQ(ledger.remaining(1, 0.0), 0.0);
}

TEST(Ledger, IntervalsReplenish) {
  ClientLedger ledger;
  ledger.configure(1, {.budget_per_interval = 100.0, .interval = 50.0});
  EXPECT_TRUE(ledger.try_charge(1, 10.0, 100.0));
  EXPECT_FALSE(ledger.try_charge(1, 49.0, 1.0));
  // New interval at t = 50.
  EXPECT_TRUE(ledger.try_charge(1, 50.0, 100.0));
  EXPECT_DOUBLE_EQ(ledger.total_spent(1), 200.0);
}

TEST(Ledger, NegativeChargeCreditsInterval) {
  ClientLedger ledger;
  ledger.configure(1, {.budget_per_interval = 100.0, .interval = kInf});
  EXPECT_TRUE(ledger.try_charge(1, 0.0, 100.0));
  EXPECT_TRUE(ledger.try_charge(1, 0.0, -30.0));  // refund
  EXPECT_DOUBLE_EQ(ledger.remaining(1, 0.0), 30.0);
}

TEST(Ledger, ClientsAreIndependent) {
  ClientLedger ledger;
  ledger.configure(1, {.budget_per_interval = 10.0, .interval = kInf});
  ledger.configure(2, {.budget_per_interval = 10.0, .interval = kInf});
  EXPECT_TRUE(ledger.try_charge(1, 0.0, 10.0));
  EXPECT_TRUE(ledger.try_charge(2, 0.0, 10.0));
  EXPECT_FALSE(ledger.try_charge(1, 0.0, 1.0));
}

TEST(Ledger, InvalidConfigThrows) {
  ClientLedger ledger;
  EXPECT_THROW(
      ledger.configure(1, {.budget_per_interval = -1.0, .interval = 10.0}),
      CheckError);
  EXPECT_THROW(
      ledger.configure(1, {.budget_per_interval = 10.0, .interval = 0.0}),
      CheckError);
}

// --- Market integration ---------------------------------------------------

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

SiteAgentConfig open_site(SiteId id, std::size_t procs) {
  SiteAgentConfig config;
  config.id = id;
  config.name = "site" + std::to_string(id);
  config.scheduler.processors = procs;
  config.policy = PolicySpec::first_price();
  config.use_slack_admission = false;
  return config;
}

TEST(MarketBudget, UnaffordableBidsAreDropped) {
  MarketConfig config;
  config.sites.push_back(open_site(0, 4));
  // Client 0 can afford exactly two 100-value tasks.
  config.client_budgets[0] = {.budget_per_interval = 200.0,
                              .interval = kInf};
  Market market(config);
  Trace trace;
  for (TaskId i = 0; i < 5; ++i)
    trace.tasks.push_back(make_task(i, double(i), 10.0, 100.0, 0.0));
  market.inject(trace, /*client=*/0);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 2u);
  EXPECT_EQ(stats.unaffordable, 3u);
  EXPECT_EQ(stats.rejected_everywhere, 0u);
  EXPECT_DOUBLE_EQ(market.ledger().total_spent(0), 200.0);
}

TEST(MarketBudget, BudgetReplenishesAcrossIntervals) {
  MarketConfig config;
  config.sites.push_back(open_site(0, 4));
  config.client_budgets[0] = {.budget_per_interval = 100.0,
                              .interval = 100.0};
  Market market(config);
  Trace trace;
  // One affordable task per interval, plus one extra in the first interval.
  trace.tasks = {make_task(0, 0.0, 10.0, 100.0, 0.0),
                 make_task(1, 1.0, 10.0, 100.0, 0.0),
                 make_task(2, 150.0, 10.0, 100.0, 0.0)};
  market.inject(trace, 0);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 2u);  // task 1 exceeded interval 0's budget
  EXPECT_EQ(stats.unaffordable, 1u);
}

TEST(MarketBudget, UnconstrainedClientUnaffected) {
  MarketConfig config;
  config.sites.push_back(open_site(0, 4));
  Market market(config);
  Trace trace;
  for (TaskId i = 0; i < 5; ++i)
    trace.tasks.push_back(make_task(i, double(i), 10.0, 100.0, 0.0));
  market.inject(trace, 0);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 5u);
  EXPECT_EQ(stats.unaffordable, 0u);
}

TEST(MarketBudget, FallsThroughToCheaperSite) {
  // Site 0 quotes full price (idle); site 1 is busy so it quotes less.
  // With a budget below the expensive quote but above the cheap one, the
  // broker must land the bid on the cheaper site.
  MarketConfig config;
  config.sites.push_back(open_site(0, 1));
  config.sites.push_back(open_site(1, 1));
  config.client_budgets[7] = {.budget_per_interval = 70.0, .interval = kInf};
  Market market(config);

  market.engine().schedule_at(0.0, EventPriority::kArrival, [&] {
    Bid filler{0, make_task(100, 0.0, 40.0, 1000.0, 0.0)};
    market.sites()[1]->award(filler, market.sites()[1]->quote(filler));
  });

  Trace trace;
  trace.tasks = {make_task(1, 1.0, 10.0, 100.0, 1.0)};
  market.inject(trace, 7);
  const MarketStats stats = market.run();
  EXPECT_EQ(stats.awarded, 1u);
  ASSERT_EQ(market.sites()[1]->contracts().size(), 2u);  // filler + probe
  EXPECT_EQ(market.sites()[0]->contracts().size(), 0u);
}

}  // namespace
}  // namespace mbts
