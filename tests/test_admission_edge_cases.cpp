// Admission-control edge cases at the boundaries of Eq. 7/8: zero decay
// (infinite slack either way), decay so high the slack is already negative
// at bid time, a threshold sitting exactly on the quoted slack, and bids
// arriving inside a site outage window.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/admission.hpp"
#include "core/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

SiteScheduler make_site(SimEngine& engine, double threshold,
                        std::size_t processors = 4) {
  SchedulerConfig config;
  config.processors = processors;
  return SiteScheduler(engine, config,
                       make_policy(PolicySpec::first_price()),
                       std::make_unique<SlackAdmission>(
                           SlackAdmissionConfig{threshold, false}));
}

// A zero-decay task never loses value, so its slack is infinite: it clears
// any finite threshold, however punishing.
TEST(AdmissionEdgeCases, ZeroDecayYieldsInfiniteSlack) {
  SimEngine engine;
  SiteScheduler site = make_site(engine, /*threshold=*/1e15);
  site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 100.0, 0.0)});
  engine.run();

  ASSERT_EQ(site.records().size(), 1u);
  const TaskRecord& record = site.records()[0];
  EXPECT_EQ(record.outcome, TaskOutcome::kCompleted);
  EXPECT_EQ(record.slack, kInf);
}

// Zero decay with a negative net (the candidate's Eq. 8 cost on pending
// tasks ranked behind it exceeds its own value) is the other branch of the
// 0/0 limit: slack -inf, rejected below any finite threshold.
TEST(AdmissionEdgeCases, ZeroDecayNegativeNetIsMinusInfinity) {
  SimEngine engine;
  SiteScheduler site = make_site(engine, /*threshold=*/-1e15,
                                 /*processors=*/1);
  // Task 0 occupies the processor; task 1 queues behind it (unit gain
  // ~5/30). The zero-decay candidate's unit gain is a flat 10/20, so it
  // slots ahead of task 1 and charges cost = decay * estimate = 20 against
  // a value of 10.
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 50.0, 100.0, 0.01),
      make_task(1, 1.0, 30.0, 5.0, 1.0),
      make_task(2, 2.0, 20.0, 10.0, 0.0),
  });
  engine.run();

  ASSERT_EQ(site.records().size(), 3u);
  EXPECT_EQ(site.records()[0].outcome, TaskOutcome::kCompleted);
  const TaskRecord& candidate = site.records()[2];
  EXPECT_EQ(candidate.outcome, TaskOutcome::kRejected);
  EXPECT_EQ(candidate.slack, -kInf);
}

// A decay rate high enough that the projected yield is already deep in
// penalty at the quoted completion makes the slack negative at bid time.
TEST(AdmissionEdgeCases, HighDecayGoesNegativeAtBidTime) {
  SimEngine engine;
  SiteScheduler site = make_site(engine, /*threshold=*/0.0,
                                 /*processors=*/1);
  // The queue head keeps the only processor busy for ~99 more units; the
  // candidate's value decays at 10/unit, so waiting costs ~990 against a
  // value of 10.
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 100.0, 100.0, 0.01),
      make_task(1, 1.0, 10.0, 10.0, 10.0),
  });
  engine.run();

  ASSERT_EQ(site.records().size(), 2u);
  const TaskRecord& candidate = site.records()[1];
  EXPECT_EQ(candidate.outcome, TaskOutcome::kRejected);
  EXPECT_LT(candidate.slack, 0.0);
  EXPECT_TRUE(std::isfinite(candidate.slack));
}

// The threshold comparison is inclusive: a bid whose slack lands exactly on
// the threshold is accepted, and one ulp above the slack rejects it. Run
// the identical bid against both thresholds (bounded value function, so the
// penalty bound is in play too).
TEST(AdmissionEdgeCases, SlackExactlyAtThresholdIsAccepted) {
  const Task probe = make_task(0, 0.0, 10.0, 100.0, 0.5, /*bound=*/50.0);

  double quoted_slack = 0.0;
  {
    SimEngine engine;
    SiteScheduler site = make_site(engine, /*threshold=*/-1e18);
    site.inject(std::vector<Task>{probe});
    engine.run();
    ASSERT_EQ(site.records()[0].outcome, TaskOutcome::kCompleted);
    quoted_slack = site.records()[0].slack;
    ASSERT_TRUE(std::isfinite(quoted_slack));
  }
  {
    SimEngine engine;
    SiteScheduler site = make_site(engine, quoted_slack);
    site.inject(std::vector<Task>{probe});
    engine.run();
    EXPECT_EQ(site.records()[0].outcome, TaskOutcome::kCompleted)
        << "slack exactly at the threshold must be accepted";
  }
  {
    SimEngine engine;
    SiteScheduler site = make_site(engine, std::nextafter(quoted_slack, kInf));
    site.inject(std::vector<Task>{probe});
    engine.run();
    EXPECT_EQ(site.records()[0].outcome, TaskOutcome::kRejected)
        << "one ulp above the quoted slack must reject";
  }
}

// A bid arriving inside an outage window is declined without consulting
// admission (zeroed quote); after recovery the site quotes normally again.
TEST(AdmissionEdgeCases, BidDuringOutageIsDeclinedWithZeroedQuote) {
  SimEngine engine;
  SiteScheduler site = make_site(engine, /*threshold=*/0.0);

  FaultPlan plan;
  plan.outages.push_back(SiteOutage{0, 2.0, 12.0});
  ASSERT_EQ("", plan.validate(1));
  FaultInjector injector(engine, plan, 1, 0.0, Xoshiro256(1));
  injector.arm(
      [&site](SiteId, const SiteOutage&) { site.crash(CrashMode::kKill); },
      [&site](SiteId) { site.recover(); });

  site.inject(std::vector<Task>{
      make_task(0, 5.0, 10.0, 100.0, 0.1),   // inside [2, 12): declined
      make_task(1, 20.0, 10.0, 100.0, 0.1),  // after recovery: accepted
  });
  engine.run();

  ASSERT_EQ(site.records().size(), 2u);
  const TaskRecord& during = site.records()[0];
  EXPECT_EQ(during.outcome, TaskOutcome::kRejected);
  EXPECT_EQ(during.quoted_completion, 0.0);
  EXPECT_EQ(during.quoted_yield, 0.0);
  EXPECT_EQ(during.slack, 0.0);

  const TaskRecord& after = site.records()[1];
  EXPECT_EQ(after.outcome, TaskOutcome::kCompleted);
  EXPECT_GT(after.slack, 0.0);
  EXPECT_EQ(site.stats().crashes, 1u);
}

}  // namespace
}  // namespace mbts
