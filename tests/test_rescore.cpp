// Tests for the enqueue-time (stale-key) priority mode — the O(log n)
// heap-dispatch regime §5.2 alludes to, as opposed to rescoring the whole
// mix at every dispatch.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

std::vector<double> completions(const Trace& trace, RescorePolicy rescore,
                                const PolicySpec& policy,
                                bool preemption = true) {
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 2;
  config.preemption = preemption;
  config.rescore = rescore;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config, make_policy(policy),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(trace.tasks);
  engine.run();
  std::vector<double> out;
  for (const TaskRecord& r : site.records()) out.push_back(r.completion);
  return out;
}

TEST(Rescore, TimeInvariantPoliciesUnaffected) {
  // FCFS keys never drift; SWPT keys are stable while a task is *queued*
  // (only the remaining time of a running task changes, which matters only
  // under preemption). So FCFS must match in both modes, SWPT without
  // preemption.
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 2;
  spec.runtime = DistSpec::exponential(10.0);
  spec.runtime.floor = 0.5;
  Xoshiro256 rng(3);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_EQ(
      completions(trace, RescorePolicy::kFresh, PolicySpec::fcfs(), true),
      completions(trace, RescorePolicy::kAtEnqueue, PolicySpec::fcfs(),
                  true));
  EXPECT_EQ(
      completions(trace, RescorePolicy::kFresh, PolicySpec::swpt(), false),
      completions(trace, RescorePolicy::kAtEnqueue, PolicySpec::swpt(),
                  false));
}

TEST(Rescore, StaleFirstPriceDivergesFromFresh) {
  // FirstPrice's unit gain decays while tasks queue: under load the stale
  // ordering must differ from fresh rescoring on at least some tasks.
  WorkloadSpec spec;
  spec.num_jobs = 400;
  spec.processors = 2;
  spec.load_factor = 1.3;
  spec.runtime = DistSpec::exponential(10.0);
  spec.runtime.floor = 0.5;
  Xoshiro256 rng(5);
  const Trace trace = generate_trace(spec, rng);
  EXPECT_NE(
      completions(trace, RescorePolicy::kFresh, PolicySpec::first_price()),
      completions(trace, RescorePolicy::kAtEnqueue,
                  PolicySpec::first_price()));
}

TEST(Rescore, StaleFirstPriceKeepsDecayedTaskRank) {
  // Task 0 is enqueued with a high score behind a blocker but decays to
  // worthlessness while waiting. Fresh rescoring lets the newer task 1
  // overtake it; stale keys keep task 0's enqueue-time rank.
  SimEngine engine_fresh, engine_stale;
  auto run = [&](SimEngine& engine, RescorePolicy rescore) {
    SchedulerConfig config;
    config.processors = 1;
    config.preemption = false;
    config.rescore = rescore;
    auto site = std::make_unique<SiteScheduler>(
        engine, config, make_policy(PolicySpec::first_price()),
        std::make_unique<AcceptAllAdmission>());
    std::vector<Task> tasks{
        make_task(9, 0.0, 100.0, 10000.0, 0.0),  // blocker
        make_task(0, 0.0, 10.0, 200.0, 1.9),     // decays to ~10 by t=100
        make_task(1, 50.0, 10.0, 100.0, 0.0),    // steady 100
    };
    site->inject(tasks);
    engine.run();
    double c0 = 0.0, c1 = 0.0;
    for (const TaskRecord& r : site->records()) {
      if (r.task.id == 0) c0 = r.completion;
      if (r.task.id == 1) c1 = r.completion;
    }
    return std::make_pair(c0, c1);
  };
  // Fresh: at t=100 task 0's unit gain ≈ (200-1.9*100)/10 ≈ 1, task 1's is
  // 100/10 = 10 → task 1 first.
  const auto [fresh0, fresh1] = run(engine_fresh, RescorePolicy::kFresh);
  EXPECT_GT(fresh0, fresh1);
  // Stale: task 0 keeps its enqueue-time gain of 20 → task 0 first.
  const auto [stale0, stale1] = run(engine_stale, RescorePolicy::kAtEnqueue);
  EXPECT_LT(stale0, stale1);
}

TEST(Rescore, PreemptionRefreshesCachedScore) {
  // A preempted task re-enters the queue with an up-to-date score, so it
  // does not carry a pre-preemption rank forever.
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  config.preemption = true;
  config.rescore = RescorePolicy::kAtEnqueue;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 50.0, 50.0, 0.0),
      make_task(1, 10.0, 10.0, 10000.0, 0.0),
  });
  engine.run();
  EXPECT_EQ(site.stats().completed, 2u);
  EXPECT_EQ(site.stats().preemptions, 1u);
}

TEST(Rescore, StaleModeStillDrainsUnderLoad) {
  WorkloadSpec spec;
  spec.num_jobs = 500;
  spec.processors = 4;
  spec.load_factor = 1.5;
  spec.runtime = DistSpec::exponential(15.0);
  spec.runtime.floor = 0.5;
  Xoshiro256 rng(9);
  const Trace trace = generate_trace(spec, rng);
  const auto done =
      completions(trace, RescorePolicy::kAtEnqueue,
                  PolicySpec::first_reward(0.3));
  EXPECT_EQ(done.size(), 500u);
  for (double c : done) EXPECT_GT(c, 0.0);
}

}  // namespace
}  // namespace mbts
