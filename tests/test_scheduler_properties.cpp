// Property-based invariants of the site scheduler, swept across every
// scheduling policy, preemption mode, and penalty model (TEST_P).
//
// Whatever the policy decides, a correct scheduler must conserve work,
// complete every accepted task exactly once, never exceed capacity, never
// start a task before its arrival, and settle every yield consistently with
// the task's value function at its recorded completion.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/scheduler.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

using Param = std::tuple<std::string /*policy*/, bool /*preemption*/,
                         PenaltyModel, double /*load*/>;

class SchedulerInvariants : public testing::TestWithParam<Param> {
 protected:
  static Trace make_trace(PenaltyModel penalty, double load) {
    WorkloadSpec spec;
    spec.num_jobs = 400;
    spec.processors = 4;
    spec.load_factor = load;
    spec.runtime = DistSpec::exponential(20.0);
    spec.runtime.floor = 0.5;
    spec.penalty = penalty;
    spec.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = 0.05, .cv = 0.25,
                  .floor = 1e-4};
    Xoshiro256 rng(2024);
    return generate_trace(spec, rng);
  }
};

TEST_P(SchedulerInvariants, RunDrainsAndSettlesConsistently) {
  const auto& [policy_text, preemption, penalty, load] = GetParam();
  const Trace trace = make_trace(penalty, load);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 4;
  config.preemption = preemption;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(parse_policy_spec(policy_text)),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(trace.tasks);
  engine.run();

  // 1. The run drains: nothing pending or running, all events consumed.
  EXPECT_TRUE(site.idle());
  EXPECT_TRUE(engine.empty());

  // 2. Every submitted task has exactly one record and completed.
  ASSERT_EQ(site.records().size(), trace.size());
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.completed, trace.size());
  EXPECT_EQ(stats.rejected, 0u);

  double first_arrival = kInf;
  double last_completion = 0.0;
  double total_yield = 0.0;
  for (const TaskRecord& r : site.records()) {
    // 3. Causality: start after arrival, completion after start by at
    //    least the full runtime (work conservation per task).
    EXPECT_GE(r.first_start, r.task.arrival);
    EXPECT_GE(r.completion + 1e-9, r.first_start + r.task.runtime);
    // 4. Non-preemptive runs finish exactly runtime after their start.
    if (!preemption) {
      EXPECT_NEAR(r.completion, r.first_start + r.task.runtime, 1e-6);
      EXPECT_EQ(r.preemptions, 0);
    }
    // 5. Settlement: recorded yield equals the value function evaluated at
    //    the recorded completion.
    EXPECT_NEAR(r.realized_yield, r.task.yield_at_completion(r.completion),
                1e-9);
    first_arrival = std::min(first_arrival, r.task.arrival);
    last_completion = std::max(last_completion, r.completion);
    total_yield += r.realized_yield;
  }

  // 6. Aggregates agree with records.
  EXPECT_NEAR(stats.total_yield, total_yield, 1e-6);
  EXPECT_EQ(stats.first_arrival, first_arrival);
  EXPECT_EQ(stats.last_completion, last_completion);

  // 7. Work conservation in aggregate: utilization * capacity * busy-span
  //    equals total runtime (utilization is measured from the first
  //    processor acquisition, which is the first arrival's dispatch).
  double total_work = 0.0;
  for (const Task& t : trace.tasks) total_work += t.runtime;
  const double busy_integral =
      stats.utilization * 4.0 * (engine.now() - stats.first_arrival);
  EXPECT_NEAR(busy_integral, total_work, total_work * 1e-6);

  // 8. Capacity bound: the cluster cannot finish total_work before
  //    total_work / capacity elapses from time zero.
  EXPECT_GE(last_completion + 1e-9, total_work / 4.0);
}

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name)
    if (c == ':' || c == '.') c = '_';
  name += std::get<1>(info.param) ? "_preempt" : "_run2end";
  name += std::get<2>(info.param) == PenaltyModel::kUnbounded ? "_unbounded"
                                                              : "_bounded";
  const double load = std::get<3>(info.param);
  name += load < 1.0 ? "_light" : (load > 1.0 ? "_heavy" : "_critical");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByModeByPenaltyByLoad, SchedulerInvariants,
    testing::Combine(
        testing::Values("fcfs", "srpt", "swpt", "firstprice", "pv",
                        "firstreward:0", "firstreward:0.3", "firstreward:1",
                        "random"),
        testing::Bool(),
        testing::Values(PenaltyModel::kBoundedAtZero,
                        PenaltyModel::kUnbounded),
        testing::Values(0.7, 1.0, 2.0)),
    param_name);

// --- Admission-control invariants swept over thresholds ------------------

class AdmissionInvariants : public testing::TestWithParam<double> {};

TEST_P(AdmissionInvariants, RejectionIsMonotoneAndConsistent) {
  const double threshold = GetParam();
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 4;
  spec.load_factor = 1.5;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.penalty = PenaltyModel::kUnbounded;
  Xoshiro256 rng(11);
  const Trace trace = generate_trace(spec, rng);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 4;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(PolicySpec::first_reward(0.3)),
                     std::make_unique<SlackAdmission>(
                         SlackAdmissionConfig{threshold, false}));
  site.inject(trace.tasks);
  engine.run();

  const RunStats stats = site.stats();
  EXPECT_EQ(stats.accepted + stats.rejected, trace.size());
  EXPECT_EQ(stats.completed, stats.accepted);
  for (const TaskRecord& r : site.records()) {
    if (r.outcome == TaskOutcome::kRejected) {
      // The recorded slack must actually violate the threshold.
      EXPECT_LT(r.slack, threshold);
      EXPECT_EQ(r.realized_yield, 0.0);
    } else {
      EXPECT_GE(r.slack, threshold);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AdmissionInvariants,
                         testing::Values(-500.0, -100.0, 0.0, 100.0, 300.0,
                                         2000.0));

// Acceptance counts must fall monotonically as the threshold rises on the
// same trace *when admission decisions don't feed back into the queue* —
// with feedback (each acceptance deepens the queue) strict monotonicity can
// break, so we assert the trend across a wide threshold spread instead.
TEST(AdmissionTrend, HigherThresholdAcceptsFewer) {
  WorkloadSpec spec;
  spec.num_jobs = 400;
  spec.processors = 4;
  spec.load_factor = 2.0;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.penalty = PenaltyModel::kUnbounded;
  Xoshiro256 rng(13);
  const Trace trace = generate_trace(spec, rng);

  auto accepted_at = [&](double threshold) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.discount_rate = 0.01;
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.3)),
                       std::make_unique<SlackAdmission>(
                           SlackAdmissionConfig{threshold, false}));
    site.inject(trace.tasks);
    engine.run();
    return site.stats().accepted;
  };

  const std::size_t lenient = accepted_at(-100000.0);
  const std::size_t middle = accepted_at(100.0);
  const std::size_t strict = accepted_at(1500.0);
  EXPECT_GE(lenient, middle);
  EXPECT_GE(middle, strict);
  EXPECT_EQ(lenient, 400u);  // nothing can fall that far below zero slack
}

}  // namespace
}  // namespace mbts
