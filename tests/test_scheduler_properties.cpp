// Property-based invariants of the site scheduler, swept across every
// scheduling policy, preemption mode, and penalty model (TEST_P).
//
// Whatever the policy decides, a correct scheduler must conserve work,
// complete every accepted task exactly once, never exceed capacity, never
// start a task before its arrival, and settle every yield consistently with
// the task's value function at its recorded completion.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <tuple>

#include "core/scheduler.hpp"
#include "invariants.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

using Param = std::tuple<std::string /*policy*/, bool /*preemption*/,
                         PenaltyModel, double /*load*/>;

class SchedulerInvariants : public testing::TestWithParam<Param> {
 protected:
  static Trace make_trace(PenaltyModel penalty, double load) {
    WorkloadSpec spec;
    spec.num_jobs = 400;
    spec.processors = 4;
    spec.load_factor = load;
    spec.runtime = DistSpec::exponential(20.0);
    spec.runtime.floor = 0.5;
    spec.penalty = penalty;
    spec.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = 0.05, .cv = 0.25,
                  .floor = 1e-4};
    Xoshiro256 rng(2024);
    return generate_trace(spec, rng);
  }
};

TEST_P(SchedulerInvariants, RunDrainsAndSettlesConsistently) {
  const auto& [policy_text, preemption, penalty, load] = GetParam();
  const Trace trace = make_trace(penalty, load);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 4;
  config.preemption = preemption;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(parse_policy_spec(policy_text)),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(trace.tasks);
  engine.run();

  // 1. The run drains: nothing pending or running, all events consumed.
  EXPECT_TRUE(site.idle());
  EXPECT_TRUE(engine.empty());

  // 2. Every submitted task has exactly one record and completed.
  ASSERT_EQ(site.records().size(), trace.size());
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.completed, trace.size());
  EXPECT_EQ(stats.rejected, 0u);

  double first_arrival = kInf;
  double last_completion = 0.0;
  double total_yield = 0.0;
  for (const TaskRecord& r : site.records()) {
    // 3. Causality: start after arrival, completion after start by at
    //    least the full runtime (work conservation per task).
    EXPECT_GE(r.first_start, r.task.arrival);
    EXPECT_GE(r.completion + 1e-9, r.first_start + r.task.runtime);
    // 4. Non-preemptive runs finish exactly runtime after their start.
    if (!preemption) {
      EXPECT_NEAR(r.completion, r.first_start + r.task.runtime, 1e-6);
      EXPECT_EQ(r.preemptions, 0);
    }
    // 5. Settlement: recorded yield equals the value function evaluated at
    //    the recorded completion.
    EXPECT_NEAR(r.realized_yield, r.task.yield_at_completion(r.completion),
                1e-9);
    first_arrival = std::min(first_arrival, r.task.arrival);
    last_completion = std::max(last_completion, r.completion);
    total_yield += r.realized_yield;
  }

  // 6. Aggregates agree with records.
  EXPECT_NEAR(stats.total_yield, total_yield, 1e-6);
  EXPECT_EQ(stats.first_arrival, first_arrival);
  EXPECT_EQ(stats.last_completion, last_completion);

  // 7. Work conservation in aggregate: utilization * capacity * busy-span
  //    equals total runtime (utilization is measured from the first
  //    processor acquisition, which is the first arrival's dispatch).
  double total_work = 0.0;
  for (const Task& t : trace.tasks) total_work += t.runtime;
  const double busy_integral =
      stats.utilization * 4.0 * (engine.now() - stats.first_arrival);
  EXPECT_NEAR(busy_integral, total_work, total_work * 1e-6);

  // 8. Capacity bound: the cluster cannot finish total_work before
  //    total_work / capacity elapses from time zero.
  EXPECT_GE(last_completion + 1e-9, total_work / 4.0);

  // 9. Shared invariants (tests/invariants.hpp): consistent queues, no
  //    double completion, and a feasible schedule — with the full capacity
  //    sweep when service is continuous (non-preemptive).
  EXPECT_EQ("", invariants::check_mix_counts(site));
  EXPECT_EQ("", invariants::check_outcome_exclusivity(site.records()));
  EXPECT_EQ("", invariants::check_schedule_feasibility(
                    site.records(), config.processors,
                    /*continuous_service=*/!preemption));
}

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name)
    if (c == ':' || c == '.') c = '_';
  name += std::get<1>(info.param) ? "_preempt" : "_run2end";
  name += std::get<2>(info.param) == PenaltyModel::kUnbounded ? "_unbounded"
                                                              : "_bounded";
  const double load = std::get<3>(info.param);
  name += load < 1.0 ? "_light" : (load > 1.0 ? "_heavy" : "_critical");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByModeByPenaltyByLoad, SchedulerInvariants,
    testing::Combine(
        testing::Values("fcfs", "srpt", "swpt", "firstprice", "pv",
                        "firstreward:0", "firstreward:0.3", "firstreward:1",
                        "random"),
        testing::Bool(),
        testing::Values(PenaltyModel::kBoundedAtZero,
                        PenaltyModel::kUnbounded),
        testing::Values(0.7, 1.0, 2.0)),
    param_name);

// --- Admission-control invariants swept over thresholds ------------------

class AdmissionInvariants : public testing::TestWithParam<double> {};

TEST_P(AdmissionInvariants, RejectionIsMonotoneAndConsistent) {
  const double threshold = GetParam();
  WorkloadSpec spec;
  spec.num_jobs = 300;
  spec.processors = 4;
  spec.load_factor = 1.5;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.penalty = PenaltyModel::kUnbounded;
  Xoshiro256 rng(11);
  const Trace trace = generate_trace(spec, rng);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 4;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(PolicySpec::first_reward(0.3)),
                     std::make_unique<SlackAdmission>(
                         SlackAdmissionConfig{threshold, false}));
  site.inject(trace.tasks);
  engine.run();

  const RunStats stats = site.stats();
  EXPECT_EQ(stats.accepted + stats.rejected, trace.size());
  EXPECT_EQ(stats.completed, stats.accepted);
  for (const TaskRecord& r : site.records()) {
    if (r.outcome == TaskOutcome::kRejected) {
      // The recorded slack must actually violate the threshold.
      EXPECT_LT(r.slack, threshold);
      EXPECT_EQ(r.realized_yield, 0.0);
    } else {
      EXPECT_GE(r.slack, threshold);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AdmissionInvariants,
                         testing::Values(-500.0, -100.0, 0.0, 100.0, 300.0,
                                         2000.0));

// Acceptance counts must fall monotonically as the threshold rises on the
// same trace *when admission decisions don't feed back into the queue* —
// with feedback (each acceptance deepens the queue) strict monotonicity can
// break, so we assert the trend across a wide threshold spread instead.
TEST(AdmissionTrend, HigherThresholdAcceptsFewer) {
  WorkloadSpec spec;
  spec.num_jobs = 400;
  spec.processors = 4;
  spec.load_factor = 2.0;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.penalty = PenaltyModel::kUnbounded;
  Xoshiro256 rng(13);
  const Trace trace = generate_trace(spec, rng);

  auto accepted_at = [&](double threshold) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.discount_rate = 0.01;
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.3)),
                       std::make_unique<SlackAdmission>(
                           SlackAdmissionConfig{threshold, false}));
    site.inject(trace.tasks);
    engine.run();
    return site.stats().accepted;
  };

  const std::size_t lenient = accepted_at(-100000.0);
  const std::size_t middle = accepted_at(100.0);
  const std::size_t strict = accepted_at(1500.0);
  EXPECT_GE(lenient, middle);
  EXPECT_GE(middle, strict);
  EXPECT_EQ(lenient, 400u);  // nothing can fall that far below zero slack
}

// --- Width-1 nth_element fast path vs full sort --------------------------

// The dispatch fast path replaces a full sort with std::nth_element and
// keeps only *membership* in the top-k set. That is sound only because the
// rank comparator is a strict total order (score desc, running-first,
// id asc — ids are unique), so the top-k set is the same for any correct
// partial or full sort. Property-check it under heavy score ties.
TEST(WidthOneDispatch, NthElementTopSetMatchesFullSortUnderTies) {
  struct Row {
    double score;
    bool running;
    TaskId id;
  };
  const auto by_rank = [](const Row& a, const Row& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.running != b.running) return a.running;
    return a.id < b.id;
  };
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    const std::size_t k = std::min(n, 1 + rng.below(16));
    std::vector<Row> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Scores from a 4-value set so ties are the common case, not the edge.
      rows[i].score = static_cast<double>(rng.below(4)) * 2.5;
      rows[i].running = rng.below(2) == 0;
      rows[i].id = static_cast<TaskId>(i + 1);
    }
    std::vector<Row> partitioned = rows;
    if (k < n)
      std::nth_element(partitioned.begin(),
                       partitioned.begin() + static_cast<std::ptrdiff_t>(k),
                       partitioned.end(), by_rank);
    std::vector<Row> sorted = rows;
    std::sort(sorted.begin(), sorted.end(), by_rank);
    std::set<TaskId> top_partitioned;
    std::set<TaskId> top_sorted;
    for (std::size_t i = 0; i < k; ++i) {
      top_partitioned.insert(partitioned[i].id);
      top_sorted.insert(sorted[i].id);
    }
    EXPECT_EQ(top_partitioned, top_sorted) << "trial " << trial;
  }
}

// End-to-end tie resolution through the real dispatch: identical tasks give
// fully tied scores, so the comparator's id tie-break alone decides the
// running set — the lowest ids win, deterministically, in both dispatch
// modes.
TEST(WidthOneDispatch, FullScoreTiesResolveByTaskId) {
  for (const bool preemption : {false, true}) {
    std::vector<Task> tasks(32);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].id = static_cast<TaskId>(i + 1);
      tasks[i].arrival = 0.0;
      tasks[i].runtime = 10.0;
      tasks[i].value = ValueFunction::unbounded(100.0, 0.01);
    }
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 8;
    config.preemption = preemption;
    config.discount_rate = 0.01;
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.3)),
                       std::make_unique<AcceptAllAdmission>());
    site.preload(tasks);   // one coalesced dispatch over the whole backlog
    engine.run_until(0.0); // fire it without letting anything complete
    EXPECT_EQ(site.running_count(), 8u);
    for (const TaskRecord& r : site.records()) {
      if (r.task.id <= 8)
        EXPECT_EQ(r.first_start, 0.0) << "id " << r.task.id;
      else
        EXPECT_LT(r.first_start, 0.0) << "id " << r.task.id;
    }
  }
}

// Random ties with a predictable policy: SWPT ranks by decay / remaining
// time, so drawing decay and runtime from tiny discrete sets manufactures
// exact IEEE ties across distinct tasks. The selected set must equal the
// top-k of an independent full sort by (priority desc, id asc).
TEST(WidthOneDispatch, RandomTiedScoresMatchIndependentFullSort) {
  Xoshiro256 rng(505);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 24 + rng.below(40);
    const std::size_t procs = 4 + rng.below(8);
    std::vector<Task> tasks(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i].id = static_cast<TaskId>(i + 1);
      tasks[i].arrival = 0.0;
      tasks[i].runtime = rng.below(2) == 0 ? 5.0 : 10.0;
      tasks[i].value = ValueFunction::unbounded(
          100.0, rng.below(2) == 0 ? 0.2 : 0.4);
    }
    // Expected winners: SWPT priority is decay/runtime (both exact in IEEE
    // for these values), ties broken by id ascending.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double pa = tasks[a].value.decay() / tasks[a].runtime;
      const double pb = tasks[b].value.decay() / tasks[b].runtime;
      if (pa != pb) return pa > pb;
      return tasks[a].id < tasks[b].id;
    });
    std::set<TaskId> expect;
    for (std::size_t i = 0; i < std::min(procs, n); ++i)
      expect.insert(tasks[order[i]].id);

    SimEngine engine;
    SchedulerConfig config;
    config.processors = procs;
    config.preemption = false;
    SiteScheduler site(engine, config, make_policy(PolicySpec::swpt()),
                       std::make_unique<AcceptAllAdmission>());
    site.preload(tasks);
    engine.run_until(0.0);
    std::set<TaskId> started;
    for (const TaskRecord& r : site.records())
      if (r.first_start == 0.0) started.insert(r.task.id);
    EXPECT_EQ(started, expect) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mbts
