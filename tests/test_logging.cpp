#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace mbts {
namespace {

/// RAII: capture the logger sink and restore defaults afterwards.
class SinkCapture {
 public:
  SinkCapture() {
    saved_level_ = Logger::instance().level();
    Logger::instance().set_sink(&stream_);
  }
  ~SinkCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  LogLevel saved_level_;
};

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logging, EmitsAtOrAboveLevel) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  MBTS_INFO << "hidden";
  MBTS_WARN << "visible warn";
  MBTS_ERROR << "visible error";
  const std::string text = capture.text();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("visible warn"), std::string::npos);
  EXPECT_NE(text.find("visible error"), std::string::npos);
}

TEST(Logging, FormatsLevelPrefix) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  MBTS_INFO << "hello " << 42;
  EXPECT_NE(capture.text().find("[INFO] hello 42"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kOff);
  MBTS_ERROR << "nope";
  EXPECT_TRUE(capture.text().empty());
}

TEST(Logging, StreamOperatorsDoNotEvaluateWhenDisabled) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kError);
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return std::string("costly");
  };
  MBTS_DEBUG << expensive();
  EXPECT_EQ(calls, 0);
}

// Regression for the logger configuration races: enabled() reads the level
// on every MBTS_LOG with no lock, and sweep threads log while a test
// harness swaps sinks and levels. Level reads must be tear-free (atomic)
// and a message must land entirely in one sink. Run under TSan this test
// flagged the unsynchronized level before it became atomic.
TEST(Logging, ConcurrentWritersAndReconfiguration) {
  std::ostringstream sink_a, sink_b;
  Logger::instance().set_sink(&sink_a);
  Logger::instance().set_level(LogLevel::kInfo);

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 200; ++i)
        MBTS_INFO << "w" << t << " line " << i << " end";
    });
  }
  std::thread reconfigurer([&] {
    for (int i = 0; i < 100; ++i) {
      Logger::instance().set_sink(i % 2 ? &sink_b : &sink_a);
      Logger::instance().set_level(i % 3 ? LogLevel::kInfo
                                         : LogLevel::kWarn);
    }
    Logger::instance().set_level(LogLevel::kInfo);
  });
  for (std::thread& t : writers) t.join();
  reconfigurer.join();
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kInfo);

  // Every emitted line is whole: "[INFO] w<t> line <i> end\n" never
  // interleaves with another message in either sink.
  for (const std::ostringstream* sink : {&sink_a, &sink_b}) {
    std::istringstream lines(sink->str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      EXPECT_EQ(line.rfind("[INFO] w", 0), 0u) << line;
      EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
    }
  }
}

}  // namespace
}  // namespace mbts
