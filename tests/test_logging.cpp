#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mbts {
namespace {

/// RAII: capture the logger sink and restore defaults afterwards.
class SinkCapture {
 public:
  SinkCapture() {
    saved_level_ = Logger::instance().level();
    Logger::instance().set_sink(&stream_);
  }
  ~SinkCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  LogLevel saved_level_;
};

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logging, EmitsAtOrAboveLevel) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  MBTS_INFO << "hidden";
  MBTS_WARN << "visible warn";
  MBTS_ERROR << "visible error";
  const std::string text = capture.text();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("visible warn"), std::string::npos);
  EXPECT_NE(text.find("visible error"), std::string::npos);
}

TEST(Logging, FormatsLevelPrefix) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  MBTS_INFO << "hello " << 42;
  EXPECT_NE(capture.text().find("[INFO] hello 42"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kOff);
  MBTS_ERROR << "nope";
  EXPECT_TRUE(capture.text().empty());
}

TEST(Logging, StreamOperatorsDoNotEvaluateWhenDisabled) {
  SinkCapture capture;
  Logger::instance().set_level(LogLevel::kError);
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return std::string("costly");
  };
  MBTS_DEBUG << expensive();
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace mbts
