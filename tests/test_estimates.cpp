// Tests for the runtime-misestimation extension (§4 declares accurate
// estimates; exceedance handling is the paper's stated future work).
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double declared,
               double value, double decay) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.declared_runtime = declared;
  t.value = ValueFunction::unbounded(value, decay);
  return t;
}

TEST(Estimates, DefaultIsExact) {
  Task t = make_task(0, 0.0, 10.0, 0.0, 100.0, 1.0);
  EXPECT_EQ(t.estimate(), 10.0);
  EXPECT_TRUE(t.estimate_is_exact());
  t.declared_runtime = 10.0;
  EXPECT_TRUE(t.estimate_is_exact());
  t.declared_runtime = 12.0;
  EXPECT_FALSE(t.estimate_is_exact());
  EXPECT_EQ(t.estimate(), 12.0);
}

TEST(Estimates, DelayAnchoredToDeclaredRuntime) {
  // Declared 5 but actually takes 10: even an immediate start completes at
  // 10, which is 5 past the promised earliest completion.
  const Task t = make_task(0, 0.0, 10.0, 5.0, 100.0, 2.0);
  EXPECT_EQ(t.earliest_completion(), 5.0);
  EXPECT_EQ(t.delay_at_completion(10.0), 5.0);
  EXPECT_EQ(t.yield_at_completion(10.0), 90.0);
}

TEST(Estimates, OverDeclaredTaskEarnsFullValueEarly) {
  // Declared 20 but takes 10: completing at 10 is "early" — full value.
  const Task t = make_task(0, 0.0, 10.0, 20.0, 100.0, 2.0);
  EXPECT_EQ(t.delay_at_completion(10.0), 0.0);
  EXPECT_EQ(t.yield_at_completion(10.0), 100.0);
}

TEST(Estimates, ValidationRejectsBadDeclared) {
  Task t = make_task(0, 0.0, 10.0, -1.0, 100.0, 1.0);
  EXPECT_FALSE(validate_task(t).empty());
}

struct Harness {
  SimEngine engine;
  SiteScheduler site;
  explicit Harness(const PolicySpec& policy = PolicySpec::fcfs())
      : site(engine, SchedulerConfig{.processors = 1, .preemption = true},
             make_policy(policy), std::make_unique<AcceptAllAdmission>()) {}
  const TaskRecord& record(TaskId id) const {
    for (const TaskRecord& r : site.records())
      if (r.task.id == id) return r;
    throw std::runtime_error("no record");
  }
};

TEST(Estimates, ExecutionConsumesTrueRuntime) {
  Harness h;
  // Declared 5, actual 10: completes at the true 10.
  h.site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 5.0, 100.0, 1.0)});
  h.engine.run();
  const TaskRecord& r = h.record(0);
  EXPECT_EQ(r.completion, 10.0);
  // Contractual delay 5 => yield 95.
  EXPECT_EQ(r.realized_yield, 95.0);
}

TEST(Estimates, QuotesUseDeclaredRuntime) {
  Harness h;
  // An under-declared long task is running; the site believes it will be
  // free at its declared time.
  h.site.submit(make_task(0, 0.0, 100.0, 20.0, 100.0, 0.0));
  const AdmissionDecision d =
      h.site.quote(make_task(1, 0.0, 10.0, 0.0, 100.0, 0.0));
  EXPECT_EQ(d.expected_completion, 30.0);  // believed: 20 + 10
}

TEST(Estimates, ExceededEstimateStillCompletes) {
  Harness h(PolicySpec::first_price());
  h.site.inject(std::vector<Task>{
      make_task(0, 0.0, 50.0, 10.0, 100.0, 0.1),
      make_task(1, 0.0, 10.0, 10.0, 100.0, 0.1),
  });
  h.engine.run();
  EXPECT_EQ(h.site.stats().completed, 2u);
  // The under-declared task really occupied 50 units somewhere.
  EXPECT_GE(h.site.stats().last_completion, 60.0 - 1e-9);
}

TEST(Estimates, GeneratorLeavesEstimatesExactBydefault) {
  WorkloadSpec spec;
  spec.num_jobs = 100;
  Xoshiro256 rng(1);
  for (const Task& t : generate_trace(spec, rng).tasks)
    EXPECT_TRUE(t.estimate_is_exact());
}

TEST(Estimates, GeneratorErrorIsMeanOneAndSpreads) {
  WorkloadSpec spec;
  spec.num_jobs = 20000;
  spec.estimate_error_sigma = 0.5;
  Xoshiro256 rng(3);
  const Trace trace = generate_trace(spec, rng);
  double ratio_sum = 0.0;
  std::size_t off = 0;
  for (const Task& t : trace.tasks) {
    ratio_sum += t.declared_runtime / t.runtime;
    if (!t.estimate_is_exact()) ++off;
  }
  EXPECT_NEAR(ratio_sum / static_cast<double>(trace.size()), 1.0, 0.03);
  EXPECT_EQ(off, trace.size());
}

TEST(Estimates, GeneratorPricesDeclaredRuntime) {
  WorkloadSpec spec;
  spec.num_jobs = 200;
  spec.estimate_error_sigma = 0.8;
  spec.value_unit = {.p_high = 0.0, .skew = 1.0, .low_mean = 2.0, .cv = 0.0,
                     .floor = 1e-3};
  Xoshiro256 rng(5);
  for (const Task& t : generate_trace(spec, rng).tasks)
    EXPECT_NEAR(t.value.max_value(), 2.0 * t.declared_runtime, 1e-9);
}

TEST(Estimates, MisestimationDegradesYieldUnderLoad) {
  // End-to-end sanity for the extension experiment: noisy estimates hurt.
  WorkloadSpec exact;
  exact.num_jobs = 800;
  exact.processors = 4;
  exact.load_factor = 1.2;
  exact.runtime = DistSpec::exponential(20.0);
  exact.runtime.floor = 0.5;
  exact.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = 0.05, .cv = 0.25,
                 .floor = 1e-4};
  WorkloadSpec noisy = exact;
  noisy.estimate_error_sigma = 1.0;

  auto total_yield = [](const WorkloadSpec& spec) {
    Xoshiro256 rng(7);
    const Trace trace = generate_trace(spec, rng);
    SimEngine engine;
    SchedulerConfig config;
    config.processors = 4;
    config.discount_rate = 0.01;
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.3)),
                       std::make_unique<AcceptAllAdmission>());
    site.inject(trace.tasks);
    engine.run();
    return site.stats().total_yield;
  };

  EXPECT_GT(total_yield(exact), total_yield(noisy));
}

}  // namespace
}  // namespace mbts
