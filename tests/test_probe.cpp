#include "sim/probe.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(Probe, SamplesAtInterval) {
  SimEngine engine;
  engine.schedule_at(100.0, EventPriority::kControl, [] {});
  double value = 0.0;
  PeriodicProbe probe(engine, 10.0, [&] { return value++; });
  engine.run();
  // Samples at 10, 20, ..., 100 (the one at 100 sees pending()==0 and
  // stops the chain).
  ASSERT_EQ(probe.samples(), 10u);
  EXPECT_EQ(probe.series().time(0), 10.0);
  EXPECT_EQ(probe.series().time(9), 100.0);
  EXPECT_EQ(probe.series().value(3), 3.0);
}

TEST(Probe, DoesNotKeepEngineAlive) {
  SimEngine engine;
  engine.schedule_at(5.0, EventPriority::kControl, [] {});
  PeriodicProbe probe(engine, 1.0, [] { return 1.0; });
  const double end = engine.run();
  // The run ends shortly after the last real event, not at infinity.
  EXPECT_LE(end, 6.0);
  EXPECT_TRUE(engine.empty());
}

TEST(Probe, NoOtherEventsSamplesOnce) {
  SimEngine engine;
  PeriodicProbe probe(engine, 2.0, [] { return 7.0; });
  engine.run();
  EXPECT_EQ(probe.samples(), 1u);
}

TEST(Probe, StopCancelsFutureSamples) {
  SimEngine engine;
  engine.schedule_at(100.0, EventPriority::kControl, [] {});
  PeriodicProbe probe(engine, 10.0, [] { return 0.0; });
  engine.schedule_at(35.0, EventPriority::kControl, [&] { probe.stop(); });
  engine.run();
  EXPECT_EQ(probe.samples(), 3u);  // 10, 20, 30
}

TEST(Probe, SamplerSeesSimulationState) {
  SimEngine engine;
  int counter = 0;
  for (int i = 1; i <= 5; ++i)
    engine.schedule_at(i * 10.0, EventPriority::kCompletion,
                       [&counter] { ++counter; });
  PeriodicProbe probe(engine, 10.0, [&] { return double(counter); });
  engine.run();
  // Control probes run after completions at the same instant.
  ASSERT_GE(probe.samples(), 5u);
  EXPECT_EQ(probe.series().value(0), 1.0);
  EXPECT_EQ(probe.series().value(4), 5.0);
}

TEST(Probe, StopCancelsThePendingSample) {
  SimEngine engine;
  PeriodicProbe probe(engine, 10.0, [] { return 0.0; });
  engine.schedule_at(5.0, EventPriority::kControl, [&] { probe.stop(); });
  const double end = engine.run();
  // stop() cancels the already-scheduled t=10 sample outright: the engine
  // drains at the stopping event, not at the next probe tick.
  EXPECT_EQ(probe.samples(), 0u);
  EXPECT_EQ(end, 5.0);
  EXPECT_TRUE(engine.empty());
}

TEST(Probe, StopBeforeRunLeavesNothingBehind) {
  SimEngine engine;
  PeriodicProbe probe(engine, 10.0, [] { return 0.0; });
  probe.stop();
  engine.run();
  EXPECT_EQ(probe.samples(), 0u);
  EXPECT_TRUE(engine.empty());
}

TEST(Probe, NeverOutlivesRealWorkUnderRunUntil) {
  SimEngine engine;
  engine.schedule_at(25.0, EventPriority::kControl, [] {});
  PeriodicProbe probe(engine, 10.0, [] { return 1.0; });
  // run_until far past the last real event: the probe must not manufacture
  // ticks out to the horizon once it is the only thing queued.
  engine.run_until(1000.0);
  EXPECT_LE(probe.samples(), 4u);  // 10, 20, 30 at most
  EXPECT_TRUE(engine.empty());
}

TEST(Probe, InvalidConfigThrows) {
  SimEngine engine;
  EXPECT_THROW(PeriodicProbe(engine, 0.0, [] { return 0.0; }), CheckError);
  EXPECT_THROW(PeriodicProbe(engine, 1.0, nullptr), CheckError);
}

}  // namespace
}  // namespace mbts
