#include "experiments/analysis.hpp"

#include <gtest/gtest.h>

#include "experiments/ablations.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

TaskRecord make_record(TaskId id, double runtime, double unit_value,
                       TaskOutcome outcome, double completion) {
  TaskRecord record;
  record.task.id = id;
  record.task.arrival = 0.0;
  record.task.runtime = runtime;
  record.task.value =
      ValueFunction::unbounded(unit_value * runtime, 0.1);
  record.outcome = outcome;
  record.completion = completion;
  if (outcome == TaskOutcome::kCompleted)
    record.realized_yield = record.task.yield_at_completion(completion);
  return record;
}

TEST(ByValueClass, SplitsAndAggregates) {
  std::deque<TaskRecord> records;
  // Low class (unit 1): one completed on time, one rejected.
  records.push_back(make_record(0, 10.0, 1.0, TaskOutcome::kCompleted, 10.0));
  records.push_back(make_record(1, 10.0, 1.0, TaskOutcome::kRejected, -1.0));
  // High class (unit 5): completed with delay 10.
  records.push_back(make_record(2, 10.0, 5.0, TaskOutcome::kCompleted, 20.0));

  const auto groups = by_value_class(records, 2.0);
  ASSERT_EQ(groups.size(), 2u);
  const GroupOutcome& low = groups[0];
  const GroupOutcome& high = groups[1];

  EXPECT_EQ(low.submitted, 2u);
  EXPECT_EQ(low.completed, 1u);
  EXPECT_EQ(low.rejected, 1u);
  EXPECT_DOUBLE_EQ(low.total_yield, 10.0);
  // Attainable was 10 + 10; realized 10.
  EXPECT_DOUBLE_EQ(low.yield_fraction, 0.5);
  EXPECT_DOUBLE_EQ(low.delay.mean(), 0.0);

  EXPECT_EQ(high.submitted, 1u);
  EXPECT_DOUBLE_EQ(high.total_yield, 50.0 - 0.1 * 10.0);
  EXPECT_DOUBLE_EQ(high.delay.mean(), 10.0);
  EXPECT_DOUBLE_EQ(high.stretch.mean(), 1.0);
}

TEST(ByValueClass, EmptyRecords) {
  const auto groups = by_value_class({}, 2.0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].submitted, 0u);
  EXPECT_EQ(groups[1].yield_fraction, 0.0);
}

TEST(ScaleBid, ScalesLinearFunctionUniformly) {
  Task task;
  task.id = 1;
  task.arrival = 0.0;
  task.runtime = 10.0;
  task.value = ValueFunction(100.0, 2.0, 30.0);
  const Task scaled = scale_bid(task, 2.0);
  EXPECT_DOUBLE_EQ(scaled.value.max_value(), 200.0);
  EXPECT_DOUBLE_EQ(scaled.value.decay(), 4.0);
  EXPECT_DOUBLE_EQ(scaled.value.penalty_bound(), 60.0);
  // The zero crossing is preserved.
  EXPECT_DOUBLE_EQ(scaled.value.delay_to_zero(), task.value.delay_to_zero());
  // Scaled yield is exactly k times the true yield everywhere.
  for (double t : {10.0, 30.0, 55.0})
    EXPECT_DOUBLE_EQ(scaled.yield_at_completion(t),
                     2.0 * task.yield_at_completion(t));
}

TEST(ScaleBid, ScalesPiecewiseSegments) {
  Task task;
  task.id = 1;
  task.arrival = 0.0;
  task.runtime = 10.0;
  task.value = ValueFunction::piecewise(100.0, {{5.0, 1.0}, {kInf, 4.0}},
                                        kInf);
  const Task scaled = scale_bid(task, 3.0);
  EXPECT_DOUBLE_EQ(scaled.value.max_value(), 300.0);
  EXPECT_DOUBLE_EQ(scaled.value.segments()[0].rate, 3.0);
  EXPECT_DOUBLE_EQ(scaled.value.segments()[1].rate, 12.0);
  EXPECT_FALSE(scaled.value.bounded());
}

TEST(ScaleBid, RejectsNonPositiveScale) {
  Task task;
  task.id = 1;
  task.runtime = 1.0;
  task.value = ValueFunction::unbounded(1.0, 0.1);
  EXPECT_THROW(scale_bid(task, 0.0), CheckError);
}

TEST(ClientNetUtility, ComputesTrueSurplus) {
  Task truth;
  truth.id = 1;
  truth.arrival = 0.0;
  truth.runtime = 10.0;
  truth.value = ValueFunction::unbounded(100.0, 1.0);

  TaskRecord record;
  record.task = scale_bid(truth, 2.0);
  record.outcome = TaskOutcome::kCompleted;
  record.completion = 20.0;  // delay 10: true yield 90, declared yield 180
  record.realized_yield = 180.0;

  // Paid the declared (scaled) price: net = 90 - 180 < 0.
  EXPECT_DOUBLE_EQ(client_net_utility(truth, record, 180.0), -90.0);
  // Paid an honest price: net = 0.
  EXPECT_DOUBLE_EQ(client_net_utility(truth, record, 90.0), 0.0);
}

TEST(ClientNetUtility, RejectedIsZero) {
  Task truth;
  truth.id = 1;
  truth.runtime = 10.0;
  truth.value = ValueFunction::unbounded(100.0, 1.0);
  TaskRecord record;
  record.task = truth;
  record.outcome = TaskOutcome::kRejected;
  EXPECT_EQ(client_net_utility(truth, record, 0.0), 0.0);
}

TEST(EconomicsExtensions, SmokeStructure) {
  ExperimentOptions options;
  options.num_jobs = 250;
  options.replications = 1;
  options.threads = 1;
  const FigureResult fairness = extension_fairness(options);
  ASSERT_EQ(fairness.series.size(), 8u);
  // High classes must never do worse than their low counterparts under the
  // value-aware policies at the top load.
  const auto& fp_low = fairness.series[2].points.back().y;
  const auto& fp_high = fairness.series[3].points.back().y;
  EXPECT_GE(fp_high, fp_low);

  const FigureResult truth = extension_truthfulness(options);
  ASSERT_EQ(truth.series.size(), 4u);
  ASSERT_EQ(truth.series[0].points.size(), 6u);
}

}  // namespace
}  // namespace mbts
