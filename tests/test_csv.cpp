#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, HeaderOnFirstRowOnly) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  writer.row({"1", "2"});
  writer.row({"3", "4"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  EXPECT_THROW(writer.row({"only-one"}), CheckError);
}

TEST(CsvWriter, DoubleFieldRoundTrips) {
  const std::string f = CsvWriter::field(0.1 + 0.2);
  EXPECT_EQ(std::stod(f), 0.1 + 0.2);
}

TEST(CsvParse, SimpleDocument) {
  std::istringstream in("a,b\n1,2\n3,4\n");
  const CsvDocument doc = parse_csv(in);
  EXPECT_EQ(doc.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(CsvParse, QuotedFieldsWithCommasAndNewlines) {
  std::istringstream in("a,b\n\"x,y\",\"line1\nline2\"\n");
  const CsvDocument doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "line1\nline2");
}

TEST(CsvParse, EscapedQuotes) {
  std::istringstream in("a\n\"he said \"\"hi\"\"\"\n");
  const CsvDocument doc = parse_csv(in);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(CsvParse, ToleratesCrlf) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const CsvDocument doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvParse, MissingFinalNewlineOk) {
  std::istringstream in("a,b\n1,2");
  const CsvDocument doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvParse, RaggedRowThrows) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(parse_csv(in), CheckError);
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  std::istringstream in("a\n\"oops\n");
  EXPECT_THROW(parse_csv(in), CheckError);
}

TEST(CsvParse, EmptyFields) {
  std::istringstream in("a,b,c\n,,\n");
  const CsvDocument doc = parse_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvDocument, ColumnLookup) {
  std::istringstream in("id,value\n7,9\n");
  const CsvDocument doc = parse_csv(in);
  EXPECT_EQ(doc.column("value"), 1u);
  EXPECT_THROW(doc.column("missing"), CheckError);
}

TEST(CsvFile, WriteThenReadRoundTrip) {
  const std::string path = testing::TempDir() + "mbts_csv_roundtrip.csv";
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"a", "1"}, {"b,c", "2"}};
  write_csv_file(path, doc);
  const CsvDocument back = read_csv_file(path);
  EXPECT_EQ(back.header, doc.header);
  EXPECT_EQ(back.rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvFile, EmptyDocumentStillHasHeader) {
  const std::string path = testing::TempDir() + "mbts_csv_empty.csv";
  CsvDocument doc;
  doc.header = {"only", "header"};
  write_csv_file(path, doc);
  const CsvDocument back = read_csv_file(path);
  EXPECT_EQ(back.header, doc.header);
  EXPECT_TRUE(back.rows.empty());
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), CheckError);
}

}  // namespace
}  // namespace mbts
