// MetricsRegistry instruments, scoping, CSV export determinism, and the
// profiler's on/off contract.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/profile.hpp"

namespace mbts {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("dispatches");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("dispatches"), &c);
  EXPECT_EQ(reg.counter("dispatches").value(), 5u);
}

TEST(Metrics, GaugeTracksLastAndMax) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
  g.set(3.0);
  g.set(10.0);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
  EXPECT_EQ(g.max(), 10.0);
}

TEST(Metrics, GaugeMaxWorksForAllNegativeValues) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  g.set(-5.0);
  g.set(-9.0);
  EXPECT_EQ(g.max(), -5.0);
}

TEST(Metrics, HistogramSharedByName) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("delay", 0.0, 100.0, 10);
  h.add(50.0);
  EXPECT_EQ(&reg.histogram("delay", 0.0, 100.0, 10), &h);
  EXPECT_EQ(reg.histogram("delay", 0.0, 100.0, 10).count(), 1u);
  EXPECT_EQ(reg.instruments(), 1u);
}

TEST(Metrics, ScopePrefixesNames) {
  MetricsRegistry reg;
  MetricsScope site0(reg, "site0");
  MetricsScope site1(reg, "site1");
  site0.counter("starts").add(2);
  site1.counter("starts").add(7);
  EXPECT_EQ(reg.counter("site0/starts").value(), 2u);
  EXPECT_EQ(reg.counter("site1/starts").value(), 7u);
  MetricsScope root(reg, "");
  EXPECT_EQ(&root.counter("starts"), &reg.counter("starts"));
}

TEST(Metrics, CsvIsDeterministicAndComplete) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("z/count").add(3);
    reg.counter("a/count").add(1);
    reg.gauge("depth").set(4.0);
    Histogram& h = reg.histogram("delay", 0.0, 10.0, 5);
    for (double x : {1.0, 5.0, 9.0}) h.add(x);
    std::ostringstream out;
    reg.write_csv(out);
    return out.str();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());

  EXPECT_NE(a.find("name,kind,count,value,p50,p90,p99"), std::string::npos);
  EXPECT_NE(a.find("a/count,counter,1,1"), std::string::npos);
  EXPECT_NE(a.find("z/count,counter,3,3"), std::string::npos);
  EXPECT_NE(a.find("depth,gauge"), std::string::npos);
  EXPECT_NE(a.find("depth/max,gauge"), std::string::npos);
  EXPECT_NE(a.find("delay,histogram,3"), std::string::npos);
  // Name order within a kind: "a/count" precedes "z/count".
  EXPECT_LT(a.find("a/count"), a.find("z/count"));
}

TEST(Metrics, EmptyHistogramExportsWithoutQuantiles) {
  MetricsRegistry reg;
  reg.histogram("empty", 0.0, 1.0, 2);
  std::ostringstream out;
  reg.write_csv(out);
  // Must not throw (quantile of an empty histogram would), and the row is
  // present with a zero count.
  EXPECT_NE(out.str().find("empty,histogram,0"), std::string::npos);
}

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler::set_enabled(false);
  Profiler::instance().reset();
  {
    MBTS_PROF_SCOPE("test/disabled");
  }
  EXPECT_TRUE(Profiler::instance().sections().empty());
}

TEST(Profiler, EnabledScopesAccumulate) {
  Profiler::set_enabled(true);
  Profiler::instance().reset();
  for (int i = 0; i < 3; ++i) {
    MBTS_PROF_SCOPE("test/enabled");
  }
  Profiler::set_enabled(false);
  const auto sections = Profiler::instance().sections();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].name, "test/enabled");
  EXPECT_EQ(sections[0].calls, 3u);
  const std::string report = Profiler::instance().report();
  EXPECT_NE(report.find("test/enabled"), std::string::npos);
  Profiler::instance().reset();
}

}  // namespace
}  // namespace mbts
