// Smoke tests for the figure-reproduction harness at miniature scale: the
// full benches run 5000-job traces; here we only assert structure and the
// headline qualitative results on small traces.
#include "experiments/figures.hpp"

#include <gtest/gtest.h>

namespace mbts {
namespace {

ExperimentOptions tiny() {
  ExperimentOptions options;
  options.num_jobs = 250;
  options.replications = 1;
  options.seed = 42;
  options.threads = 1;
  return options;
}

TEST(Figures, Fig3StructureAndAnchor) {
  const FigureResult figure = figure3(tiny());
  EXPECT_EQ(figure.id, "fig3");
  ASSERT_EQ(figure.series.size(), 5u);  // five value-skew ratios
  for (const Series& s : figure.series) {
    ASSERT_EQ(s.points.size(), 9u);  // nine discount rates
    // x grid is the discount rate in percent, ascending.
    EXPECT_DOUBLE_EQ(s.points.front().x, 0.001);
    EXPECT_DOUBLE_EQ(s.points.back().x, 10.0);
  }
}

TEST(Figures, Fig4And5ShareGrid) {
  const FigureResult f4 = figure4(tiny());
  const FigureResult f5 = figure5(tiny());
  ASSERT_EQ(f4.series.size(), 3u);
  ASSERT_EQ(f5.series.size(), 3u);
  EXPECT_EQ(f4.series[0].label, f5.series[0].label);
  ASSERT_EQ(f4.series[0].points.size(), 10u);  // alpha 0..0.9
  EXPECT_DOUBLE_EQ(f4.series[0].points.back().x, 0.9);
}

TEST(Figures, Fig5CostBeatsFirstPriceUnderUnboundedPenalties) {
  // The paper's headline: with unbounded penalties, cost-aware FirstReward
  // beats FirstPrice substantially at every alpha.
  ExperimentOptions options = tiny();
  options.num_jobs = 1000;
  const FigureResult figure = figure5(options);
  for (const Series& s : figure.series)
    for (const SeriesPoint& p : s.points)
      EXPECT_GT(p.y, 0.0) << s.label << " at alpha " << p.x;
}

TEST(Figures, Fig6AdmissionSavesOverload) {
  ExperimentOptions options = tiny();
  options.num_jobs = 600;
  const FigureResult figure = figure6(options);
  ASSERT_EQ(figure.series.size(), 7u);  // six alphas + FirstPrice w/o AC
  const Series& no_ac = figure.series.back();
  EXPECT_EQ(no_ac.label, "FirstPrice_noAC");
  const Series& ac = figure.series[1];  // alpha = 0.2
  // At the highest load, admission control must massively outperform.
  EXPECT_GT(ac.points.back().y, no_ac.points.back().y + 10.0);
  // And the admission-controlled yield rate grows with load
  // ("cherry-picking"): compare lightest vs heaviest.
  EXPECT_GT(ac.points.back().y, ac.points.front().y);
}

TEST(Figures, Fig7StructureAndOverloadGains) {
  ExperimentOptions options = tiny();
  options.num_jobs = 600;
  const FigureResult figure = figure7(options);
  ASSERT_EQ(figure.series.size(), 5u);
  ASSERT_EQ(figure.series[0].points.size(), 10u);
  // At load 2 (last series) admission control with a sane threshold beats
  // no admission control by a wide margin.
  const Series& heavy = figure.series.back();
  EXPECT_EQ(heavy.label, "load=2");
  bool any_large = false;
  for (const SeriesPoint& p : heavy.points)
    if (p.y > 50.0) any_large = true;
  EXPECT_TRUE(any_large);
}

}  // namespace
}  // namespace mbts
