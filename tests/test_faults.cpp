// Deterministic fault injection: plan generation/validation, injector
// playback, crash semantics (kill vs checkpoint), breach settlement, the
// broker's retry ladder, and bit-reproducibility of chaos runs.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "experiments/fingerprint.hpp"
#include "market/broker.hpp"
#include "market/market.hpp"
#include "util/check.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

Task make_task(TaskId id, double arrival, double runtime, double value,
               double decay, double bound = kInf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = ValueFunction(value, decay, bound);
  return t;
}

// --- Task::breach_yield ---

TEST(BreachYield, BoundedChargesThePenaltyBound) {
  const Task t = make_task(0, 0.0, 10.0, 100.0, 1.0, 40.0);
  // The bound is the worst case the client agreed to; a breach charges it
  // regardless of when the crash happened.
  EXPECT_EQ(t.breach_yield(0.0), -40.0);
  EXPECT_EQ(t.breach_yield(1e6), -40.0);
}

TEST(BreachYield, UnboundedNeverPaysTheClientForAnEarlyCrash) {
  const Task t = make_task(0, 0.0, 100.0, 100.0, 2.0);
  // Early breach: the decayed value is still positive, but an undelivered
  // task cannot earn — the breach settles at zero.
  EXPECT_EQ(t.breach_yield(50.0), 0.0);
  // Late breach: the decayed value has gone negative; the site owes it.
  EXPECT_EQ(t.breach_yield(250.0), 100.0 - 2.0 * 150.0);
}

// --- FaultPlan ---

TEST(FaultPlan, ZeroRateGeneratesNothing) {
  FaultConfig config;
  config.outage_rate = 0.0;
  const FaultPlan plan =
      FaultPlan::generate(config, 4, 1000.0, SeedSequence(1).stream(2));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, GenerateIsDeterministic) {
  FaultConfig config;
  config.outage_rate = 0.01;
  config.mean_outage = 50.0;
  const FaultPlan a =
      FaultPlan::generate(config, 3, 2000.0, SeedSequence(9).stream(1));
  const FaultPlan b =
      FaultPlan::generate(config, 3, 2000.0, SeedSequence(9).stream(1));
  ASSERT_EQ(a.outages.size(), b.outages.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].site, b.outages[i].site);
    EXPECT_EQ(a.outages[i].down_at, b.outages[i].down_at);  // bitwise
    EXPECT_EQ(a.outages[i].up_at, b.outages[i].up_at);
  }
}

TEST(FaultPlan, GeneratedPlansValidate) {
  FaultConfig config;
  config.outage_rate = 0.02;
  config.mean_outage = 100.0;
  const FaultPlan plan =
      FaultPlan::generate(config, 5, 3000.0, SeedSequence(3).stream(7));
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.validate(5), "");
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  FaultPlan plan;
  plan.outages = {{2, 10.0, 20.0}};
  EXPECT_NE(plan.validate(2), "");  // site out of range
  plan.outages = {{0, 10.0, 10.0}};
  EXPECT_NE(plan.validate(1), "");  // zero-length outage
  plan.outages = {{0, 10.0, 30.0}, {0, 20.0, 40.0}};
  EXPECT_NE(plan.validate(1), "");  // overlap on one site
  plan.outages = {{0, 30.0, 40.0}, {0, 10.0, 20.0}};
  EXPECT_NE(plan.validate(1), "");  // unsorted
  plan.outages = {{0, 10.0, 20.0}, {1, 15.0, 25.0}, {0, 20.0, 30.0}};
  EXPECT_EQ(plan.validate(2), "");  // touching intervals are fine
}

// --- FaultInjector playback ---

TEST(FaultInjector, PlaysThePlanInOrder) {
  SimEngine engine;
  FaultPlan plan;
  plan.outages = {{0, 10.0, 20.0}, {1, 15.0, 30.0}, {0, 20.0, 40.0}};
  FaultInjector injector(engine, plan, 2, 0.0, SeedSequence(1).stream(1));
  std::vector<std::string> events;
  injector.arm(
      [&](SiteId site, const SiteOutage&) {
        events.push_back("down" + std::to_string(site));
        EXPECT_TRUE(injector.is_down(site));
      },
      [&](SiteId site) {
        events.push_back("up" + std::to_string(site));
        EXPECT_FALSE(injector.is_down(site));
      });
  engine.run();
  // Site 0's second outage touches its first recovery at t=20; the
  // recovery must fire first.
  const std::vector<std::string> expected = {"down0", "down1", "up0",
                                             "down0", "up1",   "up0"};
  EXPECT_EQ(events, expected);
  EXPECT_EQ(injector.outages_started(), 3u);
  EXPECT_EQ(injector.quote_timeouts(), 0u);
}

TEST(FaultInjector, ZeroTimeoutProbabilityNeverLosesQuotes) {
  SimEngine engine;
  FaultInjector injector(engine, FaultPlan{}, 1, 0.0,
                         SeedSequence(1).stream(1));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(injector.quote_times_out(0));
  EXPECT_EQ(injector.quote_timeouts(), 0u);
}

// --- SiteScheduler crash semantics ---

SchedulerConfig one_proc() {
  SchedulerConfig c;
  c.processors = 1;
  return c;
}

TEST(Crash, KillModeFailsRunningAndSparesPending) {
  SimEngine engine;
  SiteScheduler site(engine, one_proc(), make_policy(PolicySpec::fcfs()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 10.0, 100.0, 1.0, 50.0),  // running at the crash
      make_task(1, 0.0, 10.0, 100.0, 0.0),        // pending at the crash
  });
  std::vector<Task> killed;
  engine.schedule_at(5.0, EventPriority::kFault, [&] {
    killed = site.crash(CrashMode::kKill);
    EXPECT_TRUE(site.down());
  });
  engine.schedule_at(20.0, EventPriority::kFault, [&] { site.recover(); });
  engine.run();

  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0].id, 0u);
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  for (const TaskRecord& r : site.records()) {
    if (r.task.id == 0u) {
      EXPECT_EQ(r.outcome, TaskOutcome::kFailed);
      EXPECT_EQ(r.completion, 5.0);
      EXPECT_EQ(r.realized_yield, -50.0);  // the penalty bound
    } else {
      // The queue is durable: the pending task resumes after recovery.
      EXPECT_EQ(r.outcome, TaskOutcome::kCompleted);
      EXPECT_EQ(r.completion, 30.0);
      EXPECT_EQ(r.realized_yield, 100.0);
    }
  }
}

TEST(Crash, CheckpointModePreservesExecutedService) {
  SimEngine engine;
  SiteScheduler site(engine, one_proc(), make_policy(PolicySpec::fcfs()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 100.0, 0.0)});
  engine.schedule_at(4.0, EventPriority::kFault, [&] {
    const std::vector<Task> killed = site.crash(CrashMode::kCheckpoint);
    EXPECT_TRUE(killed.empty());
  });
  engine.schedule_at(14.0, EventPriority::kFault, [&] { site.recover(); });
  engine.run();

  const RunStats stats = site.stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 1u);
  // 4 units ran before the crash; only the remaining 6 run after recovery.
  EXPECT_EQ(site.records().front().completion, 20.0);
}

TEST(Crash, CompletionAtTheCrashInstantHasFinished) {
  SimEngine engine;
  SiteScheduler site(engine, one_proc(), make_policy(PolicySpec::fcfs()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{make_task(0, 0.0, 10.0, 100.0, 0.0)});
  std::vector<Task> killed;
  // kCompletion outranks kFault at the same instant.
  engine.schedule_at(10.0, EventPriority::kFault,
                     [&] { killed = site.crash(CrashMode::kKill); });
  engine.schedule_at(30.0, EventPriority::kFault, [&] { site.recover(); });
  engine.run();
  EXPECT_TRUE(killed.empty());
  EXPECT_EQ(site.stats().completed, 1u);
  EXPECT_EQ(site.stats().failed, 0u);
}

// --- SiteAgent: down-site negotiation and breach settlement ---

SiteAgentConfig agent_config(SiteId id) {
  SiteAgentConfig cfg;
  cfg.id = id;
  cfg.name = "s" + std::to_string(id);
  cfg.scheduler.processors = 1;
  cfg.use_slack_admission = false;
  return cfg;
}

TEST(SiteFailure, DownSiteQuotesUnavailableAndRefusesAwards) {
  SimEngine engine;
  SiteAgent site(engine, agent_config(0));
  Bid bid;
  bid.task = make_task(0, 0.0, 10.0, 100.0, 1.0);
  const Quote up_quote = site.quote(bid);
  ASSERT_TRUE(up_quote.accepted);
  site.fail(CrashMode::kKill);
  const Quote down_quote = site.quote(bid);
  EXPECT_FALSE(down_quote.accepted);
  EXPECT_TRUE(down_quote.unavailable);
  EXPECT_FALSE(site.award(bid, up_quote));
  site.recover();
  EXPECT_TRUE(site.quote(bid).accepted);
}

TEST(SiteFailure, CrashBreachesTheContractAtThePenaltyBound) {
  SimEngine engine;
  SiteAgent site(engine, agent_config(0));
  Bid bid;
  bid.client = 7;
  bid.task = make_task(0, 0.0, 100.0, 100.0, 1.0, 40.0);
  engine.schedule_at(0.0, EventPriority::kArrival, [&] {
    const Quote quote = site.quote(bid);
    ASSERT_TRUE(quote.accepted);
    ASSERT_TRUE(site.award(bid, quote));
  });
  std::vector<Breach> breaches;
  engine.schedule_at(30.0, EventPriority::kFault,
                     [&] { breaches = site.fail(CrashMode::kKill); });
  engine.schedule_at(60.0, EventPriority::kFault, [&] { site.recover(); });
  engine.run();
  site.settle();

  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].task.id, 0u);
  EXPECT_EQ(breaches[0].client, 7u);
  EXPECT_EQ(breaches[0].settled_price, -40.0);
  EXPECT_GT(breaches[0].agreed_price, 0.0);
  ASSERT_EQ(site.contracts().size(), 1u);
  const Contract& contract = site.contracts().front();
  EXPECT_TRUE(contract.settled);
  EXPECT_TRUE(contract.breached);
  EXPECT_EQ(contract.actual_completion, 30.0);
  EXPECT_EQ(contract.settled_price, -40.0);
  EXPECT_EQ(site.breaches(), 1u);
  EXPECT_EQ(site.revenue(), -40.0);
}

// --- Broker retry ladder ---

struct TwoSiteHarness {
  SimEngine engine;
  SiteAgent s0{engine, agent_config(0)};
  SiteAgent s1{engine, agent_config(1)};
  std::vector<SiteAgent*> sites{&s0, &s1};
  Broker broker{{&s0, &s1},
                ClientStrategy::kMaxExpectedValue,
                SeedSequence(1).stream(2)};

  FaultInjector make_injector(FaultPlan plan) {
    return FaultInjector(engine, std::move(plan), 2, 0.0,
                         SeedSequence(1).stream(3));
  }

  void arm(FaultInjector& injector) {
    injector.arm(
        [&](SiteId site, const SiteOutage&) {
          sites[site]->fail(CrashMode::kKill);
        },
        [&](SiteId site) { sites[site]->recover(); });
  }
};

TEST(Retry, BacksOffUntilASiteRecovers) {
  TwoSiteHarness h;
  h.broker.enable_retries(h.engine, RetryPolicy{});
  FaultPlan plan;
  plan.outages = {{0, 1.0, 50.0}, {1, 1.0, 50.0}};
  FaultInjector injector = h.make_injector(plan);
  h.arm(injector);
  h.broker.set_fault_injector(&injector);
  Bid bid;
  bid.task = make_task(0, 5.0, 10.0, 100.0, 0.5);
  h.engine.schedule_at(5.0, EventPriority::kArrival,
                       [&] { h.broker.submit(bid); });
  h.engine.run();

  // Attempts at t=5, 15, 35, 75 (10/20/40 backoff); both sites are back by
  // the fourth, which lands the award.
  ASSERT_EQ(h.broker.history().size(), 1u);
  const NegotiationResult& result = h.broker.history().front();
  EXPECT_TRUE(result.awarded_site.has_value());
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(h.broker.retries(), 3u);
  EXPECT_EQ(h.broker.rejected_everywhere(), 0u);
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  TwoSiteHarness h;
  h.broker.enable_retries(h.engine, RetryPolicy{});
  FaultPlan plan;
  plan.outages = {{0, 1.0, 500.0}, {1, 1.0, 500.0}};
  FaultInjector injector = h.make_injector(plan);
  h.arm(injector);
  h.broker.set_fault_injector(&injector);
  Bid bid;
  bid.task = make_task(0, 5.0, 10.0, 100.0, 0.5);
  h.engine.schedule_at(5.0, EventPriority::kArrival,
                       [&] { h.broker.submit(bid); });
  h.engine.run();

  ASSERT_EQ(h.broker.history().size(), 1u);
  const NegotiationResult& result = h.broker.history().front();
  EXPECT_FALSE(result.awarded_site.has_value());
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(h.broker.retries(), 3u);
  EXPECT_EQ(h.broker.rejected_everywhere(), 1u);
}

TEST(Retry, GenuineRejectionIsNotRetried) {
  SimEngine engine;
  // Slack thresholds no task can clear: every site answers and declines.
  SiteAgentConfig c0 = agent_config(0);
  SiteAgentConfig c1 = agent_config(1);
  for (SiteAgentConfig* c : {&c0, &c1}) {
    c->use_slack_admission = true;
    c->admission.threshold = 1e9;
  }
  SiteAgent s0(engine, c0);
  SiteAgent s1(engine, c1);
  Broker broker({&s0, &s1}, ClientStrategy::kMaxExpectedValue,
                SeedSequence(1).stream(2));
  broker.enable_retries(engine, RetryPolicy{});
  Bid bid;
  bid.task = make_task(0, 0.0, 10.0, 100.0, 0.5);
  engine.schedule_at(0.0, EventPriority::kArrival,
                     [&] { broker.submit(bid); });
  engine.run();
  // A genuine rejection is final even with retries enabled: one round.
  ASSERT_EQ(broker.history().size(), 1u);
  EXPECT_EQ(broker.history().front().attempts, 1u);
  EXPECT_FALSE(broker.history().front().awarded_site.has_value());
  EXPECT_EQ(broker.retries(), 0u);
}

// --- Chaos-run determinism (market level) ---

MarketStats run_chaos(const FaultConfig& faults, bool mix_full_rebuild,
                      std::uint64_t seed = 42) {
  MarketConfig config;
  const std::size_t procs[3] = {4, 8, 12};
  for (std::size_t i = 0; i < 3; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = procs[i];
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.scheduler.mix_full_rebuild = mix_full_rebuild;
    site.policy = PolicySpec::first_reward(0.3);
    site.admission = SlackAdmissionConfig{120.0, false};
    config.sites.push_back(site);
  }
  config.pricing = PricingModel::kSecondPrice;
  config.client_budgets[0] = ClientBudget{2000.0, 250.0};
  config.rng_seed = seed;
  config.faults = faults;
  Market market(config);
  Xoshiro256 rng = SeedSequence(seed).stream(11);
  const Trace trace = generate_trace(presets::admission_mix(1.3, 400), rng);
  market.inject(trace);
  return market.run();
}

std::string chaos_fingerprint(const MarketStats& stats) {
  std::string fp = fingerprint_line("chaos", stats);
  for (std::size_t i = 0; i < stats.site_stats.size(); ++i)
    fp += fingerprint_line("chaos_site" + std::to_string(i),
                           stats.site_stats[i]);
  return fp;
}

FaultConfig chaos_faults(CrashMode mode) {
  FaultConfig faults;
  faults.outage_rate = 0.004;
  faults.mean_outage = 120.0;
  faults.quote_timeout_prob = 0.05;
  faults.crash_mode = mode;
  return faults;
}

TEST(ChaosDeterminism, SameSeedSamePlanIsBitIdentical) {
  const FaultConfig faults = chaos_faults(CrashMode::kKill);
  const MarketStats a = run_chaos(faults, false);
  const MarketStats b = run_chaos(faults, false);
  EXPECT_EQ(chaos_fingerprint(a), chaos_fingerprint(b));
  // The chaos must actually bite, or this test pins nothing.
  EXPECT_GT(a.outages, 0u);
  EXPECT_GT(a.quote_timeouts, 0u);
  EXPECT_GT(a.breached_contracts, 0u);
  EXPECT_GT(a.rebids, 0u);
  EXPECT_GE(a.rebids, a.re_awards);
}

TEST(ChaosDeterminism, MixFullRebuildDoesNotMoveABit) {
  const FaultConfig faults = chaos_faults(CrashMode::kKill);
  const MarketStats fast = run_chaos(faults, false);
  const MarketStats slow = run_chaos(faults, true);
  EXPECT_EQ(chaos_fingerprint(fast), chaos_fingerprint(slow));
}

TEST(ChaosDeterminism, CheckpointModeIsBitReproducibleToo) {
  const FaultConfig faults = chaos_faults(CrashMode::kCheckpoint);
  const MarketStats a = run_chaos(faults, false);
  const MarketStats b = run_chaos(faults, true);
  EXPECT_EQ(chaos_fingerprint(a), chaos_fingerprint(b));
  EXPECT_GT(a.outages, 0u);
  // Checkpointing preserves the work: no contract is breached, and the
  // sites log checkpoints instead.
  EXPECT_EQ(a.breached_contracts, 0u);
  EXPECT_EQ(a.rebids, 0u);
  std::uint64_t checkpoints = 0;
  for (const RunStats& s : a.site_stats) checkpoints += s.checkpoints;
  EXPECT_GT(checkpoints, 0u);
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
  const FaultConfig faults = chaos_faults(CrashMode::kKill);
  const MarketStats a = run_chaos(faults, false, 42);
  const MarketStats b = run_chaos(faults, false, 43);
  EXPECT_NE(chaos_fingerprint(a), chaos_fingerprint(b));
}

}  // namespace
}  // namespace mbts
