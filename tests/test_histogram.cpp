#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mbts {
namespace {

TEST(Histogram, BinsPartitionRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_lo(0), 0.0);
  EXPECT_EQ(h.bin_hi(0), 2.0);
  EXPECT_EQ(h.bin_lo(4), 8.0);
  EXPECT_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(9.9);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[1], 2u);
  EXPECT_EQ(h.bins()[4], 1u);
}

TEST(Histogram, OutOfRangeClampsToEndBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
}

TEST(Histogram, QuantileOfSingleValue) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_EQ(h.quantile(0.0), 0.5);
  EXPECT_EQ(h.quantile(1.0), 0.5);
}

TEST(Histogram, QuantilesInterpolate) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.5);
}

TEST(Histogram, QuantileUnsortedInsertion) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {9.0, 1.0, 5.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, EmptyQuantileThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.quantile(0.5), CheckError);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 100.0, 10);
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(0.0, 100.0));
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 10.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(h.cdf(100.0), 1.0);
  EXPECT_EQ(h.cdf(-1.0), 0.0);
}

TEST(Histogram, UniformSamplesFillBinsEvenly) {
  Histogram h(0.0, 1.0, 4);
  Xoshiro256 rng(9);
  const int n = 40000;
  for (int i = 0; i < n; ++i) h.add(rng.uniform01());
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_NEAR(static_cast<double>(h.bins()[b]) / n, 0.25, 0.02);
}

TEST(Histogram, AsciiRenderHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

// Regression: add(NaN) used to floor-and-cast NaN (undefined behaviour) and
// corrupt a bin; NaNs must be tallied separately and never enter bins,
// counts, or quantiles.
TEST(Histogram, NanSamplesAreCountedNotBinned) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.nan_count(), 2u);
  std::size_t binned = 0;
  for (std::size_t c : h.bins()) binned += c;
  EXPECT_EQ(binned, 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  // Infinities are orderable and must still be accepted (clamped bins).
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bins()[4], 1u);
}

// Regression for the lazy-sort data race: quantile()/cdf() are const but
// used to sort the mutable values_ vector unguarded, so two concurrent
// readers raced on the same buffer. Run under TSan this test failed before
// the sort was serialized.
TEST(Histogram, ConcurrentConstReadersAreRaceFree) {
  Histogram h(0.0, 100.0, 10);
  Xoshiro256 rng(17);
  for (int i = 0; i < 20000; ++i) h.add(rng.uniform(0.0, 100.0));

  const Histogram& shared = h;
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&shared, t] {
      for (int i = 0; i < 50; ++i) {
        const double q = shared.quantile(0.25 + 0.01 * (t + 1));
        const double c = shared.cdf(50.0 + t);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 100.0);
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  // After the dust settles the order statistics are intact.
  EXPECT_LE(shared.quantile(0.1), shared.quantile(0.9));
}

}  // namespace
}  // namespace mbts
