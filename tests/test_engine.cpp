#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(SimEngine, StartsAtZeroAndEmpty) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.run(), 0.0);
}

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, EventPriority::kControl, [&] { order.push_back(3); });
  engine.schedule_at(1.0, EventPriority::kControl, [&] { order.push_back(1); });
  engine.schedule_at(2.0, EventPriority::kControl, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, ClockAdvancesToEventTime) {
  SimEngine engine;
  double seen = -1.0;
  engine.schedule_at(5.5, EventPriority::kControl, [&] { seen = engine.now(); });
  EXPECT_EQ(engine.run(), 5.5);
  EXPECT_EQ(seen, 5.5);
}

TEST(SimEngine, SimultaneousEventsOrderedByPriority) {
  SimEngine engine;
  std::vector<std::string> order;
  engine.schedule_at(1.0, EventPriority::kArrival,
                     [&] { order.push_back("arrival"); });
  engine.schedule_at(1.0, EventPriority::kCompletion,
                     [&] { order.push_back("completion"); });
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  // Completions must free resources before arrivals are admitted.
  EXPECT_EQ(order[0], "completion");
  EXPECT_EQ(order[1], "arrival");
}

TEST(SimEngine, SimultaneousSamePriorityKeepsInsertionOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(2.0, EventPriority::kControl,
                       [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, ScheduleAfterUsesCurrentTime) {
  SimEngine engine;
  double fired_at = -1.0;
  engine.schedule_at(10.0, EventPriority::kControl, [&] {
    engine.schedule_after(5.0, EventPriority::kControl,
                          [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(SimEngine, SchedulingInThePastThrows) {
  SimEngine engine;
  engine.schedule_at(10.0, EventPriority::kControl, [&] {
    EXPECT_THROW(
        engine.schedule_at(5.0, EventPriority::kControl, [] {}),
        CheckError);
  });
  engine.run();
}

TEST(SimEngine, NegativeDelayThrows) {
  SimEngine engine;
  EXPECT_THROW(engine.schedule_after(-1.0, EventPriority::kControl, [] {}),
               CheckError);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  const EventId id =
      engine.schedule_at(1.0, EventPriority::kControl, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(SimEngine, CancelTwiceReturnsFalse) {
  SimEngine engine;
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
  engine.run();
}

TEST(SimEngine, CancelAfterFireReturnsFalse) {
  SimEngine engine;
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(SimEngine, PendingCountTracksCancellations) {
  SimEngine engine;
  const EventId a = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.schedule_at(2.0, EventPriority::kControl, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(SimEngine, EventsScheduledDuringRunExecute) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10)
      engine.schedule_after(1.0, EventPriority::kControl, chain);
  };
  engine.schedule_at(0.0, EventPriority::kControl, chain);
  EXPECT_EQ(engine.run(), 9.0);
  EXPECT_EQ(count, 10);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine engine;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    engine.schedule_at(static_cast<double>(i), EventPriority::kControl,
                       [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 5u);
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimEngine, RunUntilIncludesBoundaryEvents) {
  SimEngine engine;
  bool fired = false;
  engine.schedule_at(5.0, EventPriority::kControl, [&] { fired = true; });
  engine.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimEngine, RunUntilCancelledHeadDoesNotTimeTravel) {
  // Regression: a cancelled event at the heap top used to pass the horizon
  // check on its own timestamp; the pop then skipped the tombstone and
  // executed the next *pending* event even when it lay beyond t_end, after
  // which `now_ = t_end` yanked the clock backwards. The horizon must be
  // enforced on the next live event.
  SimEngine engine;
  bool fired_late = false;
  double fired_at = -1.0;
  const EventId doomed =
      engine.schedule_at(2.0, EventPriority::kCompletion, [] {});
  engine.schedule_at(8.0, EventPriority::kControl, [&] {
    fired_late = true;
    fired_at = engine.now();
  });
  engine.cancel(doomed);  // tombstone at the heap top, t = 2 <= t_end
  engine.run_until(5.0);
  EXPECT_FALSE(fired_late);
  EXPECT_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_TRUE(fired_late);
  EXPECT_EQ(fired_at, 8.0);  // observed its own time, not a rewound clock
  EXPECT_EQ(engine.now(), 8.0);
}

TEST(SimEngine, RunUntilNeverExecutesPastHorizonNorRewinds) {
  // Dense cancel/keep pattern so tombstones repeatedly surface at the top;
  // no callback may ever observe now() beyond the horizon, and the clock
  // must be monotone across successive bounded drains.
  SimEngine engine;
  double max_seen = -1.0;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i)
    ids.push_back(engine.schedule_at(static_cast<double>(i),
                                     EventPriority::kControl, [&] {
                                       if (engine.now() > max_seen)
                                         max_seen = engine.now();
                                     }));
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (i % 3 != 0) engine.cancel(ids[i]);
  double last_now = 0.0;
  for (double horizon = 10.0; horizon <= 200.0; horizon += 10.0) {
    engine.run_until(horizon);
    EXPECT_EQ(engine.now(), horizon);
    EXPECT_GE(engine.now(), last_now);
    EXPECT_LE(max_seen, horizon);
    last_now = engine.now();
  }
  EXPECT_EQ(engine.events_executed(), 67u);  // ceil(200 / 3) survivors
}

TEST(SimEngine, TombstoneCompactionKeepsSurvivorsAndOrder) {
  // Cancel 90% of a large batch so the lazy sweep triggers repeatedly; the
  // survivors must all fire, in time order, exactly once.
  SimEngine engine;
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int i = 0; i < 5000; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    ids.push_back(engine.schedule_at(t, EventPriority::kControl,
                                     [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 5000; ++i) {
    if (i % 10 == 0) continue;
    EXPECT_TRUE(engine.cancel(ids[i]));
  }
  EXPECT_EQ(engine.pending(), 500u);
  double last = -1.0;
  bool monotone = true;
  engine.run();
  EXPECT_EQ(fired.size(), 500u);
  for (int i : fired) {
    EXPECT_EQ(i % 10, 0);
    const double t = static_cast<double>((i * 7919) % 997);
    if (t < last) monotone = false;
    last = t;
  }
  EXPECT_TRUE(monotone);
}

TEST(SimEngine, ExecutedCounterCountsOnlyFired) {
  SimEngine engine;
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.schedule_at(2.0, EventPriority::kControl, [] {});
  engine.cancel(id);
  engine.run();
  EXPECT_EQ(engine.events_executed(), 1u);
}

TEST(SimEngine, ManyEventsStressOrdering) {
  SimEngine engine;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Scatter times via a fixed pattern, including duplicates.
    const double t = static_cast<double>((i * 7919) % 1000);
    engine.schedule_at(t, EventPriority::kControl, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  engine.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(engine.events_executed(), 10000u);
}

}  // namespace
}  // namespace mbts
