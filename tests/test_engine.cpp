#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace mbts {
namespace {

// Every behavioral engine test runs under both queue backends: the
// tombstoned binary heap and the indexed 4-ary heap must be observationally
// identical (same execution order, same counters, same clock).
class SimEngineTest : public ::testing::TestWithParam<QueueBackend> {
 protected:
  SimEngine engine{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    Backends, SimEngineTest,
    ::testing::Values(QueueBackend::kTombstone, QueueBackend::kIndexed),
    [](const ::testing::TestParamInfo<QueueBackend>& info) {
      return to_string(info.param);
    });

TEST_P(SimEngineTest, StartsAtZeroAndEmpty) {
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.run(), 0.0);
}

TEST_P(SimEngineTest, ExecutesInTimeOrder) {
  std::vector<int> order;
  engine.schedule_at(3.0, EventPriority::kControl, [&] { order.push_back(3); });
  engine.schedule_at(1.0, EventPriority::kControl, [&] { order.push_back(1); });
  engine.schedule_at(2.0, EventPriority::kControl, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimEngineTest, ClockAdvancesToEventTime) {
  double seen = -1.0;
  engine.schedule_at(5.5, EventPriority::kControl, [&] { seen = engine.now(); });
  EXPECT_EQ(engine.run(), 5.5);
  EXPECT_EQ(seen, 5.5);
}

TEST_P(SimEngineTest, SimultaneousEventsOrderedByPriority) {
  std::vector<std::string> order;
  engine.schedule_at(1.0, EventPriority::kArrival,
                     [&] { order.push_back("arrival"); });
  engine.schedule_at(1.0, EventPriority::kCompletion,
                     [&] { order.push_back("completion"); });
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  // Completions must free resources before arrivals are admitted.
  EXPECT_EQ(order[0], "completion");
  EXPECT_EQ(order[1], "arrival");
}

TEST_P(SimEngineTest, SimultaneousSamePriorityKeepsInsertionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(2.0, EventPriority::kControl,
                       [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(SimEngineTest, ScheduleAfterUsesCurrentTime) {
  double fired_at = -1.0;
  engine.schedule_at(10.0, EventPriority::kControl, [&] {
    engine.schedule_after(5.0, EventPriority::kControl,
                          [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST_P(SimEngineTest, SchedulingInThePastThrows) {
  engine.schedule_at(10.0, EventPriority::kControl, [&] {
    EXPECT_THROW(
        engine.schedule_at(5.0, EventPriority::kControl, [] {}),
        CheckError);
  });
  engine.run();
}

TEST_P(SimEngineTest, NegativeDelayThrows) {
  EXPECT_THROW(engine.schedule_after(-1.0, EventPriority::kControl, [] {}),
               CheckError);
}

TEST_P(SimEngineTest, CancelPreventsExecution) {
  bool fired = false;
  const EventId id =
      engine.schedule_at(1.0, EventPriority::kControl, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST_P(SimEngineTest, CancelTwiceReturnsFalse) {
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
  engine.run();
}

TEST_P(SimEngineTest, CancelAfterFireReturnsFalse) {
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST_P(SimEngineTest, PendingCountTracksCancellations) {
  const EventId a = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.schedule_at(2.0, EventPriority::kControl, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_P(SimEngineTest, EventsScheduledDuringRunExecute) {
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10)
      engine.schedule_after(1.0, EventPriority::kControl, chain);
  };
  engine.schedule_at(0.0, EventPriority::kControl, chain);
  EXPECT_EQ(engine.run(), 9.0);
  EXPECT_EQ(count, 10);
}

TEST_P(SimEngineTest, RunUntilStopsAtBoundary) {
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    engine.schedule_at(static_cast<double>(i), EventPriority::kControl,
                       [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 5u);
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST_P(SimEngineTest, RunUntilIncludesBoundaryEvents) {
  bool fired = false;
  engine.schedule_at(5.0, EventPriority::kControl, [&] { fired = true; });
  engine.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST_P(SimEngineTest, RunUntilCancelledHeadDoesNotTimeTravel) {
  // Regression: a cancelled event at the heap top used to pass the horizon
  // check on its own timestamp; the pop then skipped the tombstone and
  // executed the next *pending* event even when it lay beyond t_end, after
  // which `now_ = t_end` yanked the clock backwards. The horizon must be
  // enforced on the next live event.
  bool fired_late = false;
  double fired_at = -1.0;
  const EventId doomed =
      engine.schedule_at(2.0, EventPriority::kCompletion, [] {});
  engine.schedule_at(8.0, EventPriority::kControl, [&] {
    fired_late = true;
    fired_at = engine.now();
  });
  engine.cancel(doomed);  // tombstone at the heap top, t = 2 <= t_end
  engine.run_until(5.0);
  EXPECT_FALSE(fired_late);
  EXPECT_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_TRUE(fired_late);
  EXPECT_EQ(fired_at, 8.0);  // observed its own time, not a rewound clock
  EXPECT_EQ(engine.now(), 8.0);
}

TEST_P(SimEngineTest, RunUntilNeverExecutesPastHorizonNorRewinds) {
  // Dense cancel/keep pattern so tombstones repeatedly surface at the top;
  // no callback may ever observe now() beyond the horizon, and the clock
  // must be monotone across successive bounded drains.
  double max_seen = -1.0;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i)
    ids.push_back(engine.schedule_at(static_cast<double>(i),
                                     EventPriority::kControl, [&] {
                                       if (engine.now() > max_seen)
                                         max_seen = engine.now();
                                     }));
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (i % 3 != 0) engine.cancel(ids[i]);
  double last_now = 0.0;
  for (double horizon = 10.0; horizon <= 200.0; horizon += 10.0) {
    engine.run_until(horizon);
    EXPECT_EQ(engine.now(), horizon);
    EXPECT_GE(engine.now(), last_now);
    EXPECT_LE(max_seen, horizon);
    last_now = engine.now();
  }
  EXPECT_EQ(engine.events_executed(), 67u);  // ceil(200 / 3) survivors
}

TEST_P(SimEngineTest, MassCancellationKeepsSurvivorsAndOrder) {
  // Cancel 90% of a large batch (the tombstone backend's lazy sweep triggers
  // repeatedly; the indexed backend removes in place); the survivors must
  // all fire, in time order, exactly once.
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int i = 0; i < 5000; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    ids.push_back(engine.schedule_at(t, EventPriority::kControl,
                                     [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 5000; ++i) {
    if (i % 10 == 0) continue;
    EXPECT_TRUE(engine.cancel(ids[i]));
  }
  EXPECT_EQ(engine.pending(), 500u);
  if (GetParam() == QueueBackend::kIndexed) {
    // In-place removal never leaves tombstones behind.
    EXPECT_EQ(engine.tombstones(), 0u);
    EXPECT_EQ(engine.heap_size(), 500u);
  }
  double last = -1.0;
  bool monotone = true;
  engine.run();
  EXPECT_EQ(fired.size(), 500u);
  for (int i : fired) {
    EXPECT_EQ(i % 10, 0);
    const double t = static_cast<double>((i * 7919) % 997);
    if (t < last) monotone = false;
    last = t;
  }
  EXPECT_TRUE(monotone);
}

TEST_P(SimEngineTest, ExecutedCounterCountsOnlyFired) {
  const EventId id = engine.schedule_at(1.0, EventPriority::kControl, [] {});
  engine.schedule_at(2.0, EventPriority::kControl, [] {});
  engine.cancel(id);
  engine.run();
  EXPECT_EQ(engine.events_executed(), 1u);
}

TEST_P(SimEngineTest, ManyEventsStressOrdering) {
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Scatter times via a fixed pattern, including duplicates.
    const double t = static_cast<double>((i * 7919) % 1000);
    engine.schedule_at(t, EventPriority::kControl, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  engine.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(engine.events_executed(), 10000u);
}

TEST_P(SimEngineTest, BackendsProduceIdenticalExecutionOrder) {
  // Same churny schedule/cancel script on both backends; the sequence of
  // fired ids must match element for element.
  auto script = [](SimEngine& e) {
    std::vector<int> fired;
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i) {
      const double t = static_cast<double>((i * 131) % 257);
      const auto prio =
          (i % 3 == 0) ? EventPriority::kCompletion : EventPriority::kArrival;
      ids.push_back(e.schedule_at(t, prio, [&fired, i] { fired.push_back(i); }));
    }
    for (int i = 0; i < 1000; i += 4) e.cancel(ids[static_cast<std::size_t>(i)]);
    e.run_until(100.0);
    for (int i = 0; i < 100; ++i) {
      const double t = 100.0 + static_cast<double>((i * 17) % 53);
      e.schedule_at(t, EventPriority::kControl,
                    [&fired, i] { fired.push_back(10000 + i); });
    }
    e.run();
    return fired;
  };
  SimEngine tombstone{QueueBackend::kTombstone};
  SimEngine indexed{QueueBackend::kIndexed};
  EXPECT_EQ(script(tombstone), script(indexed));
}

// --- Typed events -----------------------------------------------------------

struct TypedTarget {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  static void handler(SimEngine&, const EventPayload& payload) {
    static_cast<TypedTarget*>(payload.target)
        ->seen.emplace_back(payload.a, payload.b);
  }
};

TEST_P(SimEngineTest, TypedEventsCarryTheirPayload) {
  TypedTarget target;
  engine.register_handler(EventKind::kProbe, &TypedTarget::handler);
  EventPayload payload;
  payload.target = &target;
  payload.a = 7;
  payload.b = 9;
  engine.schedule_event(1.0, EventPriority::kControl, EventKind::kProbe,
                        payload);
  payload.a = 8;
  engine.schedule_event(2.0, EventPriority::kControl, EventKind::kProbe,
                        payload);
  engine.run();
  ASSERT_EQ(target.seen.size(), 2u);
  EXPECT_EQ(target.seen[0], (std::pair<std::uint64_t, std::uint64_t>{7, 9}));
  EXPECT_EQ(target.seen[1], (std::pair<std::uint64_t, std::uint64_t>{8, 9}));
}

TEST_P(SimEngineTest, TypedEventsInterleaveWithClosuresInKeyOrder) {
  TypedTarget target;
  engine.register_handler(EventKind::kProbe, &TypedTarget::handler);
  std::vector<int> order;
  engine.schedule_at(2.0, EventPriority::kControl, [&] { order.push_back(2); });
  EventPayload payload;
  payload.target = &target;
  engine.schedule_event(1.0, EventPriority::kControl, EventKind::kProbe,
                        payload);
  engine.schedule_at(3.0, EventPriority::kControl, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_EQ(target.seen.size(), 1u);
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST_P(SimEngineTest, UnregisteredKindThrows) {
  EventPayload payload;
  EXPECT_THROW(engine.schedule_event(1.0, EventPriority::kControl,
                                     EventKind::kProbe, payload),
               CheckError);
}

TEST_P(SimEngineTest, ConflictingHandlerRegistrationThrows) {
  engine.register_handler(EventKind::kProbe, &TypedTarget::handler);
  // Same function again is fine (idempotent re-registration)...
  engine.register_handler(EventKind::kProbe, &TypedTarget::handler);
  // ...a different function for the same kind is a wiring bug.
  EXPECT_THROW(
      engine.register_handler(EventKind::kProbe,
                              [](SimEngine&, const EventPayload&) {}),
      CheckError);
}

TEST_P(SimEngineTest, CancelledTypedEventNeverDispatches) {
  TypedTarget target;
  engine.register_handler(EventKind::kProbe, &TypedTarget::handler);
  EventPayload payload;
  payload.target = &target;
  const EventId id = engine.schedule_event(1.0, EventPriority::kControl,
                                           EventKind::kProbe, payload);
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_TRUE(target.seen.empty());
}

TEST_P(SimEngineTest, RecordRingSurvivesManyOutstandingEvents) {
  // Force repeated ring growth (way past the initial capacity) with all
  // events outstanding at once, then drain; ids, order, and counters must
  // survive the re-seating.
  std::vector<int> fired;
  for (int i = 0; i < 3000; ++i)
    engine.schedule_at(static_cast<double>(i), EventPriority::kControl,
                       [&fired, i] { fired.push_back(i); });
  engine.run();
  ASSERT_EQ(fired.size(), 3000u);
  EXPECT_EQ(fired.front(), 0);
  EXPECT_EQ(fired.back(), 2999);
}

// --- Backend selection ------------------------------------------------------

TEST(SimEngineBackend, DefaultBackendIsOverridable) {
  const QueueBackend original = SimEngine::default_backend();
  SimEngine::set_default_backend(QueueBackend::kIndexed);
  EXPECT_EQ(SimEngine().backend(), QueueBackend::kIndexed);
  SimEngine::set_default_backend(QueueBackend::kTombstone);
  EXPECT_EQ(SimEngine().backend(), QueueBackend::kTombstone);
  SimEngine::set_default_backend(original);
}

TEST(SimEngineBackend, ToStringNamesBothBackends) {
  EXPECT_EQ(to_string(QueueBackend::kTombstone), "tombstone");
  EXPECT_EQ(to_string(QueueBackend::kIndexed), "indexed");
}

TEST(SimEngineBackend, ParseAcceptsCaseAndWhitespaceVariants) {
  EXPECT_EQ(parse_queue_backend("tombstone"), QueueBackend::kTombstone);
  EXPECT_EQ(parse_queue_backend("indexed"), QueueBackend::kIndexed);
  EXPECT_EQ(parse_queue_backend("TOMBSTONE"), QueueBackend::kTombstone);
  EXPECT_EQ(parse_queue_backend("  Indexed \n"), QueueBackend::kIndexed);
  EXPECT_EQ(parse_queue_backend("\ttombstone\r\n"), QueueBackend::kTombstone);
}

TEST(SimEngineBackend, ParseRejectsEverythingElse) {
  EXPECT_FALSE(parse_queue_backend("").has_value());
  EXPECT_FALSE(parse_queue_backend("   ").has_value());
  EXPECT_FALSE(parse_queue_backend("tombstones").has_value());
  EXPECT_FALSE(parse_queue_backend("index").has_value());
  EXPECT_FALSE(parse_queue_backend("tombstone indexed").has_value());
  EXPECT_FALSE(parse_queue_backend(std::string(64, 'x')).has_value());
}

// Restores MBTS_QUEUE_BACKEND and the cached process default on exit, so
// these tests cannot leak state into engine tests that run after them.
class ScopedBackendEnv {
 public:
  ScopedBackendEnv() : original_(SimEngine::default_backend()) {
    const char* env = std::getenv("MBTS_QUEUE_BACKEND");
    if (env != nullptr) saved_ = env;
    had_env_ = env != nullptr;
  }
  ~ScopedBackendEnv() {
    if (had_env_) {
      ::setenv("MBTS_QUEUE_BACKEND", saved_.c_str(), 1);
    } else {
      ::unsetenv("MBTS_QUEUE_BACKEND");
    }
    SimEngine::reset_default_backend_for_test();
    SimEngine::set_default_backend(original_);
  }

 private:
  QueueBackend original_;
  std::string saved_;
  bool had_env_ = false;
};

TEST(SimEngineBackend, EnvSelectsDefaultNormalized) {
  ScopedBackendEnv guard;
  ::setenv("MBTS_QUEUE_BACKEND", "  InDeXeD ", 1);
  SimEngine::reset_default_backend_for_test();
  EXPECT_EQ(SimEngine::default_backend(), QueueBackend::kIndexed);
  EXPECT_EQ(SimEngine().backend(), QueueBackend::kIndexed);
}

TEST(SimEngineBackend, BlankEnvMeansUnset) {
  ScopedBackendEnv guard;
  ::setenv("MBTS_QUEUE_BACKEND", "   ", 1);
  SimEngine::reset_default_backend_for_test();
  EXPECT_EQ(SimEngine::default_backend(), QueueBackend::kTombstone);
}

TEST(SimEngineBackend, InvalidEnvFailsLoudly) {
  // A typo'd backend must not silently fall back — the run would use the
  // wrong queue and perf numbers would lie.
  ScopedBackendEnv guard;
  ::setenv("MBTS_QUEUE_BACKEND", "tombston", 1);
  SimEngine::reset_default_backend_for_test();
  EXPECT_THROW(SimEngine::default_backend(), CheckError);
}

TEST(SimEngineBackend, SetDefaultBackendBeatsEnv) {
  ScopedBackendEnv guard;
  ::setenv("MBTS_QUEUE_BACKEND", "indexed", 1);
  SimEngine::reset_default_backend_for_test();
  SimEngine::set_default_backend(QueueBackend::kTombstone);
  EXPECT_EQ(SimEngine::default_backend(), QueueBackend::kTombstone);
}

TEST(SimEngineBackend, ExplicitConstructorBeatsEverything) {
  ScopedBackendEnv guard;
  ::setenv("MBTS_QUEUE_BACKEND", "indexed", 1);
  SimEngine::reset_default_backend_for_test();
  SimEngine engine{QueueBackend::kTombstone};
  EXPECT_EQ(engine.backend(), QueueBackend::kTombstone);
}

TEST(SimEngineSequence, ExhaustionGuardThrowsInsteadOfWrapping) {
  // Event ids live in 48 bits of the packed (priority, id) heap key. A
  // wrapped id would re-enter the ordering space below live events and
  // silently corrupt the execution order, so allocation past the last id
  // must fail loudly instead.
  SimEngine engine;
  const std::uint64_t last = (std::uint64_t{1} << 48) - 1;
  engine.set_next_sequence_for_test(last);
  // The final id is still allocatable...
  engine.schedule_at(1.0, EventPriority::kControl, [] {});
  // ...and the first allocation past it throws rather than wrapping.
  EXPECT_THROW(engine.schedule_at(2.0, EventPriority::kControl, [] {}),
               CheckError);
}

TEST(SimEngineSequence, FastForwardRequiresIdleEngine) {
  SimEngine engine;
  engine.schedule_at(1.0, EventPriority::kControl, [] {});
  EXPECT_THROW(engine.set_next_sequence_for_test(1 << 20), CheckError);
}

TEST(SimEngineSequence, FastForwardCannotRunBackwards) {
  SimEngine engine;
  engine.set_next_sequence_for_test(1 << 20);
  EXPECT_THROW(engine.set_next_sequence_for_test(1 << 10), CheckError);
}

}  // namespace
}  // namespace mbts
