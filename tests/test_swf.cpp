#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace mbts {
namespace {

// 18-field SWF lines: job submit wait runtime procs cpu mem req_procs ...
const char* kSample =
    "; Comment header\n"
    ";  UnixStartTime: 0\n"
    "\n"
    "1 0 5 100 4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
    "2 10 0 50 1 -1 -1 2 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
    "3 20 3 -1 8 -1 -1 8 -1 -1 0 1 1 1 -1 -1 -1 -1\n"  // failed job
    "4 30 1 25 16 -1 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1\n";

SwfImportOptions default_options() {
  SwfImportOptions options;
  options.value_unit.cv = 0.0;
  options.value_unit.p_high = 0.0;
  options.value_unit.low_mean = 2.0;
  return options;
}

TEST(Swf, ParsesJobsAndSkipsCommentsAndFailures) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  const Trace trace = load_swf(in, default_options(), rng);
  ASSERT_EQ(trace.size(), 3u);  // job 3 dropped (runtime -1)
  EXPECT_EQ(trace.tasks[0].arrival, 0.0);
  EXPECT_EQ(trace.tasks[0].runtime, 100.0);
  EXPECT_EQ(trace.tasks[1].arrival, 10.0);
  EXPECT_EQ(trace.tasks[1].runtime, 50.0);
}

TEST(Swf, PrefersRequestedProcessors) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  const Trace trace = load_swf(in, default_options(), rng);
  EXPECT_EQ(trace.tasks[0].width, 4u);
  EXPECT_EQ(trace.tasks[1].width, 2u);   // requested (field 8) over used (5)
  EXPECT_EQ(trace.tasks[2].width, 16u);  // field 8 is -1 => use field 5
}

TEST(Swf, MaxWidthClamps) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  options.max_width = 8;
  const Trace trace = load_swf(in, options, rng);
  EXPECT_EQ(trace.tasks[2].width, 8u);
}

TEST(Swf, ValuesSynthesizedFromModel) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  const Trace trace = load_swf(in, default_options(), rng);
  // cv 0, unit 2: value = 2 * runtime * width exactly.
  EXPECT_NEAR(trace.tasks[0].value.max_value(), 2.0 * 100.0 * 4.0, 1e-9);
  EXPECT_FALSE(trace.tasks[0].value.bounded());
}

TEST(Swf, PenaltyModelRespected) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  options.penalty = PenaltyModel::kBoundedAtZero;
  const Trace trace = load_swf(in, options, rng);
  for (const Task& t : trace.tasks)
    EXPECT_EQ(t.value.penalty_bound(), 0.0);
}

TEST(Swf, LimitTruncates) {
  std::istringstream in(kSample);
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  options.limit = 2;
  EXPECT_EQ(load_swf(in, options, rng).size(), 2u);
}

// Regression: the limit used to cut the raw file mid-read, before the
// arrival sort, so an out-of-order file kept whichever jobs appeared first
// in the file rather than the earliest arrivals. The limited import must be
// the prefix of the full sorted trace.
TEST(Swf, LimitAppliesAfterArrivalSort) {
  const char* out_of_order =
      "1 90 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "2 80 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "3 5 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "4 10 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n";
  std::istringstream in(out_of_order);
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  options.limit = 2;
  const Trace trace = load_swf(in, options, rng);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.tasks[0].arrival, 5.0);
  EXPECT_EQ(trace.tasks[1].arrival, 10.0);
}

TEST(Swf, OutOfOrderSubmitsAreSorted) {
  std::istringstream in(
      "2 50 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "1 5 0 10 1 -1 -1 1 -1 -1 1 1 1 1 -1 -1 -1 -1\n");
  Xoshiro256 rng(1);
  const Trace trace = load_swf(in, default_options(), rng);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.tasks[0].arrival, 5.0);
  EXPECT_EQ(trace.tasks[1].arrival, 50.0);
  EXPECT_TRUE(validate_trace(trace).empty());
}

TEST(Swf, ShortLineThrows) {
  std::istringstream in("1 0 5\n");
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  EXPECT_THROW(load_swf(in, options, rng), CheckError);
}

// Regression: `stream >> double` stops extracting at the first malformed
// token, so "4 garbage ..." used to silently truncate the line to one field
// (masked as a short-line error at best, wrong fields at worst). A corrupt
// record must fail loudly, naming the line.
TEST(Swf, MalformedFieldThrowsWithLineNumber) {
  std::istringstream in(
      "1 0 5 100 4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "2 10 0 50 oops -1 -1 2 -1 -1 1 1 1 1 -1 -1 -1 -1\n");
  Xoshiro256 rng(1);
  try {
    load_swf(in, default_options(), rng);
    FAIL() << "malformed field did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("oops"), std::string::npos) << what;
  }
}

TEST(Swf, PartialNumberTokenThrows) {
  // "50x" parses a prefix under strtod; full-token consumption must reject.
  std::istringstream in("1 0 5 50x 4 -1 -1 4 -1 -1 1 1 1 1 -1 -1 -1 -1\n");
  Xoshiro256 rng(1);
  EXPECT_THROW(load_swf(in, default_options(), rng), CheckError);
}

TEST(Swf, MissingFileThrows) {
  Xoshiro256 rng(1);
  SwfImportOptions options = default_options();
  EXPECT_THROW(load_swf_file("/no/such/file.swf", options, rng), CheckError);
}

TEST(Swf, DeterministicForSameSeed) {
  std::istringstream in1(kSample), in2(kSample);
  Xoshiro256 r1(9), r2(9);
  SwfImportOptions options;
  const Trace a = load_swf(in1, options, r1);
  const Trace b = load_swf(in2, options, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.tasks[i].value, b.tasks[i].value);
}

}  // namespace
}  // namespace mbts
