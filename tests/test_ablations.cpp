// Structure and headline-direction smoke tests for the ablation and
// extension experiments (miniature traces; the benches run them at scale).
#include "experiments/ablations.hpp"

#include <gtest/gtest.h>

namespace mbts {
namespace {

ExperimentOptions tiny(std::size_t jobs = 300) {
  ExperimentOptions options;
  options.num_jobs = jobs;
  options.replications = 1;
  options.seed = 42;
  options.threads = 1;
  return options;
}

TEST(Ablations, YieldBasisStructure) {
  const FigureResult figure = ablation_yield_basis(tiny());
  EXPECT_EQ(figure.id, "abl_yield_basis");
  ASSERT_EQ(figure.series.size(), 3u);
  for (const Series& s : figure.series)
    EXPECT_EQ(s.points.size(), 7u);
}

TEST(Ablations, Eq8VariantsBothComputed) {
  const FigureResult figure = ablation_eq8(tiny());
  ASSERT_EQ(figure.series.size(), 2u);
  EXPECT_EQ(figure.series[0].label, "eq8_corrected");
  EXPECT_EQ(figure.series[1].label, "eq8_literal");
  ASSERT_EQ(figure.series[0].points.size(), 10u);
}

TEST(Ablations, StaleKeysHurtFirstRewardUnderOverload) {
  const FigureResult figure = ablation_stale_keys(tiny(600));
  ASSERT_EQ(figure.series.size(), 4u);
  // At the heaviest load (last x), fresh FirstReward must beat stale.
  const double fresh = figure.series[2].points.back().y;
  const double stale = figure.series[3].points.back().y;
  EXPECT_GT(fresh, stale);
}

TEST(Ablations, PreemptionSeriesCover) {
  const FigureResult figure = ablation_preemption(tiny());
  ASSERT_EQ(figure.series.size(), 2u);
  ASSERT_EQ(figure.series[0].points.size(), 6u);
  EXPECT_DOUBLE_EQ(figure.series[0].points.back().x, 1.0);
}

TEST(Extensions, EstimateErrorAdmissionMostRobust) {
  const FigureResult figure = extension_estimate_error(tiny(600));
  ASSERT_EQ(figure.series.size(), 3u);
  // Admission-controlled FirstReward stays ahead of plain FirstPrice at
  // the largest error.
  EXPECT_GT(figure.series[2].points.back().y,
            figure.series[0].points.back().y);
}

TEST(Extensions, PiecewiseGridComplete) {
  const FigureResult figure = extension_piecewise(tiny());
  ASSERT_EQ(figure.series.size(), 4u);
  for (const Series& s : figure.series) {
    ASSERT_EQ(s.points.size(), 5u);
    EXPECT_DOUBLE_EQ(s.points.front().x, 0.0);
  }
}

TEST(Extensions, MarketRevenueStaysPositive) {
  const FigureResult figure = extension_market(tiny(400));
  ASSERT_EQ(figure.series.size(), 4u);
  for (const Series& s : figure.series)
    for (const SeriesPoint& p : s.points)
      EXPECT_GT(p.y, 0.0) << s.label << " sites=" << p.x;
}

}  // namespace
}  // namespace mbts
