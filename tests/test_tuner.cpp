#include "experiments/tuner.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

ExperimentOptions tiny() {
  ExperimentOptions options;
  options.num_jobs = 300;
  options.replications = 1;
  options.seed = 42;
  options.threads = 1;
  return options;
}

TEST(Tuner, GridIsFullyEvaluated) {
  TuneGrid grid;
  grid.alphas = {0.0, 0.5};
  grid.thresholds = {0.0, 200.0};
  const TuneResult result = tune_first_reward(tiny(), 1.5, grid);
  ASSERT_EQ(result.grid.size(), 4u);
  // Row-major order: alpha varies slowest.
  EXPECT_EQ(result.grid[0].alpha, 0.0);
  EXPECT_EQ(result.grid[0].threshold, 0.0);
  EXPECT_EQ(result.grid[3].alpha, 0.5);
  EXPECT_EQ(result.grid[3].threshold, 200.0);
}

TEST(Tuner, BestIsGridMaximum) {
  TuneGrid grid;
  grid.alphas = {0.0, 0.4, 0.8};
  grid.thresholds = {-100.0, 100.0, 400.0};
  const TuneResult result = tune_first_reward(tiny(), 2.0, grid);
  double max_rate = -1e300;
  for (const TunePoint& p : result.grid)
    max_rate = std::max(max_rate, p.yield_rate);
  EXPECT_EQ(result.best.yield_rate, max_rate);
}

TEST(Tuner, AdmissionBeatsNoAdmissionUnderOverload) {
  TuneGrid grid;
  grid.alphas = {0.2};
  grid.thresholds = {0.0, 100.0, 300.0};
  const TuneResult result = tune_first_reward(tiny(), 2.5, grid);
  EXPECT_GT(result.best.yield_rate, result.no_admission_rate);
}

TEST(Tuner, EmptyGridRejected) {
  TuneGrid grid;
  grid.alphas = {};
  EXPECT_THROW(tune_first_reward(tiny(), 1.0, grid), CheckError);
}

}  // namespace
}  // namespace mbts
