// adaptive_sort (core/rank_sort.hpp): the scheduler's warm-start rank
// re-sort. Every case is cross-checked against std::sort on a copy — the
// warm start is a cost model, never a correctness assumption. The
// rotate-by-16 case pins the latent budget-trip path: few adjacent
// inversions but O(n) displacement per insertion, which the original
// in-scheduler version mis-costed before the move budget existed.
#include "core/rank_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mbts {
namespace {

/// The scheduler's rank comparator shape: (score desc, id asc).
struct Ranked {
  double score = 0.0;
  std::uint64_t id = 0;
  friend bool operator==(const Ranked&, const Ranked&) = default;
};

bool rank_less(const Ranked& a, const Ranked& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

void expect_matches_std_sort(std::vector<Ranked> v, const std::string& label) {
  std::vector<Ranked> expected = v;
  std::sort(expected.begin(), expected.end(), rank_less);
  adaptive_sort(v, rank_less);
  ASSERT_EQ(v.size(), expected.size()) << label;
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(v[i], expected[i]) << label << " at " << i;
}

TEST(AdaptiveSort, TrivialInputs) {
  expect_matches_std_sort({}, "empty");
  expect_matches_std_sort({{5.0, 1}}, "single");
  expect_matches_std_sort({{1.0, 3}, {1.0, 1}, {1.0, 2}}, "all equal scores");
}

TEST(AdaptiveSort, AlreadySortedIsUntouched) {
  std::vector<Ranked> v;
  for (std::uint64_t i = 0; i < 100; ++i)
    v.push_back({100.0 - static_cast<double>(i), i});
  expect_matches_std_sort(v, "sorted");
}

TEST(AdaptiveSort, FewDisplacedElements) {
  // The intended warm-start case: sorted order with a handful of elements
  // nudged out of place (score drift + one new arrival).
  Xoshiro256 rng(5);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<Ranked> v;
    for (std::uint64_t i = 0; i < 200; ++i)
      v.push_back({200.0 - static_cast<double>(i), i});
    for (int k = 0; k < 5; ++k) {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform(0.0, 200.0)) % 200;
      v[i].score += rng.uniform(-3.0, 3.0);
    }
    // One "arrival" appended out of order.
    v.push_back({rng.uniform(0.0, 200.0), 777});
    expect_matches_std_sort(v, "displaced rep " + std::to_string(rep));
  }
}

TEST(AdaptiveSort, RandomShuffles) {
  Xoshiro256 rng(6);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 300.0));
    std::vector<Ranked> v;
    for (std::uint64_t i = 0; i < n; ++i) {
      // Coarse scores: plenty of ties, so the id tie-break matters.
      v.push_back({std::floor(rng.uniform(0.0, 20.0)), i});
    }
    for (std::size_t i = n; i > 1; --i)
      std::swap(v[i - 1], v[static_cast<std::size_t>(
                              rng.uniform(0.0, static_cast<double>(i)))]);
    expect_matches_std_sort(v, "shuffle rep " + std::to_string(rep));
  }
}

TEST(AdaptiveSort, RotationTripsMoveBudgetButStaysSorted) {
  // A sorted array rotated left by 16 has exactly 16... no: exactly ONE
  // adjacent inversion per rotated element boundary — few enough to enter
  // the insertion pass — yet each displaced element must travel O(n) to
  // its seat. The move budget trips mid-pass and the fallback std::sort
  // must still produce the fully sorted permutation (the re-seat bug this
  // test pins: losing the in-flight element corrupts the queue).
  for (const std::size_t n : {64u, 1024u, 4096u}) {
    std::vector<Ranked> v;
    for (std::uint64_t i = 0; i < n; ++i)
      v.push_back({static_cast<double>(n) - static_cast<double>(i),
                   i});
    std::rotate(v.begin(), v.begin() + 16, v.end());
    expect_matches_std_sort(v, "rotate-16 n=" + std::to_string(n));
  }
}

TEST(AdaptiveSort, ChurnLoopStaysConsistent) {
  // Simulates the scheduler's life: repeatedly drift scores, erase and
  // insert a few entries, re-sort, and verify against std::sort each time.
  Xoshiro256 rng(7);
  std::vector<Ranked> v;
  std::uint64_t next_id = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    v.push_back({rng.uniform(0.0, 100.0), next_id++});
  std::sort(v.begin(), v.end(), rank_less);
  for (int round = 0; round < 300; ++round) {
    for (auto& r : v)
      if (rng.bernoulli(0.1)) r.score += rng.uniform(-1.0, 1.0);
    if (!v.empty() && rng.bernoulli(0.4)) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(v.size())));
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i % v.size()));
    }
    if (rng.bernoulli(0.6)) v.push_back({rng.uniform(0.0, 100.0), next_id++});

    std::vector<Ranked> expected = v;
    std::sort(expected.begin(), expected.end(), rank_less);
    adaptive_sort(v, rank_less);
    ASSERT_EQ(v, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace mbts
