// Tests for the variable-rate (piecewise-linear) value-function
// generalization (§3: "The framework can generalize to value functions that
// decay at variable rates").
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "core/value_function.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

/// Deadline-cliff profile: almost flat for `grace` units, then a steep drop.
ValueFunction cliff(double value, double grace, double steep_rate,
                    double bound = kInf) {
  return ValueFunction::piecewise(value, {{grace, 0.0}, {kInf, steep_rate}},
                                  bound);
}

TEST(Piecewise, SingleSegmentEqualsLinear) {
  const ValueFunction linear(100.0, 2.0, 30.0);
  const ValueFunction pw = ValueFunction::piecewise(
      100.0, {{kInf, 2.0}}, 30.0);
  EXPECT_EQ(linear, pw);
  EXPECT_TRUE(pw.is_linear());
  for (double d : {0.0, 10.0, 65.0, 1000.0})
    EXPECT_EQ(linear.yield_at_delay(d), pw.yield_at_delay(d));
}

TEST(Piecewise, TwoPhaseYield) {
  // Decay 1/unit for 10 units, then 5/unit.
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 1.0}, {kInf, 5.0}}, kInf);
  EXPECT_FALSE(vf.is_linear());
  EXPECT_EQ(vf.yield_at_delay(0.0), 100.0);
  EXPECT_EQ(vf.yield_at_delay(5.0), 95.0);
  EXPECT_EQ(vf.yield_at_delay(10.0), 90.0);   // kink
  EXPECT_EQ(vf.yield_at_delay(12.0), 80.0);   // now 5/unit
  EXPECT_EQ(vf.yield_at_delay(30.0), -10.0);
}

TEST(Piecewise, DeadlineCliffYield) {
  const ValueFunction vf = cliff(100.0, 20.0, 50.0);
  EXPECT_EQ(vf.yield_at_delay(19.9), 100.0);
  EXPECT_EQ(vf.yield_at_delay(21.0), 50.0);
  EXPECT_EQ(vf.yield_at_delay(22.0), 0.0);
  EXPECT_EQ(vf.yield_at_delay(24.0), -100.0);
}

TEST(Piecewise, DecayAtDelayTracksSegments) {
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 1.0}, {kInf, 5.0}}, kInf);
  EXPECT_EQ(vf.decay_at_delay(0.0), 1.0);
  EXPECT_EQ(vf.decay_at_delay(9.99), 1.0);
  EXPECT_EQ(vf.decay_at_delay(10.0), 5.0);
  EXPECT_EQ(vf.decay_at_delay(100.0), 5.0);
  EXPECT_EQ(vf.decay(), 1.0);  // scalar summary = initial rate
}

TEST(Piecewise, DecayAtDelayZeroWhenExpired) {
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{kInf, 2.0}}, 0.0);
  EXPECT_EQ(vf.decay_at_delay(49.0), 2.0);
  EXPECT_EQ(vf.decay_at_delay(50.0), 0.0);
}

TEST(Piecewise, DelayToZeroCrossesSegments) {
  // 1/unit for 10 units (drop 10), then 5/unit: zero at 10 + 90/5 = 28.
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 1.0}, {kInf, 5.0}}, kInf);
  EXPECT_DOUBLE_EQ(vf.delay_to_zero(), 28.0);
}

TEST(Piecewise, DelayToZeroInfiniteWhenDecayStops) {
  // Decays only 50 total, then flat: never reaches zero.
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 5.0}, {kInf, 0.0}}, kInf);
  EXPECT_EQ(vf.delay_to_zero(), kInf);
  EXPECT_EQ(vf.yield_at_delay(1e9), 50.0);
}

TEST(Piecewise, ExpiryFromBound) {
  // Bound 20: expire when drop reaches 120 => 10 + 110/5 = 32.
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 1.0}, {kInf, 5.0}}, 20.0);
  EXPECT_DOUBLE_EQ(vf.delay_to_expire(), 32.0);
  EXPECT_TRUE(vf.expired_at_delay(32.0));
  EXPECT_EQ(vf.yield_at_delay(40.0), -20.0);
}

TEST(Piecewise, ExpiryFromTrailingZeroRate) {
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 5.0}, {kInf, 0.0}}, kInf);
  EXPECT_DOUBLE_EQ(vf.delay_to_expire(), 10.0);
  EXPECT_EQ(vf.decay_at_delay(11.0), 0.0);
}

TEST(Piecewise, InteriorZeroSegmentIsNotExpiry) {
  // Flat between 10 and 20, then decays again: not expired during the flat.
  const ValueFunction vf = ValueFunction::piecewise(
      100.0, {{10.0, 1.0}, {10.0, 0.0}, {kInf, 2.0}}, kInf);
  EXPECT_FALSE(vf.expired_at_delay(15.0));
  EXPECT_EQ(vf.decay_at_delay(15.0), 0.0);
  EXPECT_EQ(vf.decay_at_delay(25.0), 2.0);
  EXPECT_EQ(vf.yield_at_delay(25.0), 100.0 - 10.0 - 10.0);
}

TEST(Piecewise, InvalidSegmentsThrow) {
  EXPECT_THROW(ValueFunction::piecewise(100.0, {}, kInf), CheckError);
  EXPECT_THROW(
      ValueFunction::piecewise(100.0, {{10.0, -1.0}}, kInf), CheckError);
  EXPECT_THROW(
      ValueFunction::piecewise(100.0, {{-5.0, 1.0}, {kInf, 1.0}}, kInf),
      CheckError);
}

TEST(Piecewise, ToStringShowsProfile) {
  const ValueFunction vf =
      ValueFunction::piecewise(100.0, {{10.0, 1.0}, {kInf, 5.0}}, kInf);
  const std::string s = vf.to_string();
  EXPECT_NE(s.find("1@10"), std::string::npos);
  EXPECT_NE(s.find("5@inf"), std::string::npos);
}

// --- End-to-end: the scheduler honors variable rates ----------------------

Task make_task(TaskId id, double arrival, double runtime, ValueFunction vf) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = vf;
  return t;
}

TEST(PiecewiseScheduler, SettlesAtPiecewiseYield) {
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  SiteScheduler site(engine, config, make_policy(PolicySpec::fcfs()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 30.0, ValueFunction::unbounded(10.0, 0.0)),
      // Completes at 40 with delay 30: grace 20 exhausted, 10 units into
      // the cliff at rate 5 => yield 100 - 50 = 50.
      make_task(1, 0.0, 10.0, cliff(100.0, 20.0, 5.0)),
  });
  engine.run();
  double yield1 = 0.0;
  for (const TaskRecord& r : site.records())
    if (r.task.id == 1) yield1 = r.realized_yield;
  EXPECT_DOUBLE_EQ(yield1, 50.0);
}

TEST(PiecewiseScheduler, SwptReactsToRateChange) {
  // Two tasks: A decays at 0 now but at 10 once its grace of 5 delay units
  // is spent; B decays at 1 always. A blocker holds the processor until
  // t=20, by which time A's cliff is active and SWPT must run A first.
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  config.preemption = false;
  SiteScheduler site(engine, config, make_policy(PolicySpec::swpt()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(9, 0.0, 20.0, ValueFunction::unbounded(1.0, 100.0)),
      make_task(0, 0.0, 10.0, cliff(500.0, 5.0, 10.0)),
      make_task(1, 0.0, 10.0, ValueFunction::unbounded(500.0, 1.0)),
  });
  engine.run();
  double a = 0.0, b = 0.0;
  for (const TaskRecord& r : site.records()) {
    if (r.task.id == 0) a = r.completion;
    if (r.task.id == 1) b = r.completion;
  }
  EXPECT_LT(a, b);  // cliffed task ran first once its steep segment engaged
}

TEST(PiecewiseScheduler, DropExpiredRespectsStabilizedValue) {
  // A piecewise function that stops decaying at +40 must never be dropped
  // even with drop_expired on — completing it still earns 40.
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 1;
  config.drop_expired = true;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_price()),
                     std::make_unique<AcceptAllAdmission>());
  site.inject(std::vector<Task>{
      make_task(0, 0.0, 50.0, ValueFunction::unbounded(1000.0, 0.0)),
      make_task(1, 0.0, 10.0,
                ValueFunction::piecewise(100.0, {{5.0, 12.0}, {kInf, 0.0}},
                                         60.0)),
  });
  engine.run();
  const TaskRecord* r = nullptr;
  for (const TaskRecord& rec : site.records())
    if (rec.task.id == 1) r = &rec;
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->outcome, TaskOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(r->realized_yield, 40.0);
}

}  // namespace
}  // namespace mbts
