#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(ListSchedule, SingleProcessorIsSequential) {
  const std::vector<double> proc{0.0};
  const std::vector<PendingItem> items{{1, 10.0}, {2, 5.0}, {3, 2.0}};
  const auto entries = list_schedule(proc, items);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].start, 0.0);
  EXPECT_EQ(entries[0].completion, 10.0);
  EXPECT_EQ(entries[1].start, 10.0);
  EXPECT_EQ(entries[1].completion, 15.0);
  EXPECT_EQ(entries[2].start, 15.0);
  EXPECT_EQ(entries[2].completion, 17.0);
}

TEST(ListSchedule, TwoProcessorsInterleave) {
  const std::vector<double> proc{0.0, 0.0};
  const std::vector<PendingItem> items{{1, 10.0}, {2, 4.0}, {3, 2.0}};
  const auto entries = list_schedule(proc, items);
  // Item 3 goes to the processor freed by item 2 at t=4.
  EXPECT_EQ(entries[0].start, 0.0);
  EXPECT_EQ(entries[1].start, 0.0);
  EXPECT_EQ(entries[2].start, 4.0);
  EXPECT_EQ(entries[2].completion, 6.0);
}

TEST(ListSchedule, BusyProcessorsDelayStarts) {
  // One processor free at 5, one at 12.
  const std::vector<double> proc{12.0, 5.0};
  const std::vector<PendingItem> items{{1, 3.0}, {2, 1.0}};
  const auto entries = list_schedule(proc, items);
  EXPECT_EQ(entries[0].start, 5.0);
  EXPECT_EQ(entries[0].completion, 8.0);
  EXPECT_EQ(entries[1].start, 8.0);  // earliest of {12, 8}
}

TEST(ListSchedule, EmptyPendingGivesNoEntries) {
  const std::vector<double> proc{0.0};
  EXPECT_TRUE(list_schedule(proc, {}).empty());
}

TEST(ListSchedule, PreservesInputOrderInOutput) {
  const std::vector<double> proc{0.0, 0.0};
  const std::vector<PendingItem> items{{42, 1.0}, {7, 2.0}};
  const auto entries = list_schedule(proc, items);
  EXPECT_EQ(entries[0].id, 42u);
  EXPECT_EQ(entries[1].id, 7u);
}

TEST(ListSchedule, NoProcessorsThrows) {
  EXPECT_THROW(list_schedule({}, {}), CheckError);
}

TEST(ListSchedule, MakespanIsWorkConserving) {
  // With identical free times, total completion span must be at least
  // total_work / p and at most total_work (one proc's worth).
  const std::vector<double> proc{0.0, 0.0, 0.0, 0.0};
  std::vector<PendingItem> items;
  double total = 0.0;
  for (TaskId i = 0; i < 32; ++i) {
    const double rpt = 1.0 + static_cast<double>(i % 7);
    items.push_back({i, rpt});
    total += rpt;
  }
  const auto entries = list_schedule(proc, items);
  double makespan = 0.0;
  for (const auto& e : entries) makespan = std::max(makespan, e.completion);
  EXPECT_GE(makespan, total / 4.0);
  EXPECT_LE(makespan, total);
}

TEST(ListSchedule, StartsNeverBeforeProcessorFree) {
  const std::vector<double> proc{3.0, 8.0};
  const std::vector<PendingItem> items{{1, 1.0}, {2, 1.0}, {3, 1.0}};
  for (const auto& e : list_schedule(proc, items))
    EXPECT_GE(e.start, 3.0);
}

TEST(CompletionOf, MatchesFullSchedule) {
  const std::vector<double> proc{2.0, 0.0};
  const std::vector<PendingItem> items{{1, 5.0}, {2, 3.0}, {3, 7.0}, {4, 1.0}};
  const auto entries = list_schedule(proc, items);
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(completion_of(proc, items, i), entries[i].completion) << i;
}

TEST(CompletionOf, IndexOutOfRangeThrows) {
  const std::vector<double> proc{0.0};
  const std::vector<PendingItem> items{{1, 5.0}};
  EXPECT_THROW(completion_of(proc, items, 1), CheckError);
}

}  // namespace
}  // namespace mbts
