// Service-mode unit tests (DESIGN.md §9), all on the virtual pacing clock so
// the whole serve stack runs deterministically in process, no sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "experiments/fingerprint.hpp"
#include "serve/broker_service.hpp"
#include "serve/pacing_clock.hpp"
#include "serve/preset.hpp"
#include "serve/protocol.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

using serve::BrokerService;
using serve::Outcome;
using serve::Request;
using serve::ServeConfig;
using serve::Verb;

// ---------------------------------------------------------------- pacing --

TEST(ServePacing, VirtualClockStartsAtZeroAndAdvances) {
  VirtualPacingClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(2.5);
  clock.advance(1.5);
  EXPECT_EQ(clock.now(), 4.0);
}

TEST(ServePacing, VirtualWaitPastDueReturnsImmediately) {
  VirtualPacingClock clock;
  clock.advance(10.0);
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(mu);
  clock.wait_until(cv, lk, 5.0);  // already due: must not block
  EXPECT_TRUE(lk.owns_lock());
}

TEST(ServePacing, VirtualAdvanceWakesWaiter) {
  VirtualPacingClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lk(mu);
    while (clock.now() < 5.0) clock.wait_until(cv, lk, 5.0);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.advance(5.0);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(ServePacing, WallClockIsMonotoneAndScaled) {
  WallPacingClock clock(1000.0);  // 1ms wall = 1 sim second
  const double a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = clock.now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);  // 5ms at scale 1000 is well past zero
}

// -------------------------------------------------------------- protocol --

TEST(ServeProtocol, ParsesControlVerbs) {
  Request request;
  std::string error;
  EXPECT_TRUE(serve::parse_request("PING", &request, &error));
  EXPECT_EQ(request.verb, Verb::kPing);
  EXPECT_TRUE(serve::parse_request("QUIT", &request, &error));
  EXPECT_EQ(request.verb, Verb::kQuit);
  EXPECT_TRUE(serve::parse_request("STATS", &request, &error));
  EXPECT_EQ(request.verb, Verb::kStats);
  EXPECT_TRUE(serve::parse_request("METRICS", &request, &error));
  EXPECT_EQ(request.verb, Verb::kStats);
}

TEST(ServeProtocol, ParsesBidWithBoundAndInf) {
  Request request;
  std::string error;
  ASSERT_TRUE(
      serve::parse_request("BID 120 50.5 0.25 300", &request, &error));
  EXPECT_EQ(request.verb, Verb::kBid);
  EXPECT_EQ(request.runtime, 120.0);
  EXPECT_EQ(request.value, 50.5);
  EXPECT_EQ(request.decay, 0.25);
  EXPECT_EQ(request.bound, 300.0);
  ASSERT_TRUE(serve::parse_request("  BID\t60 10 0 inf ", &request, &error));
  EXPECT_EQ(request.bound, kInf);
  const Task task = serve::bid_task(request);
  EXPECT_EQ(task.runtime, 60.0);
  EXPECT_EQ(task.value.max_value(), 10.0);
  EXPECT_FALSE(task.value.bounded());
}

TEST(ServeProtocol, ParsesTaggedBid) {
  Request request;
  std::string error;
  // Five arguments: the first is the client-chosen tag of the pipelined
  // form; the numeric fields follow unchanged.
  ASSERT_TRUE(
      serve::parse_request("BID t42 120 50.5 0.25 300", &request, &error));
  EXPECT_EQ(request.verb, Verb::kBid);
  EXPECT_EQ(request.tag, "t42");
  EXPECT_EQ(request.runtime, 120.0);
  EXPECT_EQ(request.value, 50.5);
  EXPECT_EQ(request.bound, 300.0);
  // The untagged form must leave the tag empty (lockstep sessions key off
  // that), including after a Request is reused across parses.
  ASSERT_TRUE(serve::parse_request("BID 60 10 0 inf", &request, &error));
  EXPECT_TRUE(request.tag.empty());
  // Tags are arbitrary printable tokens, not just t<N>.
  ASSERT_TRUE(serve::parse_request("BID job/7#a 60 10 0 inf", &request,
                                   &error));
  EXPECT_EQ(request.tag, "job/7#a");
}

TEST(ServeProtocol, RejectsBadTagsAndKeepsWireFieldNumbers) {
  Request request;
  std::string error;
  // Oversized tag.
  const std::string long_tag(serve::kMaxTag + 1, 'x');
  EXPECT_FALSE(serve::parse_request("BID " + long_tag + " 60 10 0 inf",
                                    &request, &error));
  EXPECT_NE(error.find("field 1 (tag)"), std::string::npos);
  // A non-printable byte inside the tag.
  EXPECT_FALSE(
      serve::parse_request(std::string("BID a\x01") + "b 60 10 0 inf",
                           &request, &error));
  EXPECT_NE(error.find("field 1 (tag)"), std::string::npos);
  // Diagnostics in the tagged form number fields by wire position: the
  // runtime of a tagged bid is field 2, its bound field 5.
  EXPECT_FALSE(
      serve::parse_request("BID t1 1.5x 10 0 inf", &request, &error));
  EXPECT_EQ(error, "field 2 (runtime): malformed number '1.5x'");
  EXPECT_FALSE(
      serve::parse_request("BID t1 60 10 0 huge", &request, &error));
  EXPECT_NE(error.find("field 5 (bound)"), std::string::npos);
  // ...while untagged diagnostics are byte-identical to the original wire
  // behavior (a pre-tag client sees no change).
  EXPECT_FALSE(serve::parse_request("BID 1.5x 10 0 inf", &request, &error));
  EXPECT_EQ(error, "field 1 (runtime): malformed number '1.5x'");
}

TEST(ServeProtocol, RejectsMalformedRequestsWithFieldDiagnostics) {
  Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request("", &request, &error));
  EXPECT_EQ(error, "empty request");
  EXPECT_FALSE(serve::parse_request("FROB 1 2", &request, &error));
  EXPECT_EQ(error, "unknown verb 'FROB'");
  EXPECT_FALSE(serve::parse_request("BID 1 2 3", &request, &error));
  EXPECT_NE(error.find("4 fields"), std::string::npos);
  EXPECT_NE(error.find("5 with a leading tag"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("PING now", &request, &error));
  EXPECT_EQ(error, "PING takes no arguments");
  // The load_swf discipline: partial-token parses are malformed, with the
  // field index, name, and offending token in the diagnostic.
  EXPECT_FALSE(serve::parse_request("BID 1.5x 10 0 inf", &request, &error));
  EXPECT_EQ(error, "field 1 (runtime): malformed number '1.5x'");
  EXPECT_FALSE(serve::parse_request("BID 10 abc 0 inf", &request, &error));
  EXPECT_EQ(error, "field 2 (value): malformed number 'abc'");
  EXPECT_FALSE(serve::parse_request("BID 10 5 -1 inf", &request, &error));
  EXPECT_NE(error.find("field 3 (decay)"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("BID 10 5 0 huge", &request, &error));
  EXPECT_NE(error.find("field 4 (bound)"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("BID 0 5 0 inf", &request, &error));
  EXPECT_NE(error.find("positive finite"), std::string::npos);
  EXPECT_FALSE(serve::parse_request("BID nan 5 0 inf", &request, &error));
}

// --------------------------------------------------------------- service --

MarketConfig serve_market(std::uint64_t seed) {
  // The Fig. 1 trio, shared with mbts_serve and the serve bench.
  return serve::fig1_market(seed);
}

Trace bid_stream(std::size_t jobs, std::uint64_t seed) {
  WorkloadSpec spec = presets::admission_mix(2.0, jobs);
  Xoshiro256 rng = SeedSequence(seed).stream(0x7A5C);
  return generate_trace(spec, rng);
}

/// Pulls one column out of a metrics CSV row (columns are
/// name,kind,count,value,...; `field` 3 is the value, 2 the count).
double csv_value(const std::string& csv, const std::string& name,
                 int field = 3) {
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + ",", 0) != 0) continue;
    std::size_t comma = 0;
    for (int i = 0; i < field; ++i) comma = line.find(',', comma) + 1;
    return std::strtod(line.c_str() + comma, nullptr);
  }
  ADD_FAILURE() << "no row " << name << " in:\n" << csv;
  return -1.0;
}

TEST(ServeService, EndToEndMatchesBatchBitForBit) {
  const Trace trace = bid_stream(120, 7);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();

  std::vector<std::future<Outcome>> outcomes;
  for (const Task& task : trace.tasks) {
    // Pace the clock along the generated arrivals: stamps follow the trace
    // while settlements interleave with admissions, like live traffic.
    if (task.arrival > clock.now()) clock.advance(task.arrival - clock.now());
    std::future<Outcome> outcome;
    ASSERT_EQ(service.submit(task, &outcome),
              BrokerService::SubmitStatus::kQueued);
    outcomes.push_back(std::move(outcome));
  }
  const MarketStats live = service.drain();
  EXPECT_EQ(live.bids, trace.tasks.size());

  std::size_t awarded = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome outcome = outcomes[i].get();
    EXPECT_EQ(outcome.task, static_cast<TaskId>(i + 1));
    if (outcome.awarded) {
      ++awarded;
      EXPECT_GT(outcome.expected_completion, 0.0);
    }
  }
  EXPECT_EQ(awarded, live.awarded);

  // The acceptance bar: a batch Market::run() over the admitted stream with
  // the same config reproduces the drained stats bit-for-bit.
  Market batch(config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServeService, BackpressureRejectsWhenQueueFull) {
  const Trace trace = bid_stream(8, 3);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  config.queue_capacity = 2;
  config.retry_after = 2.5;
  BrokerService service(config, &clock);

  // Not started yet, so the queue cannot drain: admission is deterministic.
  std::vector<std::future<Outcome>> outcomes(3);
  EXPECT_EQ(service.submit(trace.tasks[0], &outcomes[0]),
            BrokerService::SubmitStatus::kQueued);
  EXPECT_EQ(service.submit(trace.tasks[1], &outcomes[1]),
            BrokerService::SubmitStatus::kQueued);
  double retry_after = 0.0;
  EXPECT_EQ(service.submit(trace.tasks[2], &outcomes[2], &retry_after),
            BrokerService::SubmitStatus::kQueueFull);
  EXPECT_EQ(retry_after, 2.5);
  EXPECT_EQ(service.rejected_backpressure(), 1u);
  EXPECT_EQ(service.admitted(), 2u);

  service.start();
  const std::string csv = service.stats_csv();
  EXPECT_EQ(csv_value(csv, "serve/bids_rejected_backpressure"), 1.0);
  EXPECT_EQ(csv_value(csv, "serve/bids_admitted"), 2.0);

  const MarketStats stats = service.drain();
  EXPECT_EQ(stats.bids, 2u);
  EXPECT_TRUE(outcomes[0].valid());
  outcomes[0].get();
  outcomes[1].get();  // both admitted bids resolved, none lost
}

TEST(ServeService, GracefulDrainSettlesEverything) {
  const Trace trace = bid_stream(40, 5);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();
  std::vector<std::future<Outcome>> outcomes;
  for (const Task& task : trace.tasks) {
    std::future<Outcome> outcome;
    ASSERT_EQ(service.submit(task, &outcome),
              BrokerService::SubmitStatus::kQueued);
    outcomes.push_back(std::move(outcome));
  }
  // Drain without ever advancing the clock: every queued bid still
  // negotiates and every open contract settles when the engine runs dry.
  const MarketStats stats = service.drain();
  EXPECT_EQ(stats.bids, 40u);
  std::size_t awarded = 0;
  for (auto& outcome : outcomes) awarded += outcome.get().awarded ? 1 : 0;
  EXPECT_EQ(awarded, stats.awarded);
  EXPECT_EQ(stats.awarded + stats.rejected_everywhere, stats.bids);
}

TEST(ServeService, DrainingRejectsNewBids) {
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();
  service.drain();
  std::future<Outcome> outcome;
  EXPECT_EQ(service.submit(bid_stream(1, 1).tasks[0], &outcome),
            BrokerService::SubmitStatus::kDraining);
  EXPECT_EQ(service.rejected_draining(), 1u);
  EXPECT_EQ(service.stats_csv(), "");  // callers answer DRAINING
  EXPECT_NE(service.final_metrics_csv().find("serve/bids_rejected_draining"),
            std::string::npos);
}

TEST(ServeService, StatsDoesNotPumpPastQueuedBids) {
  // Regression: a STATS entry popped ahead of a queued bid used to fold
  // clock.now() into the pump boundary even when the bid's arrival stamp
  // (assigned at enqueue time) was earlier. The pump then ran the engine
  // past the bid, so the bid's own boundary lay in the engine's past — a
  // CheckError on the engine thread, where it is uncaught and terminates
  // the server. The stats pump must cap at the earliest queued bid's stamp.
  const Trace trace = bid_stream(2, 13);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  // Stall each negotiation so the STATS entry and the trailing bid both
  // land in the queue while the engine is still busy with the first bid.
  config.process_stall = std::chrono::milliseconds(100);
  BrokerService service(config, &clock);

  std::future<Outcome> first;
  ASSERT_EQ(service.submit(trace.tasks[0], &first),
            BrokerService::SubmitStatus::kQueued);
  service.start();  // the engine pops the first bid and stalls

  std::string csv;
  std::thread stats([&] { csv = service.stats_csv(); });
  // Give the STATS entry time to enqueue ahead of the second bid, then let
  // the clock race far past both bids' stamps (both 0.0).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::future<Outcome> second;
  ASSERT_EQ(service.submit(trace.tasks[1], &second),
            BrokerService::SubmitStatus::kQueued);
  clock.advance(1.0e6);
  stats.join();
  EXPECT_NE(csv.find("serve/bids_admitted"), std::string::npos);
  first.get();
  second.get();  // pre-fix this point is never reached: std::terminate

  const MarketStats live = service.drain();
  EXPECT_EQ(live.bids, 2u);
  Market batch(config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServeService, CallbackSubmitMatchesBatchBitForBit) {
  // The pipelined front end's admission path: outcomes delivered through
  // completion callbacks instead of futures must preserve the replay
  // contract and answer every bid exactly once.
  const Trace trace = bid_stream(120, 7);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();

  std::mutex mu;
  std::vector<Outcome> outcomes;
  for (const Task& task : trace.tasks) {
    if (task.arrival > clock.now()) clock.advance(task.arrival - clock.now());
    ASSERT_EQ(service.submit(task,
                             [&](const Outcome& outcome) {
                               std::lock_guard<std::mutex> lock(mu);
                               outcomes.push_back(outcome);
                             }),
              BrokerService::SubmitStatus::kQueued);
  }
  const MarketStats live = service.drain();
  EXPECT_EQ(live.bids, trace.tasks.size());

  // drain() joined the engine thread, so every callback has run.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(outcomes.size(), trace.tasks.size());
  std::size_t awarded = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    // Callbacks fire in negotiation order == admission order.
    EXPECT_EQ(outcomes[i].task, static_cast<TaskId>(i + 1));
    awarded += outcomes[i].awarded ? 1 : 0;
  }
  EXPECT_EQ(awarded, live.awarded);

  Market batch(config.market);
  batch.inject(service.admitted_trace());
  EXPECT_EQ(fingerprint_line("serve", batch.run()),
            fingerprint_line("serve", live));
}

TEST(ServeService, BusyHintScalesWithBacklogAndRunsAreBatched) {
  const Trace trace = bid_stream(8, 3);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  config.queue_capacity = 4;
  config.retry_after = 2.0;
  // Stall each negotiation so the popped run stays in flight long enough to
  // refill the queue behind it deterministically.
  config.process_stall = std::chrono::milliseconds(300);
  BrokerService service(config, &clock);

  // Three bids queue before start; the engine pops them as ONE run.
  std::vector<std::future<Outcome>> outcomes(7);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(service.submit(trace.tasks[i], &outcomes[i]),
              BrokerService::SubmitStatus::kQueued);
  EXPECT_EQ(service.queue_depth(), 3u);
  service.start();

  // Wait for the pop: depth drops to 0 while all three are in flight.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((service.queue_depth() != 0 || service.inflight_bids() != 3) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.queue_depth(), 0u);
  ASSERT_EQ(service.inflight_bids(), 3u);

  // Refill the queue to capacity while the run still negotiates (each of
  // its 3 bids stalls 300ms; these submits take microseconds)...
  for (int i = 3; i < 7; ++i)
    ASSERT_EQ(service.submit(trace.tasks[i], &outcomes[i]),
              BrokerService::SubmitStatus::kQueued);
  // ...and overflow it: the BUSY hint must scale with the whole backlog,
  // queued AND in-flight: 2.0 * (4 + 3) / 4.
  double retry_after = 0.0;
  std::future<Outcome> rejected;
  EXPECT_EQ(service.submit(trace.tasks[7], &rejected, &retry_after),
            BrokerService::SubmitStatus::kQueueFull);
  EXPECT_DOUBLE_EQ(retry_after, 3.5);
  EXPECT_EQ(service.peak_queue_depth(), 4u);

  const MarketStats stats = service.drain();
  EXPECT_EQ(stats.bids, 7u);
  for (auto& outcome : outcomes) outcome.get();  // all answered, none lost

  // Batched-admission telemetry: the first run is deterministically the 3
  // pre-start bids in one pop; the refill arrived while it was in flight,
  // so the 7 bids took far fewer than 7 lock acquisitions.
  EXPECT_EQ(service.batched_bids(), 7u);
  EXPECT_GE(service.admission_batches(), 2u);
  EXPECT_LE(service.admission_batches(), 5u);

  // The live depth/peak/batching counters ride into the metrics snapshot.
  const std::string csv = service.final_metrics_csv();
  EXPECT_EQ(csv_value(csv, "serve/queue_depth"), 0.0);
  EXPECT_EQ(csv_value(csv, "serve/queue_depth_peak"), 4.0);
  EXPECT_EQ(csv_value(csv, "serve/inflight_bids"), 0.0);
  EXPECT_EQ(csv_value(csv, "serve/batched_bids"),
            static_cast<double>(service.batched_bids()));
  EXPECT_EQ(csv_value(csv, "serve/admission_batches"),
            static_cast<double>(service.admission_batches()));
}

TEST(ServeService, ConcurrentDrainsReturnTheSameStats) {
  const Trace trace = bid_stream(20, 17);
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();
  std::vector<std::future<Outcome>> outcomes(trace.tasks.size());
  for (std::size_t i = 0; i < trace.tasks.size(); ++i)
    ASSERT_EQ(service.submit(trace.tasks[i], &outcomes[i]),
              BrokerService::SubmitStatus::kQueued);
  // Two racing drains (e.g. SIGTERM handler vs. a supervising thread) must
  // serialize on the engine join instead of double-joining the thread, and
  // both must observe the same final stats.
  MarketStats a, b;
  std::thread racer([&] { a = service.drain(); });
  b = service.drain();
  racer.join();
  EXPECT_EQ(a.bids, trace.tasks.size());
  EXPECT_EQ(fingerprint_line("serve", a), fingerprint_line("serve", b));
}

TEST(ServeService, AdvancingTheClockSettlesContracts) {
  VirtualPacingClock clock;
  ServeConfig config;
  config.market = serve_market(11);
  BrokerService service(config, &clock);
  service.start();
  std::future<Outcome> future;
  ASSERT_EQ(service.submit(bid_stream(1, 9).tasks[0], &future),
            BrokerService::SubmitStatus::kQueued);
  const Outcome outcome = future.get();
  ASSERT_TRUE(outcome.awarded);

  const std::string before = service.stats_csv({{"extra/gauge", 7.0}});
  EXPECT_EQ(csv_value(before, "extra/gauge"), 7.0);
  const double events_before = csv_value(before, "serve/engine_events_executed");

  // Move wall time past the agreed completion: the pacing layer must wake
  // the engine and execute the settlement without any further submission.
  clock.advance(outcome.expected_completion + 1.0);
  const std::string after = service.stats_csv();
  EXPECT_GT(csv_value(after, "serve/engine_events_executed"), events_before);
  EXPECT_GE(csv_value(after, "serve/sim_now"), outcome.expected_completion);
  EXPECT_EQ(csv_value(after, "serve/quote_latency_ms", 2), 1.0);  // count

  const MarketStats stats = service.drain();
  EXPECT_EQ(stats.awarded, 1u);
  EXPECT_GT(stats.total_revenue, 0.0);
}

}  // namespace
}  // namespace mbts
