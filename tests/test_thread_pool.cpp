#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace mbts {
namespace {

TEST(ThreadPool, DefaultUsesAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) {
    FAIL() << "should not run";
  }));
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsRemainingAfterError) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  try {
    pool.parallel_for(20, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first fails");
      ++done;
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 19);
}

TEST(ThreadPool, ParallelForLargeSweepCoversEveryIndexOnce) {
  // 100k indices go through the block-chunked path (O(size()) submissions,
  // not one task per index); every index must still run exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForFromWorkerThreadIsRejected) {
  // A nested parallel_for from a pool worker would block on the pool's own
  // queue and deadlock once every worker does it; the pool must refuse it
  // with a CheckError instead of hanging.
  ThreadPool pool(2);
  auto future = pool.submit([&pool] {
    pool.parallel_for(4, [](std::size_t) {});
  });
  EXPECT_THROW(future.get(), CheckError);
}

TEST(ThreadPool, ParallelForFromOtherPoolWorkerIsAllowed) {
  // The re-entrancy guard is per-pool: driving one pool from another
  // pool's worker is fine.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  auto future = outer.submit([&] {
    inner.parallel_for(10, [&](std::size_t) { ++count; });
  });
  EXPECT_NO_THROW(future.get());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedScopedPoolInsideWorkerCompletes) {
  // A worker may build, drive, and destroy its own inner pool without
  // deadlocking and without tripping the outer pool's re-entrancy check
  // (the guard is per-pool, and inner workers are fresh threads).
  ThreadPool outer(2);
  std::atomic<int> count{0};
  auto future = outer.submit([&count] {
    ThreadPool inner(2);
    inner.parallel_for(8, [&count](std::size_t) { ++count; });
  });
  EXPECT_NO_THROW(future.get());
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  // An exception thrown two pool layers deep surfaces through both futures
  // with its original type.
  ThreadPool outer(2);
  auto future = outer.submit([] {
    ThreadPool inner(2);
    inner.parallel_for(4, [](std::size_t i) {
      if (i == 2) throw std::runtime_error("inner boom");
    });
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterReentrancyError) {
  // The re-entrancy CheckError is thrown before any work is queued, so the
  // pool must remain fully functional afterwards.
  ThreadPool pool(2);
  auto bad = pool.submit([&pool] {
    pool.parallel_for(2, [](std::size_t) {});
  });
  EXPECT_THROW(bad.get(), CheckError);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
    // Destructor joins; all queued work must have run.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialSafe) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace mbts
