// Steady-state zero-allocation regression test.
//
// The event core's contract (DESIGN.md §6) is that a warmed-up single-site
// run allocates nothing: typed POD events replace per-event std::function
// closures, lifecycle records live in a reused ring, and task state is
// recycled through free lists. This test replaces the global operator
// new/delete with a counting hook and asserts that a drain window of a
// warmed-up run — completions, dispatches, and preemption churn, with
// telemetry off — performs zero heap allocations, under both queue backends.
//
// The strict zero assertion only holds in optimized, non-instrumented
// builds: MBTS_DCHECK sweeps (debug builds) rebuild mix snapshots on every
// refresh, and sanitizers interpose their own allocator. Elsewhere the test
// still runs the scenario (catching crashes) but skips the count check.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/admission.hpp"
#include "core/policy.hpp"
#include "core/scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace {

std::uint64_t g_allocations = 0;
bool g_counting = false;

}  // namespace

// The replacement operators are malloc/free-based by design; GCC's
// mismatched-new-delete analysis can't see that the new side is malloc too.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting) ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace mbts {
namespace {

// True when the strict zero-allocation assertion is meaningful in this
// build: optimized (MBTS_DCHECK compiled out) and not running under an
// interposing sanitizer.
constexpr bool strict_build() {
#if !defined(NDEBUG)
  return false;
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

// Two-burst workload: burst 1 warms every arena and free list to its
// high-water mark (its drain recycles task states, mix slots, heap and ring
// capacity), burst 2 reuses all of it. The measured window is burst 2's
// drain: pure completion/dispatch/preemption churn, no arrivals (arrivals
// legitimately allocate — new task records enter the run's history).
Trace two_burst_trace(std::size_t per_burst, double burst2_at) {
  Trace trace;
  TaskId id = 1;
  for (int burst = 0; burst < 2; ++burst) {
    const double base = burst == 0 ? 0.0 : burst2_at;
    for (std::size_t i = 0; i < per_burst; ++i) {
      Task task;
      task.id = id++;
      // Arrivals spread over [base, base + 50): enough overlap to build a
      // backlog (and preemption churn) on a small pool.
      task.arrival = base + static_cast<double>(i % 50);
      task.runtime = 20.0 + static_cast<double>(i % 7) * 5.0;
      task.value = ValueFunction::bounded_at_zero(
          100.0 + static_cast<double>(i % 13), 0.4);
      trace.tasks.push_back(task);
    }
  }
  return trace;
}

class AllocFreeTest : public ::testing::TestWithParam<QueueBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, AllocFreeTest,
    ::testing::Values(QueueBackend::kTombstone, QueueBackend::kIndexed),
    [](const ::testing::TestParamInfo<QueueBackend>& info) {
      return to_string(info.param);
    });

TEST_P(AllocFreeTest, WarmedUpDrainWindowAllocatesNothing) {
  constexpr std::size_t kPerBurst = 400;
  constexpr double kBurst2At = 5000.0;  // burst 1 has fully drained by here

  SimEngine engine{GetParam()};
  SchedulerConfig config;
  config.processors = 8;
  config.preemption = true;
  SiteScheduler site(engine, config, make_policy(PolicySpec::first_reward(0.2)),
                     std::make_unique<AcceptAllAdmission>());

  const Trace trace = two_burst_trace(kPerBurst, kBurst2At);
  site.inject(trace.tasks);

  // Warm up past burst 2's last arrival: every arena, free list, scratch
  // buffer, heap, and record ring has reached its high-water mark.
  engine.run_until(kBurst2At + 60.0);
  ASSERT_GT(site.running_count() + site.pending_count(), 0u)
      << "warmup drained everything; the window would be empty";

  g_allocations = 0;
  g_counting = true;
  engine.run();  // drain burst 2: completions, dispatches, preemptions
  g_counting = false;

  EXPECT_TRUE(site.idle());
  EXPECT_EQ(site.stats().completed, 2 * kPerBurst);
  if (strict_build()) {
    EXPECT_EQ(g_allocations, 0u)
        << "steady-state drain allocated on the " << to_string(GetParam())
        << " backend";
  } else {
    GTEST_SKIP() << "allocation count (" << g_allocations
                 << ") not asserted: debug or sanitizer build";
  }
}

}  // namespace
}  // namespace mbts
