#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace mbts {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 7.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 7.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(Summary, KnownMeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 => 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SumMatchesMeanTimesCount) {
  Summary s;
  s.add(1.5);
  s.add(2.5);
  s.add(3.0);
  EXPECT_NEAR(s.sum(), 7.0, 1e-12);
}

TEST(Summary, MinMaxTrack) {
  Summary s;
  s.add(3.0);
  s.add(-2.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  Xoshiro256 rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Summary, SemShrinksWithSamples) {
  Summary small, large;
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform(0.0, 1.0));
  EXPECT_GT(small.sem(), large.sem());
}

TEST(Summary, NumericallyStableForLargeOffsets) {
  // Catastrophic cancellation check: values ~1e9 with tiny variance.
  Summary s;
  for (int i = 0; i < 1000; ++i)
    s.add(1e9 + (i % 2 ? 0.5 : -0.5));
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Summary, ToStringMentionsFields) {
  Summary s;
  s.add(1.0);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("n=1"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
}

}  // namespace
}  // namespace mbts
