// Kitchen-sink stress sweep: every extension enabled at once (gang widths,
// misdeclared runtimes, deadline-cliff value profiles, drop-expired, stale
// priorities, admission control), swept over policies and loads (TEST_P).
// Asserts only universal invariants — the point is that no feature
// combination crashes, wedges, or breaks settlement consistency.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/scheduler.hpp"
#include "workload/generator.hpp"

namespace mbts {
namespace {

using Param = std::tuple<std::string /*policy*/, double /*load*/,
                         bool /*admission*/>;

class EverythingEnabled : public testing::TestWithParam<Param> {};

TEST_P(EverythingEnabled, RunsToCompletionConsistently) {
  const auto& [policy_text, load, admission] = GetParam();

  WorkloadSpec spec;
  spec.num_jobs = 400;
  spec.processors = 8;
  spec.load_factor = load;
  spec.runtime = DistSpec::exponential(20.0);
  spec.runtime.floor = 0.5;
  spec.width = DistSpec::uniform(1.0, 5.0);
  spec.estimate_error_sigma = 0.6;
  spec.cliff_grace = 0.4;
  spec.penalty = PenaltyModel::kBoundedAtValue;
  spec.penalty_value_scale = 0.5;
  spec.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = 0.05, .cv = 0.25,
                .floor = 1e-4};
  Xoshiro256 rng(777);
  const Trace trace = generate_trace(spec, rng);

  SimEngine engine;
  SchedulerConfig config;
  config.processors = 8;
  config.preemption = true;
  config.discount_rate = 0.02;
  config.drop_expired = true;
  config.rescore = RescorePolicy::kAtEnqueue;
  std::unique_ptr<AdmissionPolicy> admit;
  if (admission)
    admit = std::make_unique<SlackAdmission>(SlackAdmissionConfig{0.0, true});
  else
    admit = std::make_unique<AcceptAllAdmission>();
  SiteScheduler site(engine, config,
                     make_policy(parse_policy_spec(policy_text)),
                     std::move(admit));
  site.inject(trace.tasks);
  engine.run();

  // Drained, every submission dispositioned, settlement self-consistent.
  EXPECT_TRUE(site.idle());
  EXPECT_TRUE(engine.empty());
  const RunStats stats = site.stats();
  EXPECT_EQ(stats.submitted, trace.size());
  EXPECT_EQ(stats.accepted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.completed + stats.dropped, stats.accepted);

  for (const TaskRecord& r : site.records()) {
    if (r.outcome == TaskOutcome::kRejected) {
      EXPECT_EQ(r.realized_yield, 0.0);
      continue;
    }
    ASSERT_TRUE(r.outcome == TaskOutcome::kCompleted ||
                r.outcome == TaskOutcome::kDropped);
    if (r.outcome == TaskOutcome::kCompleted) {
      // Completed tasks ran their *true* runtime after their first start.
      EXPECT_GE(r.completion + 1e-9, r.first_start + r.task.runtime);
      EXPECT_NEAR(r.realized_yield, r.task.yield_at_completion(r.completion),
                  1e-9);
    } else {
      // Dropped tasks settled at the penalty floor.
      EXPECT_NEAR(r.realized_yield, -r.task.value.penalty_bound(), 1e-9);
    }
  }
}

std::string stress_name(const testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name)
    if (c == ':' || c == '.') c = '_';
  name += std::get<1>(info.param) > 1.0 ? "_over" : "_under";
  name += std::get<2>(info.param) ? "_gated" : "_open";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByLoadByAdmission, EverythingEnabled,
    testing::Combine(testing::Values("fcfs", "srpt", "swpt", "firstprice",
                                     "pv", "firstreward:0.3", "random"),
                     testing::Values(0.8, 1.6),
                     testing::Bool()),
    stress_name);

}  // namespace
}  // namespace mbts
