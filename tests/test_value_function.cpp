#include "core/value_function.hpp"

#include <gtest/gtest.h>

#include "core/task.hpp"
#include "util/check.hpp"

namespace mbts {
namespace {

TEST(ValueFunction, FullValueAtZeroDelay) {
  const ValueFunction vf(100.0, 2.0, kInf);
  EXPECT_EQ(vf.yield_at_delay(0.0), 100.0);
}

TEST(ValueFunction, NegativeDelayClampsToMax) {
  const ValueFunction vf(100.0, 2.0, kInf);
  EXPECT_EQ(vf.yield_at_delay(-5.0), 100.0);
}

TEST(ValueFunction, LinearDecay) {
  const ValueFunction vf(100.0, 2.0, kInf);
  EXPECT_EQ(vf.yield_at_delay(10.0), 80.0);
  EXPECT_EQ(vf.yield_at_delay(50.0), 0.0);
  EXPECT_EQ(vf.yield_at_delay(60.0), -20.0);
}

TEST(ValueFunction, BoundedAtZeroFloors) {
  const ValueFunction vf = ValueFunction::bounded_at_zero(100.0, 2.0);
  EXPECT_EQ(vf.yield_at_delay(50.0), 0.0);
  EXPECT_EQ(vf.yield_at_delay(1000.0), 0.0);
  EXPECT_TRUE(vf.bounded());
}

TEST(ValueFunction, GeneralPenaltyBound) {
  const ValueFunction vf(100.0, 2.0, 30.0);
  EXPECT_EQ(vf.yield_at_delay(65.0), -30.0);   // exactly at the bound
  EXPECT_EQ(vf.yield_at_delay(1000.0), -30.0); // floored
  EXPECT_EQ(vf.yield_at_delay(60.0), -20.0);   // above the floor
}

TEST(ValueFunction, UnboundedNeverFloors) {
  const ValueFunction vf = ValueFunction::unbounded(100.0, 2.0);
  EXPECT_FALSE(vf.bounded());
  EXPECT_EQ(vf.yield_at_delay(10000.0), 100.0 - 2.0 * 10000.0);
}

TEST(ValueFunction, DelayToZero) {
  EXPECT_EQ(ValueFunction(100.0, 2.0, kInf).delay_to_zero(), 50.0);
  EXPECT_EQ(ValueFunction(100.0, 0.0, kInf).delay_to_zero(), kInf);
}

TEST(ValueFunction, DelayToExpire) {
  EXPECT_EQ(ValueFunction(100.0, 2.0, 30.0).delay_to_expire(), 65.0);
  EXPECT_EQ(ValueFunction::bounded_at_zero(100.0, 2.0).delay_to_expire(),
            50.0);
  EXPECT_EQ(ValueFunction::unbounded(100.0, 2.0).delay_to_expire(), kInf);
  // A zero-decay function never decays, i.e. it has "stopped decaying"
  // from the start — expired immediately but pinned at its full value.
  EXPECT_EQ(ValueFunction(100.0, 0.0, 30.0).delay_to_expire(), 0.0);
  EXPECT_EQ(ValueFunction(100.0, 0.0, 30.0).yield_at_delay(1e9), 100.0);
}

TEST(ValueFunction, ExpiredAtDelay) {
  const ValueFunction vf = ValueFunction::bounded_at_zero(100.0, 2.0);
  EXPECT_FALSE(vf.expired_at_delay(49.9));
  EXPECT_TRUE(vf.expired_at_delay(50.0));
  EXPECT_FALSE(ValueFunction::unbounded(100.0, 2.0).expired_at_delay(1e9));
}

TEST(ValueFunction, ZeroDecayNeverDecays) {
  const ValueFunction vf(42.0, 0.0, kInf);
  EXPECT_EQ(vf.yield_at_delay(1e12), 42.0);
}

TEST(ValueFunction, NegativeDecayRejected) {
  EXPECT_THROW(ValueFunction(10.0, -1.0, kInf), CheckError);
}

TEST(ValueFunction, NegativeBoundRejected) {
  EXPECT_THROW(ValueFunction(10.0, 1.0, -5.0), CheckError);
}

TEST(ValueFunction, EqualityAndToString) {
  const ValueFunction a(10.0, 1.0, 0.0);
  const ValueFunction b(10.0, 1.0, 0.0);
  const ValueFunction c(10.0, 1.0, kInf);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.to_string().find("value=10"), std::string::npos);
  EXPECT_NE(c.to_string().find("inf"), std::string::npos);
}

// -- Task-level value semantics (Eq. 1 + Eq. 2) -----------------------------

Task make_task(double arrival, double runtime, ValueFunction vf) {
  Task t;
  t.id = 1;
  t.arrival = arrival;
  t.runtime = runtime;
  t.value = vf;
  return t;
}

TEST(TaskValue, NoDelayWhenCompletingAtEarliest) {
  const Task t = make_task(10.0, 5.0, ValueFunction::unbounded(100.0, 2.0));
  EXPECT_EQ(t.delay_at_completion(15.0), 0.0);
  EXPECT_EQ(t.yield_at_completion(15.0), 100.0);
}

TEST(TaskValue, DelayMeasuredBeyondEarliestCompletion) {
  const Task t = make_task(10.0, 5.0, ValueFunction::unbounded(100.0, 2.0));
  EXPECT_EQ(t.delay_at_completion(25.0), 10.0);
  EXPECT_EQ(t.yield_at_completion(25.0), 80.0);
}

TEST(TaskValue, EarlyCompletionClampsToZeroDelay) {
  const Task t = make_task(10.0, 5.0, ValueFunction::unbounded(100.0, 2.0));
  EXPECT_EQ(t.delay_at_completion(12.0), 0.0);
  EXPECT_EQ(t.yield_at_completion(12.0), 100.0);
}

TEST(TaskValue, ExpireAndZeroTimes) {
  const Task t =
      make_task(10.0, 5.0, ValueFunction::bounded_at_zero(100.0, 2.0));
  EXPECT_EQ(t.zero_value_time(), 10.0 + 5.0 + 50.0);
  EXPECT_EQ(t.expire_time(), 10.0 + 5.0 + 50.0);
  const Task u = make_task(10.0, 5.0, ValueFunction::unbounded(100.0, 2.0));
  EXPECT_EQ(u.expire_time(), kInf);
}

TEST(TaskValue, ValidateTaskCatchesBadFields) {
  Task t = make_task(0.0, 10.0, ValueFunction::unbounded(10.0, 1.0));
  EXPECT_TRUE(validate_task(t).empty());
  t.runtime = 0.0;
  EXPECT_FALSE(validate_task(t).empty());
  t.runtime = 10.0;
  t.arrival = -1.0;
  EXPECT_FALSE(validate_task(t).empty());
  t.arrival = 0.0;
  t.id = kInvalidTask;
  EXPECT_FALSE(validate_task(t).empty());
}

}  // namespace
}  // namespace mbts
