// Bit-reproducibility guarantees: identical seeds must give identical
// traces, schedules, yields, and market outcomes — the property every
// recorded experiment in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include <sstream>

#include "experiments/figures.hpp"
#include "experiments/runner.hpp"
#include "market/market.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

TEST(Determinism, TraceGenerationIsBitStable) {
  const WorkloadSpec spec = presets::admission_mix(1.3, 2000);
  const SeedSequence seeds(123);
  const Trace a = generate_trace(spec, seeds, 5);
  const Trace b = generate_trace(spec, seeds, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks[i].arrival, b.tasks[i].arrival);
    EXPECT_EQ(a.tasks[i].runtime, b.tasks[i].runtime);
    EXPECT_EQ(a.tasks[i].value, b.tasks[i].value);
  }
}

TEST(Determinism, SingleSiteRunIsBitStable) {
  const WorkloadSpec spec = presets::admission_mix(1.5, 1000);
  Xoshiro256 rng(7);
  const Trace trace = generate_trace(spec, rng);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.discount_rate = 0.01;

  auto run = [&] {
    return run_single_site(trace, config, PolicySpec::first_reward(0.3),
                           SlackAdmissionConfig{100.0, false});
  };
  const RunStats a = run();
  const RunStats b = run();
  EXPECT_EQ(a.total_yield, b.total_yield);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.last_completion, b.last_completion);
}

TEST(Determinism, IncrementalMixMatchesFullRebuild) {
  // The incrementally maintained MixTracker must be *bit-identical* to a
  // from-scratch rebuild at every dispatch/quote — not merely close. Run the
  // Fig. 4 (bounded decay-skew) and Fig. 6 (admission under overload)
  // presets both ways and require every RunStats field to match exactly.
  SchedulerConfig incremental;
  incremental.processors = presets::kProcessors;
  incremental.preemption = true;
  incremental.discount_rate = 0.01;
  SchedulerConfig rebuilt = incremental;
  rebuilt.mix_full_rebuild = true;

  const auto expect_identical = [](const RunStats& a, const RunStats& b) {
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.total_yield, b.total_yield);
    EXPECT_EQ(a.yield_rate, b.yield_rate);
    EXPECT_EQ(a.last_completion, b.last_completion);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.delay.mean(), b.delay.mean());
    EXPECT_EQ(a.delay.max(), b.delay.max());
    EXPECT_EQ(a.realized_yield.mean(), b.realized_yield.mean());
    EXPECT_EQ(a.realized_yield.min(), b.realized_yield.min());
  };

  {
    Xoshiro256 rng = SeedSequence(42).stream(4);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, 800), rng);
    expect_identical(run_single_site(trace, incremental,
                                     PolicySpec::first_reward(0.3),
                                     std::nullopt),
                     run_single_site(trace, rebuilt,
                                     PolicySpec::first_reward(0.3),
                                     std::nullopt));
  }
  {
    Xoshiro256 rng = SeedSequence(42).stream(6);
    const Trace trace = generate_trace(presets::admission_mix(1.6, 800), rng);
    expect_identical(run_single_site(trace, incremental,
                                     PolicySpec::first_reward(0.3),
                                     SlackAdmissionConfig{180.0, false}),
                     run_single_site(trace, rebuilt,
                                     PolicySpec::first_reward(0.3),
                                     SlackAdmissionConfig{180.0, false}));
  }
}

TEST(Determinism, ThreadCountDoesNotChangeFigureResults) {
  // The sweep harness parallelizes over replications; the aggregated
  // figure must not depend on the worker count.
  ExperimentOptions serial;
  serial.num_jobs = 300;
  serial.replications = 3;
  serial.seed = 9;
  serial.threads = 1;
  ExperimentOptions parallel = serial;
  parallel.threads = 4;

  const FigureResult a = figure5(serial);
  const FigureResult b = figure5(parallel);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s)
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i)
      EXPECT_DOUBLE_EQ(a.series[s].points[i].y, b.series[s].points[i].y)
          << a.series[s].label << " @ " << a.series[s].points[i].x;
}

TEST(Determinism, MarketRunIsBitStable) {
  auto run = [] {
    MarketConfig config;
    for (SiteId i = 0; i < 3; ++i) {
      SiteAgentConfig sc;
      sc.id = i;
      sc.scheduler.processors = 8;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }
    config.strategy = ClientStrategy::kRandom;  // exercises the broker rng
    config.rng_seed = 77;
    Market market(config);
    WorkloadSpec spec = presets::admission_mix(1.0, 800);
    spec.processors = 24;
    Xoshiro256 rng(5);
    market.inject(generate_trace(spec, rng));
    return market.run();
  };
  const MarketStats a = run();
  const MarketStats b = run();
  EXPECT_EQ(a.total_revenue, b.total_revenue);
  EXPECT_EQ(a.awarded, b.awarded);
  EXPECT_EQ(a.site_revenue, b.site_revenue);
}

TEST(Determinism, TelemetryDoesNotChangeRunOutcomes) {
  // The observability layer observes; it must never perturb. A run with
  // trace + metrics attached has to produce the exact stats of a bare run.
  const WorkloadSpec spec = presets::admission_mix(1.4, 800);
  Xoshiro256 rng(11);
  const Trace trace = generate_trace(spec, rng);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;
  const auto admission = SlackAdmissionConfig{120.0, false};

  const RunStats bare = run_single_site(
      trace, config, PolicySpec::first_reward(0.3), admission);
  TraceRecorder recorder;
  MetricsRegistry metrics;
  const RunStats observed =
      run_single_site(trace, config, PolicySpec::first_reward(0.3), admission,
                      Telemetry{&recorder, &metrics});

  EXPECT_EQ(bare.total_yield, observed.total_yield);
  EXPECT_EQ(bare.accepted, observed.accepted);
  EXPECT_EQ(bare.rejected, observed.rejected);
  EXPECT_EQ(bare.preemptions, observed.preemptions);
  EXPECT_EQ(bare.dispatches, observed.dispatches);
  EXPECT_EQ(bare.last_completion, observed.last_completion);
  EXPECT_GT(recorder.size(), 0u);
  // The cross-checkable counters agree with the run's own accounting.
  EXPECT_EQ(metrics.counter("site0/completions").value(), observed.completed);
  EXPECT_EQ(metrics.counter("site0/rejects").value(), observed.rejected);
  EXPECT_EQ(metrics.counter("site0/preemptions").value(),
            observed.preemptions);
}

TEST(Determinism, TraceIsByteIdenticalAcrossRuns) {
  // Same seed, same build => the serialized trace is byte-identical, not
  // merely equivalent. This is the observability determinism contract.
  const WorkloadSpec spec = presets::admission_mix(1.4, 600);
  Xoshiro256 rng(13);
  const Trace trace = generate_trace(spec, rng);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;

  auto run_traced = [&] {
    TraceRecorder recorder;
    run_single_site(trace, config, PolicySpec::first_reward(0.3),
                    SlackAdmissionConfig{120.0, false},
                    Telemetry{&recorder, nullptr});
    std::ostringstream bin, jsonl;
    recorder.write_binary(bin);
    recorder.write_jsonl(jsonl);
    return std::make_pair(bin.str(), jsonl.str());
  };
  const auto a = run_traced();
  const auto b = run_traced();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first.size(), 24u);  // header + at least one event
}

TEST(Determinism, MarketTraceIsByteIdenticalAcrossRuns) {
  // The full economy — broker, sites, fault injector — traced end to end,
  // including outages, breaches, retries, and rebids.
  auto run_traced = [](TraceRecorder& recorder) {
    MarketConfig config;
    for (SiteId i = 0; i < 3; ++i) {
      SiteAgentConfig sc;
      sc.id = i;
      sc.scheduler.processors = 8;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }
    config.rng_seed = 99;
    config.faults.outage_rate = 1.0 / 800.0;
    config.faults.mean_outage = 150.0;
    config.faults.quote_timeout_prob = 0.05;
    Market market(config);
    MetricsRegistry metrics;
    EXPECT_TRUE(market.attach_telemetry(&recorder, &metrics));
    WorkloadSpec spec = presets::admission_mix(1.0, 500);
    spec.processors = 24;
    Xoshiro256 rng(5);
    market.inject(generate_trace(spec, rng));
    const MarketStats stats = market.run();
    std::ostringstream bin;
    recorder.write_binary(bin);
    std::ostringstream csv;
    metrics.write_csv(csv);
    return std::make_tuple(bin.str(), csv.str(), stats.total_revenue);
  };
  TraceRecorder ra, rb;
  const auto a = run_traced(ra);
  const auto b = run_traced(rb);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  // The chaos run actually exercised the failure-path events.
  bool saw_outage = false;
  for (const TraceEvent& e : ra.events())
    if (e.kind == TraceEventKind::kOutageDown) saw_outage = true;
  EXPECT_TRUE(saw_outage);
}

TEST(Determinism, MarketTelemetryDoesNotChangeOutcomes) {
  auto run = [](bool observed) {
    MarketConfig config;
    for (SiteId i = 0; i < 2; ++i) {
      SiteAgentConfig sc;
      sc.id = i;
      sc.scheduler.processors = 8;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }
    config.strategy = ClientStrategy::kRandom;  // exercises the broker rng
    config.rng_seed = 31;
    config.faults.outage_rate = 1.0 / 600.0;
    config.faults.quote_timeout_prob = 0.03;
    Market market(config);
    TraceRecorder recorder;
    MetricsRegistry metrics;
    if (observed) {
      EXPECT_TRUE(market.attach_telemetry(&recorder, &metrics));
    }
    WorkloadSpec spec = presets::admission_mix(1.0, 400);
    spec.processors = 16;
    Xoshiro256 rng(5);
    market.inject(generate_trace(spec, rng));
    return market.run();
  };
  const MarketStats bare = run(false);
  const MarketStats observed = run(true);
  EXPECT_EQ(bare.total_revenue, observed.total_revenue);
  EXPECT_EQ(bare.awarded, observed.awarded);
  EXPECT_EQ(bare.site_revenue, observed.site_revenue);
  EXPECT_EQ(bare.outages, observed.outages);
  EXPECT_EQ(bare.quote_timeouts, observed.quote_timeouts);
  EXPECT_EQ(bare.breached_contracts, observed.breached_contracts);
  EXPECT_EQ(bare.retries, observed.retries);
}

TEST(Determinism, DifferentSeedsChangeResults) {
  const WorkloadSpec spec = presets::admission_mix(1.0, 500);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  const SeedSequence seeds(1);
  Xoshiro256 r1 = seeds.stream(0, 0);
  Xoshiro256 r2 = seeds.stream(0, 1);
  const double y1 =
      run_single_site(generate_trace(spec, r1), config,
                      PolicySpec::first_price(), std::nullopt)
          .total_yield;
  const double y2 =
      run_single_site(generate_trace(spec, r2), config,
                      PolicySpec::first_price(), std::nullopt)
          .total_yield;
  EXPECT_NE(y1, y2);
}

}  // namespace
}  // namespace mbts
