// Bit-reproducibility guarantees: identical seeds must give identical
// traces, schedules, yields, and market outcomes — the property every
// recorded experiment in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "experiments/figures.hpp"
#include "experiments/runner.hpp"
#include "market/market.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

TEST(Determinism, TraceGenerationIsBitStable) {
  const WorkloadSpec spec = presets::admission_mix(1.3, 2000);
  const SeedSequence seeds(123);
  const Trace a = generate_trace(spec, seeds, 5);
  const Trace b = generate_trace(spec, seeds, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks[i].arrival, b.tasks[i].arrival);
    EXPECT_EQ(a.tasks[i].runtime, b.tasks[i].runtime);
    EXPECT_EQ(a.tasks[i].value, b.tasks[i].value);
  }
}

TEST(Determinism, SingleSiteRunIsBitStable) {
  const WorkloadSpec spec = presets::admission_mix(1.5, 1000);
  Xoshiro256 rng(7);
  const Trace trace = generate_trace(spec, rng);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.discount_rate = 0.01;

  auto run = [&] {
    return run_single_site(trace, config, PolicySpec::first_reward(0.3),
                           SlackAdmissionConfig{100.0, false});
  };
  const RunStats a = run();
  const RunStats b = run();
  EXPECT_EQ(a.total_yield, b.total_yield);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.last_completion, b.last_completion);
}

TEST(Determinism, IncrementalMixMatchesFullRebuild) {
  // The incrementally maintained MixTracker must be *bit-identical* to a
  // from-scratch rebuild at every dispatch/quote — not merely close. Run the
  // Fig. 4 (bounded decay-skew) and Fig. 6 (admission under overload)
  // presets both ways and require every RunStats field to match exactly.
  SchedulerConfig incremental;
  incremental.processors = presets::kProcessors;
  incremental.preemption = true;
  incremental.discount_rate = 0.01;
  SchedulerConfig rebuilt = incremental;
  rebuilt.mix_full_rebuild = true;

  const auto expect_identical = [](const RunStats& a, const RunStats& b) {
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.total_yield, b.total_yield);
    EXPECT_EQ(a.yield_rate, b.yield_rate);
    EXPECT_EQ(a.last_completion, b.last_completion);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.delay.mean(), b.delay.mean());
    EXPECT_EQ(a.delay.max(), b.delay.max());
    EXPECT_EQ(a.realized_yield.mean(), b.realized_yield.mean());
    EXPECT_EQ(a.realized_yield.min(), b.realized_yield.min());
  };

  {
    Xoshiro256 rng = SeedSequence(42).stream(4);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, 800), rng);
    expect_identical(run_single_site(trace, incremental,
                                     PolicySpec::first_reward(0.3),
                                     std::nullopt),
                     run_single_site(trace, rebuilt,
                                     PolicySpec::first_reward(0.3),
                                     std::nullopt));
  }
  {
    Xoshiro256 rng = SeedSequence(42).stream(6);
    const Trace trace = generate_trace(presets::admission_mix(1.6, 800), rng);
    expect_identical(run_single_site(trace, incremental,
                                     PolicySpec::first_reward(0.3),
                                     SlackAdmissionConfig{180.0, false}),
                     run_single_site(trace, rebuilt,
                                     PolicySpec::first_reward(0.3),
                                     SlackAdmissionConfig{180.0, false}));
  }
}

TEST(Determinism, ThreadCountDoesNotChangeFigureResults) {
  // The sweep harness parallelizes over replications; the aggregated
  // figure must not depend on the worker count.
  ExperimentOptions serial;
  serial.num_jobs = 300;
  serial.replications = 3;
  serial.seed = 9;
  serial.threads = 1;
  ExperimentOptions parallel = serial;
  parallel.threads = 4;

  const FigureResult a = figure5(serial);
  const FigureResult b = figure5(parallel);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s)
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i)
      EXPECT_DOUBLE_EQ(a.series[s].points[i].y, b.series[s].points[i].y)
          << a.series[s].label << " @ " << a.series[s].points[i].x;
}

TEST(Determinism, MarketRunIsBitStable) {
  auto run = [] {
    MarketConfig config;
    for (SiteId i = 0; i < 3; ++i) {
      SiteAgentConfig sc;
      sc.id = i;
      sc.scheduler.processors = 8;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }
    config.strategy = ClientStrategy::kRandom;  // exercises the broker rng
    config.rng_seed = 77;
    Market market(config);
    WorkloadSpec spec = presets::admission_mix(1.0, 800);
    spec.processors = 24;
    Xoshiro256 rng(5);
    market.inject(generate_trace(spec, rng));
    return market.run();
  };
  const MarketStats a = run();
  const MarketStats b = run();
  EXPECT_EQ(a.total_revenue, b.total_revenue);
  EXPECT_EQ(a.awarded, b.awarded);
  EXPECT_EQ(a.site_revenue, b.site_revenue);
}

TEST(Determinism, DifferentSeedsChangeResults) {
  const WorkloadSpec spec = presets::admission_mix(1.0, 500);
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  const SeedSequence seeds(1);
  Xoshiro256 r1 = seeds.stream(0, 0);
  Xoshiro256 r2 = seeds.stream(0, 1);
  const double y1 =
      run_single_site(generate_trace(spec, r1), config,
                      PolicySpec::first_price(), std::nullopt)
          .total_yield;
  const double y2 =
      run_single_site(generate_trace(spec, r2), config,
                      PolicySpec::first_price(), std::nullopt)
          .total_yield;
  EXPECT_NE(y1, y2);
}

}  // namespace
}  // namespace mbts
