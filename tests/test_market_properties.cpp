// Market-level conservation and consistency invariants, swept over client
// strategies, pricing rules, and budget constraints (TEST_P).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "invariants.hpp"
#include "market/market.hpp"
#include "workload/presets.hpp"

namespace mbts {
namespace {

using Param = std::tuple<ClientStrategy, PricingModel, bool /*budgets*/>;

class MarketInvariants : public testing::TestWithParam<Param> {};

TEST_P(MarketInvariants, AccountingBalances) {
  const auto& [strategy, pricing, budgets] = GetParam();

  MarketConfig config;
  config.strategy = strategy;
  config.pricing = pricing;
  config.rng_seed = 99;
  for (SiteId i = 0; i < 3; ++i) {
    SiteAgentConfig sc;
    sc.id = i;
    sc.name = "site" + std::to_string(i);
    sc.scheduler.processors = 8;
    sc.scheduler.preemption = true;
    sc.scheduler.discount_rate = 0.01;
    sc.policy = PolicySpec::first_reward(0.2);
    sc.use_slack_admission = true;
    sc.admission.threshold = 0.0;
    config.sites.push_back(sc);
  }
  constexpr std::size_t kClients = 5;
  if (budgets) {
    for (ClientId c = 0; c < kClients; ++c)
      config.client_budgets[c] = {.budget_per_interval = 20000.0,
                                  .interval = 5000.0};
  }

  Market market(config);
  WorkloadSpec spec = presets::admission_mix(1.3, 600);
  spec.processors = 24;
  Xoshiro256 rng(7);
  const Trace trace = generate_trace(spec, rng);
  for (const Task& task : trace.tasks) {
    Trace one;
    one.tasks = {task};
    market.inject(one, static_cast<ClientId>(task.id % kClients));
  }
  const MarketStats stats = market.run();

  // 1. Every bid is accounted for exactly once.
  EXPECT_EQ(stats.bids, trace.size());
  EXPECT_EQ(stats.awarded + stats.rejected_everywhere + stats.unaffordable,
            stats.bids);

  // 2. Awarded bids have exactly one contract, on exactly one site.
  std::set<TaskId> contracted;
  std::size_t contract_count = 0;
  for (const auto& site : market.sites()) {
    for (const Contract& contract : site->contracts()) {
      EXPECT_TRUE(contracted.insert(contract.task).second)
          << "task " << contract.task << " contracted twice";
      ++contract_count;
      // 3. Every contract settled (the run drained) and never above the
      //    agreed price.
      EXPECT_TRUE(contract.settled);
      EXPECT_LE(contract.settled_price, contract.agreed_price + 1e-9);
    }
  }
  EXPECT_EQ(contract_count, stats.awarded);

  // 4. Revenue aggregates match per-site sums.
  double revenue = 0.0;
  for (double r : stats.site_revenue) revenue += r;
  EXPECT_NEAR(revenue, stats.total_revenue, 1e-6);

  // 5. Sites completed exactly their contracted tasks.
  for (const auto& site : market.sites()) {
    const RunStats rs = site->scheduler().stats();
    EXPECT_EQ(rs.accepted, site->contracts().size());
    EXPECT_EQ(rs.completed + rs.dropped, rs.accepted);
  }

  // 6. Budgets, when enabled, were respected per interval.
  if (budgets) {
    for (ClientId c = 0; c < kClients; ++c)
      EXPECT_GE(market.ledger().remaining(c, 1e18), -1e-6);
  } else {
    EXPECT_EQ(stats.unaffordable, 0u);
  }

  // 7. Shared invariants (tests/invariants.hpp): double-entry money
  //    conservation, mix-count consistency, outcome exclusivity.
  EXPECT_EQ("", invariants::check_money_conservation(market, stats));
  std::vector<TaskRecord> all_records;
  for (const auto& site : market.sites()) {
    EXPECT_EQ("", invariants::check_mix_counts(site->scheduler()));
    const auto& records = site->scheduler().records();
    all_records.insert(all_records.end(), records.begin(), records.end());
  }
  EXPECT_EQ("", invariants::check_outcome_exclusivity(all_records));
}

std::string market_param_name(const testing::TestParamInfo<Param>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += "_" + to_string(std::get<1>(info.param));
  name += std::get<2>(info.param) ? "_budgeted" : "_unbudgeted";
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByPricingByBudget, MarketInvariants,
    testing::Combine(testing::Values(ClientStrategy::kMaxExpectedValue,
                                     ClientStrategy::kEarliestCompletion,
                                     ClientStrategy::kRandom),
                     testing::Values(PricingModel::kBidPrice,
                                     PricingModel::kSecondPrice),
                     testing::Bool()),
    market_param_name);

// The same conservation laws must survive chaos: site outages, breached
// contracts, retries, and re-bids reshuffle the accounting but may not
// leak or double-count a single bid or currency unit.
using FaultParam = std::tuple<CrashMode, bool /*rebid*/, std::uint64_t>;

class FaultyMarketInvariants : public testing::TestWithParam<FaultParam> {};

TEST_P(FaultyMarketInvariants, AccountingBalancesUnderChaos) {
  const auto& [crash_mode, rebid, seed] = GetParam();

  MarketConfig config;
  config.pricing = PricingModel::kSecondPrice;
  config.rng_seed = seed;
  for (SiteId i = 0; i < 3; ++i) {
    SiteAgentConfig sc;
    sc.id = i;
    sc.name = "site" + std::to_string(i);
    sc.scheduler.processors = 4 + 4 * static_cast<std::size_t>(i);
    sc.scheduler.preemption = true;
    sc.scheduler.discount_rate = 0.01;
    sc.policy = PolicySpec::first_reward(0.2);
    sc.admission.threshold = 60.0;
    config.sites.push_back(sc);
  }
  config.client_budgets[0] = {.budget_per_interval = 4000.0,
                              .interval = 400.0};
  config.faults.outage_rate = 0.004;
  config.faults.mean_outage = 120.0;
  config.faults.quote_timeout_prob = 0.05;
  config.faults.crash_mode = crash_mode;
  config.retry.rebid_on_breach = rebid;

  Market market(config);
  Xoshiro256 rng = SeedSequence(seed).stream(13);
  const Trace trace = generate_trace(presets::admission_mix(1.3, 400), rng);
  market.inject(trace);
  const MarketStats stats = market.run();

  // 1. Every bid resolves exactly once, even after retries.
  EXPECT_EQ(stats.bids, trace.size());
  EXPECT_EQ(stats.awarded + stats.rejected_everywhere + stats.unaffordable,
            stats.bids);

  // 2. Awards and contracts correspond: every award (first-round or
  //    re-award of a breached task) formed exactly one contract, a task
  //    holds at most one unbreached contract, and everything settled.
  std::set<TaskId> live;
  std::size_t contract_count = 0;
  std::size_t breached_count = 0;
  for (const auto& site : market.sites()) {
    for (const Contract& contract : site->contracts()) {
      ++contract_count;
      EXPECT_TRUE(contract.settled);
      EXPECT_LE(contract.settled_price, contract.agreed_price + 1e-9);
      if (contract.breached) {
        ++breached_count;
      } else {
        EXPECT_TRUE(live.insert(contract.task).second)
            << "task " << contract.task << " contracted twice";
      }
    }
  }
  EXPECT_EQ(contract_count, stats.awarded + stats.re_awards);
  EXPECT_EQ(breached_count, stats.breached_contracts);
  EXPECT_GE(stats.rebids, stats.re_awards);

  // 3. Revenue aggregates match per-site sums (breach penalties included).
  double revenue = 0.0;
  for (double r : stats.site_revenue) revenue += r;
  EXPECT_NEAR(revenue, stats.total_revenue, 1e-6);

  // 4. Crash-mode specifics: checkpointing never breaches; kill mode
  //    without re-bids never re-awards.
  if (crash_mode == CrashMode::kCheckpoint) {
    EXPECT_EQ(stats.breached_contracts, 0u);
    EXPECT_EQ(stats.rebids, 0u);
  }
  if (!rebid) {
    EXPECT_EQ(stats.rebids, 0u);
  }

  // 5. Budgets stay respected; breach refunds may only return money.
  EXPECT_GE(market.ledger().remaining(0, 1e18), -1e-6);

  // 6. The chaos model fired (the parameters are sized so it must).
  EXPECT_GT(stats.outages, 0u);

  // 7. Shared invariants hold under chaos too: money conservation across
  //    breach refunds, consistent queues, and no task completing twice or
  //    finishing after its completion.
  EXPECT_EQ("", invariants::check_money_conservation(market, stats));
  std::vector<TaskRecord> all_records;
  for (const auto& site : market.sites()) {
    EXPECT_EQ("", invariants::check_mix_counts(site->scheduler()));
    const auto& records = site->scheduler().records();
    all_records.insert(all_records.end(), records.begin(), records.end());
  }
  EXPECT_EQ("", invariants::check_outcome_exclusivity(all_records));
}

std::string fault_param_name(const testing::TestParamInfo<FaultParam>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += std::get<1>(info.param) ? "_rebid" : "_norebid";
  name += "_seed" + std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    CrashModeByRebidBySeed, FaultyMarketInvariants,
    testing::Combine(testing::Values(CrashMode::kKill,
                                     CrashMode::kCheckpoint),
                     testing::Bool(), testing::Values(1u, 2u, 3u)),
    fault_param_name);

}  // namespace
}  // namespace mbts
