#include "util/check.hpp"

#include <gtest/gtest.h>

namespace mbts {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MBTS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MBTS_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(MBTS_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndLocation) {
  try {
    MBTS_CHECK_MSG(2 < 1, "two is not less than one");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, CheckErrorIsLogicError) {
  EXPECT_THROW(MBTS_CHECK(false), std::logic_error);
}

TEST(Check, DcheckActiveInDebugBuilds) {
#ifdef NDEBUG
  EXPECT_NO_THROW(MBTS_DCHECK(false));
#else
  EXPECT_THROW(MBTS_DCHECK(false), CheckError);
#endif
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto touch = [&calls] {
    ++calls;
    return true;
  };
  MBTS_CHECK(touch());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mbts
