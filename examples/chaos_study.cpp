// Chaos study: the Figure-1 market under deterministic fault injection.
//
// Runs the same seeded three-site economy at a sweep of site outage rates
// and shows how the market degrades: breached contracts charged at the
// paper's penalty bound, budgets refunded, tasks re-bid to surviving sites,
// and (in checkpoint mode) work resumed after recovery. Same seed, same
// chaos — every run here is bit-reproducible.
#include <iostream>
#include <vector>

#include "market/market.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("chaos_study",
                "market negotiation under seeded site outages");
  cli.add_flag("jobs", "2000", "tasks in the bid stream");
  cli.add_flag("load", "2.0", "offered load vs one site's capacity");
  cli.add_flag("seed", "42", "master seed (drives workload AND chaos)");
  cli.add_flag("mean-outage", "150", "mean outage duration");
  cli.add_flag("timeout-prob", "0.05", "quote response loss probability");
  cli.add_flag("mode", "kill", "crash mode: kill | checkpoint");
  cli.add_flag("no-rebid", "false", "disable re-bidding breached tasks");
  cli.add_flag("shards", "1",
               "worker threads for site engines (>= 2 runs the market "
               "sharded; results are bit-identical for any value)");
  if (!cli.parse(argc, argv)) return 1;

  const bool checkpoint = cli.get_string("mode") == "checkpoint";
  const bool rebid = !cli.get_bool("no-rebid");

  auto site = [](SiteId id, const std::string& name, std::size_t procs,
                 double threshold) {
    SiteAgentConfig sc;
    sc.id = id;
    sc.name = name;
    sc.scheduler.processors = procs;
    sc.scheduler.preemption = true;
    sc.scheduler.discount_rate = 0.01;
    sc.policy = PolicySpec::first_reward(0.2);
    sc.admission.threshold = threshold;
    return sc;
  };

  const std::vector<double> rates = {0.0, 0.001, 0.002, 0.004, 0.008};
  ConsoleTable table({"outage_rate", "outages", "breached", "timeouts",
                      "retries", "rebids", "re_awards", "awarded",
                      "revenue", "agreed"});
  for (const double rate : rates) {
    MarketConfig config;
    config.rng_seed = cli.get_uint("seed");
    config.shards = static_cast<std::size_t>(cli.get_uint("shards"));
    config.pricing = PricingModel::kSecondPrice;
    config.sites.push_back(site(0, "big", 24, 300.0));
    config.sites.push_back(site(1, "mid", 12, 0.0));
    config.sites.push_back(site(2, "small", 6, 0.0));
    config.faults.outage_rate = rate;
    config.faults.mean_outage = cli.get_double("mean-outage");
    config.faults.quote_timeout_prob =
        rate > 0.0 ? cli.get_double("timeout-prob") : 0.0;
    config.faults.crash_mode =
        checkpoint ? CrashMode::kCheckpoint : CrashMode::kKill;
    config.retry.rebid_on_breach = rebid;

    Market market(config);
    WorkloadSpec spec = presets::admission_mix(
        cli.get_double("load"),
        static_cast<std::size_t>(cli.get_uint("jobs")));
    Xoshiro256 rng = SeedSequence(config.rng_seed).stream(0x7A5C);
    market.inject(generate_trace(spec, rng));
    const MarketStats stats = market.run();

    table.row({ConsoleTable::num(rate, 3), std::to_string(stats.outages),
               std::to_string(stats.breached_contracts),
               std::to_string(stats.quote_timeouts),
               std::to_string(stats.retries), std::to_string(stats.rebids),
               std::to_string(stats.re_awards),
               std::to_string(stats.awarded),
               ConsoleTable::num(stats.total_revenue, 0),
               ConsoleTable::num(stats.total_agreed, 0)});
  }
  std::cout << table.render();
  std::cout << "\ncrash mode: "
            << to_string(checkpoint ? CrashMode::kCheckpoint
                                    : CrashMode::kKill)
            << ", re-bid breached tasks: " << (rebid ? "yes" : "no")
            << "\nsame seed => bit-identical chaos; vary --seed to resample"
            << '\n';
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
