// Trace utility: generate a synthetic workload from a named preset, save or
// load it as CSV, and print its aggregate statistics — useful for inspecting
// exactly what the experiments feed the scheduler.
#include <iostream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"
#include "workload/swf.hpp"
#include "workload/trace.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("trace_tool",
                "generate/inspect workload traces (presets: millennium, "
                "decay-skew, admission)");
  cli.add_flag("preset", "admission", "millennium | decay-skew | admission");
  cli.add_flag("jobs", "5000", "tasks to generate");
  cli.add_flag("load", "1.0", "load factor (admission preset)");
  cli.add_flag("skew", "3.0", "value or decay skew ratio, per preset");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("save", "", "write the trace to this CSV path");
  cli.add_flag("inspect", "", "load and summarize this CSV instead");
  cli.add_flag("swf", "",
               "import this Standard Workload Format file instead "
               "(values/decay synthesized from the admission-mix model)");
  cli.add_flag("swf-limit", "0", "max jobs to take from the SWF file");
  if (!cli.parse(argc, argv)) return 1;

  Trace trace;
  const std::string inspect = cli.get_string("inspect");
  const std::string swf = cli.get_string("swf");
  if (!inspect.empty()) {
    trace = load_trace_csv(inspect);
  } else if (!swf.empty()) {
    SwfImportOptions options;
    options.limit = static_cast<std::size_t>(cli.get_uint("swf-limit"));
    Xoshiro256 swf_rng = SeedSequence(cli.get_uint("seed")).stream(0x5AF);
    trace = load_swf_file(swf, options, swf_rng);
    std::cout << "imported " << trace.size() << " jobs from " << swf
              << "\n\n";
  } else {
    const auto jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
    const double skew = cli.get_double("skew");
    const std::string preset = cli.get_string("preset");
    WorkloadSpec spec;
    if (preset == "millennium")
      spec = presets::millennium_mix(skew, jobs);
    else if (preset == "decay-skew")
      spec = presets::decay_skew_mix(skew, PenaltyModel::kUnbounded, jobs);
    else
      spec = presets::admission_mix(cli.get_double("load"), jobs);
    Xoshiro256 rng = SeedSequence(cli.get_uint("seed")).stream(0x77);
    trace = generate_trace(spec, rng);
    std::cout << "spec: " << spec.to_string() << "\n\n";
  }

  const TraceStats stats = compute_stats(trace, presets::kProcessors);
  ConsoleTable table({"metric", "value"});
  table.row({"jobs", std::to_string(stats.jobs)});
  table.row({"span", ConsoleTable::num(stats.span, 1)});
  table.row({"total work", ConsoleTable::num(stats.total_work, 1)});
  table.row({"total value", ConsoleTable::num(stats.total_value, 1)});
  table.row({"mean runtime", ConsoleTable::num(stats.mean_runtime, 2)});
  table.row({"mean gap", ConsoleTable::num(stats.mean_interarrival, 3)});
  table.row({"mean decay", ConsoleTable::num(stats.mean_decay, 4)});
  table.row({"offered load (16p)", ConsoleTable::num(stats.offered_load, 3)});
  std::cout << table.render();

  const std::string save = cli.get_string("save");
  if (!save.empty()) {
    save_trace_csv(trace, save);
    std::cout << "\nwrote " << save << '\n';
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
