// Observability demo: run one site under load and chart its queue dynamics
// over simulated time with a periodic probe — pending depth, running tasks,
// and an ASCII sparkline of the backlog. Shows how admission control keeps
// the queue bounded where an open site's backlog grows without limit.
#include <fstream>
#include <iostream>

#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/probe.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"

namespace {

std::string sparkline(const mbts::SampledSeries& series, std::size_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.size() == 0) return "";
  double peak = 1.0;
  for (std::size_t i = 0; i < series.size(); ++i)
    peak = std::max(peak, series.value(i));
  std::string out;
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t i = c * series.size() / width;
    const double frac = series.value(i) / peak;
    out += kLevels[static_cast<std::size_t>(frac * 7.0)];
  }
  return out;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("site_timeline",
                "queue-depth timeline of one site, with/without admission");
  cli.add_flag("jobs", "3000", "tasks per trace");
  cli.add_flag("load", "2.0", "offered load factor");
  cli.add_flag("threshold", "100", "slack admission threshold");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("trace", "",
               "write a binary event trace of the admission run here "
               "(inspect with trace_view)");
  cli.add_flag("metrics", "",
               "write the admission run's metrics registry as CSV here");
  cli.add_flag("profile", "false",
               "print hot-path profiling sections after the runs");
  if (!cli.parse(argc, argv)) return 1;

  const std::string trace_path = cli.get_string("trace");
  const std::string metrics_path = cli.get_string("metrics");
  if (cli.get_bool("profile")) Profiler::set_enabled(true);
  TraceRecorder recorder;
  MetricsRegistry metrics;

  const double load = cli.get_double("load");
  WorkloadSpec spec = presets::admission_mix(
      load, static_cast<std::size_t>(cli.get_uint("jobs")));
  Xoshiro256 rng = SeedSequence(cli.get_uint("seed")).stream(0x71);
  const Trace trace = generate_trace(spec, rng);
  const double probe_interval = spec.mean_gap() * 20.0;

  struct Run {
    std::string name;
    RunStats stats;
    SampledSeries queue;
  };
  std::vector<Run> runs;

  for (const bool admission : {false, true}) {
    SimEngine engine;
    SchedulerConfig config;
    config.processors = presets::kProcessors;
    config.preemption = true;
    config.discount_rate = 0.01;
    std::unique_ptr<AdmissionPolicy> admit;
    if (admission)
      admit = std::make_unique<SlackAdmission>(SlackAdmissionConfig{
          cli.get_double("threshold"), false});
    else
      admit = std::make_unique<AcceptAllAdmission>();
    SiteScheduler site(engine, config,
                       make_policy(PolicySpec::first_reward(0.2)),
                       std::move(admit));
    // Telemetry observes the admission run only; the accept-all run stays
    // untraced so the two outputs are not interleaved in one recorder.
    if (admission && (!trace_path.empty() || !metrics_path.empty()))
      site.set_telemetry(trace_path.empty() ? nullptr : &recorder,
                         metrics_path.empty() ? nullptr : &metrics,
                         /*site=*/0);
    site.inject(trace.tasks);
    PeriodicProbe probe(engine, probe_interval, [&site] {
      return static_cast<double>(site.pending_count());
    });
    engine.run();
    runs.push_back(
        {admission ? "slack admission" : "accept all", site.stats(),
         probe.series()});
  }

  std::cout << "load factor " << load << ", " << trace.size()
            << " tasks, 16 processors\n\n";
  ConsoleTable table({"site", "accepted", "rejected", "yield_rate",
                      "mean_delay", "peak_queue"});
  for (const Run& run : runs) {
    double peak = 0.0;
    for (std::size_t i = 0; i < run.queue.size(); ++i)
      peak = std::max(peak, run.queue.value(i));
    table.row({run.name, std::to_string(run.stats.accepted),
               std::to_string(run.stats.rejected),
               ConsoleTable::num(run.stats.yield_rate, 2),
               ConsoleTable::num(run.stats.delay.mean(), 1),
               ConsoleTable::num(peak, 0)});
  }
  std::cout << table.render() << '\n';

  for (const Run& run : runs)
    std::cout << "queue depth (" << run.name << "):\n  |"
              << sparkline(run.queue, 72) << "|\n";

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    recorder.write_binary(out);
    std::cout << "\nwrote " << recorder.size() << " trace events to "
              << trace_path << '\n';
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.write_csv(out);
    std::cout << "wrote metrics for " << metrics.instruments()
              << " instruments to " << metrics_path << '\n';
  }
  if (cli.get_bool("profile"))
    std::cout << '\n' << Profiler::instance().report();
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
