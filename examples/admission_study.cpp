// Admission-control study: sweep the slack threshold at a fixed load and
// show the risk/reward balance the paper's §6 describes — too low a
// threshold over-commits the site into penalties, too high starves it.
// A compact interactive companion to the fig7 bench.
#include <iostream>

#include "experiments/runner.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("admission_study",
                "slack-threshold sweep at one load factor (paper §6)");
  cli.add_flag("jobs", "2000", "tasks per trace");
  cli.add_flag("load", "1.5", "offered load factor");
  cli.add_flag("alpha", "0.2", "FirstReward alpha");
  cli.add_flag("seed", "42", "master seed");
  if (!cli.parse(argc, argv)) return 1;

  const double load = cli.get_double("load");
  const double alpha = cli.get_double("alpha");
  WorkloadSpec spec = presets::admission_mix(
      load, static_cast<std::size_t>(cli.get_uint("jobs")));
  Xoshiro256 rng = SeedSequence(cli.get_uint("seed")).stream(0xAD41);
  const Trace trace = generate_trace(spec, rng);

  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;

  const RunStats no_admission = run_single_site(
      trace, config, PolicySpec::first_reward(alpha), std::nullopt);

  ConsoleTable table({"threshold", "accepted", "rejected", "yield_rate",
                      "mean_delay", "improvement_%"});
  table.row({"(none)", std::to_string(no_admission.accepted),
             std::to_string(no_admission.rejected),
             ConsoleTable::num(no_admission.yield_rate, 1),
             ConsoleTable::num(no_admission.delay.mean(), 1), "0.00"});
  for (double threshold : {-200.0, -100.0, 0.0, 100.0, 200.0, 300.0, 450.0,
                           600.0}) {
    const RunStats stats =
        run_single_site(trace, config, PolicySpec::first_reward(alpha),
                        SlackAdmissionConfig{threshold, false});
    const double gain = no_admission.yield_rate == 0.0
                            ? 0.0
                            : 100.0 *
                                  (stats.yield_rate - no_admission.yield_rate) /
                                  std::abs(no_admission.yield_rate);
    table.row({ConsoleTable::num(threshold, 0),
               std::to_string(stats.accepted), std::to_string(stats.rejected),
               ConsoleTable::num(stats.yield_rate, 1),
               ConsoleTable::num(stats.delay.mean(), 1),
               ConsoleTable::num(gain, 2)});
  }
  std::cout << "load factor " << load << ", alpha " << alpha << "\n\n"
            << table.render();
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
