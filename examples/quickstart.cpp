// Quickstart: build a handful of tasks with linear-decay value functions,
// schedule them on a small site under FirstReward, and print what each task
// earned — the one-page tour of the public API.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main() {
  using namespace mbts;

  // A 2-processor site running FirstReward (alpha 0.3, 1% discount) with
  // slack-threshold admission control.
  SimEngine engine;
  SchedulerConfig config;
  config.processors = 2;
  config.preemption = true;
  config.discount_rate = 0.01;
  SiteScheduler site(engine, config,
                     make_policy(PolicySpec::first_reward(0.3)),
                     std::make_unique<SlackAdmission>(
                         SlackAdmissionConfig{/*threshold=*/0.0}));

  // Five bids: (arrival, runtime, max value, decay, penalty bound).
  // Task 3 is urgent (steep decay); task 4 is a low-value latecomer.
  auto bid = [](TaskId id, double arrival, double runtime, double value,
                double decay) {
    Task t;
    t.id = id;
    t.arrival = arrival;
    t.runtime = runtime;
    t.value = ValueFunction::unbounded(value, decay);
    return t;
  };
  const std::vector<Task> tasks{
      bid(0, 0.0, 50.0, 100.0, 0.5), bid(1, 0.0, 80.0, 90.0, 0.2),
      bid(2, 0.0, 30.0, 60.0, 0.1),  bid(3, 10.0, 40.0, 120.0, 2.0),
      bid(4, 20.0, 60.0, 25.0, 1.5),
  };
  site.inject(tasks);
  engine.run();

  ConsoleTable table({"task", "outcome", "quoted_t", "actual_t", "yield",
                      "slack"});
  for (const TaskRecord& r : site.records()) {
    std::string outcome;
    switch (r.outcome) {
      case TaskOutcome::kCompleted: outcome = "completed"; break;
      case TaskOutcome::kRejected: outcome = "rejected"; break;
      case TaskOutcome::kDropped: outcome = "dropped"; break;
      default: outcome = "in-flight"; break;
    }
    table.row({std::to_string(r.task.id), outcome,
               ConsoleTable::num(r.quoted_completion, 1),
               r.completion >= 0 ? ConsoleTable::num(r.completion, 1) : "-",
               ConsoleTable::num(r.realized_yield, 1),
               ConsoleTable::num(r.slack, 1)});
  }
  std::cout << table.render();

  const RunStats stats = site.stats();
  std::cout << "\ntotal yield " << stats.total_yield << " over "
            << (stats.last_completion - stats.first_arrival)
            << " time units (rate " << stats.yield_rate << ", utilization "
            << stats.utilization << ")\n";
  return 0;
}
