// Side-by-side policy comparison on one workload preset: total yield, yield
// rate, delays, preemptions — the quickest way to see how FCFS, SRPT, SWPT,
// FirstPrice, PV, and FirstReward rank on a given mix.
#include <iostream>

#include "experiments/runner.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("policy_compare",
                "compare all scheduling policies on one preset workload");
  cli.add_flag("preset", "decay-skew",
               "millennium | decay-skew | admission");
  cli.add_flag("jobs", "2000", "tasks per trace");
  cli.add_flag("load", "1.0", "load factor (admission preset)");
  cli.add_flag("skew", "5.0", "value or decay skew ratio, per preset");
  cli.add_flag("penalty", "unbounded", "zero | unbounded (decay-skew preset)");
  cli.add_flag("discount", "1.0", "discount rate in percent");
  cli.add_flag("decay", "0", "override low-class decay rate (0 = preset)");
  cli.add_flag("runtime-cv", "0", "override runtime normal cv (0 = preset)");
  cli.add_flag("preempt", "true", "enable preemption");
  cli.add_flag("basis", "completion",
               "yield basis for value-aware policies: completion | now");
  cli.add_flag("seed", "42", "master seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
  const double skew = cli.get_double("skew");
  const std::string preset = cli.get_string("preset");
  WorkloadSpec spec;
  if (preset == "millennium") {
    spec = presets::millennium_mix(skew, jobs);
  } else if (preset == "decay-skew") {
    const PenaltyModel penalty = cli.get_string("penalty") == "zero"
                                     ? PenaltyModel::kBoundedAtZero
                                     : PenaltyModel::kUnbounded;
    spec = presets::decay_skew_mix(skew, penalty, jobs);
  } else {
    spec = presets::admission_mix(cli.get_double("load"), jobs);
  }
  if (const double decay = cli.get_double("decay"); decay > 0.0)
    spec.decay.low_mean = decay;
  if (const double cv = cli.get_double("runtime-cv"); cv > 0.0)
    spec.runtime = DistSpec::normal(spec.runtime.mean(),
                                    cv * spec.runtime.mean());
  Xoshiro256 rng = SeedSequence(cli.get_uint("seed")).stream(0xC0);
  const Trace trace = generate_trace(spec, rng);
  std::cout << "spec: " << spec.to_string() << "\n\n";

  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = cli.get_bool("preempt");
  config.discount_rate = cli.get_double("discount") / 100.0;

  const YieldBasis basis = cli.get_string("basis") == "now"
                               ? YieldBasis::kAtNow
                               : YieldBasis::kAtCompletion;
  const std::vector<PolicySpec> policies{
      PolicySpec::fcfs(),
      PolicySpec::srpt(),
      PolicySpec::swpt(),
      PolicySpec::random(1),
      PolicySpec::first_price().with_basis(basis),
      PolicySpec::present_value().with_basis(basis),
      PolicySpec::first_reward(0.0).with_basis(basis),
      PolicySpec::first_reward(0.3).with_basis(basis),
      PolicySpec::first_reward(0.7).with_basis(basis),
      PolicySpec::first_reward(1.0).with_basis(basis),
  };

  ConsoleTable table({"policy", "total_yield", "yield_rate", "mean_delay",
                      "p95_delay_max", "preempts", "util"});
  for (const PolicySpec& policy : policies) {
    const RunStats stats =
        run_single_site(trace, config, policy, std::nullopt);
    table.row({policy.to_string(), ConsoleTable::num(stats.total_yield, 0),
               ConsoleTable::num(stats.yield_rate, 2),
               ConsoleTable::num(stats.delay.mean(), 1),
               ConsoleTable::num(stats.delay.max(), 0),
               std::to_string(stats.preemptions),
               ConsoleTable::num(stats.utilization, 3)});
  }
  std::cout << table.render();
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
