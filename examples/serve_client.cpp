// Load driver for mbts_serve: generates a seeded admission-mix bid stream
// (the same preset the batch examples use), submits it over the line
// protocol, and tallies the replies. --pipeline 1 (the default) runs the
// original request/response lockstep; --pipeline W with W > 1 switches to
// tagged bids with a sliding window of W in flight, exercising the
// pipelined protocol end to end. With --quit the final bid is followed by
// QUIT so the server session closes cleanly; --stats dumps a STATS snapshot
// before disconnecting.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "workload/presets.hpp"

namespace {

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MBTS_CHECK_MSG(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  MBTS_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "invalid host address: " + host);
  MBTS_CHECK_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "cannot connect to " + host + ":" + std::to_string(port));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking single-line read through a carry-over buffer.
bool recv_line(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const std::size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[2048];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

std::string format_double(double v) {
  char out[64];
  std::snprintf(out, sizeof(out), "%.17g", v);
  return out;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("serve_client", "scripted load driver for mbts_serve");
  cli.add_flag("host", "127.0.0.1", "server address");
  cli.add_flag("port", "7421", "server port");
  cli.add_flag("bids", "200", "bids to submit");
  cli.add_flag("load", "2.0", "offered load for the admission-mix preset");
  cli.add_flag("seed", "42", "trace generator seed");
  cli.add_flag("pipeline", "1",
               "bids in flight per connection (1 = untagged lockstep, "
               "> 1 = tagged sliding window)");
  cli.add_flag("stats", "false", "dump a STATS snapshot before closing");
  cli.add_flag("quit", "true", "send QUIT after the last bid");
  if (!cli.parse(argc, argv)) return 1;

  const std::uint64_t port = cli.get_uint("port");
  MBTS_CHECK_MSG(port > 0 && port <= 65535,
                 "--port must be in 1..65535");
  const std::size_t bids = static_cast<std::size_t>(cli.get_uint("bids"));

  // The bid *parameters* come from the seeded preset; arrival pacing is the
  // server's job (it stamps admissions with its own clock).
  WorkloadSpec spec = presets::admission_mix(cli.get_double("load"), bids);
  Xoshiro256 rng = SeedSequence(cli.get_uint("seed")).stream(0x7A5C);
  const Trace trace = generate_trace(spec, rng);

  const std::size_t window =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_uint("pipeline")));

  const int fd = connect_to(cli.get_string("host"),
                            static_cast<std::uint16_t>(port));
  std::string buffer, line;
  std::size_t awarded = 0, rejected = 0, busy = 0, draining = 0, errors = 0;
  std::size_t inflight = 0;
  auto tally = [&](const std::string& reply) {
    if (reply.rfind("AWARD", 0) == 0) ++awarded;
    else if (reply.rfind("REJECT", 0) == 0) ++rejected;
    else if (reply.rfind("BUSY", 0) == 0) ++busy;
    else if (reply.rfind("DRAINING", 0) == 0) ++draining;
    else {
      ++errors;
      std::cerr << "unexpected reply: " << reply << '\n';
    }
  };
  auto fail = [&]() {
    std::cerr << "connection lost after " << awarded + rejected
              << " resolved bids\n";
    ::close(fd);
    return 1;
  };
  for (std::size_t i = 0; i < trace.tasks.size(); ++i) {
    const Task& task = trace.tasks[i];
    // Tagged form iff pipelining: the tag is just the bid's stream index.
    const std::string bid =
        "BID " + (window > 1 ? "t" + std::to_string(i) + " " : std::string()) +
        format_double(task.runtime) + " " +
        format_double(task.value.max_value()) + " " +
        format_double(task.value.decay()) + " " +
        (task.value.bounded() ? format_double(task.value.penalty_bound())
                              : std::string("inf")) +
        "\n";
    if (!send_all(fd, bid)) return fail();
    ++inflight;
    while (inflight >= window) {
      if (!recv_line(fd, &buffer, &line)) return fail();
      tally(line);
      --inflight;
    }
  }
  while (inflight > 0) {  // drain the window's tail
    if (!recv_line(fd, &buffer, &line)) return fail();
    tally(line);
    --inflight;
  }

  if (cli.get_bool("stats")) {
    if (send_all(fd, "STATS\n")) {
      while (recv_line(fd, &buffer, &line)) {
        if (line == "END" || line == "DRAINING") break;
        std::cout << line << '\n';
      }
    }
  }
  if (cli.get_bool("quit") && send_all(fd, "QUIT\n"))
    recv_line(fd, &buffer, &line);  // BYE
  ::close(fd);

  std::cout << "bids " << trace.tasks.size() << ": awarded " << awarded
            << ", rejected " << rejected << ", busy " << busy << ", draining "
            << draining << ", errors " << errors << '\n';
  return errors == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
