// The Figure-1 scenario end-to-end: clients bid a stream of tasks to three
// heterogeneous task-service sites through a broker; sites quote expected
// completion and price from their candidate schedules; contracts settle at
// actual completion, with penalties when a site over-commits.
#include <iostream>

#include "market/market.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/presets.hpp"

static int run(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("market_service",
                "three-site market negotiation demo (paper Fig. 1)");
  cli.add_flag("jobs", "2000", "tasks in the bid stream");
  cli.add_flag("load", "2.0", "offered load vs one site's capacity");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("strategy", "value",
               "client strategy: value | earliest | random");
  cli.add_flag("shards", "1",
               "worker threads for site engines (>= 2 runs the market "
               "sharded; results are bit-identical for any value)");
  if (!cli.parse(argc, argv)) return 1;

  const auto strategy_name = cli.get_string("strategy");
  ClientStrategy strategy = ClientStrategy::kMaxExpectedValue;
  if (strategy_name == "earliest")
    strategy = ClientStrategy::kEarliestCompletion;
  else if (strategy_name == "random")
    strategy = ClientStrategy::kRandom;

  // Three sites with different capacities, policies, and risk appetites:
  // a large conservative site, a mid-size aggressive one, and a small
  // cost-only site with no admission control.
  MarketConfig config;
  config.strategy = strategy;
  config.rng_seed = cli.get_uint("seed");
  config.shards = static_cast<std::size_t>(cli.get_uint("shards"));
  auto site = [](SiteId id, const std::string& name, std::size_t procs,
                 PolicySpec policy, bool admission, double threshold) {
    SiteAgentConfig sc;
    sc.id = id;
    sc.name = name;
    sc.scheduler.processors = procs;
    sc.scheduler.preemption = true;
    sc.scheduler.discount_rate = 0.01;
    sc.policy = policy;
    sc.use_slack_admission = admission;
    sc.admission.threshold = threshold;
    return sc;
  };
  config.sites.push_back(site(0, "big-conservative", 24,
                              PolicySpec::first_reward(0.2), true, 300.0));
  config.sites.push_back(site(1, "mid-aggressive", 12,
                              PolicySpec::first_reward(0.8), true, 0.0));
  config.sites.push_back(
      site(2, "small-cost-only", 6, PolicySpec::swpt(), false, 0.0));

  Market market(config);

  WorkloadSpec spec = presets::admission_mix(
      cli.get_double("load"),
      static_cast<std::size_t>(cli.get_uint("jobs")));
  // Load is calibrated against the preset's 16 processors; the three sites
  // jointly offer 42, so load 2.0 here is ~0.76 of market capacity.
  Xoshiro256 rng = SeedSequence(config.rng_seed).stream(0x7A5C);
  const Trace trace = generate_trace(spec, rng);
  market.inject(trace);

  const MarketStats stats = market.run();

  ConsoleTable table({"site", "procs", "contracts", "revenue", "violated",
                      "utilization", "rejected_bids"});
  for (std::size_t i = 0; i < market.sites().size(); ++i) {
    const SiteAgent& agent = *market.sites()[i];
    std::size_t violated = 0;
    for (const Contract& c : agent.contracts())
      if (c.violated()) ++violated;
    table.row({agent.name(),
               std::to_string(agent.config().scheduler.processors),
               std::to_string(agent.contracts().size()),
               ConsoleTable::num(stats.site_revenue[i], 0),
               std::to_string(violated),
               ConsoleTable::num(stats.site_stats[i].utilization, 2),
               std::to_string(stats.site_stats[i].rejected)});
  }
  std::cout << table.render();

  std::cout << "\nbids " << stats.bids << ", awarded " << stats.awarded
            << ", rejected everywhere " << stats.rejected_everywhere
            << "\nagreed value " << stats.total_agreed
            << ", settled revenue " << stats.total_revenue
            << " (shortfall from delays "
            << stats.total_agreed - stats.total_revenue << ")\nclient strategy: "
            << to_string(strategy) << '\n';
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mbts::CheckError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 1;
  }
}
