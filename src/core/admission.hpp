// Admission control and bid evaluation (paper §6).
//
// When a bid arrives, the site tentatively ranks the task into its candidate
// schedule, projects its expected completion and yield, and computes its
// *slack* (Eq. 7): the additional delay the task could absorb before its
// reward drops below zero,
//
//   slack_i = (PV_i - cost_i) / decay_i
//
// where cost_i charges the decay inflicted on every task behind i in the
// candidate schedule (Eq. 8). Bids whose slack falls below a configurable
// threshold are rejected; a low-slack task would constrain the site's
// flexibility to accept higher-value work later.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mix.hpp"
#include "core/policy.hpp"
#include "core/schedule.hpp"
#include "core/task.hpp"

namespace mbts {

/// Everything an acceptance heuristic may inspect about the site's state at
/// bid time. `pending_sorted`/`pending_rpt` are the queued tasks in policy
/// priority order (highest first); `proc_free` is each processor's expected
/// next free time. `mix` includes the candidate task itself.
///
/// When the admission policy declares reads_ranked_suffix() == false, the
/// scheduler may truncate the pending spans to the prefix that outranks the
/// candidate: the projection then ranks the candidate at the end of the
/// span, which is exactly its queue position in the full order.
///
/// `pending_scores` and `pending_decay` are optional caches aligned with
/// `pending_sorted`: the policy priority each task was sorted by, and its
/// live decay rate at `now` (from the scheduler's mix cache). When present
/// they spare the projection an O(n) rescore/decay rescan per bid; when
/// empty (standalone callers) the projection recomputes both — the policy's
/// priority and the value function's decay are pure in their arguments, so
/// the two paths are bit-identical.
struct AdmissionContext {
  SimTime now = 0.0;
  const MixView* mix = nullptr;
  const SchedulingPolicy* policy = nullptr;
  std::span<const double> proc_free;
  std::span<const Task* const> pending_sorted;
  std::span<const double> pending_rpt;
  std::span<const double> pending_scores;
  std::span<const double> pending_decay;
  /// Optional reusable buffers for the candidate-schedule projection; the
  /// scheduler points these at per-site scratch vectors so the quote path
  /// allocates nothing in steady state.
  std::vector<PendingItem>* projection_scratch = nullptr;
  std::vector<double>* heap_scratch = nullptr;
};

/// Outcome of evaluating one bid. Expected fields are filled even on
/// rejection so clients can log why a quote was refused.
struct AdmissionDecision {
  bool accept = false;
  /// Candidate-schedule projection (Eq. 2).
  SimTime expected_completion = 0.0;
  double expected_yield = 0.0;
  /// Slack per Eq. 7 (kInf when decay == 0 and the task is profitable).
  double slack = 0.0;
  /// Zero-based rank the task would take in the pending order.
  std::size_t queue_position = 0;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string name() const = 0;
  virtual AdmissionDecision evaluate(const Task& candidate,
                                     const AdmissionContext& ctx) const = 0;
  /// True when evaluate() inspects the tasks ranked *behind* the candidate
  /// (e.g. the Eq. 8 cost sum over the suffix). When false, the scheduler
  /// may hand evaluate() a context whose entries below the candidate's rank
  /// are unsorted (the prefix that feeds the projection is always in
  /// priority order) — and may omit pending_decay entirely.
  virtual bool reads_ranked_suffix() const { return true; }
};

/// Accepts every bid (the §5 regime: the scheduler must run all tasks).
/// Still computes the projection so server quotes are available.
class AcceptAllAdmission final : public AdmissionPolicy {
 public:
  std::string name() const override { return "AcceptAll"; }
  AdmissionDecision evaluate(const Task& candidate,
                             const AdmissionContext& ctx) const override;
  bool reads_ranked_suffix() const override { return false; }
};

struct SlackAdmissionConfig {
  /// Minimum slack (in time units) a bid must retain to be accepted.
  double threshold = 0.0;
  /// Use the paper's Eq. 8 exactly as printed (decay_j * runtime_j). The
  /// default charges decay_j * runtime_i — the delay task i actually
  /// inflicts on each task j behind it; see DESIGN.md §4 item 1.
  bool literal_eq8 = false;
};

/// The paper's slack-threshold acceptance heuristic (Eq. 7/8).
class SlackAdmission final : public AdmissionPolicy {
 public:
  explicit SlackAdmission(SlackAdmissionConfig config);
  std::string name() const override;
  AdmissionDecision evaluate(const Task& candidate,
                             const AdmissionContext& ctx) const override;

  const SlackAdmissionConfig& config() const { return config_; }

 private:
  SlackAdmissionConfig config_;
};

/// Shared projection: ranks `candidate` into the pending order by policy
/// priority (ties go behind equals — arrival order), list-schedules, and
/// fills the expected completion/yield and queue position of the decision.
/// Returns the projected decision with accept unset (false) and slack 0.
AdmissionDecision project_candidate(const Task& candidate,
                                    const AdmissionContext& ctx);

/// Eq. 8 cost of accepting `candidate` at `position` in the pending order.
double admission_cost(const Task& candidate, const AdmissionContext& ctx,
                      std::size_t position, bool literal_eq8);

/// Eq. 7 slack given the projection and cost.
double admission_slack(const Task& candidate, const AdmissionContext& ctx,
                       const AdmissionDecision& projection, double cost);

}  // namespace mbts
