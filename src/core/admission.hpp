// Admission control and bid evaluation (paper §6).
//
// When a bid arrives, the site tentatively ranks the task into its candidate
// schedule, projects its expected completion and yield, and computes its
// *slack* (Eq. 7): the additional delay the task could absorb before its
// reward drops below zero,
//
//   slack_i = (PV_i - cost_i) / decay_i
//
// where cost_i charges the decay inflicted on every task behind i in the
// candidate schedule (Eq. 8). Bids whose slack falls below a configurable
// threshold are rejected; a low-slack task would constrain the site's
// flexibility to accept higher-value work later.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/mix.hpp"
#include "core/policy.hpp"
#include "core/schedule.hpp"
#include "core/task.hpp"

namespace mbts {

/// Everything an acceptance heuristic may inspect about the site's state at
/// bid time. `pending_sorted`/`pending_rpt` are the queued tasks in policy
/// priority order (highest first); `proc_free` is each processor's expected
/// next free time. `mix` includes the candidate task itself.
struct AdmissionContext {
  SimTime now = 0.0;
  const MixView* mix = nullptr;
  const SchedulingPolicy* policy = nullptr;
  std::span<const double> proc_free;
  std::span<const Task* const> pending_sorted;
  std::span<const double> pending_rpt;
};

/// Outcome of evaluating one bid. Expected fields are filled even on
/// rejection so clients can log why a quote was refused.
struct AdmissionDecision {
  bool accept = false;
  /// Candidate-schedule projection (Eq. 2).
  SimTime expected_completion = 0.0;
  double expected_yield = 0.0;
  /// Slack per Eq. 7 (kInf when decay == 0 and the task is profitable).
  double slack = 0.0;
  /// Zero-based rank the task would take in the pending order.
  std::size_t queue_position = 0;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual std::string name() const = 0;
  virtual AdmissionDecision evaluate(const Task& candidate,
                                     const AdmissionContext& ctx) const = 0;
};

/// Accepts every bid (the §5 regime: the scheduler must run all tasks).
/// Still computes the projection so server quotes are available.
class AcceptAllAdmission final : public AdmissionPolicy {
 public:
  std::string name() const override { return "AcceptAll"; }
  AdmissionDecision evaluate(const Task& candidate,
                             const AdmissionContext& ctx) const override;
};

struct SlackAdmissionConfig {
  /// Minimum slack (in time units) a bid must retain to be accepted.
  double threshold = 0.0;
  /// Use the paper's Eq. 8 exactly as printed (decay_j * runtime_j). The
  /// default charges decay_j * runtime_i — the delay task i actually
  /// inflicts on each task j behind it; see DESIGN.md §4 item 1.
  bool literal_eq8 = false;
};

/// The paper's slack-threshold acceptance heuristic (Eq. 7/8).
class SlackAdmission final : public AdmissionPolicy {
 public:
  explicit SlackAdmission(SlackAdmissionConfig config);
  std::string name() const override;
  AdmissionDecision evaluate(const Task& candidate,
                             const AdmissionContext& ctx) const override;

  const SlackAdmissionConfig& config() const { return config_; }

 private:
  SlackAdmissionConfig config_;
};

/// Shared projection: ranks `candidate` into the pending order by policy
/// priority (ties go behind equals — arrival order), list-schedules, and
/// fills the expected completion/yield and queue position of the decision.
/// Returns the projected decision with accept unset (false) and slack 0.
AdmissionDecision project_candidate(const Task& candidate,
                                    const AdmissionContext& ctx);

/// Eq. 8 cost of accepting `candidate` at `position` in the pending order.
double admission_cost(const Task& candidate, const AdmissionContext& ctx,
                      std::size_t position, bool literal_eq8);

/// Eq. 7 slack given the projection and cost.
double admission_slack(const Task& candidate, const AdmissionContext& ctx,
                       const AdmissionDecision& projection, double cost);

}  // namespace mbts
