// The task-service site scheduler (paper §4–§6).
//
// Event-driven: every arrival and completion triggers a dispatch that scores
// the mix under the configured policy and runs the top tasks. With
// preemption enabled a newly-scored pending task displaces the lowest-scored
// running task when it ranks strictly higher (ties always favor the running
// task, so dispatches never flap). Admission control is consulted once per
// submission; accepted tasks always run to completion — the §5/§6 regime —
// unless drop_expired is enabled (a Millennium-style extension).
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/processor_pool.hpp"
#include "core/admission.hpp"
#include "core/mix.hpp"
#include "core/policy.hpp"
#include "core/task.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace mbts {

/// When priorities are (re)computed (§5.2). kFresh rescans the whole mix at
/// every dispatch — priorities always reflect current yields. kAtEnqueue
/// computes a task's priority once when it enters the queue (submission or
/// preemption), the regime where a priority heap gives O(log n) dispatch;
/// time-varying indices like FirstPrice's unit gain then go stale as the
/// queue ages. Kept as an ablation of the paper's implicit design choice.
enum class RescorePolicy { kFresh, kAtEnqueue };

struct SchedulerConfig {
  std::size_t processors = 16;
  bool preemption = true;
  RescorePolicy rescore = RescorePolicy::kFresh;
  /// Discount rate for PV/FirstReward and admission slack (1% == 0.01).
  double discount_rate = 0.0;
  /// Extension: discard a task once its value function expires (only
  /// meaningful with bounded penalties; the realized yield is the floor).
  bool drop_expired = false;
  /// Extension (runtime misestimation): once a task has consumed its whole
  /// declared runtime without finishing, the scheduler keeps scoring it
  /// with this fraction of the declared runtime as its remaining estimate —
  /// "it must be almost done". Only reached when clients under-declare.
  double exceeded_estimate_fraction = 0.05;
};

/// Final disposition of one submitted task.
enum class TaskOutcome { kRejected, kPending, kRunning, kCompleted, kDropped };

struct TaskRecord {
  Task task;
  TaskOutcome outcome = TaskOutcome::kPending;
  /// Quote from the admission projection at submission time.
  SimTime quoted_completion = 0.0;
  double quoted_yield = 0.0;
  double slack = 0.0;
  /// Filled when the task finishes (or is dropped).
  SimTime first_start = -1.0;
  SimTime completion = -1.0;
  double realized_yield = 0.0;
  int preemptions = 0;
};

/// Aggregate results of one run, computed on demand.
struct RunStats {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  /// Sum of realized yields (penalties included) over finished tasks.
  double total_yield = 0.0;
  /// total_yield / (last completion - first arrival); 0 for empty runs.
  double yield_rate = 0.0;
  SimTime first_arrival = 0.0;
  SimTime last_completion = 0.0;
  double utilization = 0.0;
  std::uint64_t preemptions = 0;
  std::uint64_t dispatches = 0;
  Summary delay;          // queueing delay of completed tasks
  Summary realized_yield; // per-task realized yield
};

class SiteScheduler {
 public:
  /// The engine outlives the scheduler; policy and admission are owned.
  SiteScheduler(SimEngine& engine, SchedulerConfig config,
                std::unique_ptr<SchedulingPolicy> policy,
                std::unique_ptr<AdmissionPolicy> admission);

  /// Submits one bid at the current simulated time (task.arrival must equal
  /// engine.now()). Returns the admission decision; accepted tasks are
  /// queued and a dispatch is triggered.
  AdmissionDecision submit(const Task& task);

  /// Schedules arrival events for an entire trace (tasks need not be
  /// sorted; arrivals must be >= engine.now()).
  void inject(std::span<const Task> trace);

  /// Evaluates a bid without committing it — the market layer's probe.
  AdmissionDecision quote(const Task& task);

  bool idle() const { return pending_.empty() && running_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t running_count() const { return running_.size(); }

  const SchedulingPolicy& policy() const { return *policy_; }
  const AdmissionPolicy& admission() const { return *admission_; }
  const SchedulerConfig& config() const { return config_; }

  /// Per-task records, in submission order (valid any time; final once the
  /// engine drains).
  const std::deque<TaskRecord>& records() const { return records_; }

  RunStats stats() const;

 private:
  struct TaskState {
    Task task;
    TaskRecord* record = nullptr;
    double executed = 0.0;     // service consumed so far (excl. live segment)
    bool running = false;
    SimTime segment_start = 0; // start of the current run segment
    EventId completion_event = 0;
    /// Priority cached at enqueue time (RescorePolicy::kAtEnqueue only).
    double cached_score = 0.0;
  };

  /// Coalesces dispatch work: all arrivals and completions at one instant
  /// settle first (kArrival/kCompletion events), then a single kDispatch
  /// event ranks the whole mix. Without this, the first of a batch of
  /// simultaneous arrivals would grab a processor before its peers are even
  /// visible to the policy.
  void request_dispatch();
  void dispatch();
  void start_task(TaskState& ts);
  void preempt_task(TaskState& ts);
  void finish_task(TaskState& ts, bool dropped);
  void on_completion(TaskId id);
  /// Service consumed including the live segment of a running task.
  double executed_now(const TaskState& ts) const;
  /// True remaining service demand — what execution actually takes.
  double remaining(const TaskState& ts) const;
  /// Remaining time as the site believes it to be — what policies, quotes,
  /// and admission see. Differs from remaining() only when the client
  /// misdeclared its runtime.
  double scoring_remaining(const TaskState& ts) const;
  /// Score under the configured rescore policy: fresh from `mix`, or the
  /// enqueue-time cache.
  double score_of(const TaskState& ts, const MixView& mix) const;

  /// Rebuilds the mix snapshot over pending+running (+ optional candidate).
  const MixView& build_mix(const Task* candidate);

  /// Sorted pending view + processor free times for admission projection.
  AdmissionContext build_admission_context(
      const MixView& mix, std::vector<const Task*>& pending_sorted,
      std::vector<double>& pending_rpt, std::vector<double>& proc_free);

  SimEngine& engine_;
  SchedulerConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::unique_ptr<AdmissionPolicy> admission_;
  ProcessorPool pool_;
  MixTracker mix_;

  std::deque<TaskState> states_;  // stable storage
  std::unordered_map<TaskId, TaskState*> by_id_;
  std::vector<TaskState*> pending_;
  std::vector<TaskState*> running_;
  std::deque<TaskRecord> records_;

  bool mix_any_bounded_ = false;
  bool dispatch_pending_ = false;
  /// Any accepted task with width > 1 switches dispatch to the
  /// gang-scheduling/backfill path.
  bool any_wide_ = false;
  std::uint64_t preemptions_ = 0;
  std::uint64_t dispatches_ = 0;
  bool saw_arrival_ = false;
  SimTime first_arrival_ = 0.0;
  SimTime last_completion_ = 0.0;
};

}  // namespace mbts
