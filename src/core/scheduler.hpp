// The task-service site scheduler (paper §4–§6).
//
// Event-driven: every arrival and completion triggers a dispatch that scores
// the mix under the configured policy and runs the top tasks. With
// preemption enabled a newly-scored pending task displaces the lowest-scored
// running task when it ranks strictly higher (ties always favor the running
// task, so dispatches never flap). Admission control is consulted once per
// submission; accepted tasks always run to completion — the §5/§6 regime —
// unless drop_expired is enabled (a Millennium-style extension).
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/processor_pool.hpp"
#include "core/admission.hpp"
#include "core/mix.hpp"
#include "core/policy.hpp"
#include "core/score_columns.hpp"
#include "core/task.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "stats/summary.hpp"

namespace mbts {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceRecorder;

/// When priorities are (re)computed (§5.2). kFresh rescans the whole mix at
/// every dispatch — priorities always reflect current yields. kAtEnqueue
/// computes a task's priority once when it enters the queue (submission or
/// preemption), the regime where a priority heap gives O(log n) dispatch;
/// time-varying indices like FirstPrice's unit gain then go stale as the
/// queue ages. Kept as an ablation of the paper's implicit design choice.
enum class RescorePolicy { kFresh, kAtEnqueue };

/// Whether the pending-queue rescore runs through the SoA batch kernels
/// (ScoreColumns + SchedulingPolicy::kernel_*) instead of the per-task
/// AoS ScoreCache path.
///  - kOff: the PR-1 AoS path, kept as the differential baseline.
///  - kExact (default): kernels with the scalar operation order — rankings
///    are bit-identical to kOff (golden fingerprint + oracle pinned).
///  - kFast: reciprocal-multiply kernels, deterministic but only
///    ulp-accurate vs kExact (DESIGN.md §6); opt-in.
/// Only engaged when the policy is kernelizable(); otherwise scoring falls
/// back to the AoS path regardless of this setting.
enum class ScoreKernelMode { kOff, kExact, kFast };

struct SchedulerConfig {
  std::size_t processors = 16;
  bool preemption = true;
  RescorePolicy rescore = RescorePolicy::kFresh;
  /// Discount rate for PV/FirstReward and admission slack (1% == 0.01).
  double discount_rate = 0.0;
  /// Extension: discard a task once its value function expires (only
  /// meaningful with bounded penalties; the realized yield is the floor).
  bool drop_expired = false;
  /// Extension (runtime misestimation): once a task has consumed its whole
  /// declared runtime without finishing, the scheduler keeps scoring it
  /// with this fraction of the declared runtime as its remaining estimate —
  /// "it must be almost done". Only reached when clients under-declare.
  double exceeded_estimate_fraction = 0.05;
  /// Debug/ablation: force a from-scratch recomputation of every mix entry
  /// before each refresh instead of trusting the incremental cache. Must be
  /// observationally identical (bit-for-bit RunStats) to the default; tests
  /// assert exactly that.
  bool mix_full_rebuild = false;
  /// SoA batch-scoring kernels on the rescore path (see ScoreKernelMode).
  ScoreKernelMode score_kernels = ScoreKernelMode::kExact;
};

/// Final disposition of one submitted task. kFailed is terminal like
/// kCompleted/kDropped: the task was killed by a site crash and settles at
/// its breach yield (Task::breach_yield).
enum class TaskOutcome {
  kRejected,
  kPending,
  kRunning,
  kCompleted,
  kDropped,
  kFailed,
};

struct TaskRecord {
  Task task;
  TaskOutcome outcome = TaskOutcome::kPending;
  /// Engine clock when the bid reached this site. Equals task.arrival for
  /// first-round submissions; later for broker retries/re-bids after an
  /// outage. Replay tooling (src/oracle) needs the actual submission
  /// instant, which is not recoverable from the task alone.
  SimTime submitted_at = 0.0;
  /// Quote from the admission projection at submission time.
  SimTime quoted_completion = 0.0;
  double quoted_yield = 0.0;
  double slack = 0.0;
  /// Filled when the task finishes (or is dropped).
  SimTime first_start = -1.0;
  SimTime completion = -1.0;
  double realized_yield = 0.0;
  int preemptions = 0;
};

/// Aggregate results of one run, computed on demand.
struct RunStats {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  /// Tasks killed by a site crash (CrashMode::kKill); their breach yield is
  /// included in total_yield.
  std::size_t failed = 0;
  /// Sum of realized yields (penalties included) over finished tasks.
  double total_yield = 0.0;
  /// total_yield / (last completion - first arrival); 0 for empty runs.
  double yield_rate = 0.0;
  SimTime first_arrival = 0.0;
  SimTime last_completion = 0.0;
  double utilization = 0.0;
  std::uint64_t preemptions = 0;
  std::uint64_t dispatches = 0;
  /// Crash/recovery bookkeeping (0 on fault-free runs).
  std::uint64_t crashes = 0;
  /// Running tasks suspended by a crash under CrashMode::kCheckpoint.
  std::uint64_t checkpoints = 0;
  /// Contract delay of completed tasks (Eq. 2): completion - (arrival +
  /// declared runtime), clamped at 0. This is the delay the value function
  /// charges for; it equals queueing delay (wait before service) only when
  /// runtime declarations are accurate. With under-declared runtimes it
  /// also counts the undeclared tail of the service time.
  Summary delay;
  Summary realized_yield; // per-task realized yield
};

class SiteScheduler {
 public:
  /// The engine outlives the scheduler; policy and admission are owned.
  SiteScheduler(SimEngine& engine, SchedulerConfig config,
                std::unique_ptr<SchedulingPolicy> policy,
                std::unique_ptr<AdmissionPolicy> admission);

  /// Submits one bid at the current simulated time (task.arrival must equal
  /// engine.now()). Returns the admission decision; accepted tasks are
  /// queued and a dispatch is triggered.
  AdmissionDecision submit(const Task& task);

  /// Schedules arrival events for an entire trace (tasks need not be
  /// sorted; arrivals must be >= engine.now()).
  void inject(std::span<const Task> trace);

  /// Bulk-enqueues tasks at the current simulated time, bypassing admission
  /// (every task is accepted, with no quote projection). Intended for trace
  /// replay and benchmarks that measure pure dispatch throughput; arrivals
  /// must be <= engine.now(). Triggers one coalesced dispatch.
  void preload(std::span<const Task> tasks);

  /// Evaluates a bid without committing it — the market layer's probe.
  /// Always declines while the site is down.
  AdmissionDecision quote(const Task& task);

  // --- Crash semantics (fault injection) ---

  /// Takes the site down at the current instant. Every running task is
  /// either killed (kKill: terminal kFailed outcome, realized yield =
  /// Task::breach_yield at now, removed from the mix) or checkpointed
  /// (kCheckpoint: executed service preserved, task re-enters the pending
  /// queue and the mix stays consistent). Pending tasks survive either way
  /// and resume competing at recovery. Running tasks are drained in
  /// ascending task-id order (the internal layout is not canonical), so the
  /// returned kill list and checkpoint re-entry order are deterministic.
  /// Returns copies of the killed tasks so the market layer can breach
  /// their contracts and re-bid them.
  std::vector<Task> crash(CrashMode mode);

  /// Brings the site back up and triggers a dispatch over the surviving
  /// queue.
  void recover();

  bool down() const { return down_; }

  bool idle() const { return pending_.empty() && running_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t running_count() const { return running_.size(); }

  const SchedulingPolicy& policy() const { return *policy_; }
  const AdmissionPolicy& admission() const { return *admission_; }
  const SchedulerConfig& config() const { return config_; }

  /// Per-task records, in submission order (valid any time; final once the
  /// engine drains).
  const std::deque<TaskRecord>& records() const { return records_; }

  RunStats stats() const;

  /// Attaches opt-in telemetry (either pointer may be null). Trace events
  /// are labeled with `site` (the market passes the agent's id; standalone
  /// sites default to 0). Metric names are prefixed "site<id>/" when a
  /// registry is given. Detached — the default — every hook is one null
  /// test; attaching never alters scheduling behavior, only records it
  /// (the golden stats fingerprint pins the detached path bit-for-bit).
  void set_telemetry(TraceRecorder* trace, MetricsRegistry* metrics = nullptr,
                     SiteId site = 0);

 private:
  struct TaskState {
    Task task;
    TaskRecord* record = nullptr;
    double executed = 0.0;     // service consumed so far (excl. live segment)
    bool running = false;
    SimTime segment_start = 0; // start of the current run segment
    EventId completion_event = 0;
    /// Priority cached at enqueue time (RescorePolicy::kAtEnqueue only).
    double cached_score = 0.0;
    /// Policy score cache (see SchedulingPolicy::make_cache), valid while
    /// (now, rpt) match the stamps below. Lets one instant's burst of
    /// rescores (every quote rescans all pending) reuse the expensive
    /// per-task terms.
    ScoreCache score_cache;
    SimTime score_cache_now = -kInf;
    double score_cache_rpt = -1.0;
    /// This task's slot in the incremental mix tracker.
    MixTracker::Slot mix_slot = 0;
    /// scoring_remaining() latched when the task (re)enters the pending
    /// queue. Valid while pending: executed time is frozen, so the believed
    /// remaining runtime cannot change until the task starts.
    double queue_rpt = 0.0;
    /// Index of this task in pending_ (when !running) or running_ (when
    /// running) — lets both queues erase by swap-with-back in O(1).
    std::uint32_t queue_pos = 0;
  };

  /// One scored entry in the dispatch ranking; rpt caches
  /// scoring_remaining() so ranking never recomputes it.
  struct Scored {
    TaskState* ts;
    double score;
    double rpt;
    bool running;
  };

  // Typed-event handlers. payload.target is the scheduler; for completions
  // payload.a is the task id, for arrivals it indexes injected_tasks_ (a
  // stable arena — deque slots never move, satisfying the payload lifetime
  // rule).
  static void handle_completion(SimEngine& engine, const EventPayload& payload);
  static void handle_dispatch(SimEngine& engine, const EventPayload& payload);
  static void handle_arrival(SimEngine& engine, const EventPayload& payload);

  /// Coalesces dispatch work: all arrivals and completions at one instant
  /// settle first (kArrival/kCompletion events), then a single kDispatch
  /// event ranks the whole mix. Without this, the first of a batch of
  /// simultaneous arrivals would grab a processor before its peers are even
  /// visible to the policy.
  void request_dispatch();
  void dispatch();
  void start_task(TaskState& ts);
  void preempt_task(TaskState& ts);
  /// preempt_task's crash twin: suspends a running task without counting a
  /// scheduling preemption (the processor was lost, not reassigned).
  void checkpoint_task(TaskState& ts);
  void finish_task(TaskState& ts, bool dropped);
  /// Terminal crash outcome for a running task (CrashMode::kKill).
  void fail_task(TaskState& ts);
  void on_completion(TaskId id);
  /// Service consumed including the live segment of a running task.
  double executed_now(const TaskState& ts) const;
  /// True remaining service demand — what execution actually takes.
  double remaining(const TaskState& ts) const;
  /// Remaining time as the site believes it to be — what policies, quotes,
  /// and admission see. Differs from remaining() only when the client
  /// misdeclared its runtime.
  double scoring_remaining(const TaskState& ts) const;
  /// Score under the configured rescore policy: fresh from `mix` (with
  /// `rpt` the precomputed scoring_remaining), or the enqueue-time cache.
  double score_of(TaskState& ts, double rpt, const MixView& mix) const;
  /// Fresh policy score, routed through the per-task ScoreCache when the
  /// policy supports it (bit-identical; cross-checked in debug builds).
  double fresh_score(TaskState& ts, double rpt, const MixView& mix) const;
  /// Fresh scores for a set of *pending* tasks (rpt = queue_rpt) into
  /// batch_scores_, via the policy's batch entry points: one virtual call
  /// per scan. Element-wise bit-identical to fresh_score.
  void batch_fresh_scores(std::span<TaskState* const> tasks,
                          const MixView& mix);
  /// Kernel-path twin of batch_fresh_scores: refreshes the ScoreColumns
  /// cache columns for `mix.now`, runs the policy's columnwise priority
  /// kernel into kernel_scores_ (slot order == pending_ order), and
  /// gathers into batch_scores_ via queue_pos. Bit-identical to the AoS
  /// path under ScoreKernelMode::kExact; cross-checked in debug builds.
  void kernel_fresh_scores(std::span<TaskState* const> tasks,
                           const MixView& mix);
  /// Rebuilds stale cache columns (stamp_now != mix.now): one vector
  /// kernel_make_cache pass when everything is stale (the dispatch-at-a-
  /// new-instant common case, with a scalar fixup for piecewise slots),
  /// or a scalar per-slot pass when only a few slots missed (arrivals
  /// landing mid-instant between quotes).
  void kernel_refresh_columns(const MixView& mix);
  KernelVariant kernel_variant() const {
    return config_.score_kernels == ScoreKernelMode::kFast
               ? KernelVariant::kFast
               : KernelVariant::kExact;
  }
  /// (score desc, id asc) — the total order admission ranks pending by.
  static bool rank_less(const Scored& a, const Scored& b);
  /// Sorts scored_ by rank_less. scored_ arrives in last quote's order, so
  /// it is usually already sorted or one insertion away; an insertion pass
  /// (with an inversion/move budget falling back to std::sort) replaces the
  /// full sort. Correctness never rests on that: rank_less is a total
  /// order, so the sorted permutation is unique however it is reached.
  void adaptive_rank_sort();

  /// Advances the mix tracker to now and returns the refreshed snapshot
  /// (honoring mix_full_rebuild; cross-checked against a from-scratch
  /// recomputation in debug builds).
  const MixView& mix_refresh();
  /// Like mix_refresh but with `candidate` appended — the quote-path view.
  const MixView& mix_refresh_with_candidate(const Task& candidate);

  /// Allocates (or recycles) backing storage for an accepted task.
  TaskState& acquire_state();
  /// O(1) queue bookkeeping via TaskState::queue_pos.
  void push_pending(TaskState& ts);
  void erase_pending(TaskState& ts);
  void push_running(TaskState& ts);
  void erase_running(TaskState& ts);
  /// Common tail of submit()/preload() for an accepted task.
  void enqueue_accepted(const Task& task, TaskRecord& record);

  /// Sorted pending view + processor free times for admission projection;
  /// fills the per-site scratch buffers. When the admission policy never
  /// reads the ranked suffix, only the prefix outranking `candidate` is
  /// sorted (bit-identical projection, O(n + k log k) instead of
  /// O(n log n)).
  AdmissionContext build_admission_context(const MixView& mix,
                                           const Task& candidate);

  SimEngine& engine_;
  SchedulerConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::unique_ptr<AdmissionPolicy> admission_;
  ProcessorPool pool_;
  MixTracker mix_;

  std::deque<TaskState> states_;  // stable storage
  std::vector<TaskState*> free_states_;  // finished states ready for reuse
  std::unordered_map<TaskId, TaskState*> by_id_;
  std::vector<TaskState*> pending_;
  std::vector<TaskState*> running_;
  /// The pending set in the priority order established by the last
  /// admission ranking — the warm start that makes the per-quote sort an
  /// O(n) repair instead of O(n log n) from scratch.
  std::vector<TaskState*> rank_order_;
  std::deque<TaskRecord> records_;
  /// Arena for inject()ed trace tasks: arrival events carry an index into
  /// this deque instead of a task copy in a heap-allocated closure.
  std::deque<Task> injected_tasks_;

  // Scratch buffers reused across dispatches and quotes so the hot path
  // allocates nothing in steady state.
  std::vector<Scored> scored_;
  std::vector<const Task*> pending_sorted_;
  std::vector<double> pending_rpt_;
  std::vector<double> pending_scores_;
  std::vector<double> pending_decay_;
  std::vector<double> proc_free_;
  std::vector<PendingItem> projection_scratch_;
  std::vector<double> heap_scratch_;
  std::vector<TaskState*> droppable_;
  std::vector<TaskState*> to_start_;
  std::vector<TaskState*> to_preempt_;
  // Parallel arrays for the policy batch-scoring calls.
  std::vector<double> batch_scores_;
  std::vector<ScoreCache> batch_caches_;
  std::vector<const Task*> batch_tasks_;
  std::vector<double> batch_rpts_;
  std::vector<std::size_t> miss_idx_;
  std::vector<const Task*> miss_tasks_;
  std::vector<double> miss_rpts_;
  std::vector<ScoreCache> miss_caches_;
  /// SoA mirror of pending_ (slot i == pending_[i]; see score_columns.hpp)
  /// and the per-slot kernel output, maintained only when kernel_enabled_.
  ScoreColumns columns_;
  std::vector<double> kernel_scores_;

  // Telemetry (see set_telemetry). Metric instruments are resolved once at
  // attach time so hot-path hooks bump cached pointers, never do name
  // lookups.
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  SiteId site_id_ = 0;
  Counter* m_quotes_ = nullptr;
  Counter* m_accepts_ = nullptr;
  Counter* m_rejects_ = nullptr;
  Counter* m_starts_ = nullptr;
  Counter* m_preempts_ = nullptr;
  Counter* m_completions_ = nullptr;
  Counter* m_drops_ = nullptr;
  Counter* m_fails_ = nullptr;
  Counter* m_checkpoints_ = nullptr;
  Counter* m_dispatch_count_ = nullptr;
  Gauge* m_pending_depth_ = nullptr;
  Histogram* m_slack_ = nullptr;
  Histogram* m_delay_ = nullptr;
  Histogram* m_ryield_ = nullptr;

  bool dispatch_pending_ = false;
  /// policy_->cacheable(), latched at construction.
  bool policy_cacheable_ = false;
  /// score_kernels != kOff && policy kernelizable+cacheable, latched at
  /// construction: whether batch rescores run the SoA kernel path.
  bool kernel_enabled_ = false;
  /// admission_->reads_ranked_suffix(), latched at construction.
  bool admission_reads_suffix_ = true;
  /// Any accepted task with width > 1 switches dispatch to the
  /// gang-scheduling/backfill path.
  bool any_wide_ = false;
  /// Site outage state: while down, quotes decline, dispatches are inert,
  /// and the pool is offline.
  bool down_ = false;
  std::uint64_t preemptions_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t checkpoints_ = 0;
  bool saw_arrival_ = false;
  SimTime first_arrival_ = 0.0;
  SimTime last_completion_ = 0.0;
};

}  // namespace mbts
