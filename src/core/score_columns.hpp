// Structure-of-arrays mirror of the pending queue's scoring inputs.
//
// The PR-1 hot path batched scoring through per-task `ScoreCache` records,
// but every input the policy kernels need (rpt, value-function terms, the
// anchor the contract measures delay from) still lived scattered across
// `TaskState`/`Task`/`ValueFunction` objects — an AoS layout the compiler
// cannot vectorize across the candidate set. `ScoreColumns` keeps those
// inputs as parallel flat `double` arrays, one slot per pending task,
// maintained with the exact same push-back / swap-with-back moves as the
// scheduler's index-swap `pending_` queue, so slot i here always describes
// `pending_[i]` and `TaskState::queue_pos` doubles as the slot id.
//
// Columns are *immutable per slot* while a task sits in the queue: rpt is
// latched at enqueue (`queue_rpt`) and every value-function term is a
// constant of the bid. Only the cached policy terms (a/b/c, mirroring
// `ScoreCache`) and their `stamp_now` freshness stamps are rewritten, once
// per scoring instant.
#pragma once

#include <cstddef>
#include <vector>

#include "core/task.hpp"
#include "core/types.hpp"

namespace mbts {

/// Which arithmetic the batch kernels use.
///  - kExact: same operation order per element as the scalar policy code —
///    results are bit-identical to `priority`/`make_cache` by contract.
///  - kFast: final per-element divisions become multiplications by
///    reciprocal columns precomputed at enqueue. Reassociation-based, so
///    results agree only to a few ulp (see DESIGN.md §6); never the
///    default and never drawn by the differential fuzzer.
enum class KernelVariant { kExact, kFast };

/// Read-only view of the column arrays a kernel consumes. Raw pointers —
/// contiguous, no aliasing with the output span (kernels write only `out`
/// or the cache columns they are handed).
struct ScoreColumnsView {
  std::size_t n = 0;
  /// Remaining processing time latched at enqueue (`TaskState::queue_rpt`).
  const double* rpt = nullptr;
  /// rpt * width, exactly as the scalar `unit_gain` denominator computes it.
  const double* rptw = nullptr;
  /// 1.0 / rpt and 1.0 / rptw, precomputed for KernelVariant::kFast.
  const double* inv_rpt = nullptr;
  const double* inv_rptw = nullptr;
  /// Contract anchor: arrival + estimate(). Delay at completion c is
  /// max(c - anchor, 0), matching `Task::delay_at_completion`.
  const double* anchor = nullptr;
  /// Single-segment value-function terms (undefined meaning for piecewise
  /// slots — those are fixed up by a scalar pass, see `linear`).
  const double* max_value = nullptr;
  const double* rate = nullptr;
  /// -penalty_bound: the yield floor (-inf when unbounded).
  const double* neg_bound = nullptr;
  /// Delay at which decay stops (kInf when the function never expires).
  const double* expire = nullptr;
  /// Slot -> task, for scalar fallback lanes (piecewise fixup, bounded-mix
  /// opportunity cost).
  const Task* const* tasks = nullptr;
  /// linear[i] != 0 iff the slot's value function is single-segment, i.e.
  /// the flat-array terms above fully describe it.
  const unsigned char* linear = nullptr;
};

class ScoreColumns {
 public:
  std::size_t size() const { return rpt_.size(); }
  bool empty() const { return rpt_.empty(); }

  /// Appends a slot for `task` scored at remaining time `queue_rpt`.
  /// Mirrors `push_pending`: the new slot id is the old size().
  void push(const Task& task, double queue_rpt) {
    const ValueFunction& vf = task.value;
    rpt_.push_back(queue_rpt);
    // Same expression as the scalar unit_gain denominator; computing it at
    // enqueue instead of per score is bit-equal because the inputs are
    // frozen for the slot's lifetime.
    rptw_.push_back(queue_rpt * static_cast<double>(task.width));
    inv_rpt_.push_back(1.0 / queue_rpt);
    inv_rptw_.push_back(1.0 / rptw_.back());
    anchor_.push_back(task.arrival + task.estimate());
    max_value_.push_back(vf.max_value());
    rate_.push_back(vf.decay());
    neg_bound_.push_back(-vf.penalty_bound());
    expire_.push_back(vf.delay_to_expire());
    tasks_.push_back(&task);
    const bool linear = vf.is_linear();
    linear_.push_back(linear ? 1u : 0u);
    nonlinear_ += linear ? 0u : 1u;
    cache_a_.push_back(0.0);
    cache_b_.push_back(0.0);
    cache_c_.push_back(0.0);
    // -inf: never a valid scoring instant, so a fresh slot always misses.
    stamp_now_.push_back(-kInf);
  }

  /// Removes `slot` by swapping the last slot into its place, exactly as
  /// `erase_pending` moves `pending_.back()` into the vacated index.
  void swap_erase(std::size_t slot) {
    nonlinear_ -= linear_[slot] ? 0u : 1u;
    const std::size_t last = rpt_.size() - 1;
    if (slot != last) {
      rpt_[slot] = rpt_[last];
      rptw_[slot] = rptw_[last];
      inv_rpt_[slot] = inv_rpt_[last];
      inv_rptw_[slot] = inv_rptw_[last];
      anchor_[slot] = anchor_[last];
      max_value_[slot] = max_value_[last];
      rate_[slot] = rate_[last];
      neg_bound_[slot] = neg_bound_[last];
      expire_[slot] = expire_[last];
      tasks_[slot] = tasks_[last];
      linear_[slot] = linear_[last];
      cache_a_[slot] = cache_a_[last];
      cache_b_[slot] = cache_b_[last];
      cache_c_[slot] = cache_c_[last];
      stamp_now_[slot] = stamp_now_[last];
    }
    rpt_.pop_back();
    rptw_.pop_back();
    inv_rpt_.pop_back();
    inv_rptw_.pop_back();
    anchor_.pop_back();
    max_value_.pop_back();
    rate_.pop_back();
    neg_bound_.pop_back();
    expire_.pop_back();
    tasks_.pop_back();
    linear_.pop_back();
    cache_a_.pop_back();
    cache_b_.pop_back();
    cache_c_.pop_back();
    stamp_now_.pop_back();
  }

  ScoreColumnsView view() const {
    ScoreColumnsView v;
    v.n = rpt_.size();
    v.rpt = rpt_.data();
    v.rptw = rptw_.data();
    v.inv_rpt = inv_rpt_.data();
    v.inv_rptw = inv_rptw_.data();
    v.anchor = anchor_.data();
    v.max_value = max_value_.data();
    v.rate = rate_.data();
    v.neg_bound = neg_bound_.data();
    v.expire = expire_.data();
    v.tasks = tasks_.data();
    v.linear = linear_.data();
    return v;
  }

  /// Cached policy terms, the SoA twin of `ScoreCache{a,b,c}`.
  double* cache_a() { return cache_a_.data(); }
  double* cache_b() { return cache_b_.data(); }
  double* cache_c() { return cache_c_.data(); }
  const double* cache_a() const { return cache_a_.data(); }
  const double* cache_b() const { return cache_b_.data(); }
  const double* cache_c() const { return cache_c_.data(); }
  /// Scoring instant the cache columns were built for (-inf = never).
  double* stamp_now() { return stamp_now_.data(); }
  const double* stamp_now() const { return stamp_now_.data(); }

  bool linear(std::size_t slot) const { return linear_[slot] != 0; }
  const Task& task(std::size_t slot) const { return *tasks_[slot]; }
  double rpt(std::size_t slot) const { return rpt_[slot]; }
  /// Number of piecewise (multi-segment) slots needing the scalar fixup.
  std::size_t nonlinear_count() const { return nonlinear_; }

  void clear() {
    rpt_.clear();
    rptw_.clear();
    inv_rpt_.clear();
    inv_rptw_.clear();
    anchor_.clear();
    max_value_.clear();
    rate_.clear();
    neg_bound_.clear();
    expire_.clear();
    tasks_.clear();
    linear_.clear();
    cache_a_.clear();
    cache_b_.clear();
    cache_c_.clear();
    stamp_now_.clear();
    nonlinear_ = 0;
  }

 private:
  std::vector<double> rpt_;
  std::vector<double> rptw_;
  std::vector<double> inv_rpt_;
  std::vector<double> inv_rptw_;
  std::vector<double> anchor_;
  std::vector<double> max_value_;
  std::vector<double> rate_;
  std::vector<double> neg_bound_;
  std::vector<double> expire_;
  std::vector<const Task*> tasks_;
  std::vector<unsigned char> linear_;
  std::vector<double> cache_a_;
  std::vector<double> cache_b_;
  std::vector<double> cache_c_;
  std::vector<double> stamp_now_;
  std::size_t nonlinear_ = 0;
};

}  // namespace mbts
