// Warm-start adaptive sort, extracted from SiteScheduler so the dispatch
// path and tests share one implementation.
//
// The scheduler re-sorts a rank order that is *almost* sorted between
// scoring instants: scores drift slightly and a handful of arrivals land
// out of place. Correctness never rests on the warm start — the result is
// always fully sorted by `less` (DCHECKed at the scheduler call site and
// cross-checked against std::sort in tests/test_rank_sort.cpp) — only the
// cost model does.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mbts {

template <typename T, typename Less>
void adaptive_sort(std::vector<T>& v, Less less) {
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (less(v[i], v[i - 1])) ++inversions;
  if (inversions == 0) return;
  // A handful of adjacent inversions means "one new arrival plus drift":
  // insertion sort finishes in O(n + displacement). Anything messier (first
  // quote at a new instant after scores moved arbitrarily) falls back to
  // std::sort, also if the move budget trips mid-pass — few adjacent
  // inversions do not bound total displacement (e.g. a sorted array rotated
  // by a few elements has a handful of adjacent inversions but O(n) moves
  // per insertion).
  if (inversions <= 16) {
    std::size_t moves = 0;
    const std::size_t budget = 4 * v.size() + 256;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (!less(v[i], v[i - 1])) continue;
      const T x = v[i];
      std::size_t j = i;
      do {
        v[j] = v[j - 1];
        --j;
        if (++moves > budget) {
          // Re-seat the in-flight element so v is a permutation again
          // before handing it to std::sort.
          v[j] = x;
          std::sort(v.begin(), v.end(), less);
          return;
        }
      } while (j > 0 && less(x, v[j - 1]));
      v[j] = x;
    }
    return;
  }
  std::sort(v.begin(), v.end(), less);
}

}  // namespace mbts
