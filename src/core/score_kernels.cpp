// Portable kernel loops + the runtime AVX2 dispatcher.
//
// The portable loops are written as straight-line per-element code over
// contiguous columns — no per-element branches beyond the clamp/floor
// selects the scalar formulas themselves contain (which compile to
// maxsd/cmp+blend, not branches). The yield-basis and variant switches are
// hoisted out of the loops via template parameters.
#include "core/score_kernels.hpp"

namespace mbts::kernels {

namespace {

bool detect_avx2() {
#if defined(MBTS_HAVE_AVX2)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool avx2_compiled() {
#if defined(MBTS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_active() {
  static const bool active = detect_avx2();
  return active;
}

namespace portable {

namespace {

// AtCompletion: yield anchored at now + rpt (YieldBasis::kAtCompletion);
// Fast: multiply by the precomputed reciprocal instead of dividing.
template <bool AtCompletion, bool Fast>
void unit_gain_loop(const ScoreColumnsView& cols, double now, double* out) {
  for (std::size_t i = 0; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y =
        detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                             cols.neg_bound[i]);
    out[i] = Fast ? y * cols.inv_rptw[i] : y / cols.rptw[i];
  }
}

template <bool AtCompletion, bool Fast>
void present_value_loop(const ScoreColumnsView& cols, double now,
                        double discount_rate, double* out) {
  for (std::size_t i = 0; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y =
        detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                             cols.neg_bound[i]);
    const double pv = y / (1.0 + discount_rate * cols.rpt[i]);
    out[i] = Fast ? pv * cols.inv_rptw[i] : pv / cols.rptw[i];
  }
}

template <bool Fast>
void swpt_loop(const ScoreColumnsView& cols, double now, double* out) {
  for (std::size_t i = 0; i < cols.n; ++i) {
    const double d = detail::clamped_delay(now, cols.anchor[i]);
    const double w = detail::linear_decay(d, cols.rate[i], cols.expire[i]);
    out[i] = Fast ? w * cols.inv_rpt[i] : w / cols.rpt[i];
  }
}

template <bool AtCompletion>
void first_reward_cache_loop(const ScoreColumnsView& cols, double now,
                             double discount_rate, double alpha, double* a,
                             double* b, double* c) {
  for (std::size_t i = 0; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y =
        detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                             cols.neg_bound[i]);
    const double pv = y / (1.0 + discount_rate * cols.rpt[i]);
    a[i] = alpha * pv;
    const double d0 = detail::clamped_delay(now, cols.anchor[i]);
    b[i] = detail::linear_decay(d0, cols.rate[i], cols.expire[i]);
    c[i] = cols.rptw[i];
  }
}

template <bool Fast>
void first_reward_combine_loop(const ScoreColumnsView& cols, const double* a,
                               const double* b, const double* c, double total,
                               double weight, double* out) {
  for (std::size_t i = 0; i < cols.n; ++i) {
    const double others = total - b[i];
    // std::max(others, 0.0) spelled out: (others < 0) ? 0 : others.
    const double cost = (others < 0.0 ? 0.0 : others) * cols.rpt[i];
    const double num = a[i] - weight * cost;
    out[i] = Fast ? num * cols.inv_rptw[i] : num / c[i];
  }
}

}  // namespace

void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out) {
  const bool fast = variant == KernelVariant::kFast;
  if (at_completion) {
    fast ? unit_gain_loop<true, true>(cols, now, out)
         : unit_gain_loop<true, false>(cols, now, out);
  } else {
    fast ? unit_gain_loop<false, true>(cols, now, out)
         : unit_gain_loop<false, false>(cols, now, out);
  }
}

void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out) {
  const bool fast = variant == KernelVariant::kFast;
  if (at_completion) {
    fast ? present_value_loop<true, true>(cols, now, discount_rate, out)
         : present_value_loop<true, false>(cols, now, discount_rate, out);
  } else {
    fast ? present_value_loop<false, true>(cols, now, discount_rate, out)
         : present_value_loop<false, false>(cols, now, discount_rate, out);
  }
}

void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out) {
  variant == KernelVariant::kFast ? swpt_loop<true>(cols, now, out)
                                  : swpt_loop<false>(cols, now, out);
}

void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c) {
  at_completion
      ? first_reward_cache_loop<true>(cols, now, discount_rate, alpha, a, b, c)
      : first_reward_cache_loop<false>(cols, now, discount_rate, alpha, a, b,
                                       c);
}

void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out) {
  // Hoisted exactly like the scalar batch_priority_from_cache.
  const double weight = 1.0 - alpha;
  variant == KernelVariant::kFast
      ? first_reward_combine_loop<true>(cols, a, b, c, total_live_decay,
                                        weight, out)
      : first_reward_combine_loop<false>(cols, a, b, c, total_live_decay,
                                         weight, out);
}

}  // namespace portable

void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out) {
#if defined(MBTS_HAVE_AVX2)
  if (avx2_active()) {
    avx2::unit_gain_scores(cols, now, at_completion, variant, out);
    return;
  }
#endif
  portable::unit_gain_scores(cols, now, at_completion, variant, out);
}

void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out) {
#if defined(MBTS_HAVE_AVX2)
  if (avx2_active()) {
    avx2::present_value_scores(cols, now, discount_rate, at_completion,
                               variant, out);
    return;
  }
#endif
  portable::present_value_scores(cols, now, discount_rate, at_completion,
                                 variant, out);
}

void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out) {
#if defined(MBTS_HAVE_AVX2)
  if (avx2_active()) {
    avx2::swpt_scores(cols, now, variant, out);
    return;
  }
#endif
  portable::swpt_scores(cols, now, variant, out);
}

void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c) {
#if defined(MBTS_HAVE_AVX2)
  if (avx2_active()) {
    avx2::first_reward_cache(cols, now, discount_rate, alpha, at_completion, a,
                             b, c);
    return;
  }
#endif
  portable::first_reward_cache(cols, now, discount_rate, alpha, at_completion,
                               a, b, c);
}

void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out) {
#if defined(MBTS_HAVE_AVX2)
  if (avx2_active()) {
    avx2::first_reward_combine(cols, a, b, c, total_live_decay, alpha, variant,
                               out);
    return;
  }
#endif
  portable::first_reward_combine(cols, a, b, c, total_live_decay, alpha,
                                 variant, out);
}

}  // namespace mbts::kernels
