// Scheduling-policy interface (paper §4–§5).
//
// A policy is a pure priority index: given a task, its remaining processing
// time, and a snapshot of the competing mix, it returns a score; the
// scheduler runs the highest-scored tasks. Statelessness keeps FCFS, SRPT,
// SWPT, FirstPrice, PV, and FirstReward interchangeable and independently
// testable, and makes one dispatch O(n) scoring + O(n log k) selection.
#pragma once

#include <memory>
#include <string>

#include "core/metrics.hpp"
#include "core/mix.hpp"
#include "core/score_columns.hpp"
#include "core/task.hpp"

namespace mbts {

/// Per-task scoring cache for policies whose index decomposes into terms
/// depending only on (task, rpt, now) plus a cheap mix-dependent
/// combination. The three doubles are opaque to the scheduler; their
/// meaning is policy-specific.
struct ScoreCache {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// Priority of running `task` next; higher runs earlier. `rpt` is the
  /// task's remaining processing time (> 0).
  virtual double priority(const Task& task, double rpt,
                          const MixView& mix) const = 0;

  /// True when make_cache/priority_from_cache are implemented. Contract:
  ///
  ///   priority_from_cache(make_cache(task, rpt, mix), task, rpt, mix)
  ///
  /// must be BIT-IDENTICAL to priority(task, rpt, mix) for every mix whose
  /// now/discount_rate match the one make_cache saw. The scheduler exploits
  /// this to amortize the (task, rpt, now)-only subexpressions across the
  /// many rescores that happen at one instant (quote bursts, dispatch);
  /// debug builds cross-check the two paths on every score.
  virtual bool cacheable() const { return false; }

  /// Precomputes the (task, rpt, now)-only terms. Implementations may read
  /// only mix.now and mix.discount_rate — never the mix-varying fields
  /// (aggregate decay, competitors), which change between make_cache and
  /// priority_from_cache.
  virtual ScoreCache make_cache(const Task& task, double rpt,
                                const MixView& mix) const {
    (void)task;
    (void)rpt;
    (void)mix;
    return {};
  }

  /// Combines a cache from make_cache (same task, rpt, and instant) with
  /// the current mix. Default falls back to the uncached computation.
  virtual double priority_from_cache(const ScoreCache& cache,
                                     const Task& task, double rpt,
                                     const MixView& mix) const {
    (void)cache;
    return priority(task, rpt, mix);
  }

  /// Batch variants over parallel arrays: one virtual call per queue scan
  /// instead of one per task, so implementations can run a tight inlined
  /// loop. Element-wise BIT-IDENTICAL to the scalar calls above — the
  /// scheduler cross-checks in debug builds.
  virtual void batch_make_cache(const Task* const* tasks, const double* rpts,
                                std::size_t n, const MixView& mix,
                                ScoreCache* out) const {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = make_cache(*tasks[i], rpts[i], mix);
  }

  virtual void batch_priority_from_cache(const ScoreCache* caches,
                                         const Task* const* tasks,
                                         const double* rpts, std::size_t n,
                                         const MixView& mix,
                                         double* out) const {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = priority_from_cache(caches[i], *tasks[i], rpts[i], mix);
  }

  /// True when the SoA kernel pair below is implemented. Same contract as
  /// cacheable(), lifted to columns: in KernelVariant::kExact,
  /// kernel_make_cache must fill (a, b, c) bit-identical to make_cache and
  /// kernel_priority must be bit-identical to priority_from_cache — for
  /// every slot whose value function is single-segment (cols.linear). The
  /// scheduler overwrites non-linear slots with scalar make_cache results
  /// before calling kernel_priority, so only the cache pass may price them
  /// loosely. kFast is the documented-ulp reassociation variant
  /// (DESIGN.md §6); it is opt-in and never the scheduler default.
  virtual bool kernelizable() const { return false; }

  /// Columnwise make_cache: fills the cache columns for all cols.n slots.
  /// May read only mix.now and mix.discount_rate, like make_cache.
  virtual void kernel_make_cache(const ScoreColumnsView& cols,
                                 const MixView& mix, KernelVariant variant,
                                 double* a, double* b, double* c) const {
    (void)variant;
    for (std::size_t i = 0; i < cols.n; ++i) {
      const ScoreCache cache = make_cache(*cols.tasks[i], cols.rpt[i], mix);
      a[i] = cache.a;
      b[i] = cache.b;
      c[i] = cache.c;
    }
  }

  /// Columnwise priority_from_cache: combines the cache columns with the
  /// current mix into out[0..cols.n).
  virtual void kernel_priority(const ScoreColumnsView& cols, const double* a,
                               const double* b, const double* c,
                               const MixView& mix, KernelVariant variant,
                               double* out) const {
    (void)variant;
    for (std::size_t i = 0; i < cols.n; ++i)
      out[i] = priority_from_cache({a[i], b[i], c[i]}, *cols.tasks[i],
                                   cols.rpt[i], mix);
  }
};

/// Declarative policy selection used by experiment configs and CLIs.
struct PolicySpec {
  enum class Kind {
    kFcfs,
    kSrpt,
    kSwpt,
    kFirstPrice,
    kPresentValue,
    kFirstReward,
    kRandom,
  };

  Kind kind = Kind::kFirstPrice;
  /// FirstReward's risk/reward weight (Eq. 6); ignored by other policies.
  double alpha = 0.5;
  /// Seed for kRandom; ignored by other policies.
  std::uint64_t seed = 1;
  /// Where the value-aware policies evaluate yield for ranking (ablation;
  /// the paper's Eq. 2 formulation is kAtCompletion).
  YieldBasis yield_basis = YieldBasis::kAtCompletion;

  static PolicySpec fcfs() { return {.kind = Kind::kFcfs}; }
  static PolicySpec srpt() { return {.kind = Kind::kSrpt}; }
  static PolicySpec swpt() { return {.kind = Kind::kSwpt}; }
  static PolicySpec first_price() { return {.kind = Kind::kFirstPrice}; }
  static PolicySpec present_value() { return {.kind = Kind::kPresentValue}; }
  static PolicySpec first_reward(double alpha) {
    return {.kind = Kind::kFirstReward, .alpha = alpha};
  }
  static PolicySpec random(std::uint64_t seed) {
    return {.kind = Kind::kRandom, .seed = seed};
  }

  PolicySpec with_basis(YieldBasis basis) const {
    PolicySpec copy = *this;
    copy.yield_basis = basis;
    return copy;
  }

  std::string to_string() const;
};

/// Instantiates the policy named by the spec.
std::unique_ptr<SchedulingPolicy> make_policy(const PolicySpec& spec);

/// Parses "fcfs" | "srpt" | "swpt" | "firstprice" | "pv" |
/// "firstreward:<alpha>" | "random". Throws CheckError on unknown names.
PolicySpec parse_policy_spec(const std::string& text);

}  // namespace mbts
