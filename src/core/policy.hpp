// Scheduling-policy interface (paper §4–§5).
//
// A policy is a pure priority index: given a task, its remaining processing
// time, and a snapshot of the competing mix, it returns a score; the
// scheduler runs the highest-scored tasks. Statelessness keeps FCFS, SRPT,
// SWPT, FirstPrice, PV, and FirstReward interchangeable and independently
// testable, and makes one dispatch O(n) scoring + O(n log k) selection.
#pragma once

#include <memory>
#include <string>

#include "core/metrics.hpp"
#include "core/mix.hpp"
#include "core/task.hpp"

namespace mbts {

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// Priority of running `task` next; higher runs earlier. `rpt` is the
  /// task's remaining processing time (> 0).
  virtual double priority(const Task& task, double rpt,
                          const MixView& mix) const = 0;
};

/// Declarative policy selection used by experiment configs and CLIs.
struct PolicySpec {
  enum class Kind {
    kFcfs,
    kSrpt,
    kSwpt,
    kFirstPrice,
    kPresentValue,
    kFirstReward,
    kRandom,
  };

  Kind kind = Kind::kFirstPrice;
  /// FirstReward's risk/reward weight (Eq. 6); ignored by other policies.
  double alpha = 0.5;
  /// Seed for kRandom; ignored by other policies.
  std::uint64_t seed = 1;
  /// Where the value-aware policies evaluate yield for ranking (ablation;
  /// the paper's Eq. 2 formulation is kAtCompletion).
  YieldBasis yield_basis = YieldBasis::kAtCompletion;

  static PolicySpec fcfs() { return {.kind = Kind::kFcfs}; }
  static PolicySpec srpt() { return {.kind = Kind::kSrpt}; }
  static PolicySpec swpt() { return {.kind = Kind::kSwpt}; }
  static PolicySpec first_price() { return {.kind = Kind::kFirstPrice}; }
  static PolicySpec present_value() { return {.kind = Kind::kPresentValue}; }
  static PolicySpec first_reward(double alpha) {
    return {.kind = Kind::kFirstReward, .alpha = alpha};
  }
  static PolicySpec random(std::uint64_t seed) {
    return {.kind = Kind::kRandom, .seed = seed};
  }

  PolicySpec with_basis(YieldBasis basis) const {
    PolicySpec copy = *this;
    copy.yield_basis = basis;
    return copy;
  }

  std::string to_string() const;
};

/// Instantiates the policy named by the spec.
std::unique_ptr<SchedulingPolicy> make_policy(const PolicySpec& spec);

/// Parses "fcfs" | "srpt" | "swpt" | "firstprice" | "pv" |
/// "firstreward:<alpha>" | "random". Throws CheckError on unknown names.
PolicySpec parse_policy_spec(const std::string& text);

}  // namespace mbts
