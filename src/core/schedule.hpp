// Candidate schedules (paper §4, §6).
//
// A candidate schedule linearizes the pending tasks in policy-priority order
// onto the site's processors (running tasks keep their processors until
// their expected completion) and reads off each task's expected start and
// completion per Eq. 2. Admission control and server quotes are both
// computed from this projection.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace mbts {

/// One pending task as input to list scheduling.
struct PendingItem {
  TaskId id = kInvalidTask;
  double rpt = 0.0;
  /// Processors the task gang-schedules onto (1 for the paper's model).
  std::size_t width = 1;
};

/// Projected placement of one pending task.
struct ScheduleEntry {
  TaskId id = kInvalidTask;
  double start = 0.0;
  double completion = 0.0;
};

/// Greedy list scheduling: assigns `ordered` (highest priority first) to
/// the earliest-free processors. A width-w item gangs onto the w
/// earliest-free processors, starting when the last of them frees (a
/// conservative projection: no backfilling around waiting wide tasks).
/// `proc_free` holds each processor's next free time (>= now for busy
/// processors; == now for idle ones). Returns one entry per pending item,
/// in the input order. O((n·w_max + p) log p).
std::vector<ScheduleEntry> list_schedule(std::span<const double> proc_free,
                                         std::span<const PendingItem> ordered);

/// Expected completion of the item at `index` in `ordered` under
/// list_schedule — a convenience that avoids materializing all entries when
/// only one task's quote is needed. Semantics identical to
/// list_schedule(...)[index].completion.
double completion_of(std::span<const double> proc_free,
                     std::span<const PendingItem> ordered, std::size_t index);

/// Allocation-free variant for hot paths: `heap_scratch` is clobbered and
/// reused as the free-time heap. Bit-identical to completion_of above.
double completion_of(std::span<const double> proc_free,
                     std::span<const PendingItem> ordered, std::size_t index,
                     std::vector<double>& heap_scratch);

}  // namespace mbts
