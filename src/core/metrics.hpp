// The paper's scheduling metrics as pure functions (Eqs. 1–6).
//
// Keeping these free of scheduler state makes every equation independently
// unit-testable and lets policies, admission control, and the market layer
// share one implementation.
#pragma once

#include "core/mix.hpp"
#include "core/task.hpp"
#include "core/types.hpp"

namespace mbts {

/// Which instant a ranking heuristic evaluates the value function at.
/// Eq. 2 projects to the task's completion (kAtCompletion, the paper's
/// formulation); kAtNow uses the value remaining at the present instant —
/// a plausible reading of Millennium's "price" that drops the built-in
/// length penalty. Kept as an ablation (see DESIGN.md).
enum class YieldBasis { kAtCompletion, kAtNow };

/// Expected yield if the task starts now and runs `rpt` more units:
/// completion = now + rpt, then Eq. 1 + Eq. 2.
double expected_yield_if_started(const Task& task, SimTime now, double rpt);

/// Yield under the chosen basis: kAtCompletion as above; kAtNow evaluates
/// the value function at the current instant (delay accrued so far only).
double yield_for_ranking(const Task& task, SimTime now, double rpt,
                         YieldBasis basis);

/// Present value of a payoff `yield` that matures after `horizon` time at
/// simple interest `discount_rate` (Eq. 3):
///   PV = yield / (1 + discount_rate * horizon).
/// For negative yields the magnitude is also discounted — a deferred penalty
/// hurts less than an immediate one, consistent with the investment
/// metaphor. horizon must be >= 0.
double present_value(double yield, double discount_rate, double horizon);

/// Opportunity cost of running `task` for `rpt` units starting at mix.now
/// (Eq. 4): the aggregate yield decline of all competing tasks,
///   cost_i = sum_{j != i} d_j * min(RPT_i, time_to_expire_j).
/// When no competitor is bounded this reduces to (Eq. 5)
///   cost_i = (total_live_decay - d_i) * RPT_i
/// and is computed in O(1) from the aggregate.
double opportunity_cost(const Task& task, double rpt, const MixView& mix);

/// FirstPrice's unit gain: expected yield per unit of processing time.
double unit_gain(const Task& task, SimTime now, double rpt,
                 YieldBasis basis = YieldBasis::kAtCompletion);

/// The FirstReward index (Eq. 6):
///   reward_i = (alpha * PV_i - (1 - alpha) * cost_i) / RPT_i,
/// with PV_i the discounted expected yield if started now and cost_i the
/// opportunity cost above. alpha in [0, 1].
double first_reward_index(const Task& task, double rpt, const MixView& mix,
                          double alpha,
                          YieldBasis basis = YieldBasis::kAtCompletion);

}  // namespace mbts
