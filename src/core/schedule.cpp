#include "core/schedule.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace mbts {

std::vector<ScheduleEntry> list_schedule(
    std::span<const double> proc_free, std::span<const PendingItem> ordered) {
  MBTS_CHECK_MSG(!proc_free.empty(), "need at least one processor");
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at(
      proc_free.begin(), proc_free.end());
  std::vector<ScheduleEntry> entries;
  entries.reserve(ordered.size());
  for (const PendingItem& item : ordered) {
    MBTS_DCHECK(item.rpt > 0.0);
    MBTS_CHECK_MSG(item.width >= 1 && item.width <= proc_free.size(),
                   "task width exceeds site capacity");
    // Gang start: claim the `width` earliest-free processors; the task
    // starts when the last of them frees.
    double start = 0.0;
    for (std::size_t w = 0; w < item.width; ++w) {
      start = free_at.top();  // monotone: the last popped is the max
      free_at.pop();
    }
    const double completion = start + item.rpt;
    for (std::size_t w = 0; w < item.width; ++w) free_at.push(completion);
    entries.push_back({item.id, start, completion});
  }
  return entries;
}

double completion_of(std::span<const double> proc_free,
                     std::span<const PendingItem> ordered, std::size_t index) {
  MBTS_CHECK(index < ordered.size());
  const auto entries =
      list_schedule(proc_free, ordered.subspan(0, index + 1));
  return entries.back().completion;
}

}  // namespace mbts
