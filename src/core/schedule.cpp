#include "core/schedule.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "util/check.hpp"

namespace mbts {

std::vector<ScheduleEntry> list_schedule(
    std::span<const double> proc_free, std::span<const PendingItem> ordered) {
  MBTS_CHECK_MSG(!proc_free.empty(), "need at least one processor");
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at(
      proc_free.begin(), proc_free.end());
  std::vector<ScheduleEntry> entries;
  entries.reserve(ordered.size());
  for (const PendingItem& item : ordered) {
    MBTS_DCHECK(item.rpt > 0.0);
    MBTS_CHECK_MSG(item.width >= 1 && item.width <= proc_free.size(),
                   "task width exceeds site capacity");
    // Gang start: claim the `width` earliest-free processors; the task
    // starts when the last of them frees.
    double start = 0.0;
    for (std::size_t w = 0; w < item.width; ++w) {
      start = free_at.top();  // monotone: the last popped is the max
      free_at.pop();
    }
    const double completion = start + item.rpt;
    for (std::size_t w = 0; w < item.width; ++w) free_at.push(completion);
    entries.push_back({item.id, start, completion});
  }
  return entries;
}

double completion_of(std::span<const double> proc_free,
                     std::span<const PendingItem> ordered, std::size_t index) {
  std::vector<double> heap_scratch;
  return completion_of(proc_free, ordered, index, heap_scratch);
}

double completion_of(std::span<const double> proc_free,
                     std::span<const PendingItem> ordered, std::size_t index,
                     std::vector<double>& heap_scratch) {
  MBTS_CHECK(index < ordered.size());
  MBTS_CHECK_MSG(!proc_free.empty(), "need at least one processor");
  // Same greedy assignment as list_schedule, but tracking only the free-time
  // heap: std::priority_queue is push_heap/pop_heap over a vector, so
  // operating on the scratch vector directly pops the same values in the
  // same order and the projected completion is bit-identical.
  heap_scratch.assign(proc_free.begin(), proc_free.end());
  auto& heap = heap_scratch;
  const auto later = std::greater<>{};
  std::make_heap(heap.begin(), heap.end(), later);
  double completion = 0.0;
  for (std::size_t i = 0; i <= index; ++i) {
    const PendingItem& item = ordered[i];
    MBTS_DCHECK(item.rpt > 0.0);
    MBTS_CHECK_MSG(item.width >= 1 && item.width <= proc_free.size(),
                   "task width exceeds site capacity");
    double start = 0.0;
    for (std::size_t w = 0; w < item.width; ++w) {
      start = heap.front();  // monotone: the last popped is the max
      std::pop_heap(heap.begin(), heap.end(), later);
      heap.pop_back();
    }
    completion = start + item.rpt;
    for (std::size_t w = 0; w < item.width; ++w) {
      heap.push_back(completion);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  return completion;
}

}  // namespace mbts
