// Explicit AVX2 lanes for the score kernels. Compiled with -mavx2 in its
// own translation unit (see src/core/CMakeLists.txt); callers reach it only
// through the runtime dispatcher in score_kernels.cpp.
//
// Bit-identity with the portable/scalar path rests on per-lane semantics:
//  - clamp `d > 0 ? d : 0`  ==  and_pd(d, cmp_gt_oq(d, 0)): the compare
//    mask is all-ones exactly when d > 0 (false for NaN, -0, negatives),
//    so non-positive and NaN lanes collapse to +0.0 — the same +0.0 the
//    scalar ternary produces.
//  - floor `raw < nb ? nb : raw`  ==  max_pd(nb, raw): vmaxpd returns the
//    second operand when either compares unordered or when both are ±0,
//    matching the ternary for NaN in either operand and for -0/+0.
//  - expire select `d >= e ? 0 : rate`  ==  andnot_pd(cmp_ge_oq(d, e),
//    rate): unordered compares are false, so NaN falls through to rate,
//    exactly like the scalar `>=`.
//  - cost clamp `others < 0 ? 0 : others`  ==  max_pd(0, others): same
//    vmaxpd argument-order reasoning (NaN and ±0 lanes return others).
// Everything else is verbatim add/sub/mul/div in the scalar operation
// order, and -ffp-contract=off (plus no -mfma) keeps mul+sub from fusing.
#include "core/score_kernels.hpp"

#if defined(MBTS_HAVE_AVX2)

#include <immintrin.h>

namespace mbts::kernels::avx2 {

namespace {

inline __m256d clamped_delay4(__m256d completion, __m256d anchor) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d d = _mm256_sub_pd(completion, anchor);
  return _mm256_and_pd(d, _mm256_cmp_pd(d, zero, _CMP_GT_OQ));
}

inline __m256d linear_yield4(__m256d d, __m256d max_value, __m256d rate,
                             __m256d neg_bound) {
  const __m256d raw = _mm256_sub_pd(max_value, _mm256_mul_pd(d, rate));
  return _mm256_max_pd(neg_bound, raw);
}

inline __m256d linear_decay4(__m256d d, __m256d rate, __m256d expire) {
  return _mm256_andnot_pd(_mm256_cmp_pd(d, expire, _CMP_GE_OQ), rate);
}

template <bool AtCompletion, bool Fast>
void unit_gain_loop(const ScoreColumnsView& cols, double now, double* out) {
  const __m256d vnow = _mm256_set1_pd(now);
  std::size_t i = 0;
  for (; i + 4 <= cols.n; i += 4) {
    const __m256d rpt = _mm256_loadu_pd(cols.rpt + i);
    const __m256d completion =
        AtCompletion ? _mm256_add_pd(vnow, rpt) : vnow;
    const __m256d d =
        clamped_delay4(completion, _mm256_loadu_pd(cols.anchor + i));
    const __m256d y = linear_yield4(d, _mm256_loadu_pd(cols.max_value + i),
                                    _mm256_loadu_pd(cols.rate + i),
                                    _mm256_loadu_pd(cols.neg_bound + i));
    const __m256d r = Fast
                          ? _mm256_mul_pd(y, _mm256_loadu_pd(cols.inv_rptw + i))
                          : _mm256_div_pd(y, _mm256_loadu_pd(cols.rptw + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y = detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                                          cols.neg_bound[i]);
    out[i] = Fast ? y * cols.inv_rptw[i] : y / cols.rptw[i];
  }
}

template <bool AtCompletion, bool Fast>
void present_value_loop(const ScoreColumnsView& cols, double now,
                        double discount_rate, double* out) {
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vdr = _mm256_set1_pd(discount_rate);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= cols.n; i += 4) {
    const __m256d rpt = _mm256_loadu_pd(cols.rpt + i);
    const __m256d completion =
        AtCompletion ? _mm256_add_pd(vnow, rpt) : vnow;
    const __m256d d =
        clamped_delay4(completion, _mm256_loadu_pd(cols.anchor + i));
    const __m256d y = linear_yield4(d, _mm256_loadu_pd(cols.max_value + i),
                                    _mm256_loadu_pd(cols.rate + i),
                                    _mm256_loadu_pd(cols.neg_bound + i));
    const __m256d pv =
        _mm256_div_pd(y, _mm256_add_pd(one, _mm256_mul_pd(vdr, rpt)));
    const __m256d r =
        Fast ? _mm256_mul_pd(pv, _mm256_loadu_pd(cols.inv_rptw + i))
             : _mm256_div_pd(pv, _mm256_loadu_pd(cols.rptw + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y = detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                                          cols.neg_bound[i]);
    const double pv = y / (1.0 + discount_rate * cols.rpt[i]);
    out[i] = Fast ? pv * cols.inv_rptw[i] : pv / cols.rptw[i];
  }
}

template <bool Fast>
void swpt_loop(const ScoreColumnsView& cols, double now, double* out) {
  const __m256d vnow = _mm256_set1_pd(now);
  std::size_t i = 0;
  for (; i + 4 <= cols.n; i += 4) {
    const __m256d d = clamped_delay4(vnow, _mm256_loadu_pd(cols.anchor + i));
    const __m256d w = linear_decay4(d, _mm256_loadu_pd(cols.rate + i),
                                    _mm256_loadu_pd(cols.expire + i));
    const __m256d r = Fast
                          ? _mm256_mul_pd(w, _mm256_loadu_pd(cols.inv_rpt + i))
                          : _mm256_div_pd(w, _mm256_loadu_pd(cols.rpt + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < cols.n; ++i) {
    const double d = detail::clamped_delay(now, cols.anchor[i]);
    const double w = detail::linear_decay(d, cols.rate[i], cols.expire[i]);
    out[i] = Fast ? w * cols.inv_rpt[i] : w / cols.rpt[i];
  }
}

template <bool AtCompletion>
void first_reward_cache_loop(const ScoreColumnsView& cols, double now,
                             double discount_rate, double alpha, double* a,
                             double* b, double* c) {
  const __m256d vnow = _mm256_set1_pd(now);
  const __m256d vdr = _mm256_set1_pd(discount_rate);
  const __m256d valpha = _mm256_set1_pd(alpha);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= cols.n; i += 4) {
    const __m256d rpt = _mm256_loadu_pd(cols.rpt + i);
    const __m256d anchor = _mm256_loadu_pd(cols.anchor + i);
    const __m256d rate = _mm256_loadu_pd(cols.rate + i);
    const __m256d completion =
        AtCompletion ? _mm256_add_pd(vnow, rpt) : vnow;
    const __m256d d = clamped_delay4(completion, anchor);
    const __m256d y = linear_yield4(d, _mm256_loadu_pd(cols.max_value + i),
                                    rate, _mm256_loadu_pd(cols.neg_bound + i));
    const __m256d pv =
        _mm256_div_pd(y, _mm256_add_pd(one, _mm256_mul_pd(vdr, rpt)));
    _mm256_storeu_pd(a + i, _mm256_mul_pd(valpha, pv));
    const __m256d d0 = clamped_delay4(vnow, anchor);
    _mm256_storeu_pd(
        b + i, linear_decay4(d0, rate, _mm256_loadu_pd(cols.expire + i)));
    _mm256_storeu_pd(c + i, _mm256_loadu_pd(cols.rptw + i));
  }
  for (; i < cols.n; ++i) {
    const double completion = AtCompletion ? now + cols.rpt[i] : now;
    const double d = detail::clamped_delay(completion, cols.anchor[i]);
    const double y = detail::linear_yield(d, cols.max_value[i], cols.rate[i],
                                          cols.neg_bound[i]);
    const double pv = y / (1.0 + discount_rate * cols.rpt[i]);
    a[i] = alpha * pv;
    const double d0 = detail::clamped_delay(now, cols.anchor[i]);
    b[i] = detail::linear_decay(d0, cols.rate[i], cols.expire[i]);
    c[i] = cols.rptw[i];
  }
}

template <bool Fast>
void first_reward_combine_loop(const ScoreColumnsView& cols, const double* a,
                               const double* b, const double* c, double total,
                               double weight, double* out) {
  const __m256d vtotal = _mm256_set1_pd(total);
  const __m256d vweight = _mm256_set1_pd(weight);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= cols.n; i += 4) {
    const __m256d others = _mm256_sub_pd(vtotal, _mm256_loadu_pd(b + i));
    const __m256d cost = _mm256_mul_pd(_mm256_max_pd(zero, others),
                                       _mm256_loadu_pd(cols.rpt + i));
    const __m256d num =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_mul_pd(vweight, cost));
    const __m256d r =
        Fast ? _mm256_mul_pd(num, _mm256_loadu_pd(cols.inv_rptw + i))
             : _mm256_div_pd(num, _mm256_loadu_pd(c + i));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < cols.n; ++i) {
    const double others = total - b[i];
    const double cost = (others < 0.0 ? 0.0 : others) * cols.rpt[i];
    const double num = a[i] - weight * cost;
    out[i] = Fast ? num * cols.inv_rptw[i] : num / c[i];
  }
}

}  // namespace

void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out) {
  const bool fast = variant == KernelVariant::kFast;
  if (at_completion) {
    fast ? unit_gain_loop<true, true>(cols, now, out)
         : unit_gain_loop<true, false>(cols, now, out);
  } else {
    fast ? unit_gain_loop<false, true>(cols, now, out)
         : unit_gain_loop<false, false>(cols, now, out);
  }
}

void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out) {
  const bool fast = variant == KernelVariant::kFast;
  if (at_completion) {
    fast ? present_value_loop<true, true>(cols, now, discount_rate, out)
         : present_value_loop<true, false>(cols, now, discount_rate, out);
  } else {
    fast ? present_value_loop<false, true>(cols, now, discount_rate, out)
         : present_value_loop<false, false>(cols, now, discount_rate, out);
  }
}

void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out) {
  variant == KernelVariant::kFast ? swpt_loop<true>(cols, now, out)
                                  : swpt_loop<false>(cols, now, out);
}

void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c) {
  at_completion
      ? first_reward_cache_loop<true>(cols, now, discount_rate, alpha, a, b, c)
      : first_reward_cache_loop<false>(cols, now, discount_rate, alpha, a, b,
                                       c);
}

void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out) {
  const double weight = 1.0 - alpha;
  variant == KernelVariant::kFast
      ? first_reward_combine_loop<true>(cols, a, b, c, total_live_decay,
                                        weight, out)
      : first_reward_combine_loop<false>(cols, a, b, c, total_live_decay,
                                         weight, out);
}

}  // namespace mbts::kernels::avx2

#endif  // MBTS_HAVE_AVX2
