#include "core/task.hpp"

#include <cmath>
#include <sstream>

namespace mbts {

std::string Task::to_string() const {
  std::ostringstream os;
  os << "task#" << id << " arrival=" << arrival << " runtime=" << runtime
     << ' ' << value.to_string();
  return os.str();
}

std::string validate_task(const Task& task) {
  if (task.id == kInvalidTask) return "task id is unset";
  if (!(task.runtime > 0.0) || !std::isfinite(task.runtime))
    return "runtime must be positive and finite";
  if (!(task.arrival >= 0.0) || !std::isfinite(task.arrival))
    return "arrival must be non-negative and finite";
  if (task.declared_runtime < 0.0 || !std::isfinite(task.declared_runtime))
    return "declared runtime must be non-negative and finite";
  if (task.width == 0) return "width must be at least one processor";
  if (!std::isfinite(task.value.max_value()) || task.value.max_value() < 0.0)
    return "max value must be non-negative and finite";
  if (!std::isfinite(task.value.decay()))
    return "decay must be finite";
  return {};
}

}  // namespace mbts
