// A point-in-time view of the task mix that scheduling heuristics score
// against (paper §5).
//
// The opportunity-cost terms (Eq. 4/5) need two things about the competing
// tasks: the aggregate decay of the live (unexpired) mix, and — for the
// bounded path — each competitor's decay and remaining time until its value
// function expires.
//
// MixTracker maintains this incrementally. Each task in the mix owns a slot
// whose cached CompetitorInfo changes only when simulated time crosses one
// of the task's decay-profile breakpoints (a piecewise segment boundary or
// its expiry); breakpoints are processed lazily from a min-heap as the clock
// advances. The aggregate decay is re-summed over the slot array only when a
// slot changed (membership or a crossed breakpoint), always in slot order,
// so the incremental tracker is bit-identical to recomputing every entry
// from scratch — an invariant the debug build cross-checks on every refresh
// and tests assert via SchedulerConfig::mix_full_rebuild.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "core/task.hpp"
#include "core/types.hpp"

namespace mbts {

/// One competing task as seen by the cost computation.
struct CompetitorInfo {
  TaskId id = kInvalidTask;
  double decay = 0.0;
  /// Remaining time until this competitor's value function stops decaying
  /// (kInf for unbounded penalties or zero decay; 0 when already expired).
  double time_to_expire = kInf;
};

/// Immutable snapshot handed to policies when scoring a task.
struct MixView {
  SimTime now = 0.0;
  /// Tunable risk-aversion knob for Present Value (Eq. 3), in value per
  /// unit time (the paper quotes it in %; 1% == 0.01).
  double discount_rate = 0.0;
  /// Sum of decay rates over all *live* tasks in the mix, including the task
  /// being scored (the caller subtracts its own decay as needed).
  double total_live_decay = 0.0;
  /// All competitors (including the scored task itself; filtered by id).
  /// May be empty when every competitor is unbounded — then the aggregate
  /// suffices and cost falls back to the O(1) Eq. 5 path. May contain
  /// retired slots (id == kInvalidTask, decay 0, time_to_expire 0), which
  /// contribute nothing to any cost term.
  std::span<const CompetitorInfo> competitors;
  /// True when at least one task in the mix has a bounded penalty; selects
  /// the Eq. 4 (per-competitor) cost path.
  bool any_bounded = false;
};

/// Builds MixView snapshots from the scheduler's task mix and keeps the
/// per-competitor decay entries and the aggregate current as tasks arrive,
/// expire, and complete — without rescanning the mix per quote/dispatch.
class MixTracker {
 public:
  /// Slot handle returned by add(); stable until remove().
  using Slot = std::uint32_t;

  void set_discount_rate(double rate) { discount_rate_ = rate; }
  double discount_rate() const { return discount_rate_; }

  /// Rebuilds the snapshot from scratch. `infos` describes every task in
  /// the mix (pending and running) at time `now`. Expired competitors
  /// (time_to_expire == 0) contribute nothing to aggregate decay. Bulk API
  /// used by tests and standalone mix consumers; discards incremental state.
  void rebuild(SimTime now, std::vector<CompetitorInfo> infos,
               bool any_bounded);

  // --- Incremental interface (the scheduler hot path) ---

  /// Registers `task` in the mix at time `now`. The Task must outlive its
  /// slot. Any transient candidate is dropped first.
  Slot add(const Task& task, SimTime now);

  /// Removes the task owning `slot` from the mix; the slot is recycled.
  void remove(Slot slot);

  /// Advances the tracker to `now` (processing any decay-profile
  /// breakpoints crossed) and returns the refreshed view.
  const MixView& refresh(SimTime now);

  /// Like refresh, but the view additionally includes `candidate` as the
  /// last competitor — the quote path's "mix including the bid". The
  /// candidate is transient: it is dropped by the next tracker call.
  const MixView& refresh_with_candidate(SimTime now, const Task& candidate);

  /// Recomputes every cached entry from its task (the forced-full-rebuild
  /// debug mode); the next refresh() then re-sums the aggregate.
  void recompute_all(SimTime now);

  /// True when every cached entry matches a from-scratch recomputation at
  /// `now` and the aggregate equals the slot-order re-sum (debug).
  bool consistent_with_rebuild(SimTime now) const;

  /// Cached live decay of the task owning `slot` (0 once expired) — exactly
  /// decay_at_delay(delay_at_completion(now)) of the last refresh. Shared
  /// with the admission-cost path so Eq. 8 reuses the mix's cache.
  double decay_of(Slot slot) const { return competitors_[slot].decay; }

  std::size_t live_count() const { return live_; }

  const MixView& view() const { return view_; }

 private:
  struct Entry {
    const Task* task = nullptr;  // nullptr == free slot
    double expire_at = kInf;     // absolute expiry of the value function
    std::uint32_t generation = 0;
  };
  struct Breakpoint {
    double at;
    Slot slot;
    std::uint32_t generation;
    bool operator>(const Breakpoint& other) const { return at > other.at; }
  };

  /// Computes the slot's CompetitorInfo fields from its task at `now` and
  /// queues the next breakpoint. The single source of truth for decay.
  void recompute_slot(Slot slot, SimTime now, bool queue_breakpoint);
  void drop_candidate();
  void refresh_expiry_windows(SimTime now);

  double discount_rate_ = 0.0;
  // Slot-indexed view storage; a transient candidate is appended past the
  // slot range and stripped by the next tracker call.
  std::vector<CompetitorInfo> competitors_;
  std::vector<Entry> entries_;
  std::vector<Slot> free_slots_;
  std::priority_queue<Breakpoint, std::vector<Breakpoint>,
                      std::greater<Breakpoint>>
      breakpoints_;
  std::size_t live_ = 0;
  std::size_t finite_expire_ = 0;  // live entries with a finite expire_at
  double total_ = 0.0;
  bool dirty_ = true;   // a slot changed since total_ was summed
  bool candidate_ = false;
  MixView view_;
};

}  // namespace mbts
