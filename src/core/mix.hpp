// A point-in-time view of the task mix that scheduling heuristics score
// against (paper §5).
//
// The opportunity-cost terms (Eq. 4/5) need two things about the competing
// tasks: the aggregate decay of the live (unexpired) mix, maintained
// incrementally so the unbounded path is O(1) per scored task, and — for the
// bounded path — each competitor's decay and remaining time until its value
// function expires.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace mbts {

/// One competing task as seen by the cost computation.
struct CompetitorInfo {
  TaskId id = kInvalidTask;
  double decay = 0.0;
  /// Remaining time until this competitor's value function stops decaying
  /// (kInf for unbounded penalties or zero decay; 0 when already expired).
  double time_to_expire = kInf;
};

/// Immutable snapshot handed to policies when scoring a task.
struct MixView {
  SimTime now = 0.0;
  /// Tunable risk-aversion knob for Present Value (Eq. 3), in value per
  /// unit time (the paper quotes it in %; 1% == 0.01).
  double discount_rate = 0.0;
  /// Sum of decay rates over all *live* tasks in the mix, including the task
  /// being scored (the caller subtracts its own decay as needed).
  double total_live_decay = 0.0;
  /// All competitors (including the scored task itself; filtered by id).
  /// May be empty when every competitor is unbounded — then the aggregate
  /// suffices and cost falls back to the O(1) Eq. 5 path.
  std::span<const CompetitorInfo> competitors;
  /// True when at least one task in the mix has a bounded penalty; selects
  /// the Eq. 4 (per-competitor) cost path.
  bool any_bounded = false;
};

/// Builds MixView snapshots from the scheduler's task mix and keeps the
/// aggregate decay current as tasks arrive, expire, and complete.
class MixTracker {
 public:
  void set_discount_rate(double rate) { discount_rate_ = rate; }
  double discount_rate() const { return discount_rate_; }

  /// Rebuilds the snapshot from scratch. `infos` describes every task in
  /// the mix (pending and running) at time `now`. Expired competitors
  /// (time_to_expire == 0) contribute nothing to aggregate decay.
  void rebuild(SimTime now, std::vector<CompetitorInfo> infos,
               bool any_bounded);

  const MixView& view() const { return view_; }

 private:
  double discount_rate_ = 0.0;
  std::vector<CompetitorInfo> storage_;
  MixView view_;
};

}  // namespace mbts
