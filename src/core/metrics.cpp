#include "core/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mbts {

double expected_yield_if_started(const Task& task, SimTime now, double rpt) {
  MBTS_DCHECK(rpt >= 0.0);
  return task.yield_at_completion(now + rpt);
}

double yield_for_ranking(const Task& task, SimTime now, double rpt,
                         YieldBasis basis) {
  if (basis == YieldBasis::kAtCompletion)
    return expected_yield_if_started(task, now, rpt);
  // kAtNow: delay accrued so far; completing instantly from here.
  return task.yield_at_completion(now);
}

double present_value(double yield, double discount_rate, double horizon) {
  MBTS_DCHECK(horizon >= 0.0);
  MBTS_DCHECK(discount_rate >= 0.0);
  return yield / (1.0 + discount_rate * horizon);
}

double opportunity_cost(const Task& task, double rpt, const MixView& mix) {
  MBTS_DCHECK(rpt >= 0.0);
  if (!mix.any_bounded) {
    // Eq. 5 fast path: with no expirable value functions in the mix, every
    // competitor keeps decaying for the full RPT_i and the aggregate minus
    // the task's own current rate is exact.
    const double own =
        task.value.decay_at_delay(task.delay_at_completion(mix.now));
    const double others = mix.total_live_decay - own;
    return std::max(others, 0.0) * rpt;
  }
  // Eq. 4: per-competitor, capped by each competitor's remaining decay time.
  double cost = 0.0;
  for (const auto& c : mix.competitors) {
    if (c.id == task.id) continue;
    const double window = std::min(rpt, c.time_to_expire);
    if (window > 0.0) cost += c.decay * window;
  }
  return cost;
}

double unit_gain(const Task& task, SimTime now, double rpt,
                 YieldBasis basis) {
  MBTS_CHECK_MSG(rpt > 0.0, "unit gain needs positive remaining time");
  // "Yield per unit of resource per unit of processing time" (§4): a
  // width-w gang consumes w processor-seconds per second.
  return yield_for_ranking(task, now, rpt, basis) /
         (rpt * static_cast<double>(task.width));
}

double first_reward_index(const Task& task, double rpt, const MixView& mix,
                          double alpha, YieldBasis basis) {
  MBTS_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
  MBTS_CHECK_MSG(rpt > 0.0, "reward index needs positive remaining time");
  const double yield = yield_for_ranking(task, mix.now, rpt, basis);
  const double pv = present_value(yield, mix.discount_rate, rpt);
  const double cost = opportunity_cost(task, rpt, mix);
  return (alpha * pv - (1.0 - alpha) * cost) /
         (rpt * static_cast<double>(task.width));
}

}  // namespace mbts
