#include "core/admission.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/metrics.hpp"
#include "util/check.hpp"

namespace mbts {

AdmissionDecision project_candidate(const Task& candidate,
                                    const AdmissionContext& ctx) {
  MBTS_CHECK(ctx.mix != nullptr && ctx.policy != nullptr);
  MBTS_CHECK(ctx.pending_sorted.size() == ctx.pending_rpt.size());

  // The site believes the bid: score and project with the declared runtime.
  const double cand_priority =
      ctx.policy->priority(candidate, candidate.estimate(), *ctx.mix);

  // Pending tasks arrive already sorted by priority (descending). The
  // candidate slots in front of the first strictly-lower-priority task;
  // ties resolve behind existing tasks (they arrived earlier). The caller
  // may hand us the scores it sorted by; otherwise recompute them.
  std::size_t position = ctx.pending_sorted.size();
  if (!ctx.pending_scores.empty()) {
    MBTS_DCHECK(ctx.pending_scores.size() == ctx.pending_sorted.size());
    for (std::size_t i = 0; i < ctx.pending_scores.size(); ++i) {
      if (cand_priority > ctx.pending_scores[i]) {
        position = i;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < ctx.pending_sorted.size(); ++i) {
      const double p = ctx.policy->priority(*ctx.pending_sorted[i],
                                            ctx.pending_rpt[i], *ctx.mix);
      if (cand_priority > p) {
        position = i;
        break;
      }
    }
  }

  // completion_of only schedules items [0, position], so the tasks ranked
  // behind the candidate never enter the projection at all.
  std::vector<PendingItem> local;
  std::vector<PendingItem>& ordered =
      ctx.projection_scratch != nullptr ? *ctx.projection_scratch : local;
  ordered.clear();
  ordered.reserve(position + 1);
  for (std::size_t i = 0; i < position; ++i)
    ordered.push_back({ctx.pending_sorted[i]->id, ctx.pending_rpt[i],
                       ctx.pending_sorted[i]->width});
  ordered.push_back({candidate.id, candidate.estimate(), candidate.width});

  AdmissionDecision decision;
  decision.queue_position = position;
  std::vector<double> local_heap;
  decision.expected_completion = completion_of(
      ctx.proc_free, ordered, position,
      ctx.heap_scratch != nullptr ? *ctx.heap_scratch : local_heap);
  decision.expected_yield =
      candidate.yield_at_completion(decision.expected_completion);
  return decision;
}

double admission_cost(const Task& candidate, const AdmissionContext& ctx,
                      std::size_t position, bool literal_eq8) {
  // Eq. 8: impact on the tasks behind the candidate in the pending order.
  // The caller may pass each task's live decay rate along (the scheduler's
  // mix cache holds exactly decay_at_delay at now); recompute otherwise.
  const bool have_decay = !ctx.pending_decay.empty();
  MBTS_DCHECK(!have_decay ||
              ctx.pending_decay.size() == ctx.pending_sorted.size());
  double cost = 0.0;
  for (std::size_t i = position; i < ctx.pending_sorted.size(); ++i) {
    const Task& behind = *ctx.pending_sorted[i];
    const double window =
        literal_eq8 ? behind.estimate() : candidate.estimate();
    const double rate =
        have_decay
            ? ctx.pending_decay[i]
            : behind.value.decay_at_delay(behind.delay_at_completion(ctx.now));
    MBTS_DCHECK(rate ==
                behind.value.decay_at_delay(behind.delay_at_completion(ctx.now)));
    cost += rate * window;
  }
  return cost;
}

double admission_slack(const Task& candidate, const AdmissionContext& ctx,
                       const AdmissionDecision& projection, double cost) {
  // Eq. 7 with the gain expressed as present value: the payoff matures when
  // the task is expected to complete, not merely after its run time.
  const double horizon =
      std::max(0.0, projection.expected_completion - ctx.now);
  const double pv = present_value(projection.expected_yield,
                                  ctx.mix->discount_rate, horizon);
  const double net = pv - cost;
  const double decay = candidate.value.decay();
  if (decay == 0.0) return net >= 0.0 ? kInf : -kInf;
  return net / decay;
}

AdmissionDecision AcceptAllAdmission::evaluate(
    const Task& candidate, const AdmissionContext& ctx) const {
  AdmissionDecision decision = project_candidate(candidate, ctx);
  decision.slack = kInf;
  decision.accept = true;
  return decision;
}

SlackAdmission::SlackAdmission(SlackAdmissionConfig config)
    : config_(config) {}

std::string SlackAdmission::name() const {
  std::ostringstream os;
  os << "Slack(threshold=" << config_.threshold << ')';
  return os.str();
}

AdmissionDecision SlackAdmission::evaluate(const Task& candidate,
                                           const AdmissionContext& ctx) const {
  AdmissionDecision decision = project_candidate(candidate, ctx);
  const double cost = admission_cost(candidate, ctx, decision.queue_position,
                                     config_.literal_eq8);
  decision.slack = admission_slack(candidate, ctx, decision, cost);
  decision.accept = decision.slack >= config_.threshold;
  return decision;
}

}  // namespace mbts
