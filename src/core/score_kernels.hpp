// Flat-array scoring kernels over `ScoreColumns` (Eqs. 3–6 across the
// whole pending set per dispatch).
//
// Contract: in KernelVariant::kExact every element runs the *same
// operation order* as the scalar policy code (`unit_gain`,
// `present_value`, `decay_at_delay`, `FirstRewardPolicy::make_cache` /
// `priority_from_cache` for single-segment value functions), so outputs
// are bit-identical to the scalar path — pinned by test_score_kernels and
// the differential oracle. The build compiles with -ffp-contract=off so no
// FMA contraction can reassociate a*b+c between the two paths.
//
// Each entry point dispatches at runtime to an explicit AVX2
// implementation when the binary carries one (CMake feature check) and the
// CPU supports it, with `portable::` — plain auto-vectorizable loops over
// the inline element functions below — as the fallback. The AVX2 loops use
// only per-lane operations whose NaN/±0 semantics match the scalar
// expressions (see score_kernels_avx2.cpp), so both implementations agree
// bitwise; test_score_kernels asserts portable == dispatched on every run.
//
// Piecewise (multi-segment) value functions are *not* handled here: the
// kernels price every slot as if single-segment, and the scheduler
// overwrites non-linear slots with scalar `make_cache` results afterwards
// (ScoreColumnsView::linear marks them). Those lanes are garbage-in
// garbage-out but still deterministic and finite-formula, so the two
// implementations agree on them too.
#pragma once

#include <cstddef>

#include "core/score_columns.hpp"

namespace mbts::kernels {

/// True when the binary contains the AVX2 translation unit.
bool avx2_compiled();
/// True when avx2_compiled() and the running CPU reports AVX2.
bool avx2_active();

namespace detail {

/// max(completion - anchor, 0): `Task::delay_at_completion`, element form.
inline double clamped_delay(double completion, double anchor) {
  const double d = completion - anchor;
  return d > 0.0 ? d : 0.0;
}

/// Single-segment `ValueFunction::yield_at_delay`: the linear decay line
/// floored at -penalty_bound. `raw < neg_bound ? neg_bound : raw` is
/// std::max(raw, neg_bound) spelled out.
inline double linear_yield(double d, double max_value, double rate,
                           double neg_bound) {
  const double raw = max_value - d * rate;
  return raw < neg_bound ? neg_bound : raw;
}

/// Single-segment `ValueFunction::decay_at_delay` at pre-clamped d >= 0.
inline double linear_decay(double d, double rate, double expire) {
  return d >= expire ? 0.0 : rate;
}

}  // namespace detail

// Every kernel writes exactly view.n elements. `at_completion` selects the
// YieldBasis: true anchors yield at now + rpt (kAtCompletion), false at
// now (kAtNow).

/// FirstPrice: yield / (rpt * width) per slot.
void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out);

/// PresentValue: yield / (1 + discount_rate * rpt) / (rpt * width).
void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out);

/// SWPT: current decay weight / rpt.
void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out);

/// FirstReward cache terms (`ScoreCache` columns): a = alpha * PV(yield),
/// b = own live decay at now, c = rpt * width. Always exact — under kFast
/// only the combine step below switches to reciprocal multiplies.
void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c);

/// FirstReward Eq. 6 combine against an all-unbounded mix (Eq. 5 cost):
/// (a - (1-alpha) * max(total_live_decay - b, 0) * rpt) / c.
void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out);

/// Portable reference loops (what the dispatcher falls back to). Exposed
/// so tests can pin dispatched == portable bit-equality on AVX2 hosts.
namespace portable {
void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out);
void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out);
void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out);
void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c);
void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out);
}  // namespace portable

#if defined(MBTS_HAVE_AVX2)
namespace avx2 {
void unit_gain_scores(const ScoreColumnsView& cols, double now,
                      bool at_completion, KernelVariant variant, double* out);
void present_value_scores(const ScoreColumnsView& cols, double now,
                          double discount_rate, bool at_completion,
                          KernelVariant variant, double* out);
void swpt_scores(const ScoreColumnsView& cols, double now,
                 KernelVariant variant, double* out);
void first_reward_cache(const ScoreColumnsView& cols, double now,
                        double discount_rate, double alpha, bool at_completion,
                        double* a, double* b, double* c);
void first_reward_combine(const ScoreColumnsView& cols, const double* a,
                          const double* b, const double* c,
                          double total_live_decay, double alpha,
                          KernelVariant variant, double* out);
}  // namespace avx2
#endif

}  // namespace mbts::kernels
