// The batch task model (paper §2–§4).
//
// A task is a single-processor batch job: it consumes a processor for
// `runtime` units and delivers no value until it completes. Its bid is the
// tuple (runtime, value, decay, bound) — exactly the contract the market
// layer negotiates over (§6).
#pragma once

#include <string>

#include "core/types.hpp"
#include "core/value_function.hpp"

namespace mbts {

struct Task {
  TaskId id = kInvalidTask;
  /// Release time (arrival_i).
  SimTime arrival = 0.0;
  /// Minimum run time (runtime_i): the task's true service demand.
  SimTime runtime = 0.0;
  /// Processors requested (gang-scheduled: the task runs on exactly
  /// `width` processors simultaneously or not at all). The paper assumes
  /// width 1 "for simplicity"; wider requests exercise the backfilling
  /// dispatch it references.
  std::size_t width = 1;
  /// The run time the client *declared* in its bid. The paper assumes
  /// estimates are accurate (§4) and defers exceedance handling to future
  /// work; we implement that extension: schedulers and quotes see the
  /// estimate, execution consumes the true runtime. 0 (the default) means
  /// "accurate" — accessors then fall back to `runtime`.
  SimTime declared_runtime = 0.0;
  ValueFunction value = ValueFunction::bounded_at_zero(0.0, 0.0);

  /// The runtime visible to scheduling heuristics and admission control.
  SimTime estimate() const {
    return declared_runtime > 0.0 ? declared_runtime : runtime;
  }
  bool estimate_is_exact() const {
    return declared_runtime == 0.0 || declared_runtime == runtime;
  }

  /// Delay as the *contract* measures it (Eq. 2 rearranged): the value
  /// function is anchored at arrival + the declared runtime, so a client
  /// that under-declared pays decay even when served immediately. Negative
  /// values clamp to 0 (a task cannot be "early" — it earns at most its
  /// maximum value). With accurate estimates this is exactly
  /// completion - (arrival + runtime).
  double delay_at_completion(SimTime completion) const {
    const double d = completion - (arrival + estimate());
    return d > 0.0 ? d : 0.0;
  }

  /// Realized yield when completing at `completion` (Eq. 1 + Eq. 2).
  double yield_at_completion(SimTime completion) const {
    return value.yield_at_delay(delay_at_completion(completion));
  }

  /// Yield charged when the site cannot deliver at all (a crashed site's
  /// breached contract): the paper's penalty bound when the value function
  /// has one, else the decayed yield at the breach instant capped at zero —
  /// non-delivery never earns a positive price.
  double breach_yield(SimTime at) const {
    if (value.bounded()) return -value.penalty_bound();
    const double decayed = yield_at_completion(at);
    return decayed < 0.0 ? decayed : 0.0;
  }

  /// Completion promised by an immediate dispatch, per the bid.
  SimTime earliest_completion() const { return arrival + estimate(); }

  /// Absolute time at which the value function stops decaying (kInf when
  /// it never does).
  SimTime expire_time() const {
    const double d = value.delay_to_expire();
    return d == kInf ? kInf : arrival + estimate() + d;
  }

  /// Absolute time at which the yield crosses zero.
  SimTime zero_value_time() const {
    const double d = value.delay_to_zero();
    return d == kInf ? kInf : arrival + estimate() + d;
  }

  std::string to_string() const;
};

/// Validates the fields a site would sanity-check before considering a bid.
/// Returns an empty string when valid, else a diagnostic.
std::string validate_task(const Task& task);

}  // namespace mbts
