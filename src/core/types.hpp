// Fundamental identifiers and time types shared across mbts libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace mbts {

/// Simulated time; an abstract unit (the paper never names one). The bundled
/// workloads use a mean task runtime of ~100 units for human-scale numbers.
using SimTime = double;

using TaskId = std::uint64_t;
using SiteId = std::uint32_t;
using ClientId = std::uint32_t;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

}  // namespace mbts
