#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace mbts {

namespace {
// Running tasks whose remaining time has reached zero are about to see their
// completion event; they must never be preempted or rescored.
constexpr double kDoneEpsilon = 1e-9;
}  // namespace

SiteScheduler::SiteScheduler(SimEngine& engine, SchedulerConfig config,
                             std::unique_ptr<SchedulingPolicy> policy,
                             std::unique_ptr<AdmissionPolicy> admission)
    : engine_(engine),
      config_(config),
      policy_(std::move(policy)),
      admission_(std::move(admission)),
      pool_(config.processors) {
  MBTS_CHECK(policy_ != nullptr);
  MBTS_CHECK(admission_ != nullptr);
  MBTS_CHECK_MSG(config_.discount_rate >= 0.0,
                 "discount rate must be non-negative");
  mix_.set_discount_rate(config_.discount_rate);
}

double SiteScheduler::executed_now(const TaskState& ts) const {
  if (!ts.running) return ts.executed;
  return ts.executed + (engine_.now() - ts.segment_start);
}

double SiteScheduler::remaining(const TaskState& ts) const {
  return ts.task.runtime - executed_now(ts);
}

double SiteScheduler::scoring_remaining(const TaskState& ts) const {
  const double declared = ts.task.estimate();
  const double left = declared - executed_now(ts);
  // An exceeded estimate pins the belief at a small remainder rather than
  // zero: the site thinks the task is perpetually "almost done".
  const double floor = config_.exceeded_estimate_fraction * declared;
  return std::max(left, std::max(floor, 1e-9));
}

double SiteScheduler::score_of(const TaskState& ts, const MixView& mix) const {
  if (config_.rescore == RescorePolicy::kAtEnqueue) return ts.cached_score;
  return policy_->priority(ts.task, scoring_remaining(ts), mix);
}

const MixView& SiteScheduler::build_mix(const Task* candidate) {
  const SimTime now = engine_.now();
  std::vector<CompetitorInfo> infos;
  infos.reserve(pending_.size() + running_.size() + 1);
  bool any_bounded = false;
  auto add = [&](const Task& task) {
    CompetitorInfo info;
    info.id = task.id;
    // Instantaneous rate at the current accrued delay — identical to the
    // static decay for linear functions, but tracks the active segment of
    // variable-rate profiles.
    info.decay = task.value.decay_at_delay(task.delay_at_completion(now));
    const SimTime expire = task.expire_time();
    if (expire == kInf) {
      info.time_to_expire = kInf;
    } else {
      // Any competitor that can stop decaying routes cost through the
      // per-competitor Eq. 4 path.
      any_bounded = true;
      info.time_to_expire = std::max(0.0, expire - now);
    }
    infos.push_back(info);
  };
  for (const TaskState* ts : pending_) add(ts->task);
  for (const TaskState* ts : running_) add(ts->task);
  if (candidate != nullptr) add(*candidate);
  mix_.rebuild(now, std::move(infos), any_bounded);
  return mix_.view();
}

AdmissionContext SiteScheduler::build_admission_context(
    const MixView& mix, std::vector<const Task*>& pending_sorted,
    std::vector<double>& pending_rpt, std::vector<double>& proc_free) {
  // Score every pending task once, then sort by (score desc, id asc) — the
  // same order dispatch would use.
  struct Scored {
    const TaskState* ts;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(pending_.size());
  for (const TaskState* ts : pending_)
    scored.push_back(
        {ts, policy_->priority(ts->task, scoring_remaining(*ts), mix)});
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.ts->task.id < b.ts->task.id;
  });

  pending_sorted.clear();
  pending_rpt.clear();
  for (const Scored& s : scored) {
    pending_sorted.push_back(&s.ts->task);
    pending_rpt.push_back(scoring_remaining(*s.ts));
  }

  const SimTime now = engine_.now();
  proc_free.assign(pool_.capacity(), now);
  std::size_t slot = 0;
  for (const TaskState* ts : running_) {
    // The site projects with what it believes, i.e. declared runtimes. A
    // width-w task occupies w processor slots until its believed finish.
    const double free_at = now + std::max(0.0, scoring_remaining(*ts));
    for (std::size_t w = 0; w < ts->task.width; ++w) {
      MBTS_DCHECK(slot < proc_free.size());
      proc_free[slot++] = free_at;
    }
  }

  AdmissionContext ctx;
  ctx.now = now;
  ctx.mix = &mix;
  ctx.policy = policy_.get();
  ctx.proc_free = proc_free;
  ctx.pending_sorted = pending_sorted;
  ctx.pending_rpt = pending_rpt;
  return ctx;
}

AdmissionDecision SiteScheduler::quote(const Task& task) {
  const std::string problem = validate_task(task);
  MBTS_CHECK_MSG(problem.empty(), "invalid task: " + problem);
  const MixView& mix = build_mix(&task);
  std::vector<const Task*> pending_sorted;
  std::vector<double> pending_rpt;
  std::vector<double> proc_free;
  const AdmissionContext ctx =
      build_admission_context(mix, pending_sorted, pending_rpt, proc_free);
  return admission_->evaluate(task, ctx);
}

AdmissionDecision SiteScheduler::submit(const Task& task) {
  MBTS_CHECK_MSG(!by_id_.count(task.id),
                 "duplicate task id submitted: " + task.to_string());
  MBTS_CHECK_MSG(task.width <= pool_.capacity(),
                 "task width exceeds site capacity: " + task.to_string());
  const AdmissionDecision decision = quote(task);

  if (!saw_arrival_ || task.arrival < first_arrival_)
    first_arrival_ = task.arrival;
  saw_arrival_ = true;

  records_.push_back(TaskRecord{});
  TaskRecord& record = records_.back();
  record.task = task;
  record.quoted_completion = decision.expected_completion;
  record.quoted_yield = decision.expected_yield;
  record.slack = decision.slack;

  if (!decision.accept) {
    record.outcome = TaskOutcome::kRejected;
    return decision;
  }

  if (task.width > 1) any_wide_ = true;
  states_.push_back(TaskState{});
  TaskState& ts = states_.back();
  ts.task = task;
  ts.record = &record;
  by_id_[task.id] = &ts;
  if (config_.rescore == RescorePolicy::kAtEnqueue) {
    // The quote above left the mix (including this task) in the tracker.
    ts.cached_score =
        policy_->priority(ts.task, scoring_remaining(ts), mix_.view());
  }
  pending_.push_back(&ts);
  request_dispatch();
  return decision;
}

void SiteScheduler::request_dispatch() {
  if (dispatch_pending_) return;
  dispatch_pending_ = true;
  engine_.schedule_after(0.0, EventPriority::kDispatch, [this] {
    dispatch_pending_ = false;
    dispatch();
  });
}

void SiteScheduler::inject(std::span<const Task> trace) {
  for (const Task& task : trace) {
    engine_.schedule_at(task.arrival, EventPriority::kArrival,
                        [this, task] { submit(task); });
  }
}

void SiteScheduler::start_task(TaskState& ts) {
  MBTS_DCHECK(!ts.running);
  pool_.acquire(engine_.now(), ts.task.width);
  ts.running = true;
  ts.segment_start = engine_.now();
  if (ts.record->first_start < 0.0) ts.record->first_start = engine_.now();
  const TaskId id = ts.task.id;
  ts.completion_event =
      engine_.schedule_after(remaining(ts), EventPriority::kCompletion,
                             [this, id] { on_completion(id); });
  pending_.erase(std::find(pending_.begin(), pending_.end(), &ts));
  running_.push_back(&ts);
  if (ts.record->outcome == TaskOutcome::kPending)
    ts.record->outcome = TaskOutcome::kRunning;
}

void SiteScheduler::preempt_task(TaskState& ts) {
  MBTS_DCHECK(ts.running);
  MBTS_CHECK_MSG(remaining(ts) > kDoneEpsilon, "preempting a finished task");
  engine_.cancel(ts.completion_event);
  pool_.release(engine_.now(), ts.task.width);
  ts.executed += engine_.now() - ts.segment_start;
  ts.running = false;
  if (config_.rescore == RescorePolicy::kAtEnqueue) {
    // Re-entering the queue is an enqueue: refresh the cached priority
    // against the current mix snapshot.
    ts.cached_score =
        policy_->priority(ts.task, scoring_remaining(ts), mix_.view());
  }
  ++preemptions_;
  ++ts.record->preemptions;
  ts.record->outcome = TaskOutcome::kPending;
  running_.erase(std::find(running_.begin(), running_.end(), &ts));
  pending_.push_back(&ts);
}

void SiteScheduler::finish_task(TaskState& ts, bool dropped) {
  const SimTime now = engine_.now();
  TaskRecord& record = *ts.record;
  record.completion = now;
  if (dropped) {
    MBTS_DCHECK(!ts.running);
    // A dropped task settles at its value-function floor (0 under the
    // Millennium convention; -bound in general).
    record.realized_yield = -ts.task.value.penalty_bound();
    record.outcome = TaskOutcome::kDropped;
    pending_.erase(std::find(pending_.begin(), pending_.end(), &ts));
  } else {
    MBTS_DCHECK(ts.running);
    pool_.release(now, ts.task.width);
    record.realized_yield = ts.task.yield_at_completion(now);
    record.outcome = TaskOutcome::kCompleted;
    running_.erase(std::find(running_.begin(), running_.end(), &ts));
  }
  last_completion_ = std::max(last_completion_, now);
  by_id_.erase(ts.task.id);
}

void SiteScheduler::on_completion(TaskId id) {
  auto it = by_id_.find(id);
  MBTS_CHECK_MSG(it != by_id_.end(), "completion for unknown task");
  finish_task(*it->second, /*dropped=*/false);
  request_dispatch();
}

void SiteScheduler::dispatch() {
  ++dispatches_;
  const SimTime now = engine_.now();

  if (config_.drop_expired) {
    // Millennium extension: a task whose yield has decayed all the way to
    // its penalty floor can be discarded with no further cost — completing
    // it later would earn exactly the floor anyway. (Merely "expired" is
    // not enough: a zero-decay or stabilized piecewise function may be
    // pinned above its floor, where completion still beats discarding.)
    std::vector<TaskState*> droppable;
    for (TaskState* ts : pending_) {
      const ValueFunction& vf = ts->task.value;
      if (!vf.bounded()) continue;
      const double delay =
          ts->task.delay_at_completion(now + remaining(*ts));
      if (vf.expired_at_delay(delay) &&
          vf.yield_at_delay(delay) <= -vf.penalty_bound())
        droppable.push_back(ts);
    }
    for (TaskState* ts : droppable) finish_task(*ts, /*dropped=*/true);
  }

  if (pending_.empty()) return;

  const MixView& mix = build_mix(nullptr);

  struct Scored {
    TaskState* ts;
    double score;
    bool running;
  };
  std::vector<Scored> scored;
  scored.reserve(pending_.size() + running_.size());
  for (TaskState* ts : pending_)
    scored.push_back({ts, score_of(*ts, mix), false});

  if (config_.preemption) {
    for (TaskState* ts : running_) {
      // A task at (or within epsilon of) true completion is immovable.
      const double score =
          remaining(*ts) <= kDoneEpsilon ? kInf : score_of(*ts, mix);
      scored.push_back({ts, score, true});
    }
    const auto by_rank = [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.running != b.running) return a.running;
      return a.ts->task.id < b.ts->task.id;
    };
    if (!any_wide_) {
      // Width-1 fast path: only *membership* in the top-`capacity` set
      // matters (ties keep running tasks in place so dispatches never
      // flap), so an O(n) partition replaces a full sort; the comparator
      // is a strict weak order (ids break ties) and thus deterministic.
      const std::size_t keep = std::min(pool_.capacity(), scored.size());
      if (keep < scored.size())
        std::nth_element(scored.begin(),
                         scored.begin() + static_cast<std::ptrdiff_t>(keep),
                         scored.end(), by_rank);
      // Preempt displaced running tasks first to free their processors.
      for (std::size_t i = keep; i < scored.size(); ++i)
        if (scored[i].running) preempt_task(*scored[i].ts);
      for (std::size_t i = 0; i < keep; ++i)
        if (!scored[i].running) start_task(*scored[i].ts);
    } else {
      // Gang scheduling with aggressive backfill: walk the ranked list and
      // admit each task into the target running set while its width fits
      // the remaining capacity; narrower lower-ranked tasks may slot in
      // around a wide task that does not fit (no reservation).
      std::sort(scored.begin(), scored.end(), by_rank);
      std::size_t free = pool_.capacity();
      std::vector<TaskState*> to_start;
      std::vector<TaskState*> to_preempt;
      for (const Scored& entry : scored) {
        if (entry.ts->task.width <= free) {
          free -= entry.ts->task.width;
          if (!entry.running) to_start.push_back(entry.ts);
        } else if (entry.running) {
          to_preempt.push_back(entry.ts);
        }
      }
      for (TaskState* ts : to_preempt) preempt_task(*ts);
      for (TaskState* ts : to_start) start_task(*ts);
    }
  } else {
    // Non-preemptive: fill free processors with the best pending tasks.
    const auto by_rank = [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.ts->task.id < b.ts->task.id;
    };
    if (!any_wide_) {
      const std::size_t starts = std::min(pool_.free_count(), scored.size());
      if (starts < scored.size())
        std::nth_element(scored.begin(),
                         scored.begin() + static_cast<std::ptrdiff_t>(starts),
                         scored.end(), by_rank);
      for (std::size_t i = 0; i < starts; ++i) start_task(*scored[i].ts);
    } else {
      std::sort(scored.begin(), scored.end(), by_rank);
      std::size_t free = pool_.free_count();
      for (const Scored& entry : scored) {
        if (entry.ts->task.width <= free) {
          free -= entry.ts->task.width;
          start_task(*entry.ts);
        }
        // Narrower tasks behind a too-wide one may still backfill.
      }
    }
  }
}

RunStats SiteScheduler::stats() const {
  RunStats stats;
  stats.submitted = records_.size();
  stats.preemptions = preemptions_;
  stats.dispatches = dispatches_;
  stats.first_arrival = saw_arrival_ ? first_arrival_ : 0.0;
  stats.last_completion = last_completion_;
  for (const TaskRecord& record : records_) {
    switch (record.outcome) {
      case TaskOutcome::kRejected:
        ++stats.rejected;
        break;
      case TaskOutcome::kCompleted:
        ++stats.accepted;
        ++stats.completed;
        stats.total_yield += record.realized_yield;
        stats.realized_yield.add(record.realized_yield);
        stats.delay.add(record.task.delay_at_completion(record.completion));
        break;
      case TaskOutcome::kDropped:
        ++stats.accepted;
        ++stats.dropped;
        stats.total_yield += record.realized_yield;
        stats.realized_yield.add(record.realized_yield);
        break;
      case TaskOutcome::kPending:
      case TaskOutcome::kRunning:
        ++stats.accepted;
        break;
    }
  }
  const double span = stats.last_completion - stats.first_arrival;
  stats.yield_rate = span > 0.0 ? stats.total_yield / span : 0.0;
  stats.utilization = pool_.utilization(engine_.now());
  return stats;
}

}  // namespace mbts
