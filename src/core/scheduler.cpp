#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "core/rank_sort.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace mbts {

namespace {
// Running tasks whose remaining time has reached zero are about to see their
// completion event; they must never be preempted or rescored.
constexpr double kDoneEpsilon = 1e-9;
}  // namespace

SiteScheduler::SiteScheduler(SimEngine& engine, SchedulerConfig config,
                             std::unique_ptr<SchedulingPolicy> policy,
                             std::unique_ptr<AdmissionPolicy> admission)
    : engine_(engine),
      config_(config),
      policy_(std::move(policy)),
      admission_(std::move(admission)),
      pool_(config.processors) {
  MBTS_CHECK(policy_ != nullptr);
  MBTS_CHECK(admission_ != nullptr);
  MBTS_CHECK_MSG(config_.discount_rate >= 0.0,
                 "discount rate must be non-negative");
  mix_.set_discount_rate(config_.discount_rate);
  policy_cacheable_ = policy_->cacheable();
  kernel_enabled_ = policy_cacheable_ && policy_->kernelizable() &&
                    config_.score_kernels != ScoreKernelMode::kOff;
  admission_reads_suffix_ = admission_->reads_ranked_suffix();
  engine_.register_handler(EventKind::kTaskCompletion,
                           &SiteScheduler::handle_completion);
  engine_.register_handler(EventKind::kDispatch,
                           &SiteScheduler::handle_dispatch);
  engine_.register_handler(EventKind::kTaskArrival,
                           &SiteScheduler::handle_arrival);
}

void SiteScheduler::handle_completion(SimEngine& engine,
                                      const EventPayload& payload) {
  (void)engine;
  static_cast<SiteScheduler*>(payload.target)
      ->on_completion(static_cast<TaskId>(payload.a));
}

void SiteScheduler::handle_dispatch(SimEngine& engine,
                                    const EventPayload& payload) {
  (void)engine;
  auto& self = *static_cast<SiteScheduler*>(payload.target);
  self.dispatch_pending_ = false;
  self.dispatch();
}

void SiteScheduler::handle_arrival(SimEngine& engine,
                                   const EventPayload& payload) {
  (void)engine;
  auto& self = *static_cast<SiteScheduler*>(payload.target);
  self.submit(self.injected_tasks_[static_cast<std::size_t>(payload.a)]);
}

void SiteScheduler::set_telemetry(TraceRecorder* trace,
                                  MetricsRegistry* metrics, SiteId site) {
  trace_ = trace;
  metrics_ = metrics;
  site_id_ = site;
  if (metrics_ == nullptr) return;
  MetricsScope scope(*metrics_, "site" + std::to_string(site));
  m_quotes_ = &scope.counter("quotes");
  m_accepts_ = &scope.counter("accepts");
  m_rejects_ = &scope.counter("rejects");
  m_starts_ = &scope.counter("starts");
  m_preempts_ = &scope.counter("preemptions");
  m_completions_ = &scope.counter("completions");
  m_drops_ = &scope.counter("drops");
  m_fails_ = &scope.counter("failures");
  m_checkpoints_ = &scope.counter("checkpoints");
  m_dispatch_count_ = &scope.counter("dispatches");
  m_pending_depth_ = &scope.gauge("pending_depth");
  // Histogram shapes sized for the bundled workloads (mean runtime ~100
  // units); out-of-range samples clamp to the end bins, so outliers are
  // visible without being lost.
  m_slack_ = &scope.histogram("accept_slack", -1000.0, 4000.0, 50);
  m_delay_ = &scope.histogram("delay", 0.0, 5000.0, 50);
  m_ryield_ = &scope.histogram("realized_yield", -2000.0, 2000.0, 50);
}

double SiteScheduler::executed_now(const TaskState& ts) const {
  if (!ts.running) return ts.executed;
  return ts.executed + (engine_.now() - ts.segment_start);
}

double SiteScheduler::remaining(const TaskState& ts) const {
  return ts.task.runtime - executed_now(ts);
}

double SiteScheduler::scoring_remaining(const TaskState& ts) const {
  const double declared = ts.task.estimate();
  const double left = declared - executed_now(ts);
  // An exceeded estimate pins the belief at a small remainder rather than
  // zero: the site thinks the task is perpetually "almost done".
  const double floor = config_.exceeded_estimate_fraction * declared;
  return std::max(left, std::max(floor, 1e-9));
}

double SiteScheduler::fresh_score(TaskState& ts, double rpt,
                                  const MixView& mix) const {
  if (!policy_cacheable_) return policy_->priority(ts.task, rpt, mix);
  if (ts.score_cache_now != mix.now || ts.score_cache_rpt != rpt) {
    ts.score_cache = policy_->make_cache(ts.task, rpt, mix);
    ts.score_cache_now = mix.now;
    ts.score_cache_rpt = rpt;
  }
  const double score =
      policy_->priority_from_cache(ts.score_cache, ts.task, rpt, mix);
  MBTS_DCHECK(score == policy_->priority(ts.task, rpt, mix));
  return score;
}

double SiteScheduler::score_of(TaskState& ts, double rpt,
                               const MixView& mix) const {
  if (config_.rescore == RescorePolicy::kAtEnqueue) return ts.cached_score;
  return fresh_score(ts, rpt, mix);
}

void SiteScheduler::batch_fresh_scores(std::span<TaskState* const> tasks,
                                       const MixView& mix) {
  MBTS_PROF_SCOPE("scheduler/rescore");
  const std::size_t n = tasks.size();
  batch_scores_.resize(n);
  if (!policy_cacheable_) {
    for (std::size_t i = 0; i < n; ++i)
      batch_scores_[i] =
          policy_->priority(tasks[i]->task, tasks[i]->queue_rpt, mix);
    return;
  }
  if (kernel_enabled_) {
    kernel_fresh_scores(tasks, mix);
    return;
  }
  batch_caches_.resize(n);
  batch_tasks_.resize(n);
  batch_rpts_.resize(n);
  std::size_t misses = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskState& ts = *tasks[i];
    batch_tasks_[i] = &ts.task;
    batch_rpts_[i] = ts.queue_rpt;
    misses += static_cast<std::size_t>(ts.score_cache_now != mix.now ||
                                       ts.score_cache_rpt != ts.queue_rpt);
  }
  if (misses == 0) {
    // Quote burst at one instant: every cache is warm.
    for (std::size_t i = 0; i < n; ++i) batch_caches_[i] = tasks[i]->score_cache;
  } else if (misses == n) {
    // First scan at a new instant: rebuild everything in one call.
    policy_->batch_make_cache(batch_tasks_.data(), batch_rpts_.data(), n, mix,
                              batch_caches_.data());
    for (std::size_t i = 0; i < n; ++i) {
      TaskState& ts = *tasks[i];
      ts.score_cache = batch_caches_[i];
      ts.score_cache_now = mix.now;
      ts.score_cache_rpt = ts.queue_rpt;
    }
  } else {
    miss_idx_.clear();
    miss_tasks_.clear();
    miss_rpts_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      TaskState& ts = *tasks[i];
      if (ts.score_cache_now != mix.now ||
          ts.score_cache_rpt != ts.queue_rpt) {
        miss_idx_.push_back(i);
        miss_tasks_.push_back(&ts.task);
        miss_rpts_.push_back(ts.queue_rpt);
      } else {
        batch_caches_[i] = ts.score_cache;
      }
    }
    miss_caches_.resize(miss_idx_.size());
    policy_->batch_make_cache(miss_tasks_.data(), miss_rpts_.data(),
                              miss_idx_.size(), mix, miss_caches_.data());
    for (std::size_t j = 0; j < miss_idx_.size(); ++j) {
      TaskState& ts = *tasks[miss_idx_[j]];
      ts.score_cache = miss_caches_[j];
      ts.score_cache_now = mix.now;
      ts.score_cache_rpt = ts.queue_rpt;
      batch_caches_[miss_idx_[j]] = miss_caches_[j];
    }
  }
  policy_->batch_priority_from_cache(batch_caches_.data(),
                                     batch_tasks_.data(), batch_rpts_.data(),
                                     n, mix, batch_scores_.data());
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i)
    MBTS_DCHECK(batch_scores_[i] ==
                policy_->priority(tasks[i]->task, tasks[i]->queue_rpt, mix));
#endif
}

void SiteScheduler::kernel_refresh_columns(const MixView& mix) {
  const std::size_t m = columns_.size();
  double* stamp = columns_.stamp_now();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < m; ++i)
    hits += static_cast<std::size_t>(stamp[i] == mix.now);
  if (hits == m) return;  // quote burst at one instant: all columns warm
  const ScoreColumnsView view = columns_.view();
  double* a = columns_.cache_a();
  double* b = columns_.cache_b();
  double* c = columns_.cache_c();
  if (hits == 0) {
    // First scan at a new instant: one vector pass over every slot, then
    // overwrite the piecewise slots the flat columns cannot describe with
    // the scalar make_cache result (exact in every variant).
    policy_->kernel_make_cache(view, mix, kernel_variant(), a, b, c);
    if (columns_.nonlinear_count() > 0) {
      for (std::size_t i = 0; i < m; ++i) {
        if (view.linear[i]) continue;
        const ScoreCache cache =
            policy_->make_cache(*view.tasks[i], view.rpt[i], mix);
        a[i] = cache.a;
        b[i] = cache.b;
        c[i] = cache.c;
      }
    }
    std::fill(stamp, stamp + m, mix.now);
  } else {
    // Mid-instant arrivals: only the freshly-pushed slots are stale.
    // Scalar make_cache per miss — exact, so under kFast a slot scored at
    // a fresh instant and one refreshed here may differ by the documented
    // ulp tolerance, deterministically (DESIGN.md §6).
    for (std::size_t i = 0; i < m; ++i) {
      if (stamp[i] == mix.now) continue;
      const ScoreCache cache =
          policy_->make_cache(*view.tasks[i], view.rpt[i], mix);
      a[i] = cache.a;
      b[i] = cache.b;
      c[i] = cache.c;
      stamp[i] = mix.now;
    }
  }
}

void SiteScheduler::kernel_fresh_scores(std::span<TaskState* const> tasks,
                                        const MixView& mix) {
  MBTS_PROF_SCOPE("scheduler/kernel_rescore");
  const std::size_t n = tasks.size();
  // Both call sites scan exactly the whole pending set (pending_ itself or
  // rank_order_, a permutation of it), so per-slot scores computed once
  // cover any scan order via the queue_pos gather below.
  MBTS_DCHECK(columns_.size() == n);
  kernel_refresh_columns(mix);
  kernel_scores_.resize(n);
  policy_->kernel_priority(columns_.view(), columns_.cache_a(),
                           columns_.cache_b(), columns_.cache_c(), mix,
                           kernel_variant(), kernel_scores_.data());
  for (std::size_t i = 0; i < n; ++i)
    batch_scores_[i] = kernel_scores_[tasks[i]->queue_pos];
#ifndef NDEBUG
  if (config_.score_kernels == ScoreKernelMode::kExact) {
    // Bit-identity cross-check against the scalar path. Exhaustive up to
    // 4096 pending; beyond that a strided sample keeps debug builds of the
    // 100k-pending fingerprint/bench scenarios from going quadratic (the
    // exhaustive check still runs in every normal-sized test).
    const std::size_t stride = n <= 4096 ? 1 : 97;
    for (std::size_t i = 0; i < n; i += stride)
      MBTS_DCHECK(batch_scores_[i] == policy_->priority(
                                          tasks[i]->task,
                                          tasks[i]->queue_rpt, mix));
    if (n > 0)
      MBTS_DCHECK(batch_scores_[n - 1] == policy_->priority(
                                              tasks[n - 1]->task,
                                              tasks[n - 1]->queue_rpt, mix));
  }
#endif
}

bool SiteScheduler::rank_less(const Scored& a, const Scored& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.ts->task.id < b.ts->task.id;
}

void SiteScheduler::adaptive_rank_sort() {
  // Shared warm-start implementation (core/rank_sort.hpp); the churn
  // cross-check against std::sort lives in tests/test_rank_sort.cpp, and
  // the call site DCHECKs the post-condition.
  adaptive_sort(scored_, rank_less);
}

const MixView& SiteScheduler::mix_refresh() {
  const SimTime now = engine_.now();
  if (config_.mix_full_rebuild) mix_.recompute_all(now);
  const MixView& view = mix_.refresh(now);
  MBTS_DCHECK(mix_.consistent_with_rebuild(now));
  return view;
}

const MixView& SiteScheduler::mix_refresh_with_candidate(
    const Task& candidate) {
  const SimTime now = engine_.now();
  if (config_.mix_full_rebuild) mix_.recompute_all(now);
  const MixView& view = mix_.refresh_with_candidate(now, candidate);
  MBTS_DCHECK(mix_.consistent_with_rebuild(now));
  return view;
}

SiteScheduler::TaskState& SiteScheduler::acquire_state() {
  if (!free_states_.empty()) {
    TaskState& ts = *free_states_.back();
    free_states_.pop_back();
    // Field-wise reset that keeps ts.task alive: the caller copy-assigns the
    // new task into it next, reusing the old value-function capacity. A
    // `ts = TaskState{}` here would reallocate those buffers on every
    // recycle (the default Task carries a one-segment value function).
    ts.record = nullptr;
    ts.executed = 0.0;
    ts.running = false;
    ts.segment_start = 0;
    ts.completion_event = 0;
    ts.cached_score = 0.0;
    ts.score_cache = ScoreCache{};
    ts.score_cache_now = -kInf;
    ts.score_cache_rpt = -1.0;
    ts.mix_slot = 0;
    ts.queue_rpt = 0.0;
    ts.queue_pos = 0;
    return ts;
  }
  states_.push_back(TaskState{});
  return states_.back();
}

void SiteScheduler::push_pending(TaskState& ts) {
  ts.queue_pos = static_cast<std::uint32_t>(pending_.size());
  pending_.push_back(&ts);
  // The SoA mirror gets the same slot: queue_rpt is already latched by
  // every caller, and ts.task is stable storage (states_ is a deque).
  if (kernel_enabled_) columns_.push(ts.task, ts.queue_rpt);
  // New arrivals join the rank cache at the back; the next quote's repair
  // pass walks them into place.
  rank_order_.push_back(&ts);
}

void SiteScheduler::erase_pending(TaskState& ts) {
  const std::uint32_t pos = ts.queue_pos;
  MBTS_DCHECK(pos < pending_.size() && pending_[pos] == &ts);
  pending_[pos] = pending_.back();
  pending_[pos]->queue_pos = pos;
  pending_.pop_back();
  // Same swap-with-back on the SoA mirror keeps slot i == pending_[i].
  if (kernel_enabled_) columns_.swap_erase(pos);
  const auto it = std::find(rank_order_.begin(), rank_order_.end(), &ts);
  MBTS_DCHECK(it != rank_order_.end());
  rank_order_.erase(it);
}

void SiteScheduler::push_running(TaskState& ts) {
  ts.queue_pos = static_cast<std::uint32_t>(running_.size());
  running_.push_back(&ts);
}

void SiteScheduler::erase_running(TaskState& ts) {
  const std::uint32_t pos = ts.queue_pos;
  MBTS_DCHECK(pos < running_.size() && running_[pos] == &ts);
  running_[pos] = running_.back();
  running_[pos]->queue_pos = pos;
  running_.pop_back();
}

AdmissionContext SiteScheduler::build_admission_context(
    const MixView& mix, const Task& candidate) {
  // Score every pending task once — one batched policy call — ranked by
  // (score desc, id asc), the same order dispatch would use. The scan walks
  // rank_order_ (the order the previous quote established), so the sort is
  // normally a cheap repair pass. The scores and per-task decay rates ride
  // along in the context so the projection never rescans the queue.
  MBTS_DCHECK(rank_order_.size() == pending_.size());
  batch_fresh_scores(rank_order_, mix);
  scored_.clear();
  for (std::size_t i = 0; i < rank_order_.size(); ++i) {
    TaskState* ts = rank_order_[i];
    MBTS_DCHECK(ts->queue_rpt == scoring_remaining(*ts));
    scored_.push_back({ts, batch_scores_[i], ts->queue_rpt, false});
  }
  adaptive_rank_sort();
  // The warm start is a cost optimization only — the admission projection
  // (and the rank_order_ cache fed back below) require a fully sorted
  // ranking whichever path the adaptive sort took.
  MBTS_DCHECK(std::is_sorted(scored_.begin(), scored_.end(), rank_less));
  for (std::size_t i = 0; i < scored_.size(); ++i)
    rank_order_[i] = scored_[i].ts;

  std::size_t fill = scored_.size();
  if (!admission_reads_suffix_) {
    // The projection only schedules the tasks ranked ahead of the candidate
    // (ties go ahead: they arrived earlier), so when the admission policy
    // never looks behind it the context spans can stop at the candidate's
    // rank: project_candidate then slots it at the end of the span, which
    // *is* its queue position in the full order.
    const double cand_priority =
        policy_->priority(candidate, candidate.estimate(), mix);
    const auto mid = std::partition_point(
        scored_.begin(), scored_.end(),
        [&](const Scored& s) { return s.score >= cand_priority; });
    fill = static_cast<std::size_t>(mid - scored_.begin());
  }

  pending_sorted_.clear();
  pending_rpt_.clear();
  pending_scores_.clear();
  pending_decay_.clear();
  for (std::size_t i = 0; i < fill; ++i) {
    const Scored& s = scored_[i];
    pending_sorted_.push_back(&s.ts->task);
    pending_rpt_.push_back(s.rpt);
    pending_scores_.push_back(s.score);
  }
  // Only the Eq. 8 cost sum reads per-task decay, and it runs over the
  // ranked suffix — skip the fill when the policy never gets there.
  if (admission_reads_suffix_)
    for (const Scored& s : scored_)
      pending_decay_.push_back(mix_.decay_of(s.ts->mix_slot));

  const SimTime now = engine_.now();
  proc_free_.assign(pool_.capacity(), now);
  std::size_t slot = 0;
  for (const TaskState* ts : running_) {
    // The site projects with what it believes, i.e. declared runtimes. A
    // width-w task occupies w processor slots until its believed finish.
    const double free_at = now + std::max(0.0, scoring_remaining(*ts));
    for (std::size_t w = 0; w < ts->task.width; ++w) {
      MBTS_DCHECK(slot < proc_free_.size());
      proc_free_[slot++] = free_at;
    }
  }

  AdmissionContext ctx;
  ctx.now = now;
  ctx.mix = &mix;
  ctx.policy = policy_.get();
  ctx.proc_free = proc_free_;
  ctx.pending_sorted = pending_sorted_;
  ctx.pending_rpt = pending_rpt_;
  ctx.pending_scores = pending_scores_;
  ctx.pending_decay = pending_decay_;
  ctx.projection_scratch = &projection_scratch_;
  ctx.heap_scratch = &heap_scratch_;
  return ctx;
}

AdmissionDecision SiteScheduler::quote(const Task& task) {
  MBTS_PROF_SCOPE("scheduler/quote");
  const std::string problem = validate_task(task);
  MBTS_CHECK_MSG(problem.empty(), "invalid task: " + problem);
  // A down site quotes nothing: the bid is declined without touching the
  // (frozen) candidate schedule.
  if (down_) return AdmissionDecision{};
  const MixView& mix = mix_refresh_with_candidate(task);
  const AdmissionContext ctx = build_admission_context(mix, task);
  const AdmissionDecision decision = admission_->evaluate(task, ctx);
  if (m_quotes_ != nullptr) m_quotes_->add();
  if (trace_ != nullptr)
    trace_->record(engine_.now(),
                   decision.accept ? TraceEventKind::kQuoteAccept
                                   : TraceEventKind::kQuoteReject,
                   site_id_, task.id, decision.slack,
                   decision.expected_yield);
  return decision;
}

void SiteScheduler::enqueue_accepted(const Task& task, TaskRecord& record) {
  if (task.width > 1) any_wide_ = true;
  TaskState& ts = acquire_state();
  ts.task = task;
  ts.record = &record;
  by_id_[task.id] = &ts;
  // The mix entry must reference the stored task (it outlives this call).
  ts.mix_slot = mix_.add(ts.task, engine_.now());
  ts.queue_rpt = scoring_remaining(ts);
  if (config_.rescore == RescorePolicy::kAtEnqueue) {
    // Enqueue-time priority is scored against the mix including the task
    // itself — the same mix a fresh rescore would see right now.
    ts.cached_score = policy_->priority(ts.task, ts.queue_rpt, mix_refresh());
  }
  push_pending(ts);
  request_dispatch();
}

AdmissionDecision SiteScheduler::submit(const Task& task) {
  MBTS_CHECK_MSG(!by_id_.count(task.id),
                 "duplicate task id submitted: " + task.to_string());
  MBTS_CHECK_MSG(task.width <= pool_.capacity(),
                 "task width exceeds site capacity: " + task.to_string());
  const AdmissionDecision decision = quote(task);

  if (!saw_arrival_ || task.arrival < first_arrival_)
    first_arrival_ = task.arrival;
  saw_arrival_ = true;

  records_.push_back(TaskRecord{});
  TaskRecord& record = records_.back();
  record.task = task;
  record.submitted_at = engine_.now();
  record.quoted_completion = decision.expected_completion;
  record.quoted_yield = decision.expected_yield;
  record.slack = decision.slack;

  if (trace_ != nullptr) {
    trace_->record(engine_.now(), TraceEventKind::kSubmit, site_id_, task.id,
                   task.arrival);
    trace_->record(engine_.now(),
                   decision.accept ? TraceEventKind::kAdmitAccept
                                   : TraceEventKind::kAdmitReject,
                   site_id_, task.id, decision.slack,
                   decision.expected_completion);
  }

  if (!decision.accept) {
    if (m_rejects_ != nullptr) m_rejects_->add();
    record.outcome = TaskOutcome::kRejected;
    return decision;
  }

  if (m_accepts_ != nullptr) {
    m_accepts_->add();
    m_slack_->add(decision.slack);
  }
  enqueue_accepted(task, record);
  return decision;
}

void SiteScheduler::preload(std::span<const Task> tasks) {
  for (const Task& task : tasks) {
    MBTS_CHECK_MSG(!by_id_.count(task.id),
                   "duplicate task id preloaded: " + task.to_string());
    MBTS_CHECK_MSG(task.width <= pool_.capacity(),
                   "task width exceeds site capacity: " + task.to_string());
    MBTS_CHECK_MSG(task.arrival <= engine_.now(),
                   "preloaded task arrives in the future: " +
                       task.to_string());
    const std::string problem = validate_task(task);
    MBTS_CHECK_MSG(problem.empty(), "invalid task: " + problem);

    if (!saw_arrival_ || task.arrival < first_arrival_)
      first_arrival_ = task.arrival;
    saw_arrival_ = true;

    records_.push_back(TaskRecord{});
    TaskRecord& record = records_.back();
    record.task = task;
    record.submitted_at = engine_.now();
    record.slack = kInf;
    if (trace_ != nullptr)
      trace_->record(engine_.now(), TraceEventKind::kSubmit, site_id_,
                     task.id, task.arrival);
    if (m_accepts_ != nullptr) m_accepts_->add();
    enqueue_accepted(task, record);
  }
}

void SiteScheduler::request_dispatch() {
  if (dispatch_pending_ || down_) return;
  dispatch_pending_ = true;
  EventPayload payload;
  payload.target = this;
  engine_.schedule_event_after(0.0, EventPriority::kDispatch,
                               EventKind::kDispatch, payload);
}

void SiteScheduler::inject(std::span<const Task> trace) {
  for (const Task& task : trace) {
    EventPayload payload;
    payload.target = this;
    payload.a = injected_tasks_.size();
    injected_tasks_.push_back(task);
    engine_.schedule_event(task.arrival, EventPriority::kArrival,
                           EventKind::kTaskArrival, payload);
  }
}

void SiteScheduler::start_task(TaskState& ts) {
  MBTS_DCHECK(!ts.running);
  pool_.acquire(engine_.now(), ts.task.width);
  ts.running = true;
  ts.segment_start = engine_.now();
  if (ts.record->first_start < 0.0) ts.record->first_start = engine_.now();
  EventPayload payload;
  payload.target = this;
  payload.a = ts.task.id;
  ts.completion_event =
      engine_.schedule_event_after(remaining(ts), EventPriority::kCompletion,
                                   EventKind::kTaskCompletion, payload);
  erase_pending(ts);
  push_running(ts);
  if (ts.record->outcome == TaskOutcome::kPending)
    ts.record->outcome = TaskOutcome::kRunning;
  if (m_starts_ != nullptr) m_starts_->add();
  if (trace_ != nullptr)
    trace_->record(engine_.now(), TraceEventKind::kStart, site_id_,
                   ts.task.id, ts.executed);
}

void SiteScheduler::preempt_task(TaskState& ts) {
  MBTS_DCHECK(ts.running);
  MBTS_CHECK_MSG(remaining(ts) > kDoneEpsilon, "preempting a finished task");
  engine_.cancel(ts.completion_event);
  pool_.release(engine_.now(), ts.task.width);
  ts.executed += engine_.now() - ts.segment_start;
  ts.running = false;
  ts.queue_rpt = scoring_remaining(ts);
  if (config_.rescore == RescorePolicy::kAtEnqueue) {
    // Re-entering the queue is an enqueue: refresh the cached priority
    // against the current mix snapshot.
    ts.cached_score = policy_->priority(ts.task, ts.queue_rpt, mix_.view());
  }
  ++preemptions_;
  ++ts.record->preemptions;
  ts.record->outcome = TaskOutcome::kPending;
  erase_running(ts);
  push_pending(ts);
  if (m_preempts_ != nullptr) m_preempts_->add();
  if (trace_ != nullptr)
    trace_->record(engine_.now(), TraceEventKind::kPreempt, site_id_,
                   ts.task.id, ts.executed);
}

void SiteScheduler::checkpoint_task(TaskState& ts) {
  MBTS_DCHECK(ts.running);
  engine_.cancel(ts.completion_event);
  pool_.release(engine_.now(), ts.task.width);
  ts.executed += engine_.now() - ts.segment_start;
  ts.running = false;
  ts.queue_rpt = scoring_remaining(ts);
  if (config_.rescore == RescorePolicy::kAtEnqueue) {
    // Re-entering the queue is an enqueue, as in preempt_task.
    ts.cached_score = policy_->priority(ts.task, ts.queue_rpt, mix_.view());
  }
  ++checkpoints_;
  ts.record->outcome = TaskOutcome::kPending;
  erase_running(ts);
  push_pending(ts);
  if (m_checkpoints_ != nullptr) m_checkpoints_->add();
  if (trace_ != nullptr)
    trace_->record(engine_.now(), TraceEventKind::kCheckpoint, site_id_,
                   ts.task.id, ts.executed);
}

void SiteScheduler::fail_task(TaskState& ts) {
  MBTS_DCHECK(ts.running);
  const SimTime now = engine_.now();
  engine_.cancel(ts.completion_event);
  pool_.release(now, ts.task.width);
  TaskRecord& record = *ts.record;
  record.completion = now;
  record.realized_yield = ts.task.breach_yield(now);
  record.outcome = TaskOutcome::kFailed;
  if (m_fails_ != nullptr) m_fails_->add();
  if (trace_ != nullptr)
    trace_->record(now, TraceEventKind::kTaskFail, site_id_, ts.task.id,
                   record.realized_yield, ts.executed);
  erase_running(ts);
  mix_.remove(ts.mix_slot);
  by_id_.erase(ts.task.id);
  free_states_.push_back(&ts);
}

std::vector<Task> SiteScheduler::crash(CrashMode mode) {
  MBTS_CHECK_MSG(!down_, "crash on a site that is already down");
  down_ = true;
  ++crashes_;
  if (trace_ != nullptr)
    trace_->record(engine_.now(), TraceEventKind::kSiteCrash, site_id_,
                   kInvalidTask, static_cast<double>(running_.size()),
                   static_cast<double>(mode == CrashMode::kKill ? 0 : 1));
  std::vector<Task> killed;
  // Drain running tasks in ascending task-id order. The running_ vector's
  // layout depends on nth_element's unspecified permutation, so a layout
  //-order drain would make the kill/requeue order (and thus the killed
  // list, re-bid order, and checkpoint re-entry order) compiler-dependent;
  // sorting by id pins it. Copy the pointers first: both exits erase from
  // running_ by swap-with-back.
  std::vector<TaskState*> victims(running_.begin(), running_.end());
  std::sort(victims.begin(), victims.end(),
            [](const TaskState* a, const TaskState* b) {
              return a->task.id < b->task.id;
            });
  for (TaskState* ts : victims) {
    if (mode == CrashMode::kKill) {
      killed.push_back(ts->task);
      fail_task(*ts);
    } else {
      checkpoint_task(*ts);
    }
  }
  pool_.begin_outage(engine_.now());
  return killed;
}

void SiteScheduler::recover() {
  MBTS_CHECK_MSG(down_, "recover on a site that is up");
  down_ = false;
  if (trace_ != nullptr)
    trace_->record(engine_.now(), TraceEventKind::kSiteRecover, site_id_,
                   kInvalidTask, static_cast<double>(pending_.size()));
  pool_.end_outage(engine_.now());
  if (!pending_.empty()) request_dispatch();
}

void SiteScheduler::finish_task(TaskState& ts, bool dropped) {
  const SimTime now = engine_.now();
  TaskRecord& record = *ts.record;
  record.completion = now;
  if (dropped) {
    MBTS_DCHECK(!ts.running);
    // A dropped task settles at its value-function floor (0 under the
    // Millennium convention; -bound in general).
    record.realized_yield = -ts.task.value.penalty_bound();
    record.outcome = TaskOutcome::kDropped;
    if (m_drops_ != nullptr) m_drops_->add();
    if (trace_ != nullptr)
      trace_->record(now, TraceEventKind::kDrop, site_id_, ts.task.id,
                     record.realized_yield);
    erase_pending(ts);
  } else {
    MBTS_DCHECK(ts.running);
    pool_.release(now, ts.task.width);
    record.realized_yield = ts.task.yield_at_completion(now);
    record.outcome = TaskOutcome::kCompleted;
    const double delay = ts.task.delay_at_completion(now);
    if (m_completions_ != nullptr) {
      m_completions_->add();
      m_delay_->add(delay);
      m_ryield_->add(record.realized_yield);
    }
    if (trace_ != nullptr)
      trace_->record(now, TraceEventKind::kComplete, site_id_, ts.task.id,
                     record.realized_yield, delay);
    erase_running(ts);
  }
  last_completion_ = std::max(last_completion_, now);
  mix_.remove(ts.mix_slot);
  by_id_.erase(ts.task.id);
  free_states_.push_back(&ts);
}

void SiteScheduler::on_completion(TaskId id) {
  auto it = by_id_.find(id);
  MBTS_CHECK_MSG(it != by_id_.end(), "completion for unknown task");
  finish_task(*it->second, /*dropped=*/false);
  request_dispatch();
}

void SiteScheduler::dispatch() {
  // A dispatch event that was already queued when the site crashed fires
  // into a down site: nothing to do until recovery re-requests one.
  if (down_) return;
  MBTS_PROF_SCOPE("scheduler/dispatch");
  ++dispatches_;
  const SimTime now = engine_.now();
  if (m_dispatch_count_ != nullptr) {
    m_dispatch_count_->add();
    m_pending_depth_->set(static_cast<double>(pending_.size()));
  }
  if (trace_ != nullptr)
    trace_->record(now, TraceEventKind::kDispatch, site_id_, kInvalidTask,
                   static_cast<double>(pending_.size()),
                   static_cast<double>(running_.size()));

  if (config_.drop_expired) {
    // Millennium extension: a task whose yield has decayed all the way to
    // its penalty floor can be discarded with no further cost — completing
    // it later would earn exactly the floor anyway. (Merely "expired" is
    // not enough: a zero-decay or stabilized piecewise function may be
    // pinned above its floor, where completion still beats discarding.)
    droppable_.clear();
    for (TaskState* ts : pending_) {
      const ValueFunction& vf = ts->task.value;
      if (!vf.bounded()) continue;
      const double delay =
          ts->task.delay_at_completion(now + remaining(*ts));
      if (vf.expired_at_delay(delay) &&
          vf.yield_at_delay(delay) <= -vf.penalty_bound())
        droppable_.push_back(ts);
    }
    for (TaskState* ts : droppable_) finish_task(*ts, /*dropped=*/true);
  }

  if (pending_.empty()) return;

  const MixView& mix = mix_refresh();

  scored_.clear();
  if (config_.rescore == RescorePolicy::kFresh) {
    batch_fresh_scores(pending_, mix);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      MBTS_DCHECK(pending_[i]->queue_rpt == scoring_remaining(*pending_[i]));
      scored_.push_back(
          {pending_[i], batch_scores_[i], pending_[i]->queue_rpt, false});
    }
  } else {
    for (TaskState* ts : pending_)
      scored_.push_back(
          {ts, score_of(*ts, ts->queue_rpt, mix), ts->queue_rpt, false});
  }

  if (config_.preemption) {
    for (TaskState* ts : running_) {
      // A task at (or within epsilon of) true completion is immovable.
      const double rpt = scoring_remaining(*ts);
      const double score =
          remaining(*ts) <= kDoneEpsilon ? kInf : score_of(*ts, rpt, mix);
      scored_.push_back({ts, score, rpt, true});
    }
    const auto by_rank = [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.running != b.running) return a.running;
      return a.ts->task.id < b.ts->task.id;
    };
    if (!any_wide_) {
      // Width-1 fast path: only *membership* in the top-`capacity` set
      // matters (ties keep running tasks in place so dispatches never
      // flap), so an O(n) partition replaces a full sort; the comparator
      // is a strict weak order (ids break ties) and thus deterministic.
      const std::size_t keep = std::min(pool_.capacity(), scored_.size());
      if (keep < scored_.size())
        std::nth_element(scored_.begin(),
                         scored_.begin() + static_cast<std::ptrdiff_t>(keep),
                         scored_.end(), by_rank);
      // Preempt displaced running tasks first to free their processors.
      for (std::size_t i = keep; i < scored_.size(); ++i)
        if (scored_[i].running) preempt_task(*scored_[i].ts);
      for (std::size_t i = 0; i < keep; ++i)
        if (!scored_[i].running) start_task(*scored_[i].ts);
    } else {
      // Gang scheduling with aggressive backfill: walk the ranked list and
      // admit each task into the target running set while its width fits
      // the remaining capacity; narrower lower-ranked tasks may slot in
      // around a wide task that does not fit (no reservation).
      std::sort(scored_.begin(), scored_.end(), by_rank);
      std::size_t free = pool_.capacity();
      to_start_.clear();
      to_preempt_.clear();
      for (const Scored& entry : scored_) {
        if (entry.ts->task.width <= free) {
          free -= entry.ts->task.width;
          if (!entry.running) to_start_.push_back(entry.ts);
        } else if (entry.running) {
          to_preempt_.push_back(entry.ts);
        }
      }
      for (TaskState* ts : to_preempt_) preempt_task(*ts);
      for (TaskState* ts : to_start_) start_task(*ts);
    }
  } else {
    // Non-preemptive: fill free processors with the best pending tasks.
    const auto by_rank = [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.ts->task.id < b.ts->task.id;
    };
    if (!any_wide_) {
      const std::size_t starts = std::min(pool_.free_count(), scored_.size());
      if (starts < scored_.size())
        std::nth_element(scored_.begin(),
                         scored_.begin() + static_cast<std::ptrdiff_t>(starts),
                         scored_.end(), by_rank);
      for (std::size_t i = 0; i < starts; ++i) start_task(*scored_[i].ts);
    } else {
      std::sort(scored_.begin(), scored_.end(), by_rank);
      std::size_t free = pool_.free_count();
      for (const Scored& entry : scored_) {
        if (entry.ts->task.width <= free) {
          free -= entry.ts->task.width;
          start_task(*entry.ts);
        }
        // Narrower tasks behind a too-wide one may still backfill.
      }
    }
  }
}

RunStats SiteScheduler::stats() const {
  RunStats stats;
  stats.submitted = records_.size();
  stats.preemptions = preemptions_;
  stats.dispatches = dispatches_;
  stats.crashes = crashes_;
  stats.checkpoints = checkpoints_;
  stats.first_arrival = saw_arrival_ ? first_arrival_ : 0.0;
  stats.last_completion = last_completion_;
  for (const TaskRecord& record : records_) {
    switch (record.outcome) {
      case TaskOutcome::kRejected:
        ++stats.rejected;
        break;
      case TaskOutcome::kCompleted:
        ++stats.accepted;
        ++stats.completed;
        stats.total_yield += record.realized_yield;
        stats.realized_yield.add(record.realized_yield);
        stats.delay.add(record.task.delay_at_completion(record.completion));
        break;
      case TaskOutcome::kDropped:
        ++stats.accepted;
        ++stats.dropped;
        stats.total_yield += record.realized_yield;
        stats.realized_yield.add(record.realized_yield);
        break;
      case TaskOutcome::kFailed:
        ++stats.accepted;
        ++stats.failed;
        stats.total_yield += record.realized_yield;
        stats.realized_yield.add(record.realized_yield);
        break;
      case TaskOutcome::kPending:
      case TaskOutcome::kRunning:
        ++stats.accepted;
        break;
    }
  }
  const double span = stats.last_completion - stats.first_arrival;
  stats.yield_rate = span > 0.0 ? stats.total_yield / span : 0.0;
  stats.utilization = pool_.utilization(engine_.now());
  return stats;
}

}  // namespace mbts
