// Value functions (paper §3, Figure 2).
//
// The paper's primary formulation is linear decay: a task earns its maximum
// value if it completes within its minimum run time, and every unit of
// queueing delay erodes the value at a constant decay rate:
//
//   yield_i = value_i - delay_i * decay_i            (Eq. 1)
//
// The value may fall below zero — a penalty — and the penalty may be bounded
// (the function stops decaying at -bound) or unbounded. Millennium's
// convention, bound = 0, floors the function at zero: an expired task can be
// discarded at no cost.
//
// §3 notes the framework "can generalize to value functions that decay at
// variable rates"; this class implements that generalization as a
// piecewise-linear decay profile — an ordered list of (duration, rate)
// segments after the earliest completion, the last of which extends forever.
// A single-segment profile reproduces Eq. 1 exactly.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mbts {

/// One stretch of the decay profile: decay at `rate` for `duration` units of
/// delay. The final segment's duration is ignored (extends to infinity).
struct DecaySegment {
  double duration = 0.0;
  double rate = 0.0;

  friend bool operator==(const DecaySegment&, const DecaySegment&) = default;
};

class ValueFunction {
 public:
  /// Classic linear decay (Eq. 1).
  /// max_value: value at zero delay. decay: value lost per unit of delay
  /// (>= 0). penalty_bound: the yield floor is -penalty_bound; kInf means
  /// unbounded, 0 is the Millennium floor-at-zero convention.
  ValueFunction(double max_value, double decay, double penalty_bound);

  /// Variable-rate decay (§3's generalization): delay is charged against
  /// `segments` in order; the last segment extends forever. Rates must be
  /// non-negative; at least one segment is required.
  static ValueFunction piecewise(double max_value,
                                 std::vector<DecaySegment> segments,
                                 double penalty_bound);

  /// Convenience constructors matching the paper's two regimes.
  static ValueFunction bounded_at_zero(double max_value, double decay);
  static ValueFunction unbounded(double max_value, double decay);

  double max_value() const { return max_value_; }
  /// The *initial* decay rate — what Eq. 1's d_i means for linear functions
  /// and the closest scalar summary for piecewise ones.
  double decay() const { return segments_.front().rate; }
  /// The instantaneous decay rate after `delay` units of waiting (0 once
  /// the function has expired). The single-segment (Eq. 1) fast path is
  /// inlined — it is the innermost loop of every queue rescore; the
  /// arithmetic matches the general path bit for bit.
  double decay_at_delay(double delay) const {
    if (segments_.size() == 1) {
      if (expired_at_delay(std::max(delay, 0.0))) return 0.0;
      return linear_rate_;
    }
    return decay_at_delay_general(delay);
  }
  double penalty_bound() const { return penalty_bound_; }
  bool bounded() const { return penalty_bound_ != kInf; }
  bool is_linear() const { return segments_.size() == 1; }
  const std::vector<DecaySegment>& segments() const { return segments_; }

  /// Yield after `delay` units of queueing delay (delay < 0 clamps to 0).
  double yield_at_delay(double delay) const {
    if (segments_.size() == 1) {
      const double d = std::max(delay, 0.0);
      return std::max(max_value_ - d * linear_rate_, -penalty_bound_);
    }
    return yield_at_delay_general(delay);
  }

  /// Delay at which yield first reaches zero (kInf if it never does).
  double delay_to_zero() const;

  /// Delay at which the function stops decaying forever — the task
  /// "expires" (kInf when it never stops).
  double delay_to_expire() const { return expire_delay_; }

  /// True if the function no longer decays at this delay.
  bool expired_at_delay(double delay) const {
    return delay >= expire_delay_;
  }

  std::string to_string() const;

  friend bool operator==(const ValueFunction&, const ValueFunction&) = default;

 private:
  ValueFunction(double max_value, std::vector<DecaySegment> segments,
                double penalty_bound);

  /// Delay at which the raw (unfloored) decay reaches `drop` below max, or
  /// kInf if it never accumulates that much.
  double delay_for_drop(double drop) const;

  /// Piecewise (multi-segment) slow paths of the inline accessors above.
  double decay_at_delay_general(double delay) const;
  double yield_at_delay_general(double delay) const;

  double max_value_;
  double penalty_bound_;
  std::vector<DecaySegment> segments_;
  double expire_delay_ = kInf;  // precomputed at construction
  /// segments_.front().rate, mirrored inline so the fast paths above skip
  /// the heap indirection.
  double linear_rate_ = 0.0;
};

}  // namespace mbts
