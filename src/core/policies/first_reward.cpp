#include "core/policies/first_reward.hpp"

#include <algorithm>
#include <sstream>

#include "core/metrics.hpp"
#include "core/score_kernels.hpp"
#include "util/check.hpp"

namespace mbts {

FirstRewardPolicy::FirstRewardPolicy(double alpha, YieldBasis basis)
    : alpha_(alpha), basis_(basis) {
  MBTS_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
}

std::string FirstRewardPolicy::name() const {
  std::ostringstream os;
  os << "FirstReward(a=" << alpha_ << ')';
  return os.str();
}

double FirstRewardPolicy::priority(const Task& task, double rpt,
                                   const MixView& mix) const {
  return first_reward_index(task, rpt, mix, alpha_, basis_);
}

ScoreCache FirstRewardPolicy::make_cache(const Task& task, double rpt,
                                         const MixView& mix) const {
  MBTS_DCHECK(rpt > 0.0);
  const double yield = yield_for_ranking(task, mix.now, rpt, basis_);
  const double pv = present_value(yield, mix.discount_rate, rpt);
  ScoreCache cache;
  cache.a = alpha_ * pv;
  cache.b = task.value.decay_at_delay(task.delay_at_completion(mix.now));
  cache.c = rpt * static_cast<double>(task.width);
  return cache;
}

double FirstRewardPolicy::priority_from_cache(const ScoreCache& cache,
                                              const Task& task, double rpt,
                                              const MixView& mix) const {
  double cost;
  if (!mix.any_bounded) {
    // Eq. 5: cache.b is exactly the own-decay term opportunity_cost would
    // recompute; the subtraction/max/multiply sequence is unchanged.
    const double others = mix.total_live_decay - cache.b;
    cost = std::max(others, 0.0) * rpt;
  } else {
    cost = opportunity_cost(task, rpt, mix);
  }
  return (cache.a - (1.0 - alpha_) * cost) / cache.c;
}

void FirstRewardPolicy::batch_make_cache(const Task* const* tasks,
                                         const double* rpts, std::size_t n,
                                         const MixView& mix,
                                         ScoreCache* out) const {
  // Same float ops as make_cache, minus one virtual dispatch per task.
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = *tasks[i];
    const double rpt = rpts[i];
    MBTS_DCHECK(rpt > 0.0);
    const double yield = yield_for_ranking(task, mix.now, rpt, basis_);
    const double pv = present_value(yield, mix.discount_rate, rpt);
    out[i].a = alpha_ * pv;
    out[i].b = task.value.decay_at_delay(task.delay_at_completion(mix.now));
    out[i].c = rpt * static_cast<double>(task.width);
  }
}

void FirstRewardPolicy::batch_priority_from_cache(
    const ScoreCache* caches, const Task* const* tasks, const double* rpts,
    std::size_t n, const MixView& mix, double* out) const {
  if (mix.any_bounded) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = priority_from_cache(caches[i], *tasks[i], rpts[i], mix);
    return;
  }
  // Eq. 5 fast path, identical arithmetic to priority_from_cache.
  const double total = mix.total_live_decay;
  const double weight = 1.0 - alpha_;
  for (std::size_t i = 0; i < n; ++i) {
    const double cost = std::max(total - caches[i].b, 0.0) * rpts[i];
    out[i] = (caches[i].a - weight * cost) / caches[i].c;
  }
}

void FirstRewardPolicy::kernel_make_cache(const ScoreColumnsView& cols,
                                          const MixView& mix,
                                          KernelVariant variant, double* a,
                                          double* b, double* c) const {
  (void)variant;
  kernels::first_reward_cache(cols, mix.now, mix.discount_rate, alpha_,
                              basis_ == YieldBasis::kAtCompletion, a, b, c);
}

void FirstRewardPolicy::kernel_priority(const ScoreColumnsView& cols,
                                        const double* a, const double* b,
                                        const double* c, const MixView& mix,
                                        KernelVariant variant,
                                        double* out) const {
  if (mix.any_bounded) {
    // Eq. 4 opportunity cost walks the competitor list per task — no flat
    // columnar form; same scalar fallback as batch_priority_from_cache.
    for (std::size_t i = 0; i < cols.n; ++i)
      out[i] = priority_from_cache({a[i], b[i], c[i]}, *cols.tasks[i],
                                   cols.rpt[i], mix);
    return;
  }
  kernels::first_reward_combine(cols, a, b, c, mix.total_live_decay, alpha_,
                                variant, out);
}

}  // namespace mbts
