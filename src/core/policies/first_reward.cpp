#include "core/policies/first_reward.hpp"

#include <sstream>

#include "core/metrics.hpp"
#include "util/check.hpp"

namespace mbts {

FirstRewardPolicy::FirstRewardPolicy(double alpha, YieldBasis basis)
    : alpha_(alpha), basis_(basis) {
  MBTS_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
}

std::string FirstRewardPolicy::name() const {
  std::ostringstream os;
  os << "FirstReward(a=" << alpha_ << ')';
  return os.str();
}

double FirstRewardPolicy::priority(const Task& task, double rpt,
                                   const MixView& mix) const {
  return first_reward_index(task, rpt, mix, alpha_, basis_);
}

}  // namespace mbts
