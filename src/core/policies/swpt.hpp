// Shortest Weighted Processing Time (§4): the classical TWCT heuristic.
//
// Orders by decay / RPT — optimal for Total Weighted Completion Time on one
// processor when all tasks are released together. Value-blind: it minimizes
// loss, never weighing the gain of completing a task.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class SwptPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SWPT"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;
};

}  // namespace mbts
