// Shortest Weighted Processing Time (§4): the classical TWCT heuristic.
//
// Orders by decay / RPT — optimal for Total Weighted Completion Time on one
// processor when all tasks are released together. Value-blind: it minimizes
// loss, never weighing the gain of completing a task.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class SwptPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SWPT"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

  // decay/RPT reads only mix.now, so the cached score is the score.
  bool cacheable() const override { return true; }
  ScoreCache make_cache(const Task& task, double rpt,
                        const MixView& mix) const override {
    return {priority(task, rpt, mix), 0.0, 0.0};
  }
  double priority_from_cache(const ScoreCache& cache, const Task&, double,
                             const MixView&) const override {
    return cache.a;
  }
  void batch_priority_from_cache(const ScoreCache* caches,
                                 const Task* const*, const double*,
                                 std::size_t n, const MixView&,
                                 double* out) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = caches[i].a;
  }

  // SoA kernels: the cached score lives in column a; the priority pass is
  // a straight copy.
  bool kernelizable() const override { return true; }
  void kernel_make_cache(const ScoreColumnsView& cols, const MixView& mix,
                         KernelVariant variant, double* a, double* b,
                         double* c) const override;
  void kernel_priority(const ScoreColumnsView& cols, const double* a,
                       const double* b, const double* c, const MixView& mix,
                       KernelVariant variant, double* out) const override;
};

}  // namespace mbts
