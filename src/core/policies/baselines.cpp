#include "core/policies/baselines.hpp"

#include "util/rng.hpp"

namespace mbts {

double FcfsPolicy::priority(const Task& task, double /*rpt*/,
                            const MixView& /*mix*/) const {
  return -task.arrival;
}

double SrptPolicy::priority(const Task& /*task*/, double rpt,
                            const MixView& /*mix*/) const {
  return -rpt;
}

double RandomPolicy::priority(const Task& task, double /*rpt*/,
                              const MixView& /*mix*/) const {
  // A hash of (seed, id) gives a stable random permutation without state.
  SplitMix64 sm(seed_ ^ (task.id * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace mbts
