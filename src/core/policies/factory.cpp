#include <cstdlib>
#include <sstream>

#include "core/policies/baselines.hpp"
#include "core/policies/first_price.hpp"
#include "core/policies/first_reward.hpp"
#include "core/policies/present_value.hpp"
#include "core/policies/swpt.hpp"
#include "core/policy.hpp"
#include "util/check.hpp"

namespace mbts {

std::string PolicySpec::to_string() const {
  switch (kind) {
    case Kind::kFcfs:
      return "fcfs";
    case Kind::kSrpt:
      return "srpt";
    case Kind::kSwpt:
      return "swpt";
    case Kind::kFirstPrice:
      return "firstprice";
    case Kind::kPresentValue:
      return "pv";
    case Kind::kFirstReward: {
      std::ostringstream os;
      os << "firstreward:" << alpha;
      return os.str();
    }
    case Kind::kRandom:
      return "random";
  }
  return "?";
}

std::unique_ptr<SchedulingPolicy> make_policy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case PolicySpec::Kind::kSrpt:
      return std::make_unique<SrptPolicy>();
    case PolicySpec::Kind::kSwpt:
      return std::make_unique<SwptPolicy>();
    case PolicySpec::Kind::kFirstPrice:
      return std::make_unique<FirstPricePolicy>(spec.yield_basis);
    case PolicySpec::Kind::kPresentValue:
      return std::make_unique<PresentValuePolicy>(spec.yield_basis);
    case PolicySpec::Kind::kFirstReward:
      return std::make_unique<FirstRewardPolicy>(spec.alpha, spec.yield_basis);
    case PolicySpec::Kind::kRandom:
      return std::make_unique<RandomPolicy>(spec.seed);
  }
  MBTS_CHECK_MSG(false, "unhandled policy kind");
  return nullptr;
}

PolicySpec parse_policy_spec(const std::string& text) {
  if (text == "fcfs") return PolicySpec::fcfs();
  if (text == "srpt") return PolicySpec::srpt();
  if (text == "swpt") return PolicySpec::swpt();
  if (text == "firstprice") return PolicySpec::first_price();
  if (text == "pv") return PolicySpec::present_value();
  if (text == "random") return PolicySpec::random(1);
  const std::string prefix = "firstreward:";
  if (text.rfind(prefix, 0) == 0) {
    const std::string rest = text.substr(prefix.size());
    char* end = nullptr;
    const double alpha = std::strtod(rest.c_str(), &end);
    MBTS_CHECK_MSG(end && *end == '\0' && alpha >= 0.0 && alpha <= 1.0,
                   "bad firstreward alpha: " + rest);
    return PolicySpec::first_reward(alpha);
  }
  MBTS_CHECK_MSG(false, "unknown policy: " + text +
                            " (expected fcfs|srpt|swpt|firstprice|pv|"
                            "firstreward:<alpha>|random)");
  return {};
}

}  // namespace mbts
