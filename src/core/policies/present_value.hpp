// The Present Value heuristic (§5.1): FirstPrice with future gains
// discounted at a configurable rate (Eq. 3), selecting by PV_i / RPT_i.
// At discount rate 0 it is exactly FirstPrice; higher rates make the
// scheduler more risk-averse, preferring tasks that pay off sooner.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class PresentValuePolicy final : public SchedulingPolicy {
 public:
  explicit PresentValuePolicy(YieldBasis basis = YieldBasis::kAtCompletion)
      : basis_(basis) {}
  std::string name() const override { return "PV"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

 private:
  YieldBasis basis_;
};

}  // namespace mbts
