#include "core/policies/first_price.hpp"

#include "core/metrics.hpp"

namespace mbts {

double FirstPricePolicy::priority(const Task& task, double rpt,
                                  const MixView& mix) const {
  return unit_gain(task, mix.now, rpt, basis_);
}

}  // namespace mbts
