#include "core/policies/first_price.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/score_kernels.hpp"

namespace mbts {

double FirstPricePolicy::priority(const Task& task, double rpt,
                                  const MixView& mix) const {
  return unit_gain(task, mix.now, rpt, basis_);
}

void FirstPricePolicy::kernel_make_cache(const ScoreColumnsView& cols,
                                         const MixView& mix,
                                         KernelVariant variant, double* a,
                                         double* b, double* c) const {
  (void)b;
  (void)c;
  kernels::unit_gain_scores(cols, mix.now,
                            basis_ == YieldBasis::kAtCompletion, variant, a);
}

void FirstPricePolicy::kernel_priority(const ScoreColumnsView& cols,
                                       const double* a, const double* b,
                                       const double* c, const MixView& mix,
                                       KernelVariant variant,
                                       double* out) const {
  (void)b;
  (void)c;
  (void)mix;
  (void)variant;
  std::copy(a, a + cols.n, out);
}

}  // namespace mbts
