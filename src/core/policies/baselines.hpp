// Value-oblivious baselines: FCFS, SRPT, and a seeded random order (§4).
#pragma once

#include <cstdint>

#include "core/policy.hpp"

namespace mbts {

/// First Come First Served: orders by arrival time.
class FcfsPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "FCFS"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;
};

/// Shortest Remaining Processing Time.
class SrptPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "SRPT"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;
};

/// Uniform random order, stable per (seed, task id): a sanity floor for the
/// evaluation — any value-aware heuristic should beat it.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "RANDOM"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace mbts
