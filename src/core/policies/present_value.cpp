#include "core/policies/present_value.hpp"

#include "core/metrics.hpp"
#include "util/check.hpp"

namespace mbts {

double PresentValuePolicy::priority(const Task& task, double rpt,
                                    const MixView& mix) const {
  MBTS_DCHECK(rpt > 0.0);
  const double yield = yield_for_ranking(task, mix.now, rpt, basis_);
  return present_value(yield, mix.discount_rate, rpt) /
         (rpt * static_cast<double>(task.width));
}

}  // namespace mbts
