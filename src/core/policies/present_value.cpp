#include "core/policies/present_value.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/score_kernels.hpp"
#include "util/check.hpp"

namespace mbts {

double PresentValuePolicy::priority(const Task& task, double rpt,
                                    const MixView& mix) const {
  MBTS_DCHECK(rpt > 0.0);
  const double yield = yield_for_ranking(task, mix.now, rpt, basis_);
  return present_value(yield, mix.discount_rate, rpt) /
         (rpt * static_cast<double>(task.width));
}

void PresentValuePolicy::kernel_make_cache(const ScoreColumnsView& cols,
                                           const MixView& mix,
                                           KernelVariant variant, double* a,
                                           double* b, double* c) const {
  (void)b;
  (void)c;
  kernels::present_value_scores(cols, mix.now, mix.discount_rate,
                                basis_ == YieldBasis::kAtCompletion, variant,
                                a);
}

void PresentValuePolicy::kernel_priority(const ScoreColumnsView& cols,
                                         const double* a, const double* b,
                                         const double* c, const MixView& mix,
                                         KernelVariant variant,
                                         double* out) const {
  (void)b;
  (void)c;
  (void)mix;
  (void)variant;
  std::copy(a, a + cols.n, out);
}

}  // namespace mbts
