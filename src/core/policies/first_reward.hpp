// FirstReward (§5.3, Eq. 6): the paper's contribution. Balances discounted
// expected gains (weight alpha) against opportunity cost (weight 1 - alpha):
//
//   reward_i = (alpha * PV_i - (1 - alpha) * cost_i) / RPT_i
//
// alpha = 1 with discount 0 reduces to FirstPrice; alpha = 0 reduces to the
// cost-only variant the paper relates to SWPT.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class FirstRewardPolicy final : public SchedulingPolicy {
 public:
  explicit FirstRewardPolicy(double alpha,
                             YieldBasis basis = YieldBasis::kAtCompletion);

  std::string name() const override;
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  YieldBasis basis_;
};

}  // namespace mbts
