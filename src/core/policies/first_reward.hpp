// FirstReward (§5.3, Eq. 6): the paper's contribution. Balances discounted
// expected gains (weight alpha) against opportunity cost (weight 1 - alpha):
//
//   reward_i = (alpha * PV_i - (1 - alpha) * cost_i) / RPT_i
//
// alpha = 1 with discount 0 reduces to FirstPrice; alpha = 0 reduces to the
// cost-only variant the paper relates to SWPT.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class FirstRewardPolicy final : public SchedulingPolicy {
 public:
  explicit FirstRewardPolicy(double alpha,
                             YieldBasis basis = YieldBasis::kAtCompletion);

  std::string name() const override;
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

  /// Eq. 6 decomposes as (alpha*PV - (1-alpha)*cost) / (RPT*width) where
  /// only `cost` reads the mix. The cache holds a = alpha*PV, b = the
  /// task's own decay rate (subtracted from the aggregate on the Eq. 5
  /// path), c = RPT*width; priority_from_cache redoes exactly the
  /// remaining float ops, so the result is bit-identical.
  bool cacheable() const override { return true; }
  ScoreCache make_cache(const Task& task, double rpt,
                        const MixView& mix) const override;
  double priority_from_cache(const ScoreCache& cache, const Task& task,
                             double rpt, const MixView& mix) const override;
  void batch_make_cache(const Task* const* tasks, const double* rpts,
                        std::size_t n, const MixView& mix,
                        ScoreCache* out) const override;
  void batch_priority_from_cache(const ScoreCache* caches,
                                 const Task* const* tasks, const double* rpts,
                                 std::size_t n, const MixView& mix,
                                 double* out) const override;

  /// SoA kernels. The cache pass is always exact (under kFast only the
  /// combine's final division switches to a reciprocal multiply); a
  /// bounded mix drops the combine to the scalar Eq. 4 loop, like
  /// batch_priority_from_cache.
  bool kernelizable() const override { return true; }
  void kernel_make_cache(const ScoreColumnsView& cols, const MixView& mix,
                         KernelVariant variant, double* a, double* b,
                         double* c) const override;
  void kernel_priority(const ScoreColumnsView& cols, const double* a,
                       const double* b, const double* c, const MixView& mix,
                       KernelVariant variant, double* out) const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  YieldBasis basis_;
};

}  // namespace mbts
