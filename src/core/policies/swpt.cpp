#include "core/policies/swpt.hpp"

#include <algorithm>

#include "core/score_kernels.hpp"
#include "util/check.hpp"

namespace mbts {

double SwptPolicy::priority(const Task& task, double rpt,
                            const MixView& mix) const {
  MBTS_DCHECK(rpt > 0.0);
  // Instantaneous rate: equals the static weight for linear value functions
  // and tracks the active segment of variable-rate profiles.
  const double weight =
      task.value.decay_at_delay(task.delay_at_completion(mix.now));
  return weight / rpt;
}

void SwptPolicy::kernel_make_cache(const ScoreColumnsView& cols,
                                   const MixView& mix, KernelVariant variant,
                                   double* a, double* b, double* c) const {
  (void)b;
  (void)c;
  kernels::swpt_scores(cols, mix.now, variant, a);
}

void SwptPolicy::kernel_priority(const ScoreColumnsView& cols, const double* a,
                                 const double* b, const double* c,
                                 const MixView& mix, KernelVariant variant,
                                 double* out) const {
  (void)b;
  (void)c;
  (void)mix;
  (void)variant;
  std::copy(a, a + cols.n, out);
}

}  // namespace mbts
