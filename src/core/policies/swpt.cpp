#include "core/policies/swpt.hpp"

#include "util/check.hpp"

namespace mbts {

double SwptPolicy::priority(const Task& task, double rpt,
                            const MixView& mix) const {
  MBTS_DCHECK(rpt > 0.0);
  // Instantaneous rate: equals the static weight for linear value functions
  // and tracks the active segment of variable-rate profiles.
  const double weight =
      task.value.decay_at_delay(task.delay_at_completion(mix.now));
  return weight / rpt;
}

}  // namespace mbts
