// Millennium's FirstPrice heuristic (§4): greedy by unit gain,
// yield_i / RPT_i — the expected yield per unit of resource per unit time if
// the task is started now. The paper's primary baseline for Figs. 3–7.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class FirstPricePolicy final : public SchedulingPolicy {
 public:
  explicit FirstPricePolicy(YieldBasis basis = YieldBasis::kAtCompletion)
      : basis_(basis) {}
  std::string name() const override { return "FirstPrice"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

 private:
  YieldBasis basis_;
};

}  // namespace mbts
