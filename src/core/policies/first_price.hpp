// Millennium's FirstPrice heuristic (§4): greedy by unit gain,
// yield_i / RPT_i — the expected yield per unit of resource per unit time if
// the task is started now. The paper's primary baseline for Figs. 3–7.
#pragma once

#include "core/policy.hpp"

namespace mbts {

class FirstPricePolicy final : public SchedulingPolicy {
 public:
  explicit FirstPricePolicy(YieldBasis basis = YieldBasis::kAtCompletion)
      : basis_(basis) {}
  std::string name() const override { return "FirstPrice"; }
  double priority(const Task& task, double rpt,
                  const MixView& mix) const override;

  // Unit gain reads nothing mix-varying, so the cached score is the score.
  bool cacheable() const override { return true; }
  ScoreCache make_cache(const Task& task, double rpt,
                        const MixView& mix) const override {
    return {priority(task, rpt, mix), 0.0, 0.0};
  }
  double priority_from_cache(const ScoreCache& cache, const Task&, double,
                             const MixView&) const override {
    return cache.a;
  }
  void batch_priority_from_cache(const ScoreCache* caches,
                                 const Task* const*, const double*,
                                 std::size_t n, const MixView&,
                                 double* out) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = caches[i].a;
  }

  // SoA kernels: the cached score lives in column a; the priority pass is
  // a straight copy.
  bool kernelizable() const override { return true; }
  void kernel_make_cache(const ScoreColumnsView& cols, const MixView& mix,
                         KernelVariant variant, double* a, double* b,
                         double* c) const override;
  void kernel_priority(const ScoreColumnsView& cols, const double* a,
                       const double* b, const double* c, const MixView& mix,
                       KernelVariant variant, double* out) const override;

 private:
  YieldBasis basis_;
};

}  // namespace mbts
