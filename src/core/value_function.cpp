#include "core/value_function.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

ValueFunction::ValueFunction(double max_value, double decay,
                             double penalty_bound)
    : ValueFunction(max_value, std::vector<DecaySegment>{{kInf, decay}},
                    penalty_bound) {}

ValueFunction::ValueFunction(double max_value,
                             std::vector<DecaySegment> segments,
                             double penalty_bound)
    : max_value_(max_value),
      penalty_bound_(penalty_bound),
      segments_(std::move(segments)) {
  MBTS_CHECK_MSG(penalty_bound >= 0.0, "penalty bound must be non-negative");
  MBTS_CHECK_MSG(!segments_.empty(), "at least one decay segment required");
  for (const DecaySegment& s : segments_) {
    MBTS_CHECK_MSG(s.rate >= 0.0, "decay rate must be non-negative");
    MBTS_CHECK_MSG(s.duration >= 0.0, "segment duration must be non-negative");
  }
  segments_.back().duration = kInf;  // last segment extends forever
  linear_rate_ = segments_.front().rate;

  // Precompute the expiry delay: the earliest delay beyond which no further
  // decay can ever happen — either the bound is reached, or every remaining
  // segment has rate zero.
  if (bounded()) {
    expire_delay_ = delay_for_drop(max_value_ + penalty_bound_);
  }
  if (segments_.back().rate == 0.0) {
    // Decay stops at the start of the trailing all-zero run of segments.
    double start = 0.0;
    double zero_from = 0.0;
    bool in_zero_run = false;
    for (const DecaySegment& s : segments_) {
      if (s.rate == 0.0) {
        if (!in_zero_run) {
          zero_from = start;
          in_zero_run = true;
        }
      } else {
        in_zero_run = false;
      }
      start += s.duration;
    }
    if (in_zero_run) expire_delay_ = std::min(expire_delay_, zero_from);
  }
}

ValueFunction ValueFunction::piecewise(double max_value,
                                       std::vector<DecaySegment> segments,
                                       double penalty_bound) {
  return ValueFunction(max_value, std::move(segments), penalty_bound);
}

ValueFunction ValueFunction::bounded_at_zero(double max_value, double decay) {
  return ValueFunction(max_value, decay, 0.0);
}

ValueFunction ValueFunction::unbounded(double max_value, double decay) {
  return ValueFunction(max_value, decay, kInf);
}

double ValueFunction::decay_at_delay_general(double delay) const {
  delay = std::max(delay, 0.0);
  if (expired_at_delay(delay)) return 0.0;
  double start = 0.0;
  for (const DecaySegment& s : segments_) {
    if (delay < start + s.duration) return s.rate;
    start += s.duration;
  }
  return segments_.back().rate;
}

double ValueFunction::yield_at_delay_general(double delay) const {
  delay = std::max(delay, 0.0);
  double drop = 0.0;
  double remaining = delay;
  for (const DecaySegment& s : segments_) {
    const double span = std::min(remaining, s.duration);
    drop += span * s.rate;
    remaining -= span;
    if (remaining <= 0.0) break;
  }
  return std::max(max_value_ - drop, -penalty_bound_);
}

double ValueFunction::delay_for_drop(double drop) const {
  if (drop <= 0.0) return 0.0;
  double spent = 0.0;
  double start = 0.0;
  for (const DecaySegment& s : segments_) {
    if (s.rate > 0.0) {
      const double capacity = s.duration * s.rate;  // inf * rate == inf
      if (spent + capacity >= drop) return start + (drop - spent) / s.rate;
      spent += capacity;
    }
    start += s.duration;
    if (start == kInf) break;
  }
  return kInf;
}

double ValueFunction::delay_to_zero() const {
  if (max_value_ <= 0.0) return 0.0;
  return delay_for_drop(max_value_);
}

std::string ValueFunction::to_string() const {
  std::ostringstream os;
  os << "value=" << max_value_;
  if (is_linear()) {
    os << " decay=" << decay();
  } else {
    os << " decay=[";
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (i) os << ", ";
      os << segments_[i].rate << '@' << segments_[i].duration;
    }
    os << ']';
  }
  os << " bound=";
  if (bounded())
    os << penalty_bound_;
  else
    os << "inf";
  return os.str();
}

}  // namespace mbts
