#include "core/mix.hpp"

namespace mbts {

void MixTracker::rebuild(SimTime now, std::vector<CompetitorInfo> infos,
                         bool any_bounded) {
  storage_ = std::move(infos);
  double total = 0.0;
  for (const auto& c : storage_) {
    if (c.time_to_expire > 0.0) total += c.decay;
  }
  view_.now = now;
  view_.discount_rate = discount_rate_;
  view_.total_live_decay = total;
  view_.competitors = storage_;
  view_.any_bounded = any_bounded;
}

}  // namespace mbts
