#include "core/mix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mbts {

void MixTracker::rebuild(SimTime now, std::vector<CompetitorInfo> infos,
                         bool any_bounded) {
  // Bulk snapshot: replaces all incremental registrations (their slots and
  // breakpoints are discarded; tasks must be re-add()ed to resume
  // incremental maintenance).
  competitors_ = std::move(infos);
  entries_.assign(competitors_.size(), Entry{});
  free_slots_.clear();
  breakpoints_ = {};
  live_ = competitors_.size();
  finite_expire_ = 0;
  candidate_ = false;
  double total = 0.0;
  for (const auto& c : competitors_) {
    if (c.time_to_expire > 0.0) total += c.decay;
  }
  total_ = total;
  dirty_ = false;
  view_.now = now;
  view_.discount_rate = discount_rate_;
  view_.total_live_decay = total_;
  view_.competitors = competitors_;
  view_.any_bounded = any_bounded;
}

void MixTracker::recompute_slot(Slot slot, SimTime now,
                                bool queue_breakpoint) {
  Entry& entry = entries_[slot];
  const Task& task = *entry.task;
  const ValueFunction& vf = task.value;
  const double delay = task.delay_at_completion(now);

  CompetitorInfo& info = competitors_[slot];
  info.id = task.id;
  // Instantaneous rate at the current accrued delay — identical to the
  // static decay for linear functions, but tracks the active segment of
  // variable-rate profiles.
  info.decay = vf.decay_at_delay(delay);
  const SimTime expire = task.expire_time();
  entry.expire_at = expire;
  info.time_to_expire =
      expire == kInf ? kInf : std::max(0.0, expire - now);

  if (!queue_breakpoint) return;
  // Next absolute time this task's instantaneous decay changes: the first
  // piecewise segment boundary past the current delay, or the expiry,
  // whichever comes first. Constant-rate unbounded functions never change.
  const double expire_delay = vf.delay_to_expire();
  double next_delay = kInf;
  if (expire_delay != kInf && delay < expire_delay) next_delay = expire_delay;
  if (!vf.is_linear()) {
    const auto& segments = vf.segments();
    double boundary = 0.0;
    for (std::size_t k = 0; k + 1 < segments.size(); ++k) {
      boundary += segments[k].duration;
      if (boundary > delay) {
        if (boundary < next_delay) next_delay = boundary;
        break;
      }
    }
  }
  if (next_delay == kInf) return;
  const double anchor = task.arrival + task.estimate();
  // Guarantee progress under floating-point rounding: a breakpoint must lie
  // strictly in the future or the refresh loop could spin on it.
  const double at =
      std::max(anchor + next_delay,
               std::nextafter(now, std::numeric_limits<double>::infinity()));
  breakpoints_.push(Breakpoint{at, slot, entry.generation});
}

MixTracker::Slot MixTracker::add(const Task& task, SimTime now) {
  drop_candidate();
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<Slot>(competitors_.size());
    competitors_.emplace_back();
    entries_.emplace_back();
  }
  Entry& entry = entries_[slot];
  entry.task = &task;
  ++entry.generation;
  recompute_slot(slot, now, /*queue_breakpoint=*/true);
  if (entry.expire_at != kInf) ++finite_expire_;
  ++live_;
  dirty_ = true;
  return slot;
}

void MixTracker::remove(Slot slot) {
  drop_candidate();
  Entry& entry = entries_[slot];
  MBTS_DCHECK(entry.task != nullptr);
  if (entry.expire_at != kInf) --finite_expire_;
  entry.task = nullptr;
  entry.expire_at = kInf;
  ++entry.generation;  // orphans any queued breakpoints for this slot
  competitors_[slot] = CompetitorInfo{kInvalidTask, 0.0, 0.0};
  free_slots_.push_back(slot);
  MBTS_DCHECK(live_ > 0);
  --live_;
  dirty_ = true;
}

void MixTracker::drop_candidate() {
  if (!candidate_) return;
  competitors_.pop_back();
  candidate_ = false;
  view_.competitors = competitors_;
}

void MixTracker::refresh_expiry_windows(SimTime now) {
  if (finite_expire_ == 0 || now == view_.now) return;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.task != nullptr && entry.expire_at != kInf)
      competitors_[i].time_to_expire = std::max(0.0, entry.expire_at - now);
  }
}

const MixView& MixTracker::refresh(SimTime now) {
  drop_candidate();
  while (!breakpoints_.empty() && breakpoints_.top().at <= now) {
    const Breakpoint b = breakpoints_.top();
    breakpoints_.pop();
    if (b.slot < entries_.size() && entries_[b.slot].task != nullptr &&
        entries_[b.slot].generation == b.generation) {
      recompute_slot(b.slot, now, /*queue_breakpoint=*/true);
      dirty_ = true;
    }
  }
  refresh_expiry_windows(now);
  if (dirty_) {
    // Slot-order re-sum: the canonical association. Incremental maintenance
    // never accumulates the total via running add/subtract, so it is
    // bit-identical to a from-scratch rebuild over the same slots.
    double total = 0.0;
    for (const auto& c : competitors_) {
      if (c.time_to_expire > 0.0) total += c.decay;
    }
    total_ = total;
    dirty_ = false;
  }
  view_.now = now;
  view_.discount_rate = discount_rate_;
  view_.total_live_decay = total_;
  view_.competitors = competitors_;
  view_.any_bounded = finite_expire_ > 0;
  return view_;
}

const MixView& MixTracker::refresh_with_candidate(SimTime now,
                                                  const Task& candidate) {
  refresh(now);
  CompetitorInfo info;
  info.id = candidate.id;
  info.decay =
      candidate.value.decay_at_delay(candidate.delay_at_completion(now));
  const SimTime expire = candidate.expire_time();
  bool cand_bounded = false;
  if (expire == kInf) {
    info.time_to_expire = kInf;
  } else {
    cand_bounded = true;
    info.time_to_expire = std::max(0.0, expire - now);
  }
  if (info.time_to_expire > 0.0)
    view_.total_live_decay = total_ + info.decay;
  view_.any_bounded = finite_expire_ > 0 || cand_bounded;
  competitors_.push_back(info);
  candidate_ = true;
  view_.competitors = competitors_;
  return view_;
}

void MixTracker::recompute_all(SimTime now) {
  drop_candidate();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].task != nullptr)
      recompute_slot(static_cast<Slot>(i), now, /*queue_breakpoint=*/false);
  }
  dirty_ = true;
}

bool MixTracker::consistent_with_rebuild(SimTime now) const {
  double total = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CompetitorInfo& c = competitors_[i];
    const Entry& entry = entries_[i];
    if (entry.task == nullptr) {
      if (c.id != kInvalidTask || c.decay != 0.0 || c.time_to_expire != 0.0)
        return false;
    } else {
      const Task& task = *entry.task;
      if (c.id != task.id) return false;
      if (c.decay != task.value.decay_at_delay(task.delay_at_completion(now)))
        return false;
      const SimTime expire = task.expire_time();
      const double tte =
          expire == kInf ? kInf : std::max(0.0, expire - now);
      if (c.time_to_expire != tte) return false;
    }
    if (c.time_to_expire > 0.0) total += c.decay;
  }
  return dirty_ || total == total_;
}

}  // namespace mbts
