// Synthetic trace generation (paper §4.1).
//
// The spec mirrors the paper's methodology: exponential (or normal, batched,
// for the Millennium experiments) inter-arrival times; exponential or normal
// durations; bimodal unit-value classes ("20% of jobs have a high
// value_i/runtime_i") with a configurable *value skew ratio*; decay rates
// either uniform across the mix or bimodal with a *decay skew ratio*;
// penalties bounded at zero, bounded at a multiple of value, or unbounded.
//
// The load factor — offered work per unit time over aggregate capacity — is
// the controlled variable: the mean inter-arrival gap is derived as
//   mean_gap = batch_size * mean_runtime / (processors * load_factor).
#pragma once

#include <cstdint>
#include <string>

#include "workload/distributions.hpp"
#include "workload/trace.hpp"

namespace mbts {

/// How arrivals are produced.
enum class ArrivalModel {
  /// Exponential gaps, one task per arrival (the §5.3/§6 experiments).
  kPoisson,
  /// Normal gaps, `batch_size` tasks per arrival (the Millennium / Fig. 3
  /// experiments: "16 jobs submitted in a batch on each arrival").
  kNormalBatch,
};

/// How penalties are bounded.
enum class PenaltyModel {
  kBoundedAtZero,   // Millennium convention: yield floors at 0
  kBoundedAtValue,  // penalty up to value_scale * max value
  kUnbounded,
};

struct WorkloadSpec {
  std::size_t num_jobs = 5000;
  std::size_t processors = 16;
  double load_factor = 1.0;

  ArrivalModel arrival_model = ArrivalModel::kPoisson;
  std::size_t batch_size = 1;
  /// Coefficient of variation of normal inter-arrival gaps (kNormalBatch).
  double arrival_cv = 0.25;

  DistSpec runtime = DistSpec::exponential(100.0);

  /// Unit value (value per unit of runtime); value_i = unit * runtime_i.
  BimodalSpec value_unit{.p_high = 0.2, .skew = 2.0, .low_mean = 1.0,
                         .cv = 0.25, .floor = 1e-3};

  /// Decay rate (value per unit delay). uniform_decay selects a single
  /// mix-wide constant equal to decay.mean(); otherwise bimodal classes.
  bool uniform_decay = false;
  BimodalSpec decay{.p_high = 0.2, .skew = 5.0, .low_mean = 0.2, .cv = 0.25,
                    .floor = 1e-4};

  PenaltyModel penalty = PenaltyModel::kUnbounded;
  /// Penalty bound as a multiple of max value (kBoundedAtValue only).
  double penalty_value_scale = 1.0;

  /// Runtime-misestimation extension (§4 future work): when > 0, each
  /// task's declared runtime is its true runtime times a mean-one lognormal
  /// factor with this sigma. The bid (value, decay anchor) is derived from
  /// the *declared* runtime — the client prices what it believes.
  double estimate_error_sigma = 0.0;

  /// Gang-scheduling extension: distribution of processor widths; samples
  /// are rounded to integers and clamped to [1, processors]. The paper's
  /// model is the default constant 1.
  DistSpec width = DistSpec::constant(1.0);

  /// Variable-rate extension (§3): when in (0, 1), each value function is a
  /// deadline-cliff profile instead of a straight line — it holds its full
  /// value for cliff_grace * (value/decay) units of delay, then decays at
  /// decay / (1 - cliff_grace). Every profile still reaches zero at the
  /// same delay as its linear counterpart, so mixes are comparable across
  /// grace settings. 0 selects the paper's linear form.
  double cliff_grace = 0.0;

  /// First task id in the generated trace (ids are sequential).
  TaskId first_id = 0;

  /// Derived mean inter-arrival gap for the configured load factor.
  double mean_gap() const;

  std::string to_string() const;
};

/// Generates a trace. Deterministic in (spec, rng state); the trace is
/// sorted by arrival with sequential ids from spec.first_id.
Trace generate_trace(const WorkloadSpec& spec, Xoshiro256& rng);

/// Convenience: derive the rng from (seed_sequence, replication).
Trace generate_trace(const WorkloadSpec& spec, const SeedSequence& seeds,
                     std::uint64_t replication);

}  // namespace mbts
