#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

DistSpec DistSpec::constant(double value) {
  DistSpec s;
  s.kind = Kind::kConstant;
  s.a = value;
  return s;
}

DistSpec DistSpec::uniform(double lo, double hi) {
  MBTS_CHECK_MSG(hi > lo, "uniform range must be non-empty");
  DistSpec s;
  s.kind = Kind::kUniform;
  s.a = lo;
  s.b = hi;
  return s;
}

DistSpec DistSpec::exponential(double mean) {
  MBTS_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
  DistSpec s;
  s.kind = Kind::kExponential;
  s.a = mean;
  return s;
}

DistSpec DistSpec::normal(double mean, double stddev) {
  MBTS_CHECK_MSG(stddev >= 0.0, "stddev must be non-negative");
  DistSpec s;
  s.kind = Kind::kNormal;
  s.a = mean;
  s.b = stddev;
  return s;
}

DistSpec DistSpec::lognormal(double mu, double sigma) {
  MBTS_CHECK_MSG(sigma >= 0.0, "sigma must be non-negative");
  DistSpec s;
  s.kind = Kind::kLogNormal;
  s.a = mu;
  s.b = sigma;
  return s;
}

double DistSpec::mean() const {
  switch (kind) {
    case Kind::kConstant:
      return a;
    case Kind::kUniform:
      return 0.5 * (a + b);
    case Kind::kExponential:
      return a;
    case Kind::kNormal:
      return a;
    case Kind::kLogNormal:
      return std::exp(a + 0.5 * b * b);
  }
  return 0.0;
}

std::string DistSpec::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConstant:
      os << "constant(" << a << ')';
      break;
    case Kind::kUniform:
      os << "uniform(" << a << ", " << b << ')';
      break;
    case Kind::kExponential:
      os << "exp(mean=" << a << ')';
      break;
    case Kind::kNormal:
      os << "normal(" << a << ", " << b << ')';
      break;
    case Kind::kLogNormal:
      os << "lognormal(mu=" << a << ", sigma=" << b << ')';
      break;
  }
  return os.str();
}

Sampler::Sampler(DistSpec spec) : spec_(spec) {}

double Sampler::raw_sample(Xoshiro256& rng) const {
  switch (spec_.kind) {
    case DistSpec::Kind::kConstant:
      return spec_.a;
    case DistSpec::Kind::kUniform:
      return rng.uniform(spec_.a, spec_.b);
    case DistSpec::Kind::kExponential: {
      // Inverse transform; 1 - u in (0, 1] avoids log(0).
      const double u = rng.uniform01();
      return -spec_.a * std::log(1.0 - u);
    }
    case DistSpec::Kind::kNormal: {
      // Box–Muller; one draw per call keeps the sampler stateless.
      const double u1 = std::max(rng.uniform01(), 1e-300);
      const double u2 = rng.uniform01();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) *
          std::cos(2.0 * std::numbers::pi * u2);
      return spec_.a + spec_.b * z;
    }
    case DistSpec::Kind::kLogNormal: {
      const double u1 = std::max(rng.uniform01(), 1e-300);
      const double u2 = rng.uniform01();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) *
          std::cos(2.0 * std::numbers::pi * u2);
      return std::exp(spec_.a + spec_.b * z);
    }
  }
  return 0.0;
}

double Sampler::sample(Xoshiro256& rng) const {
  if (spec_.kind == DistSpec::Kind::kConstant) return spec_.a;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = raw_sample(rng);
    if (x >= spec_.floor) return x;
  }
  // Pathological spec (e.g. normal with mean far below floor): clamp rather
  // than loop forever; generation-time validation should prevent this.
  return spec_.floor;
}

std::string BimodalSpec::to_string() const {
  std::ostringstream os;
  os << "bimodal(p_high=" << p_high << ", skew=" << skew
     << ", low_mean=" << low_mean << ", cv=" << cv << ')';
  return os.str();
}

namespace {
DistSpec class_normal(double mean, double cv, double floor) {
  DistSpec s = DistSpec::normal(mean, cv * mean);
  s.floor = floor;
  return s;
}
}  // namespace

BimodalSampler::BimodalSampler(BimodalSpec spec)
    : spec_(spec),
      low_(class_normal(spec.low_mean, spec.cv, spec.floor)),
      high_(class_normal(spec.skew * spec.low_mean, spec.cv, spec.floor)) {
  MBTS_CHECK_MSG(spec.p_high >= 0.0 && spec.p_high <= 1.0,
                 "p_high must be a probability");
  MBTS_CHECK_MSG(spec.skew >= 1.0, "skew ratio must be >= 1");
  MBTS_CHECK_MSG(spec.low_mean > 0.0, "low-class mean must be positive");
}

double BimodalSampler::sample(Xoshiro256& rng, bool* is_high) const {
  const bool high = rng.bernoulli(spec_.p_high);
  if (is_high != nullptr) *is_high = high;
  return high ? high_.sample(rng) : low_.sample(rng);
}

}  // namespace mbts
