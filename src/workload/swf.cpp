#include "workload/swf.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace mbts {

Trace load_swf(std::istream& in, const SwfImportOptions& options,
               Xoshiro256& rng) {
  const BimodalSampler value_sampler(options.value_unit);
  const BimodalSampler decay_sampler(options.decay);

  Trace trace;
  trace.description = "swf import";
  std::string line;
  std::size_t line_number = 0;
  TaskId next_id = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    if (const auto semi = line.find(';'); semi != std::string::npos)
      line.erase(semi);
    std::istringstream fields(line);
    std::vector<double> values;
    std::string token;
    while (fields >> token) {
      // Parse each whitespace-separated token fully. `>> double` would stop
      // at the first malformed token and silently drop the rest of the
      // line's fields — a corrupt record must fail loudly instead.
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      MBTS_CHECK_MSG(end != token.c_str() && *end == '\0',
                     "SWF line " + std::to_string(line_number) + ", field " +
                         std::to_string(values.size() + 1) +
                         ": malformed number '" + token + "'");
      values.push_back(v);
    }
    if (values.empty()) continue;
    MBTS_CHECK_MSG(values.size() >= 5,
                   "SWF line " + std::to_string(line_number) +
                       " has fewer than 5 fields");

    const double submit = values[1];
    const double runtime = values[3];
    double procs = values[4];
    if (values.size() >= 8 && values[7] > 0.0) procs = values[7];

    if (options.drop_nonpositive_runtime && runtime <= 0.0) continue;
    MBTS_CHECK_MSG(runtime > 0.0, "SWF line " + std::to_string(line_number) +
                                      " has non-positive runtime");

    Task task;
    task.id = next_id++;
    task.arrival = std::max(submit, 0.0);
    task.runtime = runtime;
    auto width = static_cast<std::size_t>(std::max(procs, 1.0));
    if (options.max_width > 0) width = std::min(width, options.max_width);
    task.width = width;

    const double unit_value = value_sampler.sample(rng);
    const double value =
        unit_value * task.runtime * static_cast<double>(task.width);
    const double decay = decay_sampler.sample(rng);
    switch (options.penalty) {
      case PenaltyModel::kBoundedAtZero:
        task.value = ValueFunction(value, decay, 0.0);
        break;
      case PenaltyModel::kBoundedAtValue:
        task.value = ValueFunction(value, decay,
                                   options.penalty_value_scale * value);
        break;
      case PenaltyModel::kUnbounded:
        task.value = ValueFunction(value, decay, kInf);
        break;
    }
    trace.tasks.push_back(task);
  }

  // SWF files are submit-ordered in practice, but the spec does not require
  // it; sort defensively (stable to keep equal-time job order).
  std::stable_sort(trace.tasks.begin(), trace.tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.arrival < b.arrival;
                   });
  // The limit truncates *after* sorting, so a limited import is the prefix
  // of the full sorted trace — cutting mid-file before the sort would keep
  // late arrivals that happen to appear early in the file.
  if (options.limit > 0 && trace.tasks.size() > options.limit)
    trace.tasks.resize(options.limit);
  const std::string problem = validate_trace(trace);
  MBTS_CHECK_MSG(problem.empty(), "invalid SWF trace: " + problem);
  return trace;
}

Trace load_swf_file(const std::string& path, const SwfImportOptions& options,
                    Xoshiro256& rng) {
  std::ifstream in(path);
  MBTS_CHECK_MSG(in.good(), "cannot open SWF file: " + path);
  Trace trace = load_swf(in, options, rng);
  trace.description = "swf import from " + path;
  return trace;
}

}  // namespace mbts
