// Task traces: the unit of input to every experiment.
#pragma once

#include <string>
#include <vector>

#include "core/task.hpp"

namespace mbts {

/// An arrival-ordered sequence of tasks plus provenance.
struct Trace {
  std::vector<Task> tasks;
  /// Human-readable description of the generating spec (for logs/CSV).
  std::string description;

  std::size_t size() const { return tasks.size(); }
  bool empty() const { return tasks.empty(); }
};

/// Aggregate properties of a trace, as generated (not as scheduled).
struct TraceStats {
  std::size_t jobs = 0;
  double span = 0.0;            // last arrival - first arrival
  double total_work = 0.0;      // sum of runtimes
  double total_value = 0.0;     // sum of max values
  double mean_runtime = 0.0;
  double mean_interarrival = 0.0;
  double mean_decay = 0.0;
  /// Offered load against `processors`: total_work / (span * processors).
  double offered_load = 0.0;
};

TraceStats compute_stats(const Trace& trace, std::size_t processors);

/// Verifies arrival ordering and per-task validity; returns "" when clean.
std::string validate_trace(const Trace& trace);

/// CSV round-trip (columns: id,arrival,runtime,value,decay,bound with bound
/// "inf" for unbounded penalties).
void save_trace_csv(const Trace& trace, const std::string& path);
Trace load_trace_csv(const std::string& path);

}  // namespace mbts
