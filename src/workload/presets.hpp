// Canonical workload mixes for the paper's experiments (Figs. 3–7).
//
// The paper specifies distribution *families* and skew ratios but not every
// scale parameter; the constants here (mean runtime 100, low-class unit
// value 1, low-class decay such that an average low-decay job loses its full
// value after ~5 runtimes of delay) are our calibration, recorded in
// EXPERIMENTS.md. All presets use a 16-processor site.
#pragma once

#include "workload/generator.hpp"

namespace mbts {
namespace presets {

inline constexpr std::size_t kProcessors = 16;
inline constexpr double kMeanRuntime = 100.0;

/// Two decay scales, calibrated so each experiment's comparison is neither
/// saturated nor degenerate (EXPERIMENTS.md records the reasoning):
///
/// kGentleDecay (figs 4–5): a typical low-value job (value ~100) decays to
/// zero after ~3300 time units (33 runtimes). Gentle enough that the
/// FirstPrice baseline stays profitable under unbounded penalties — the
/// paper's improvement percentages are only meaningful against a positive
/// baseline — while still losing enough yield for cost-aware policies to
/// recover 40–300%.
inline constexpr double kGentleDecay = 0.03;
/// kUrgentDecay (figs 3, 6, 7): value gone after ~500 time units (5
/// runtimes). Matches the paper's slack-threshold axis: slack is measured
/// in time units and typical slacks (PV/decay ~ 100/0.2 = 500) fall inside
/// the paper's -200..700 sweep.
inline constexpr double kUrgentDecay = 0.2;

/// Fig. 3: the Millennium study's task mix. Normal inter-arrival times and
/// durations, 16 jobs per batch arrival, uniform decay across the mix,
/// penalties bounded at zero, load factor 1.
WorkloadSpec millennium_mix(double value_skew, std::size_t num_jobs = 5000);

/// Figs. 4–5: exponential arrivals/durations, value skew 2, bimodal decay
/// with the given skew; penalty model selects the Fig. 4 (bounded at zero)
/// or Fig. 5 (unbounded) variant.
WorkloadSpec decay_skew_mix(double decay_skew, PenaltyModel penalty,
                            std::size_t num_jobs = 5000);

/// Figs. 6–7: exponential arrivals/durations, unbounded penalties, value
/// skew 3, decay skew 5; the load factor is the experiment's x-axis.
WorkloadSpec admission_mix(double load_factor, std::size_t num_jobs = 5000);

}  // namespace presets
}  // namespace mbts
