#include "workload/presets.hpp"

namespace mbts {
namespace presets {

WorkloadSpec millennium_mix(double value_skew, std::size_t num_jobs) {
  WorkloadSpec spec;
  spec.num_jobs = num_jobs;
  spec.processors = kProcessors;
  spec.load_factor = 1.0;
  spec.arrival_model = ArrivalModel::kNormalBatch;
  spec.batch_size = 16;
  spec.arrival_cv = 0.25;
  spec.runtime = DistSpec::normal(kMeanRuntime, 0.25 * kMeanRuntime);
  spec.runtime.floor = 1.0;
  spec.value_unit = {.p_high = 0.2, .skew = value_skew, .low_mean = 1.0,
                     .cv = 0.25, .floor = 1e-3};
  spec.uniform_decay = true;
  spec.decay = {.p_high = 0.0, .skew = 1.0, .low_mean = kUrgentDecay, .cv = 0.0,
                .floor = 1e-4};
  spec.penalty = PenaltyModel::kBoundedAtZero;
  return spec;
}

WorkloadSpec decay_skew_mix(double decay_skew, PenaltyModel penalty,
                            std::size_t num_jobs) {
  WorkloadSpec spec;
  spec.num_jobs = num_jobs;
  spec.processors = kProcessors;
  spec.load_factor = 1.0;
  spec.arrival_model = ArrivalModel::kPoisson;
  spec.runtime = DistSpec::exponential(kMeanRuntime);
  spec.runtime.floor = 1.0;
  spec.value_unit = {.p_high = 0.2, .skew = 2.0, .low_mean = 1.0, .cv = 0.25,
                     .floor = 1e-3};
  spec.uniform_decay = false;
  spec.decay = {.p_high = 0.2, .skew = decay_skew, .low_mean = kGentleDecay,
                .cv = 0.25, .floor = 1e-4};
  spec.penalty = penalty;
  return spec;
}

WorkloadSpec admission_mix(double load_factor, std::size_t num_jobs) {
  WorkloadSpec spec;
  spec.num_jobs = num_jobs;
  spec.processors = kProcessors;
  spec.load_factor = load_factor;
  spec.arrival_model = ArrivalModel::kPoisson;
  spec.runtime = DistSpec::exponential(kMeanRuntime);
  spec.runtime.floor = 1.0;
  spec.value_unit = {.p_high = 0.2, .skew = 3.0, .low_mean = 1.0, .cv = 0.25,
                     .floor = 1e-3};
  spec.uniform_decay = false;
  spec.decay = {.p_high = 0.2, .skew = 5.0, .low_mean = kUrgentDecay, .cv = 0.25,
                .floor = 1e-4};
  spec.penalty = PenaltyModel::kUnbounded;
  return spec;
}

}  // namespace presets
}  // namespace mbts
