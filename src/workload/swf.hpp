// Standard Workload Format (SWF) import.
//
// SWF is the de-facto interchange format of the Parallel Workloads Archive
// that the paper's cited trace studies draw on: one job per line, 18
// whitespace-separated fields, ';' comment/header lines. The paper's
// economy needs value functions that no real trace records (§4.1: "no
// traces from deployed user-centric batch scheduling systems are
// available"), so the importer takes the arrival times, runtimes, and
// processor widths from the SWF job stream and synthesizes values and
// decay rates from the same bimodal class model the generator uses.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/distributions.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace mbts {

/// How to turn SWF jobs into bids.
struct SwfImportOptions {
  /// Value and decay class models (same semantics as WorkloadSpec).
  BimodalSpec value_unit{.p_high = 0.2, .skew = 3.0, .low_mean = 1.0,
                         .cv = 0.25, .floor = 1e-3};
  BimodalSpec decay{.p_high = 0.2, .skew = 5.0, .low_mean = 0.2, .cv = 0.25,
                    .floor = 1e-4};
  PenaltyModel penalty = PenaltyModel::kUnbounded;
  double penalty_value_scale = 1.0;
  /// Clamp widths to this capacity (0 = keep as recorded).
  std::size_t max_width = 0;
  /// Skip jobs whose recorded runtime is <= 0 (cancelled/failed jobs).
  bool drop_nonpositive_runtime = true;
  /// Take at most this many jobs (0 = all).
  std::size_t limit = 0;
};

/// Parses an SWF stream. Recognized fields (1-based, per the SWF spec):
/// 1 job id, 2 submit time, 4 run time, 5 allocated processors, 8 requested
/// processors (preferred over 5 when positive). Lines starting with ';'
/// and blank lines are skipped. Malformed lines throw CheckError with the
/// line number.
Trace load_swf(std::istream& in, const SwfImportOptions& options,
               Xoshiro256& rng);

Trace load_swf_file(const std::string& path, const SwfImportOptions& options,
                    Xoshiro256& rng);

}  // namespace mbts
