// Samplers for synthetic workload generation (paper §4.1).
//
// Trace studies cited by the paper show exponential inter-arrival times are
// common in batch workloads; the Millennium experiments use normal
// distributions. Values and decay rates follow bimodal class distributions:
// a high class and a low class, normally distributed within each class, with
// the class-mean ratio called the *skew ratio*.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace mbts {

/// Declarative distribution description; converted to a sampler at
/// generation time so specs stay copyable/serializable.
struct DistSpec {
  enum class Kind { kConstant, kUniform, kExponential, kNormal, kLogNormal };

  Kind kind = Kind::kConstant;
  /// kConstant: a == value. kUniform: [a, b). kExponential: a == mean.
  /// kNormal: mean a, stddev b. kLogNormal: a, b are the underlying
  /// normal's mu and sigma.
  double a = 0.0;
  double b = 0.0;
  /// Samples below this are re-drawn (truncation keeps runtimes and
  /// inter-arrival gaps physical); ignored by kConstant.
  double floor = 1e-6;

  static DistSpec constant(double value);
  static DistSpec uniform(double lo, double hi);
  static DistSpec exponential(double mean);
  static DistSpec normal(double mean, double stddev);
  static DistSpec lognormal(double mu, double sigma);

  /// Nominal (untruncated) mean — used for load-factor calibration.
  double mean() const;

  std::string to_string() const;
};

/// Draws from the described distribution; truncated below at spec.floor by
/// rejection (bounded retries, then clamps).
class Sampler {
 public:
  explicit Sampler(DistSpec spec);

  double sample(Xoshiro256& rng) const;
  const DistSpec& spec() const { return spec_; }

 private:
  double raw_sample(Xoshiro256& rng) const;
  DistSpec spec_;
};

/// Two-class (bimodal) spec for unit values and decay rates: with
/// probability p_high the sample is normal around high_mean = skew *
/// low_mean, else normal around low_mean; within-class stddev is cv * mean.
struct BimodalSpec {
  double p_high = 0.2;
  double skew = 1.0;     // high-class mean / low-class mean
  double low_mean = 1.0;
  double cv = 0.25;      // within-class coefficient of variation
  double floor = 1e-6;

  /// Population mean across both classes.
  double mean() const { return (1.0 - p_high) * low_mean + p_high * skew * low_mean; }

  std::string to_string() const;
};

class BimodalSampler {
 public:
  explicit BimodalSampler(BimodalSpec spec);

  /// Returns the sampled value; *is_high (optional) reports the class.
  double sample(Xoshiro256& rng, bool* is_high = nullptr) const;
  const BimodalSpec& spec() const { return spec_; }

 private:
  BimodalSpec spec_;
  Sampler low_;
  Sampler high_;
};

}  // namespace mbts
