#include "workload/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace mbts {

TraceStats compute_stats(const Trace& trace, std::size_t processors) {
  TraceStats stats;
  stats.jobs = trace.size();
  if (trace.empty()) return stats;
  double first = trace.tasks.front().arrival;
  double last = first;
  double prev = first;
  double gaps = 0.0;
  for (const Task& t : trace.tasks) {
    first = std::min(first, t.arrival);
    last = std::max(last, t.arrival);
    gaps += t.arrival - prev;
    prev = t.arrival;
    stats.total_work += t.runtime;
    stats.total_value += t.value.max_value();
    stats.mean_runtime += t.runtime;
    stats.mean_decay += t.value.decay();
  }
  const double n = static_cast<double>(trace.size());
  stats.mean_runtime /= n;
  stats.mean_decay /= n;
  stats.span = last - first;
  stats.mean_interarrival = trace.size() > 1 ? gaps / (n - 1.0) : 0.0;
  if (stats.span > 0.0 && processors > 0)
    stats.offered_load =
        stats.total_work / (stats.span * static_cast<double>(processors));
  return stats;
}

std::string validate_trace(const Trace& trace) {
  double prev = -kInf;
  for (const Task& t : trace.tasks) {
    const std::string problem = validate_task(t);
    if (!problem.empty()) return t.to_string() + ": " + problem;
    if (t.arrival < prev) return t.to_string() + ": arrivals not sorted";
    prev = t.arrival;
  }
  return {};
}

void save_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  MBTS_CHECK_MSG(out.good(), "cannot write trace file: " + path);
  CsvWriter writer(out, {"id", "arrival", "runtime", "width", "value",
                         "decay", "bound"});
  for (const Task& t : trace.tasks) {
    writer.row({CsvWriter::field(t.id), CsvWriter::field(t.arrival),
                CsvWriter::field(t.runtime),
                CsvWriter::field(static_cast<std::uint64_t>(t.width)),
                CsvWriter::field(t.value.max_value()),
                CsvWriter::field(t.value.decay()),
                t.value.bounded() ? CsvWriter::field(t.value.penalty_bound())
                                  : std::string("inf")});
  }
}

Trace load_trace_csv(const std::string& path) {
  const CsvDocument doc = read_csv_file(path);
  const std::size_t c_id = doc.column("id");
  const std::size_t c_arrival = doc.column("arrival");
  const std::size_t c_runtime = doc.column("runtime");
  const std::size_t c_width = doc.column("width");
  const std::size_t c_value = doc.column("value");
  const std::size_t c_decay = doc.column("decay");
  const std::size_t c_bound = doc.column("bound");

  Trace trace;
  trace.description = "loaded from " + path;
  trace.tasks.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    Task t;
    t.id = std::strtoull(row[c_id].c_str(), nullptr, 10);
    t.arrival = std::strtod(row[c_arrival].c_str(), nullptr);
    t.runtime = std::strtod(row[c_runtime].c_str(), nullptr);
    t.width = static_cast<std::size_t>(
        std::strtoull(row[c_width].c_str(), nullptr, 10));
    const double value = std::strtod(row[c_value].c_str(), nullptr);
    const double decay = std::strtod(row[c_decay].c_str(), nullptr);
    const double bound = row[c_bound] == "inf"
                             ? kInf
                             : std::strtod(row[c_bound].c_str(), nullptr);
    t.value = ValueFunction(value, decay, bound);
    trace.tasks.push_back(t);
  }
  const std::string problem = validate_trace(trace);
  MBTS_CHECK_MSG(problem.empty(), "invalid trace in " + path + ": " + problem);
  return trace;
}

}  // namespace mbts
