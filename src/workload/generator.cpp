#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

double WorkloadSpec::mean_gap() const {
  MBTS_CHECK_MSG(load_factor > 0.0, "load factor must be positive");
  const double batch =
      arrival_model == ArrivalModel::kNormalBatch
          ? static_cast<double>(batch_size)
          : 1.0;
  // Offered work per task is runtime * width processor-seconds; the width
  // mean is 1 for the paper's model. (The clamp to [1, processors] at
  // sampling time makes this slightly approximate for wide spreads.)
  const double work_per_task = runtime.mean() * std::max(width.mean(), 1.0);
  return batch * work_per_task /
         (static_cast<double>(processors) * load_factor);
}

std::string WorkloadSpec::to_string() const {
  std::ostringstream os;
  os << "jobs=" << num_jobs << " procs=" << processors
     << " load=" << load_factor << " runtime=" << runtime.to_string()
     << " arrivals="
     << (arrival_model == ArrivalModel::kPoisson ? "poisson" : "normal-batch")
     << " batch=" << batch_size << " value=" << value_unit.to_string()
     << " decay=" << (uniform_decay ? "uniform:" : "") << decay.to_string()
     << " penalty=";
  switch (penalty) {
    case PenaltyModel::kBoundedAtZero:
      os << "bounded@0";
      break;
    case PenaltyModel::kBoundedAtValue:
      os << "bounded@" << penalty_value_scale << "x";
      break;
    case PenaltyModel::kUnbounded:
      os << "unbounded";
      break;
  }
  return os.str();
}

Trace generate_trace(const WorkloadSpec& spec, Xoshiro256& rng) {
  MBTS_CHECK_MSG(spec.num_jobs > 0, "trace must contain at least one job");
  MBTS_CHECK_MSG(spec.processors > 0, "spec needs processors");
  MBTS_CHECK_MSG(spec.batch_size > 0, "batch size must be positive");

  const Sampler runtime_sampler(spec.runtime);
  const Sampler width_sampler(spec.width);
  const BimodalSampler value_sampler(spec.value_unit);
  const BimodalSampler decay_sampler(spec.decay);
  const double uniform_decay_rate = spec.decay.mean();
  // Mean-one lognormal estimate error: mu = -sigma^2/2.
  const double est_sigma = spec.estimate_error_sigma;
  const Sampler estimate_error(
      est_sigma > 0.0
          ? DistSpec::lognormal(-0.5 * est_sigma * est_sigma, est_sigma)
          : DistSpec::constant(1.0));

  const double gap_mean = spec.mean_gap();
  DistSpec gap_spec =
      spec.arrival_model == ArrivalModel::kPoisson
          ? DistSpec::exponential(gap_mean)
          : DistSpec::normal(gap_mean, spec.arrival_cv * gap_mean);
  gap_spec.floor = 1e-9;
  const Sampler gap_sampler(gap_spec);

  const std::size_t batch =
      spec.arrival_model == ArrivalModel::kNormalBatch ? spec.batch_size : 1;

  Trace trace;
  trace.description = spec.to_string();
  trace.tasks.reserve(spec.num_jobs);

  double clock = 0.0;
  TaskId next_id = spec.first_id;
  while (trace.tasks.size() < spec.num_jobs) {
    clock += gap_sampler.sample(rng);
    const std::size_t remaining_jobs = spec.num_jobs - trace.tasks.size();
    const std::size_t count = std::min(batch, remaining_jobs);
    for (std::size_t k = 0; k < count; ++k) {
      Task t;
      t.id = next_id++;
      t.arrival = clock;
      t.runtime = runtime_sampler.sample(rng);
      t.width = static_cast<std::size_t>(std::clamp(
          std::llround(width_sampler.sample(rng)), 1LL,
          static_cast<long long>(spec.processors)));
      if (est_sigma > 0.0)
        t.declared_runtime =
            std::max(t.runtime * estimate_error.sample(rng), 1e-6);
      const double unit_value = value_sampler.sample(rng);
      // The client prices the resources it declared: width * declared
      // runtime (== runtime for the paper's width-1 exact-estimate model).
      const double value =
          unit_value * t.estimate() * static_cast<double>(t.width);
      const double decay = spec.uniform_decay
                               ? uniform_decay_rate
                               : decay_sampler.sample(rng);
      double bound = kInf;
      switch (spec.penalty) {
        case PenaltyModel::kBoundedAtZero:
          bound = 0.0;
          break;
        case PenaltyModel::kBoundedAtValue:
          bound = spec.penalty_value_scale * value;
          break;
        case PenaltyModel::kUnbounded:
          bound = kInf;
          break;
      }
      if (spec.cliff_grace > 0.0 && decay > 0.0 && value > 0.0) {
        MBTS_CHECK_MSG(spec.cliff_grace < 1.0, "cliff_grace must be < 1");
        const double time_to_zero = value / decay;
        const double grace = spec.cliff_grace * time_to_zero;
        const double steep = decay / (1.0 - spec.cliff_grace);
        t.value = ValueFunction::piecewise(
            value, {{grace, 0.0}, {kInf, steep}}, bound);
      } else {
        t.value = ValueFunction(value, decay, bound);
      }
      trace.tasks.push_back(t);
    }
  }

  MBTS_DCHECK(validate_trace(trace).empty());
  return trace;
}

Trace generate_trace(const WorkloadSpec& spec, const SeedSequence& seeds,
                     std::uint64_t replication) {
  Xoshiro256 rng = seeds.stream(0xBEEF, replication);
  return generate_trace(spec, rng);
}

}  // namespace mbts
