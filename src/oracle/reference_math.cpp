#include "oracle/reference_math.hpp"

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mbts::oracle {

RefCompetitor competitor_of(const Task& task, SimTime now) {
  RefCompetitor c;
  c.id = task.id;
  c.decay = task.value.decay_at_delay(task.delay_at_completion(now));
  const SimTime expire = task.expire_time();
  c.time_to_expire = expire == kInf ? kInf : std::max(0.0, expire - now);
  return c;
}

double present_value(double yield, double discount_rate, double horizon) {
  MBTS_CHECK(horizon >= 0.0);
  MBTS_CHECK(discount_rate >= 0.0);
  return yield / (1.0 + discount_rate * horizon);
}

double opportunity_cost(const Task& task, double rpt, const RefMixView& mix) {
  MBTS_CHECK(rpt >= 0.0);
  if (!mix.any_bounded) {
    // Eq. 5: no competitor ever stops decaying, so the aggregate minus the
    // task's own current rate is exact.
    const double own =
        task.value.decay_at_delay(task.delay_at_completion(mix.now));
    const double others = mix.total_live_decay - own;
    return std::max(others, 0.0) * rpt;
  }
  // Eq. 4: per-competitor, each term capped by the competitor's remaining
  // decay time, summed in competitor (slot) order.
  double cost = 0.0;
  for (const RefCompetitor& c : mix.competitors) {
    if (c.id == task.id) continue;
    const double window = std::min(rpt, c.time_to_expire);
    if (window > 0.0) cost += c.decay * window;
  }
  return cost;
}

double first_reward(const Task& task, double rpt, const RefMixView& mix,
                    double alpha) {
  MBTS_CHECK(alpha >= 0.0 && alpha <= 1.0);
  MBTS_CHECK(rpt > 0.0);
  const double yield = task.yield_at_completion(mix.now + rpt);
  const double pv = present_value(yield, mix.discount_rate, rpt);
  const double cost = opportunity_cost(task, rpt, mix);
  return (alpha * pv - (1.0 - alpha) * cost) /
         (rpt * static_cast<double>(task.width));
}

double ref_priority(const PolicySpec& spec, const Task& task, double rpt,
                    const RefMixView& mix) {
  MBTS_CHECK_MSG(spec.yield_basis == YieldBasis::kAtCompletion,
                 "reference model covers the paper's kAtCompletion basis only");
  switch (spec.kind) {
    case PolicySpec::Kind::kFcfs:
      return -task.arrival;
    case PolicySpec::Kind::kSrpt:
      return -rpt;
    case PolicySpec::Kind::kRandom: {
      // Stable random permutation: a hash of (seed, id).
      SplitMix64 sm(spec.seed ^ (task.id * 0x9e3779b97f4a7c15ULL));
      return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    }
    case PolicySpec::Kind::kSwpt:
      return task.value.decay_at_delay(task.delay_at_completion(mix.now)) /
             rpt;
    case PolicySpec::Kind::kFirstPrice:
      // §4 unit gain: yield per processor-second of remaining work.
      return task.yield_at_completion(mix.now + rpt) /
             (rpt * static_cast<double>(task.width));
    case PolicySpec::Kind::kPresentValue:
      return present_value(task.yield_at_completion(mix.now + rpt),
                           mix.discount_rate, rpt) /
             (rpt * static_cast<double>(task.width));
    case PolicySpec::Kind::kFirstReward:
      return first_reward(task, rpt, mix, spec.alpha);
  }
  MBTS_CHECK_MSG(false, "unknown policy kind");
  return 0.0;
}

double naive_completion(std::vector<double> proc_free,
                        const std::vector<RefPending>& ordered,
                        const Task& candidate, std::size_t position) {
  MBTS_CHECK_MSG(!proc_free.empty(), "need at least one processor");
  MBTS_CHECK(position <= ordered.size());
  // Keep the free times in a sorted array. A task of width w claims the w
  // earliest-free processors and starts when the last of them frees (the
  // w-th smallest value); its completion replaces the claimed entries.
  std::sort(proc_free.begin(), proc_free.end());
  double completion = 0.0;
  const auto place = [&](double rpt, std::size_t width) {
    MBTS_CHECK(width >= 1 && width <= proc_free.size());
    MBTS_CHECK(rpt > 0.0);
    const double start = proc_free[width - 1];
    completion = start + rpt;
    proc_free.erase(proc_free.begin(),
                    proc_free.begin() + static_cast<std::ptrdiff_t>(width));
    const auto at =
        std::lower_bound(proc_free.begin(), proc_free.end(), completion);
    proc_free.insert(at, width, completion);
  };
  for (std::size_t i = 0; i < position; ++i) {
    MBTS_CHECK(ordered[i].task != nullptr);
    place(ordered[i].rpt, ordered[i].task->width);
  }
  place(candidate.estimate(), candidate.width);
  return completion;
}

double admission_cost(const Task& candidate,
                      const std::vector<RefPending>& ranked,
                      std::size_t position, SimTime now, bool literal_eq8) {
  // Eq. 8: every task ranked behind the candidate decays for the chosen
  // window. Summed in rank order.
  double cost = 0.0;
  for (std::size_t i = position; i < ranked.size(); ++i) {
    const Task& behind = *ranked[i].task;
    const double window =
        literal_eq8 ? behind.estimate() : candidate.estimate();
    const double rate =
        behind.value.decay_at_delay(behind.delay_at_completion(now));
    cost += rate * window;
  }
  return cost;
}

RefAdmission slack_admission(const PolicySpec& spec, const Task& candidate,
                             const RefMixView& mix,
                             const std::vector<RefPending>& ranked,
                             std::vector<double> proc_free, double threshold,
                             bool literal_eq8, bool accept_all) {
  // The candidate slots in front of the first strictly-lower-priority task;
  // ties resolve behind existing tasks (they arrived earlier).
  const double cand_priority =
      ref_priority(spec, candidate, candidate.estimate(), mix);
  std::size_t position = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (cand_priority > ranked[i].score) {
      position = i;
      break;
    }
  }

  RefAdmission out;
  out.position = position;
  out.expected_completion =
      naive_completion(std::move(proc_free), ranked, candidate, position);
  out.expected_yield = candidate.yield_at_completion(out.expected_completion);
  if (accept_all) {
    out.slack = kInf;
    out.accept = true;
    return out;
  }

  const double cost =
      admission_cost(candidate, ranked, position, mix.now, literal_eq8);
  // Eq. 7 with the gain as present value over the projected wait.
  const double horizon = std::max(0.0, out.expected_completion - mix.now);
  const double pv = present_value(out.expected_yield, mix.discount_rate,
                                  horizon);
  const double net = pv - cost;
  const double decay = candidate.value.decay();
  if (decay == 0.0) {
    out.slack = net >= 0.0 ? kInf : -kInf;
  } else {
    out.slack = net / decay;
  }
  out.accept = out.slack >= threshold;
  return out;
}

}  // namespace mbts::oracle
