#include "oracle/reference_market.hpp"

#include <cmath>
#include <set>
#include <sstream>

namespace mbts::oracle {

namespace {

/// Exact (bit-level) double comparison, rendered with enough digits to show
/// one-ulp differences.
bool same_bits(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

template <typename T>
std::string mismatch(const std::string& what, T expected, T actual) {
  std::ostringstream os;
  os.precision(17);
  os << what << ": reference=" << expected << " optimized=" << actual;
  return os.str();
}

}  // namespace

std::vector<std::string> audit_market(Market& market, const MarketStats& stats,
                                      std::size_t expected_bids) {
  std::vector<std::string> findings;
  const auto check_count = [&](const std::string& what, std::size_t expected,
                               std::size_t actual) {
    if (expected != actual) findings.push_back(mismatch(what, expected, actual));
  };
  const auto check_double = [&](const std::string& what, double expected,
                                double actual) {
    if (!same_bits(expected, actual))
      findings.push_back(mismatch(what, expected, actual));
  };

  // --- Broker history recount ------------------------------------------
  std::size_t primary = 0, rejected_raw = 0, unaffordable = 0, awarded = 0;
  std::size_t rebid_entries = 0, re_awards = 0;
  for (const NegotiationResult& r : market.broker().history()) {
    if (r.rebid) {
      ++rebid_entries;
      if (r.awarded_site) ++re_awards;
      continue;
    }
    ++primary;
    if (r.awarded_site) {
      ++awarded;
    } else {
      ++rejected_raw;
      if (r.unaffordable) ++unaffordable;
    }
  }
  check_count("bids (primary negotiation entries)", expected_bids, primary);
  check_count("stats.bids", expected_bids, stats.bids);
  check_count("stats.awarded", awarded, stats.awarded);
  check_count("stats.rejected_everywhere", rejected_raw - unaffordable,
              stats.rejected_everywhere);
  check_count("stats.unaffordable", unaffordable, stats.unaffordable);
  check_count("stats.rebids", rebid_entries, stats.rebids);
  check_count("stats.re_awards", re_awards, stats.re_awards);

  // --- Contract books: settlement re-derivation ------------------------
  const auto& sites = market.sites();
  double total_revenue = 0.0;
  double total_agreed = 0.0;
  std::size_t violated = 0, breached = 0;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const SiteAgent& site = *sites[s];
    const auto& records = site.scheduler().records();
    double site_revenue = 0.0;
    for (const Contract& contract : site.contracts()) {
      total_agreed += contract.agreed_price;
      if (contract.violated()) ++violated;
      if (contract.breached) ++breached;
      if (contract.settled) site_revenue += contract.settled_price;

      std::ostringstream tag;
      tag << "site " << s << " task " << contract.task;

      if (contract.breached) {
        // A breach settles at the crash instant, at the task's breach
        // yield; the scheduler must hold a matching kFailed record.
        bool matched = false;
        for (const TaskRecord& record : records) {
          if (record.task.id != contract.task ||
              record.outcome != TaskOutcome::kFailed ||
              !same_bits(record.completion, contract.actual_completion))
            continue;
          matched = true;
          if (!same_bits(contract.settled_price,
                         record.task.breach_yield(record.completion)))
            findings.push_back(
                tag.str() + ": breached contract settled off the task's "
                            "breach yield");
          break;
        }
        if (!matched)
          findings.push_back(tag.str() +
                             ": breached contract has no matching kFailed "
                             "record at the breach instant");
        if (!contract.settled)
          findings.push_back(tag.str() + ": breached but not settled");
        continue;
      }

      // Delivered (or never-finished) contract: settle() binds it to the
      // *last* finished record of the task id.
      const TaskRecord* finished = nullptr;
      for (const TaskRecord& record : records) {
        if (record.task.id == contract.task &&
            (record.outcome == TaskOutcome::kCompleted ||
             record.outcome == TaskOutcome::kDropped))
          finished = &record;
      }
      if (contract.settled) {
        if (finished == nullptr) {
          findings.push_back(tag.str() +
                             ": settled contract has no finished record");
          continue;
        }
        if (!same_bits(contract.actual_completion, finished->completion))
          findings.push_back(tag.str() +
                             ": settled at a time that is not the record's "
                             "completion");
        const double expected_price =
            std::min(contract.agreed_price, finished->realized_yield);
        if (!same_bits(contract.settled_price, expected_price))
          findings.push_back(mismatch(
              tag.str() + ": settled price != min(agreed, realized)",
              expected_price, contract.settled_price));
      } else {
        // After a drained run every surviving contract must have settled:
        // delivered tasks settle normally, crashed ones as breaches.
        findings.push_back(tag.str() + ": contract never settled");
      }
    }
    if (s < stats.site_revenue.size())
      check_double("site_revenue[" + std::to_string(s) + "]", site_revenue,
                   stats.site_revenue[s]);
    total_revenue += site_revenue;
  }
  check_count("stats.site_revenue size", sites.size(),
              stats.site_revenue.size());
  check_double("stats.total_revenue", total_revenue, stats.total_revenue);
  check_double("stats.total_agreed", total_agreed, stats.total_agreed);
  check_count("stats.violated_contracts", violated, stats.violated_contracts);
  check_count("stats.breached_contracts", breached, stats.breached_contracts);

  // --- Double-entry budget conservation --------------------------------
  // Every charge that survived (was not refunded by a breach or an award
  // refusal) belongs to exactly one non-breached contract, so for each
  // constrained client: ledger total spent == sum of surviving agreed
  // prices. Tolerance-based: the ledger accumulated the cancelled
  // charge/refund pairs in chronological order.
  std::set<ClientId> clients;
  for (const NegotiationResult& r : market.broker().history())
    clients.insert(r.bid.client);
  for (ClientId client : clients) {
    if (!market.ledger().is_constrained(client)) continue;
    double surviving = 0.0;
    for (const auto& site : sites)
      for (const Contract& contract : site->contracts())
        if (contract.client == client && !contract.breached)
          surviving += contract.agreed_price;
    const double spent = market.ledger().total_spent(client);
    const double tol = 1e-6 * std::max(1.0, std::fabs(surviving));
    if (std::fabs(spent - surviving) > tol) {
      std::ostringstream os;
      os.precision(17);
      os << "client " << client << ": budget not conserved — ledger spent "
         << spent << " but surviving contracts total " << surviving;
      findings.push_back(os.str());
    }
  }

  return findings;
}

}  // namespace mbts::oracle
