// Naive reference implementations of the paper's equations (Eq. 3-8).
//
// Everything in mbts::oracle is deliberately slow and allocation-happy: each
// function recomputes its inputs from scratch, straight from the equations as
// printed, with no caches, no incremental state, and no truncation. The
// optimized stack (MixTracker, ScoreCache, batched scoring, admission prefix
// truncation) must agree with these functions BIT FOR BIT — the differential
// harness (tests/differential, tools/diff_fuzz) runs both sides on randomized
// scenarios and fails on the first diverging bit.
//
// Bit-level agreement constrains the reference in one deliberate way: where
// the paper gives two algebraically-equal forms (the Eq. 4 per-competitor sum
// vs the Eq. 5 aggregate), floating-point addition is not associative, so the
// reference commits to the same form selection and the same summation order
// as the spec'd behavior (aggregate when no competitor is bounded, summing
// live decay in mix-slot order). Those choices are part of the observable
// contract, not an implementation detail borrowed from the optimized code.
#pragma once

#include <cstddef>
#include <vector>

#include "core/policy.hpp"
#include "core/task.hpp"
#include "core/types.hpp"

namespace mbts::oracle {

/// One competitor as the reference cost model sees it. Mirrors the shape of
/// the data (a task decaying at `decay` for another `time_to_expire` units),
/// recomputed from the Task on every evaluation.
struct RefCompetitor {
  TaskId id = kInvalidTask;
  double decay = 0.0;
  double time_to_expire = kInf;
};

/// A from-scratch snapshot of the task mix at one instant. `competitors` is
/// in mix-slot order (freed slots present as zeroed entries) because the
/// slot-order sum is the canonical association for total_live_decay; a
/// transient bid candidate, when present, is always the last entry.
struct RefMixView {
  SimTime now = 0.0;
  double discount_rate = 0.0;
  double total_live_decay = 0.0;
  bool any_bounded = false;
  std::vector<RefCompetitor> competitors;
};

/// Recomputes one competitor entry from its task at `now` (Eq. 1/2 applied
/// to the decay profile; no cached breakpoints).
RefCompetitor competitor_of(const Task& task, SimTime now);

/// Eq. 3: PV = yield / (1 + discount_rate * horizon).
double present_value(double yield, double discount_rate, double horizon);

/// Eq. 4/5: aggregate yield decline inflicted on the rest of the mix by
/// running `task` for `rpt` units. Uses the Eq. 5 aggregate form when no
/// competitor's value function expires, else the Eq. 4 per-competitor sum
/// (in competitor order) with each term capped at the competitor's remaining
/// decay time.
double opportunity_cost(const Task& task, double rpt, const RefMixView& mix);

/// Eq. 6: reward_i = (alpha * PV_i - (1 - alpha) * cost_i) / (RPT_i * w_i),
/// with PV_i discounted over the task's own remaining run time.
double first_reward(const Task& task, double rpt, const RefMixView& mix,
                    double alpha);

/// The priority index of any PolicySpec, recomputed naively (the policy
/// registry in src/core/policies is never consulted). Only the paper's
/// kAtCompletion yield basis is supported.
double ref_priority(const PolicySpec& spec, const Task& task, double rpt,
                    const RefMixView& mix);

/// One pending task in a reference candidate schedule, highest priority
/// first.
struct RefPending {
  const Task* task = nullptr;
  double rpt = 0.0;
  double score = 0.0;
};

/// Greedy list schedule over a sorted free-time array (no heap): each item
/// claims the `width` earliest-free processors and starts when the last of
/// them frees. Returns the completion of `ordered[index]`. The multiset of
/// pop/push values is identical to a binary-heap implementation, so the
/// result is bit-identical to core/schedule.cpp's completion_of.
double naive_completion(std::vector<double> proc_free,
                        const std::vector<RefPending>& ordered,
                        const Task& candidate, std::size_t position);

/// Outcome of the reference admission evaluation (Eq. 7/8).
struct RefAdmission {
  bool accept = false;
  std::size_t position = 0;
  SimTime expected_completion = 0.0;
  double expected_yield = 0.0;
  double slack = 0.0;
};

/// Eq. 8 cost: decay inflicted on every task ranked behind the candidate.
/// `literal_eq8` charges decay_j * runtime_j as printed; the default charges
/// decay_j * runtime_i (see DESIGN.md section 4).
double admission_cost(const Task& candidate,
                      const std::vector<RefPending>& ranked,
                      std::size_t position, SimTime now, bool literal_eq8);

/// Eq. 7/8 evaluated from scratch: ranks the candidate into `ranked` (ties
/// go behind earlier arrivals), projects its completion with
/// naive_completion, and derives the slack
///   slack_i = (PV_i - cost_i) / decay_i
/// with PV discounted over the projected wait. `threshold` is the accept
/// cutoff; pass `accept_all` to model the AcceptAll policy (slack = kInf,
/// always accept, no Eq. 8 evaluation).
RefAdmission slack_admission(const PolicySpec& spec, const Task& candidate,
                             const RefMixView& mix,
                             const std::vector<RefPending>& ranked,
                             std::vector<double> proc_free, double threshold,
                             bool literal_eq8, bool accept_all);

}  // namespace mbts::oracle
