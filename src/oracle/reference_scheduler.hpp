// A from-scratch reference site scheduler for differential testing.
//
// This is the naive model the optimized SiteScheduler is checked against:
// a list-based discrete-event simulator that rescores the entire mix with
// oracle::ref_priority on every decision, full-sorts every ranking (no
// nth_element, no adaptive repair sort, no ScoreCache, no MixTracker, no
// admission prefix truncation), and scans a plain vector for the next event
// (no binary heap, no tombstones). Every mix snapshot is recomputed from the
// task set from scratch.
//
// The contract is BIT-level agreement: run the same submissions and outages
// through both schedulers and every TaskRecord field and every RunStats
// field must match exactly. The reference therefore fixes the same
// observable tie-breaking rules the optimized scheduler documents —
// (score desc, running first, id asc) dispatch ranking, ties behind earlier
// arrivals at admission, ascending-id crash drains, completions before
// faults before arrivals before dispatches at one instant — but arrives at
// them by the straightforward O(n^2) route.
//
// Two shared components are reused rather than reimplemented: Task/
// ValueFunction (the data model under test is the *decision* logic, and
// Eq. 1/2 evaluation has its own direct unit tests) and ProcessorPool (a
// busy counter plus a time-weighted integral with no optimized machinery).
// The SimEngine is NOT reused — the reference runs its own event list; the
// engine itself is differentially checked by oracle::EventOrderChecker.
#pragma once

#include <vector>

#include "core/scheduler.hpp"
#include "oracle/reference_math.hpp"
#include "sim/fault.hpp"

namespace mbts::oracle {

/// Reference-site configuration. `scheduler` is interpreted with the same
/// semantics as SiteScheduler (drop_expired and RescorePolicy::kAtEnqueue
/// are not modeled and are rejected).
struct RefSiteConfig {
  SchedulerConfig scheduler;
  PolicySpec policy;
  /// false models AcceptAllAdmission (always accept, slack = kInf).
  bool use_slack_admission = false;
  SlackAdmissionConfig admission;
  CrashMode crash_mode = CrashMode::kKill;
  /// Differential-harness self-test knob; keep 0 for real checks. A nonzero
  /// value skews the reference's *believed* remaining time by this relative
  /// amount — simulating a stale score/remaining-time cache on one side of
  /// the diff — and must make the harness report (and shrink) a divergence.
  double self_test_rpt_skew = 0.0;
};

/// One bid reaching the site: `at` is the engine instant of the submit call
/// (TaskRecord::submitted_at on the optimized side). Submissions at equal
/// `at` execute in vector order, which must be the optimized site's record
/// order.
struct RefSubmission {
  Task task;
  SimTime at = 0.0;
};

/// One site outage window, in plan order.
struct RefOutage {
  SimTime down_at = 0.0;
  SimTime up_at = 0.0;
};

struct RefSiteResult {
  /// Per-task records in submission order; field-for-field comparable with
  /// SiteScheduler::records().
  std::vector<TaskRecord> records;
  /// Bit-comparable with SiteScheduler::stats().
  RunStats stats;
  /// Tasks killed by crashes, in kill order (chronological, ascending id
  /// within one crash).
  std::vector<Task> killed;
  /// Final clock of the reference event loop.
  SimTime end_time = 0.0;
};

/// Runs the reference scheduler over the given submissions and outages.
/// `stats_at` is the instant utilization is evaluated at (the optimized
/// side's engine.now() when stats() was taken); pass a negative value to use
/// the reference loop's own final event time.
RefSiteResult simulate_site(const RefSiteConfig& config,
                            const std::vector<RefSubmission>& submissions,
                            const std::vector<RefOutage>& outages,
                            SimTime stats_at = -1.0);

}  // namespace mbts::oracle
