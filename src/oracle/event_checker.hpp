// Differential checker for the SimEngine event queue.
//
// Attach one to an engine (SimEngine::set_observer) and it replays the
// exact schedule/cancel/execute stream through a naive reference queue — a
// plain vector scanned linearly for the (time, priority, id) minimum. Every
// executed event must be that minimum, carry the EventKind it was scheduled
// under, and the clock must be monotone; anything else means the active
// queue backend (tombstoned binary heap or indexed 4-ary heap) dropped,
// duplicated, retagged, or reordered an event.
//
// Violations are collected, not thrown, so a differential run can report
// them alongside scheduler/market divergences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace mbts::oracle {

class EventOrderChecker : public EventObserver {
 public:
  void on_schedule(EventId id, double t, int priority,
                   EventKind kind) override;
  void on_cancel(EventId id) override;
  void on_execute(EventId id, double t, int priority,
                  EventKind kind) override;

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t executed() const { return executed_; }
  std::size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    EventId id;
    double t;
    int priority;
    EventKind kind;
  };

  void violation(const std::string& message);

  std::vector<Pending> pending_;
  std::vector<std::string> violations_;
  std::uint64_t executed_ = 0;
  double clock_ = 0.0;
  bool saw_execute_ = false;
};

}  // namespace mbts::oracle
