#include "oracle/diff.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "core/admission.hpp"
#include "core/scheduler.hpp"
#include "market/market.hpp"
#include "oracle/event_checker.hpp"
#include "oracle/reference_market.hpp"
#include "oracle/reference_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace mbts::oracle {

namespace {

bool same_bits(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// First-divergence collector: every check is a no-op once one fired, so
/// `detail` always names the earliest mismatch in comparison order.
struct Cmp {
  DiffReport& report;
  std::string prefix;

  void fail(const std::string& what, const std::string& ref,
            const std::string& opt) {
    report.diverged = true;
    report.detail =
        prefix + " " + what + ": reference=" + ref + " optimized=" + opt;
  }

  template <typename T>
  void num(const std::string& what, T ref, T opt) {
    if (report.diverged || ref == opt) return;
    fail(what, std::to_string(ref), std::to_string(opt));
  }

  void bits(const std::string& what, double ref, double opt) {
    if (report.diverged || same_bits(ref, opt)) return;
    fail(what, fmt(ref), fmt(opt));
  }

  void summary(const std::string& what, const Summary& ref,
               const Summary& opt) {
    num(what + ".count", ref.count(), opt.count());
    bits(what + ".mean", ref.mean(), opt.mean());
    bits(what + ".variance", ref.variance(), opt.variance());
    bits(what + ".min", ref.min(), opt.min());
    bits(what + ".max", ref.max(), opt.max());
  }
};

void compare_records(const std::string& site, const std::deque<TaskRecord>& opt,
                     const std::vector<TaskRecord>& ref, DiffReport& report) {
  if (report.diverged) return;
  Cmp cmp{report, site};
  cmp.num("record count", ref.size(), opt.size());
  for (std::size_t i = 0; i < ref.size() && !report.diverged; ++i) {
    Cmp rec{report, site + " record " + std::to_string(i) + " (task " +
                        std::to_string(ref[i].task.id) + ")"};
    rec.num("task id", ref[i].task.id, opt[i].task.id);
    rec.num("outcome", static_cast<int>(ref[i].outcome),
            static_cast<int>(opt[i].outcome));
    rec.bits("submitted_at", ref[i].submitted_at, opt[i].submitted_at);
    rec.bits("quoted_completion", ref[i].quoted_completion,
             opt[i].quoted_completion);
    rec.bits("quoted_yield", ref[i].quoted_yield, opt[i].quoted_yield);
    rec.bits("slack", ref[i].slack, opt[i].slack);
    rec.bits("first_start", ref[i].first_start, opt[i].first_start);
    rec.bits("completion", ref[i].completion, opt[i].completion);
    rec.bits("realized_yield", ref[i].realized_yield, opt[i].realized_yield);
    rec.num("preemptions", ref[i].preemptions, opt[i].preemptions);
  }
}

void compare_stats(const std::string& site, const RunStats& opt,
                   const RunStats& ref, DiffReport& report) {
  if (report.diverged) return;
  Cmp cmp{report, site + " stats"};
  cmp.num("submitted", ref.submitted, opt.submitted);
  cmp.num("accepted", ref.accepted, opt.accepted);
  cmp.num("rejected", ref.rejected, opt.rejected);
  cmp.num("completed", ref.completed, opt.completed);
  cmp.num("dropped", ref.dropped, opt.dropped);
  cmp.num("failed", ref.failed, opt.failed);
  cmp.num("preemptions", ref.preemptions, opt.preemptions);
  cmp.num("dispatches", ref.dispatches, opt.dispatches);
  cmp.num("crashes", ref.crashes, opt.crashes);
  cmp.num("checkpoints", ref.checkpoints, opt.checkpoints);
  cmp.bits("total_yield", ref.total_yield, opt.total_yield);
  cmp.bits("yield_rate", ref.yield_rate, opt.yield_rate);
  cmp.bits("first_arrival", ref.first_arrival, opt.first_arrival);
  cmp.bits("last_completion", ref.last_completion, opt.last_completion);
  cmp.bits("utilization", ref.utilization, opt.utilization);
  cmp.summary("delay", ref.delay, opt.delay);
  cmp.summary("realized_yield", ref.realized_yield, opt.realized_yield);
}

void check_events(const EventOrderChecker& checker, DiffReport& report) {
  if (report.diverged || checker.violations().empty()) return;
  report.diverged = true;
  report.detail = "event order: " + checker.violations().front();
}

WorkloadSpec workload_of(const Scenario& sc) {
  WorkloadSpec spec;
  spec.num_jobs = sc.n_tasks;
  // Load is offered against aggregate capacity, so the market's total
  // processor count calibrates the gap.
  spec.processors = sc.processors * (sc.market ? sc.n_sites : 1);
  spec.load_factor = sc.load_factor;
  spec.penalty = sc.penalty;
  spec.penalty_value_scale = sc.penalty_value_scale;
  spec.uniform_decay = sc.uniform_decay;
  spec.decay.skew = sc.decay_skew;
  spec.estimate_error_sigma = sc.estimate_error_sigma;
  if (sc.max_width > 1)
    spec.width = DistSpec::uniform(1.0, static_cast<double>(sc.max_width));
  return spec;
}

SchedulerConfig sched_config(const Scenario& sc) {
  SchedulerConfig config;
  config.processors = sc.processors;
  config.preemption = sc.preemption;
  config.rescore = RescorePolicy::kFresh;
  config.discount_rate = sc.discount_rate;
  config.drop_expired = false;
  config.mix_full_rebuild = sc.mix_full_rebuild;
  config.score_kernels =
      sc.kernels ? ScoreKernelMode::kExact : ScoreKernelMode::kOff;
  return config;
}

PolicySpec policy_spec(const Scenario& sc) {
  PolicySpec spec;
  spec.kind = sc.policy;
  spec.alpha = sc.alpha;
  spec.seed = sc.seed ^ 0x9e37ULL;  // decorrelate kRandom from the trace
  return spec;
}

/// Sites share every knob except the admission threshold, which steps up
/// per site so multi-site scenarios exercise heterogeneous admission.
constexpr double kSiteThresholdStep = 40.0;

RefSiteConfig ref_config(const Scenario& sc, std::size_t site,
                         const SelfTest& self_test) {
  RefSiteConfig config;
  config.scheduler = sched_config(sc);
  config.policy = policy_spec(sc);
  config.use_slack_admission = sc.use_slack_admission;
  config.admission.threshold =
      sc.threshold + kSiteThresholdStep * static_cast<double>(site);
  config.admission.literal_eq8 = sc.literal_eq8;
  config.crash_mode = sc.crash_mode;
  config.self_test_rpt_skew = self_test.rpt_skew;
  return config;
}

DiffReport run_single_site_diff(const Scenario& sc, const SelfTest& self_test) {
  DiffReport report;
  const Trace trace = generate_trace(workload_of(sc), SeedSequence(sc.seed), 0);

  SimEngine engine;
  EventOrderChecker checker;
  engine.set_observer(&checker);

  std::unique_ptr<AdmissionPolicy> admit;
  if (sc.use_slack_admission)
    admit = std::make_unique<SlackAdmission>(
        SlackAdmissionConfig{sc.threshold, sc.literal_eq8});
  else
    admit = std::make_unique<AcceptAllAdmission>();
  SiteScheduler site(engine, sched_config(sc), make_policy(policy_spec(sc)),
                     std::move(admit));
  site.inject(trace.tasks);

  // Fault wiring mirrors Market::run: plan horizon is the arrival span, the
  // plan and timeout streams use the same well-known keys.
  std::vector<RefOutage> outages;
  std::unique_ptr<FaultInjector> injector;
  if (sc.faults) {
    FaultConfig fc;
    fc.outage_rate = sc.outage_rate;
    fc.mean_outage = sc.mean_outage;
    fc.quote_timeout_prob = 0.0;  // no broker to lose quotes in this mode
    fc.crash_mode = sc.crash_mode;
    double horizon = 0.0;
    for (const Task& task : trace.tasks)
      horizon = std::max(horizon, task.arrival);
    const SeedSequence seeds(sc.seed);
    FaultPlan plan =
        FaultPlan::generate(fc, 1, horizon, seeds.stream(0xFA017));
    for (const SiteOutage& outage : plan.outages)
      outages.push_back(RefOutage{outage.down_at, outage.up_at});
    if (!plan.empty()) {
      injector = std::make_unique<FaultInjector>(engine, std::move(plan), 1,
                                                 0.0, seeds.stream(0x71E0));
      injector->arm(
          [&site, &sc](SiteId, const SiteOutage&) { site.crash(sc.crash_mode); },
          [&site](SiteId) { site.recover(); });
    }
  }

  engine.run();

  std::vector<RefSubmission> submissions;
  submissions.reserve(site.records().size());
  for (const TaskRecord& record : site.records())
    submissions.push_back(RefSubmission{record.task, record.submitted_at});
  const RefSiteResult ref = simulate_site(ref_config(sc, 0, self_test),
                                          submissions, outages, engine.now());

  compare_records("site 0", site.records(), ref.records, report);
  compare_stats("site 0", site.stats(), ref.stats, report);
  check_events(checker, report);
  return report;
}

DiffReport run_market_diff(const Scenario& sc, const SelfTest& self_test) {
  DiffReport report;
  const Trace trace = generate_trace(workload_of(sc), SeedSequence(sc.seed), 0);

  MarketConfig mc;
  for (std::size_t s = 0; s < sc.n_sites; ++s) {
    SiteAgentConfig agent;
    agent.id = static_cast<SiteId>(s);
    agent.name = "site" + std::to_string(s);
    agent.scheduler = sched_config(sc);
    agent.policy = policy_spec(sc);
    agent.use_slack_admission = sc.use_slack_admission;
    agent.admission.threshold =
        sc.threshold + kSiteThresholdStep * static_cast<double>(s);
    agent.admission.literal_eq8 = sc.literal_eq8;
    mc.sites.push_back(agent);
  }
  mc.strategy = sc.strategy;
  mc.pricing = sc.pricing;
  if (sc.budgets)
    mc.client_budgets[0] = ClientBudget{2500.0, 800.0};
  mc.rng_seed = sc.seed;
  mc.shards = sc.shards;
  mc.epoch_batching = sc.batching;
  if (sc.faults) {
    mc.faults.outage_rate = sc.outage_rate;
    mc.faults.mean_outage = sc.mean_outage;
    mc.faults.quote_timeout_prob = sc.quote_timeout_prob;
    mc.faults.crash_mode = sc.crash_mode;
  }

  Market market(mc);
  EventOrderChecker checker;
  market.engine().set_observer(&checker);
  // Sharded runs get one checker per member engine too: each shard worker
  // executes its members serially and the epoch barrier orders every
  // observer call against the coordinator, so per-engine checkers stay
  // race-free.
  std::vector<std::unique_ptr<EventOrderChecker>> site_checkers;
  if (market.sharded()) {
    for (std::size_t s = 0; s < sc.n_sites; ++s) {
      site_checkers.push_back(std::make_unique<EventOrderChecker>());
      market.site_engine(s).set_observer(site_checkers.back().get());
    }
  }
  market.inject(trace);
  const MarketStats stats = market.run();

  // Replay each site's recorded bid stream through the reference scheduler.
  // quote() is observationally pure, so losing quote polls loses nothing;
  // submitted_at carries retries and re-bids at their true instants.
  for (std::size_t s = 0; s < sc.n_sites && !report.diverged; ++s) {
    const SiteAgent& agent = *market.sites()[s];
    std::vector<RefSubmission> submissions;
    submissions.reserve(agent.scheduler().records().size());
    for (const TaskRecord& record : agent.scheduler().records())
      submissions.push_back(RefSubmission{record.task, record.submitted_at});
    std::vector<RefOutage> outages;
    if (market.fault_injector() != nullptr) {
      for (const SiteOutage& outage : market.fault_injector()->plan().outages)
        if (outage.site == static_cast<SiteId>(s))
          outages.push_back(RefOutage{outage.down_at, outage.up_at});
    }
    const RefSiteResult ref =
        simulate_site(ref_config(sc, s, self_test), submissions, outages,
                      market.engine().now());
    const std::string label = "site " + std::to_string(s);
    compare_records(label, agent.scheduler().records(), ref.records, report);
    if (!report.diverged) {
      MBTS_CHECK(s < stats.site_stats.size());
      compare_stats(label, stats.site_stats[s], ref.stats, report);
    }
  }

  if (!report.diverged) {
    MarketStats audited = stats;
    if (self_test.corrupt_settlement)
      audited.total_revenue = std::nextafter(audited.total_revenue, kInf);
    const std::vector<std::string> findings =
        audit_market(market, audited, trace.tasks.size());
    if (!findings.empty()) {
      report.diverged = true;
      report.detail = "settlement audit: " + findings.front();
    }
  }
  check_events(checker, report);
  for (const auto& site_checker : site_checkers)
    check_events(*site_checker, report);
  return report;
}

// --- enum codecs --------------------------------------------------------

const char* policy_name(PolicySpec::Kind kind) {
  switch (kind) {
    case PolicySpec::Kind::kFcfs: return "fcfs";
    case PolicySpec::Kind::kSrpt: return "srpt";
    case PolicySpec::Kind::kSwpt: return "swpt";
    case PolicySpec::Kind::kFirstPrice: return "firstprice";
    case PolicySpec::Kind::kPresentValue: return "pv";
    case PolicySpec::Kind::kFirstReward: return "firstreward";
    case PolicySpec::Kind::kRandom: return "random";
  }
  return "?";
}

const char* penalty_name(PenaltyModel penalty) {
  switch (penalty) {
    case PenaltyModel::kBoundedAtZero: return "zero";
    case PenaltyModel::kBoundedAtValue: return "value";
    case PenaltyModel::kUnbounded: return "unbounded";
  }
  return "?";
}

const char* strategy_name(ClientStrategy strategy) {
  switch (strategy) {
    case ClientStrategy::kMaxExpectedValue: return "maxval";
    case ClientStrategy::kEarliestCompletion: return "earliest";
    case ClientStrategy::kRandom: return "random";
  }
  return "?";
}

const char* pricing_name(PricingModel pricing) {
  switch (pricing) {
    case PricingModel::kBidPrice: return "bid";
    case PricingModel::kSecondPrice: return "second";
  }
  return "?";
}

const char* crash_name(CrashMode mode) {
  return mode == CrashMode::kKill ? "kill" : "checkpoint";
}

template <typename Enum>
bool parse_enum(const std::string& text, Enum& out,
                std::initializer_list<std::pair<const char*, Enum>> table) {
  for (const auto& [name, value] : table) {
    if (text == name) {
      out = value;
      return true;
    }
  }
  return false;
}

}  // namespace

Scenario generate_scenario(std::uint64_t sweep_seed, std::uint64_t index) {
  Xoshiro256 g = SeedSequence(sweep_seed).stream(index);
  Scenario sc;
  sc.seed = g.next() | 1;
  sc.n_tasks = 60 + g.below(121);
  sc.market = g.bernoulli(0.5);
  sc.n_sites = sc.market ? 1 + g.below(3) : 1;
  sc.processors = 4 + g.below(5);
  sc.preemption = g.bernoulli(0.7);
  {
    const double rates[] = {0.0, 0.001, 0.01, 0.05};
    sc.discount_rate = rates[g.below(4)];
  }
  sc.mix_full_rebuild = g.bernoulli(0.5);
  {
    const PolicySpec::Kind kinds[] = {
        PolicySpec::Kind::kFcfs,       PolicySpec::Kind::kSrpt,
        PolicySpec::Kind::kSwpt,       PolicySpec::Kind::kFirstPrice,
        PolicySpec::Kind::kPresentValue, PolicySpec::Kind::kFirstReward,
        PolicySpec::Kind::kRandom};
    sc.policy = kinds[g.below(7)];
    const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    sc.alpha = alphas[g.below(5)];
  }
  sc.use_slack_admission = g.bernoulli(0.75);
  {
    const double thresholds[] = {0.0, 0.0, 25.0, 100.0};
    sc.threshold = thresholds[g.below(4)];
  }
  sc.literal_eq8 = g.bernoulli(0.5);
  {
    const double loads[] = {0.5, 0.9, 1.2, 2.0};
    sc.load_factor = loads[g.below(4)];
  }
  {
    const PenaltyModel penalties[] = {PenaltyModel::kBoundedAtZero,
                                      PenaltyModel::kBoundedAtValue,
                                      PenaltyModel::kUnbounded};
    sc.penalty = penalties[g.below(3)];
    const double scales[] = {0.5, 1.0, 2.0};
    sc.penalty_value_scale = scales[g.below(3)];
  }
  sc.uniform_decay = g.bernoulli(0.3);
  {
    const double skews[] = {1.0, 5.0, 20.0};
    sc.decay_skew = skews[g.below(3)];
  }
  sc.estimate_error_sigma = g.bernoulli(0.3) ? 0.3 : 0.0;
  sc.max_width = g.bernoulli(0.25) ? 2 + g.below(2) : 1;
  {
    const ClientStrategy strategies[] = {ClientStrategy::kMaxExpectedValue,
                                         ClientStrategy::kEarliestCompletion,
                                         ClientStrategy::kRandom};
    sc.strategy = strategies[g.below(3)];
    sc.pricing = g.bernoulli(0.5) ? PricingModel::kBidPrice
                                  : PricingModel::kSecondPrice;
    sc.budgets = sc.market && g.bernoulli(0.3);
  }
  sc.faults = g.bernoulli(0.5);
  if (sc.faults) {
    // Aim for roughly one to four outages per site over the arrival span.
    const double span_est = static_cast<double>(sc.n_tasks) *
                            workload_of(sc).mean_gap() /
                            static_cast<double>(sc.market ? sc.n_sites : 1);
    const double counts[] = {1.0, 2.0, 4.0};
    sc.outage_rate = counts[g.below(3)] / std::max(span_est, 1.0);
    const double durations[] = {50.0, 150.0, 400.0};
    sc.mean_outage = durations[g.below(3)];
    sc.quote_timeout_prob = (sc.market && g.bernoulli(0.5)) ? 0.1 : 0.0;
    sc.crash_mode =
        g.bernoulli(0.3) ? CrashMode::kCheckpoint : CrashMode::kKill;
  } else {
    sc.outage_rate = 0.0;
    sc.quote_timeout_prob = 0.0;
  }
  // Drawn last so the sharded knob leaves every earlier field of existing
  // (sweep_seed, index) scenarios — and their pinned regressions — intact.
  sc.shards = sc.market ? 1 + g.below(3) : 1;
  // Same reasoning, drawn after shards: most sweeps exercise the default
  // SoA kernel path, a quarter pin the AoS fallback against the oracle.
  sc.kernels = !g.bernoulli(0.25);
  // Drawn jointly with shards/kernels (and after both): sharded scenarios
  // mostly run the batched coordinator, a quarter pin the one-barrier-per-
  // epoch protocol, and the batching x kernels cross shows up for free.
  sc.batching = !g.bernoulli(0.25);
  return sc;
}

DiffReport run_diff(const Scenario& scenario, const SelfTest& self_test) {
  return scenario.market ? run_market_diff(scenario, self_test)
                         : run_single_site_diff(scenario, self_test);
}

Scenario shrink(Scenario scenario,
                const std::function<bool(const Scenario&)>& diverges,
                std::vector<std::string>* steps) {
  struct Transform {
    const char* name;
    std::function<bool(Scenario&)> apply;  // false when already a no-op
  };
  const std::vector<Transform> ladder = {
      {"halve the task count",
       [](Scenario& s) {
         if (s.n_tasks <= 8) return false;
         s.n_tasks /= 2;
         return true;
       }},
      {"disable epoch batching",
       [](Scenario& s) {
         // Tried before dropping shards: if the divergence survives with
         // one barrier per epoch the bug is not in the batched coordinator,
         // and if it does not the reproducer keeps batching on.
         if (s.shards <= 1 || !s.batching) return false;
         s.batching = false;
         return true;
       }},
      {"run on a single shard",
       [](Scenario& s) {
         if (s.shards <= 1) return false;
         s.shards = 1;
         return true;
       }},
      {"scalar scoring path (kernels off)",
       [](Scenario& s) {
         // If the divergence survives on the AoS path the bug is not in
         // the SoA kernels; if it does not, the shrinker keeps kernels on
         // and the reproducer stays pointed at them.
         if (!s.kernels) return false;
         s.kernels = false;
         return true;
       }},
      {"disable faults",
       [](Scenario& s) {
         if (!s.faults) return false;
         s.faults = false;
         s.outage_rate = 0.0;
         s.quote_timeout_prob = 0.0;
         return true;
       }},
      {"collapse to one site",
       [](Scenario& s) {
         if (!s.market || s.n_sites <= 1) return false;
         s.n_sites = 1;
         return true;
       }},
      {"leave the market (drive the site directly)",
       [](Scenario& s) {
         if (!s.market) return false;
         s.market = false;
         s.n_sites = 1;
         s.budgets = false;
         s.quote_timeout_prob = 0.0;
         s.shards = 1;
         s.batching = true;  // back to the default; meaningless unsharded
         return true;
       }},
      {"disable budgets",
       [](Scenario& s) {
         if (!s.budgets) return false;
         s.budgets = false;
         return true;
       }},
      {"bid-price settlement",
       [](Scenario& s) {
         if (s.pricing == PricingModel::kBidPrice) return false;
         s.pricing = PricingModel::kBidPrice;
         return true;
       }},
      {"max-value client strategy",
       [](Scenario& s) {
         if (s.strategy == ClientStrategy::kMaxExpectedValue) return false;
         s.strategy = ClientStrategy::kMaxExpectedValue;
         return true;
       }},
      {"accurate runtime estimates",
       [](Scenario& s) {
         if (s.estimate_error_sigma == 0.0) return false;
         s.estimate_error_sigma = 0.0;
         return true;
       }},
      {"width-1 tasks",
       [](Scenario& s) {
         if (s.max_width <= 1) return false;
         s.max_width = 1;
         return true;
       }},
      {"incremental mix maintenance",
       [](Scenario& s) {
         if (!s.mix_full_rebuild) return false;
         s.mix_full_rebuild = false;
         return true;
       }},
      {"uniform decay",
       [](Scenario& s) {
         if (s.uniform_decay) return false;
         s.uniform_decay = true;
         return true;
       }},
      {"kill-mode crashes",
       [](Scenario& s) {
         if (!s.faults || s.crash_mode == CrashMode::kKill) return false;
         s.crash_mode = CrashMode::kKill;
         return true;
       }},
      {"accept-all admission",
       [](Scenario& s) {
         if (!s.use_slack_admission) return false;
         s.use_slack_admission = false;
         return true;
       }},
      {"zero slack threshold",
       [](Scenario& s) {
         if (s.threshold == 0.0) return false;
         s.threshold = 0.0;
         return true;
       }},
      {"default Eq. 8 form",
       [](Scenario& s) {
         if (!s.literal_eq8) return false;
         s.literal_eq8 = false;
         return true;
       }},
      {"zero discount rate",
       [](Scenario& s) {
         if (s.discount_rate == 0.0) return false;
         s.discount_rate = 0.0;
         return true;
       }},
      {"unbounded penalties",
       [](Scenario& s) {
         if (s.penalty == PenaltyModel::kUnbounded) return false;
         s.penalty = PenaltyModel::kUnbounded;
         return true;
       }},
      {"FCFS policy",
       [](Scenario& s) {
         if (s.policy == PolicySpec::Kind::kFcfs) return false;
         s.policy = PolicySpec::Kind::kFcfs;
         return true;
       }},
      {"no preemption",
       [](Scenario& s) {
         if (!s.preemption) return false;
         s.preemption = false;
         return true;
       }},
      {"drop a quarter of the tasks",
       [](Scenario& s) {
         if (s.n_tasks <= 8) return false;
         s.n_tasks = s.n_tasks * 3 / 4;
         return true;
       }},
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transform& transform : ladder) {
      Scenario candidate = scenario;
      if (!transform.apply(candidate)) continue;
      if (!diverges(candidate)) continue;
      scenario = candidate;
      changed = true;
      if (steps != nullptr) steps->push_back(transform.name);
    }
  }
  return scenario;
}

std::string to_replay_string(const Scenario& sc) {
  std::ostringstream os;
  os.precision(17);
  os << "seed=" << sc.seed << " tasks=" << sc.n_tasks
     << " market=" << (sc.market ? 1 : 0) << " sites=" << sc.n_sites
     << " procs=" << sc.processors << " preempt=" << (sc.preemption ? 1 : 0)
     << " discount=" << sc.discount_rate
     << " rebuild=" << (sc.mix_full_rebuild ? 1 : 0)
     << " policy=" << policy_name(sc.policy) << " alpha=" << sc.alpha
     << " admission=" << (sc.use_slack_admission ? 1 : 0)
     << " threshold=" << sc.threshold << " eq8=" << (sc.literal_eq8 ? 1 : 0)
     << " load=" << sc.load_factor << " penalty=" << penalty_name(sc.penalty)
     << " pscale=" << sc.penalty_value_scale
     << " udecay=" << (sc.uniform_decay ? 1 : 0) << " dskew=" << sc.decay_skew
     << " esigma=" << sc.estimate_error_sigma << " width=" << sc.max_width
     << " strategy=" << strategy_name(sc.strategy)
     << " pricing=" << pricing_name(sc.pricing)
     << " budgets=" << (sc.budgets ? 1 : 0)
     << " faults=" << (sc.faults ? 1 : 0) << " orate=" << sc.outage_rate
     << " outage=" << sc.mean_outage << " qtimeout=" << sc.quote_timeout_prob
     << " crash=" << crash_name(sc.crash_mode) << " shards=" << sc.shards
     << " kernels=" << (sc.kernels ? 1 : 0)
     << " batching=" << (sc.batching ? 1 : 0);
  return os.str();
}

std::optional<Scenario> parse_replay(const std::string& text) {
  Scenario sc;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "seed") sc.seed = std::stoull(value);
      else if (key == "tasks") sc.n_tasks = std::stoull(value);
      else if (key == "market") sc.market = value != "0";
      else if (key == "sites") sc.n_sites = std::stoull(value);
      else if (key == "procs") sc.processors = std::stoull(value);
      else if (key == "preempt") sc.preemption = value != "0";
      else if (key == "discount") sc.discount_rate = std::stod(value);
      else if (key == "rebuild") sc.mix_full_rebuild = value != "0";
      else if (key == "policy") {
        if (!parse_enum(value, sc.policy,
                        {{"fcfs", PolicySpec::Kind::kFcfs},
                         {"srpt", PolicySpec::Kind::kSrpt},
                         {"swpt", PolicySpec::Kind::kSwpt},
                         {"firstprice", PolicySpec::Kind::kFirstPrice},
                         {"pv", PolicySpec::Kind::kPresentValue},
                         {"firstreward", PolicySpec::Kind::kFirstReward},
                         {"random", PolicySpec::Kind::kRandom}}))
          return std::nullopt;
      } else if (key == "alpha") sc.alpha = std::stod(value);
      else if (key == "admission") sc.use_slack_admission = value != "0";
      else if (key == "threshold") sc.threshold = std::stod(value);
      else if (key == "eq8") sc.literal_eq8 = value != "0";
      else if (key == "load") sc.load_factor = std::stod(value);
      else if (key == "penalty") {
        if (!parse_enum(value, sc.penalty,
                        {{"zero", PenaltyModel::kBoundedAtZero},
                         {"value", PenaltyModel::kBoundedAtValue},
                         {"unbounded", PenaltyModel::kUnbounded}}))
          return std::nullopt;
      } else if (key == "pscale") sc.penalty_value_scale = std::stod(value);
      else if (key == "udecay") sc.uniform_decay = value != "0";
      else if (key == "dskew") sc.decay_skew = std::stod(value);
      else if (key == "esigma") sc.estimate_error_sigma = std::stod(value);
      else if (key == "width") sc.max_width = std::stoull(value);
      else if (key == "strategy") {
        if (!parse_enum(value, sc.strategy,
                        {{"maxval", ClientStrategy::kMaxExpectedValue},
                         {"earliest", ClientStrategy::kEarliestCompletion},
                         {"random", ClientStrategy::kRandom}}))
          return std::nullopt;
      } else if (key == "pricing") {
        if (!parse_enum(value, sc.pricing,
                        {{"bid", PricingModel::kBidPrice},
                         {"second", PricingModel::kSecondPrice}}))
          return std::nullopt;
      } else if (key == "budgets") sc.budgets = value != "0";
      else if (key == "faults") sc.faults = value != "0";
      else if (key == "orate") sc.outage_rate = std::stod(value);
      else if (key == "outage") sc.mean_outage = std::stod(value);
      else if (key == "qtimeout") sc.quote_timeout_prob = std::stod(value);
      else if (key == "crash") {
        if (!parse_enum(value, sc.crash_mode,
                        {{"kill", CrashMode::kKill},
                         {"checkpoint", CrashMode::kCheckpoint}}))
          return std::nullopt;
      } else if (key == "shards") {
        // Absent in pre-sharding replay lines; the default (1) applies.
        sc.shards = std::stoull(value);
      } else if (key == "kernels") {
        // Absent in pre-kernel replay lines; the default (on) applies.
        sc.kernels = value != "0";
      } else if (key == "batching") {
        // Absent in pre-batching replay lines; the default (on) applies.
        sc.batching = value != "0";
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return sc;
}

std::string to_cpp_literal(const Scenario& sc) {
  std::ostringstream os;
  os.precision(17);
  os << "oracle::Scenario{\n"
     << "    .seed = " << sc.seed << "ULL,\n"
     << "    .n_tasks = " << sc.n_tasks << ",\n"
     << "    .market = " << (sc.market ? "true" : "false") << ",\n"
     << "    .n_sites = " << sc.n_sites << ",\n"
     << "    .processors = " << sc.processors << ",\n"
     << "    .preemption = " << (sc.preemption ? "true" : "false") << ",\n"
     << "    .discount_rate = " << sc.discount_rate << ",\n"
     << "    .mix_full_rebuild = " << (sc.mix_full_rebuild ? "true" : "false")
     << ",\n"
     << "    .policy = PolicySpec::Kind::k";
  switch (sc.policy) {
    case PolicySpec::Kind::kFcfs: os << "Fcfs"; break;
    case PolicySpec::Kind::kSrpt: os << "Srpt"; break;
    case PolicySpec::Kind::kSwpt: os << "Swpt"; break;
    case PolicySpec::Kind::kFirstPrice: os << "FirstPrice"; break;
    case PolicySpec::Kind::kPresentValue: os << "PresentValue"; break;
    case PolicySpec::Kind::kFirstReward: os << "FirstReward"; break;
    case PolicySpec::Kind::kRandom: os << "Random"; break;
  }
  os << ",\n"
     << "    .alpha = " << sc.alpha << ",\n"
     << "    .use_slack_admission = "
     << (sc.use_slack_admission ? "true" : "false") << ",\n"
     << "    .threshold = " << sc.threshold << ",\n"
     << "    .literal_eq8 = " << (sc.literal_eq8 ? "true" : "false") << ",\n"
     << "    .load_factor = " << sc.load_factor << ",\n"
     << "    .penalty = PenaltyModel::k";
  switch (sc.penalty) {
    case PenaltyModel::kBoundedAtZero: os << "BoundedAtZero"; break;
    case PenaltyModel::kBoundedAtValue: os << "BoundedAtValue"; break;
    case PenaltyModel::kUnbounded: os << "Unbounded"; break;
  }
  os << ",\n"
     << "    .penalty_value_scale = " << sc.penalty_value_scale << ",\n"
     << "    .uniform_decay = " << (sc.uniform_decay ? "true" : "false")
     << ",\n"
     << "    .decay_skew = " << sc.decay_skew << ",\n"
     << "    .estimate_error_sigma = " << sc.estimate_error_sigma << ",\n"
     << "    .max_width = " << sc.max_width << ",\n"
     << "    .strategy = ClientStrategy::k";
  switch (sc.strategy) {
    case ClientStrategy::kMaxExpectedValue: os << "MaxExpectedValue"; break;
    case ClientStrategy::kEarliestCompletion: os << "EarliestCompletion"; break;
    case ClientStrategy::kRandom: os << "Random"; break;
  }
  os << ",\n"
     << "    .pricing = PricingModel::k"
     << (sc.pricing == PricingModel::kBidPrice ? "BidPrice" : "SecondPrice")
     << ",\n"
     << "    .budgets = " << (sc.budgets ? "true" : "false") << ",\n"
     << "    .faults = " << (sc.faults ? "true" : "false") << ",\n"
     << "    .outage_rate = " << sc.outage_rate << ",\n"
     << "    .mean_outage = " << sc.mean_outage << ",\n"
     << "    .quote_timeout_prob = " << sc.quote_timeout_prob << ",\n"
     << "    .crash_mode = CrashMode::k"
     << (sc.crash_mode == CrashMode::kKill ? "Kill" : "Checkpoint") << ",\n"
     << "    .shards = " << sc.shards << ",\n"
     << "    .kernels = " << (sc.kernels ? "true" : "false") << ",\n"
     << "    .batching = " << (sc.batching ? "true" : "false") << ",\n"
     << "}";
  return os.str();
}

}  // namespace mbts::oracle
