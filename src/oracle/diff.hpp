// Differential harness: randomized scenarios run through the optimized
// stack and the oracle reference side by side.
//
// A Scenario is a fully self-contained description of one run — workload
// knobs, scheduler/policy/admission configuration, market topology, fault
// plan parameters — generated from a (sweep seed, index) pair. run_diff
// executes the optimized side (SiteScheduler directly, or the full Market)
// with an EventOrderChecker attached, replays the recorded submissions
// through the reference scheduler, audits settlement, and reports the first
// bit-level divergence. shrink() greedily minimizes a diverging scenario
// (fewer tasks, faults off, one site, simpler policy, ...) while the
// divergence persists, producing a ready-to-paste regression reproducer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "market/broker.hpp"
#include "sim/fault.hpp"
#include "workload/generator.hpp"

namespace mbts::oracle {

/// One randomized differential scenario. Every field participates in the
/// replay codec (to_replay_string/parse_replay), so a diverging scenario is
/// reproducible from its one-line description alone.
struct Scenario {
  std::uint64_t seed = 1;
  std::size_t n_tasks = 120;

  // Topology: market=false drives one SiteScheduler directly.
  bool market = false;
  std::size_t n_sites = 1;
  std::size_t processors = 8;

  // Scheduler + policy + admission (shared by every site; sites are made
  // heterogeneous via a per-site threshold offset).
  bool preemption = true;
  double discount_rate = 0.01;
  bool mix_full_rebuild = false;
  PolicySpec::Kind policy = PolicySpec::Kind::kFirstReward;
  double alpha = 0.5;
  bool use_slack_admission = true;
  double threshold = 0.0;
  bool literal_eq8 = false;

  // Workload.
  double load_factor = 1.2;
  PenaltyModel penalty = PenaltyModel::kUnbounded;
  double penalty_value_scale = 1.0;
  bool uniform_decay = false;
  double decay_skew = 5.0;
  double estimate_error_sigma = 0.0;
  std::size_t max_width = 1;

  // Market layer (market=true only).
  ClientStrategy strategy = ClientStrategy::kMaxExpectedValue;
  PricingModel pricing = PricingModel::kBidPrice;
  bool budgets = false;

  // Fault model.
  bool faults = false;
  double outage_rate = 0.0;
  double mean_outage = 150.0;
  double quote_timeout_prob = 0.0;
  CrashMode crash_mode = CrashMode::kKill;

  // Parallel execution (market=true only): >= 2 runs the optimized side
  // through the sharded engine, which must stay bit-identical to the
  // reference. Declared last so older designated-initializer literals and
  // replay lines (no shards= key) stay valid.
  std::size_t shards = 1;

  // Dispatch-path scoring: true (the scheduler default) routes pending
  // rescores through the SoA batch kernels (ScoreKernelMode::kExact),
  // false forces the per-task AoS cache path. Both must agree with the
  // oracle bit-for-bit. Declared after shards for the same
  // literal/replay-compat reason.
  bool kernels = true;

  // Epoch batching (sharded scenarios only): true lets the coordinator run
  // consecutive negotiation epochs inline between barriers and confine
  // fault transitions to the owning shard. Drawn jointly with shards and
  // kernels so the fuzzer covers the batching x kernels interaction.
  // Declared last for the same literal/replay-compat reason.
  bool batching = true;
};

/// Self-test perturbations applied to the ORACLE side, simulating the bug
/// classes the harness exists to catch. Any nonzero setting must produce a
/// reported divergence (see tools/diff_fuzz --self-test).
struct SelfTest {
  /// Relative skew on the reference's believed remaining time — a stale
  /// score/rpt cache.
  double rpt_skew = 0.0;
  /// Corrupt the reported settlement total by one ulp before auditing — a
  /// broken settlement aggregation (market scenarios only).
  bool corrupt_settlement = false;
};

struct DiffReport {
  bool diverged = false;
  /// First divergence, human-readable ("site 1 record 17 quoted_yield: ...").
  std::string detail;
};

/// Draws a randomized scenario from the sweep stream.
Scenario generate_scenario(std::uint64_t sweep_seed, std::uint64_t index);

/// Runs both sides and compares. Bit-level comparison of every TaskRecord
/// and RunStats field per site, the settlement audit (market mode), and the
/// engine event-order check.
DiffReport run_diff(const Scenario& scenario, const SelfTest& self_test = {});

/// Greedy minimization: repeatedly applies shrinking transformations (halve
/// the task count, drop faults, collapse to one site, disable budgets /
/// widths / misestimation, simplify policy and admission) and keeps each
/// one only while `diverges` stays true. `steps`, when given, receives one
/// line per accepted transformation.
Scenario shrink(Scenario scenario,
                const std::function<bool(const Scenario&)>& diverges,
                std::vector<std::string>* steps = nullptr);

/// One-line replay codec: "seed=5 tasks=80 market=1 ..." round-trips
/// through parse_replay.
std::string to_replay_string(const Scenario& scenario);
std::optional<Scenario> parse_replay(const std::string& text);

/// A ready-to-paste C++ designated-initializer literal for regression
/// tests (tests/differential/test_differential.cpp).
std::string to_cpp_literal(const Scenario& scenario);

}  // namespace mbts::oracle
