#include "oracle/event_checker.hpp"

#include <sstream>

namespace mbts::oracle {

namespace {
constexpr std::size_t kMaxViolations = 32;

bool sooner(double at, int ap, EventId ai, double bt, int bp, EventId bi) {
  if (at != bt) return at < bt;
  if (ap != bp) return ap < bp;
  return ai < bi;
}
}  // namespace

void EventOrderChecker::violation(const std::string& message) {
  if (violations_.size() < kMaxViolations) violations_.push_back(message);
}

void EventOrderChecker::on_schedule(EventId id, double t, int priority,
                                    EventKind kind) {
  for (const Pending& p : pending_) {
    if (p.id == id) {
      std::ostringstream os;
      os << "event " << id << " scheduled twice";
      violation(os.str());
      return;
    }
  }
  if (saw_execute_ && t < clock_) {
    std::ostringstream os;
    os.precision(17);
    os << "event " << id << " scheduled in the past: t=" << t << " clock="
       << clock_;
    violation(os.str());
  }
  pending_.push_back(Pending{id, t, priority, kind});
}

void EventOrderChecker::on_cancel(EventId id) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].id == id) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  std::ostringstream os;
  os << "cancel of unknown or already-executed event " << id;
  violation(os.str());
}

void EventOrderChecker::on_execute(EventId id, double t, int priority,
                                   EventKind kind) {
  // The executed event must exist, match its scheduled key, and be the
  // (t, priority, id) minimum of everything outstanding.
  std::size_t found = pending_.size();
  std::size_t best = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].id == id) found = i;
    if (best == pending_.size() ||
        sooner(pending_[i].t, pending_[i].priority, pending_[i].id,
               pending_[best].t, pending_[best].priority, pending_[best].id))
      best = i;
  }
  if (found == pending_.size()) {
    std::ostringstream os;
    os << "executed unknown (cancelled, duplicate, or never-scheduled) "
          "event "
       << id;
    violation(os.str());
    return;
  }
  const Pending& p = pending_[found];
  if (p.t != t || p.priority != priority) {
    std::ostringstream os;
    os.precision(17);
    os << "event " << id << " executed with key (" << t << "," << priority
       << ") but scheduled as (" << p.t << "," << p.priority << ")";
    violation(os.str());
  }
  if (p.kind != kind) {
    std::ostringstream os;
    os << "event " << id << " executed as kind "
       << static_cast<int>(kind) << " but scheduled as kind "
       << static_cast<int>(p.kind);
    violation(os.str());
  }
  if (best != found) {
    std::ostringstream os;
    os.precision(17);
    os << "event " << id << " at t=" << t
       << " executed before the queue minimum (event " << pending_[best].id
       << " at t=" << pending_[best].t << ")";
    violation(os.str());
  }
  if (saw_execute_ && t < clock_) {
    std::ostringstream os;
    os.precision(17);
    os << "clock ran backwards: " << clock_ << " -> " << t;
    violation(os.str());
  }
  clock_ = t;
  saw_execute_ = true;
  ++executed_;
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(found));
}

}  // namespace mbts::oracle
