#include "oracle/reference_scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "cluster/processor_pool.hpp"
#include "util/check.hpp"

namespace mbts::oracle {

namespace {

// Mirror of the optimized scheduler's epsilon: a running task within this of
// true completion is immovable.
constexpr double kDoneEpsilon = 1e-9;

// Same instant-ordering contract as SimEngine's EventPriority.
constexpr int kPrCompletion = 0;
constexpr int kPrFault = 5;
constexpr int kPrArrival = 10;
constexpr int kPrDispatch = 15;

enum class EvKind { kArrival, kCompletion, kDispatch, kDown, kUp };

struct Ev {
  double t = 0.0;
  int pr = 0;
  std::uint64_t seq = 0;
  EvKind kind = EvKind::kDispatch;
  std::size_t payload = 0;  // submission index / task index / outage index
};

struct RTask {
  Task task;
  std::size_t record_idx = 0;
  double executed = 0.0;  // service consumed, excluding the live segment
  bool running = false;
  double segment_start = 0.0;
  double queue_rpt = 0.0;           // latched at (re)enqueue
  std::uint64_t completion_seq = 0; // seq of the live completion event
  std::size_t mix_slot = 0;
};

/// The naive simulator. One instance per simulate_site call; all state is
/// rebuilt per run.
class RefSim {
 public:
  RefSim(const RefSiteConfig& config,
         const std::vector<RefSubmission>& submissions,
         const std::vector<RefOutage>& outages)
      : cfg_(config), submissions_(submissions), pool_(
            config.scheduler.processors) {
    MBTS_CHECK_MSG(cfg_.scheduler.rescore == RescorePolicy::kFresh,
                   "reference scheduler models RescorePolicy::kFresh only");
    MBTS_CHECK_MSG(!cfg_.scheduler.drop_expired,
                   "reference scheduler does not model drop_expired");
    MBTS_CHECK(cfg_.scheduler.discount_rate >= 0.0);
    // Pre-schedule every externally-known event. Relative order among equal
    // (t, priority) pairs is insertion order: submissions in given order,
    // then outages in plan order (each recovery queued right after its
    // outage, so a recovery coinciding with the next outage fires first).
    for (std::size_t i = 0; i < submissions_.size(); ++i)
      push_event(submissions_[i].at, kPrArrival, EvKind::kArrival, i);
    for (std::size_t i = 0; i < outages.size(); ++i) {
      MBTS_CHECK(outages[i].up_at > outages[i].down_at);
      push_event(outages[i].down_at, kPrFault, EvKind::kDown, i);
      push_event(outages[i].up_at, kPrFault, EvKind::kUp, i);
    }
  }

  RefSiteResult run(SimTime stats_at) {
    while (true) {
      // O(n) scan for the (t, priority, seq) minimum — the naive event loop.
      std::size_t best = events_.size();
      for (std::size_t i = 0; i < events_.size(); ++i) {
        if (best == events_.size() || sooner(events_[i], events_[best]))
          best = i;
      }
      if (best == events_.size()) break;
      const Ev ev = events_[best];
      events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
      MBTS_CHECK(ev.t >= now_);
      now_ = ev.t;
      switch (ev.kind) {
        case EvKind::kArrival:
          submit(submissions_[ev.payload].task);
          break;
        case EvKind::kCompletion:
          on_completion(ev.payload, ev.seq);
          break;
        case EvKind::kDispatch:
          dispatch_pending_ = false;
          dispatch();
          break;
        case EvKind::kDown:
          crash();
          break;
        case EvKind::kUp:
          recover();
          break;
      }
    }

    RefSiteResult out;
    out.records.assign(records_.begin(), records_.end());
    out.killed = std::move(killed_);
    out.end_time = now_;
    out.stats = stats(stats_at < 0.0 ? now_ : stats_at);
    return out;
  }

 private:
  static bool sooner(const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.pr != b.pr) return a.pr < b.pr;
    return a.seq < b.seq;
  }

  std::uint64_t push_event(double t, int pr, EvKind kind,
                           std::size_t payload) {
    const std::uint64_t seq = next_seq_++;
    events_.push_back(Ev{t, pr, seq, kind, payload});
    return seq;
  }

  void cancel_completion(const RTask& rt) {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].kind == EvKind::kCompletion &&
          events_[i].seq == rt.completion_seq) {
        events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    MBTS_CHECK_MSG(false, "cancelling a completion that is not scheduled");
  }

  double executed_now(const RTask& rt) const {
    if (!rt.running) return rt.executed;
    return rt.executed + (now_ - rt.segment_start);
  }

  double remaining(const RTask& rt) const {
    return rt.task.runtime - executed_now(rt);
  }

  double scoring_remaining(const RTask& rt) const {
    const double declared = rt.task.estimate();
    const double left = declared - executed_now(rt);
    const double floor = cfg_.scheduler.exceeded_estimate_fraction * declared;
    const double base = std::max(left, std::max(floor, 1e-9));
    return base * (1.0 + cfg_.self_test_rpt_skew);
  }

  /// Recomputes the full mix snapshot from the live task set — every entry
  /// from its task, the aggregate re-summed in slot order — optionally with
  /// a transient bid candidate appended last.
  RefMixView make_mix_view(const Task* candidate) const {
    RefMixView view;
    view.now = now_;
    view.discount_rate = cfg_.scheduler.discount_rate;
    view.competitors.reserve(slots_.size() + 1);
    bool any_bounded = false;
    for (const RTask* rt : slots_) {
      if (rt == nullptr) {
        view.competitors.push_back(RefCompetitor{kInvalidTask, 0.0, 0.0});
        continue;
      }
      view.competitors.push_back(competitor_of(rt->task, now_));
      if (rt->task.expire_time() != kInf) any_bounded = true;
    }
    double total = 0.0;
    for (const RefCompetitor& c : view.competitors) {
      if (c.time_to_expire > 0.0) total += c.decay;
    }
    view.total_live_decay = total;
    view.any_bounded = any_bounded;
    if (candidate != nullptr) {
      const RefCompetitor info = competitor_of(*candidate, now_);
      if (info.time_to_expire > 0.0) view.total_live_decay = total + info.decay;
      view.any_bounded = any_bounded || candidate->expire_time() != kInf;
      view.competitors.push_back(info);
    }
    return view;
  }

  /// Mix-slot bookkeeping replicating MixTracker's LIFO slot recycling, so
  /// the slot order (and with it the Eq. 4/5 summation order) matches.
  void mix_add(RTask& rt) {
    if (!free_slots_.empty()) {
      rt.mix_slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[rt.mix_slot] = &rt;
    } else {
      rt.mix_slot = slots_.size();
      slots_.push_back(&rt);
    }
  }

  void mix_remove(RTask& rt) {
    slots_[rt.mix_slot] = nullptr;
    free_slots_.push_back(rt.mix_slot);
  }

  /// The whole pending queue ranked by (score desc, id asc) against `mix`,
  /// scored fresh with each task's latched queue_rpt.
  std::vector<RefPending> rank_pending(const RefMixView& mix) const {
    std::vector<RefPending> ranked;
    ranked.reserve(pending_.size());
    for (const RTask* rt : pending_) {
      ranked.push_back({&rt->task, rt->queue_rpt,
                        ref_priority(cfg_.policy, rt->task, rt->queue_rpt,
                                     mix)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RefPending& a, const RefPending& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.task->id < b.task->id;
              });
    return ranked;
  }

  /// Processor free times as admission projects them: running tasks hold
  /// their width's worth of slots until their believed finish.
  std::vector<double> projected_free() const {
    std::vector<double> proc_free(pool_.capacity(), now_);
    std::size_t slot = 0;
    for (const RTask* rt : running_) {
      const double free_at = now_ + std::max(0.0, scoring_remaining(*rt));
      for (std::size_t w = 0; w < rt->task.width; ++w) {
        MBTS_CHECK(slot < proc_free.size());
        proc_free[slot++] = free_at;
      }
    }
    return proc_free;
  }

  RefAdmission quote(const Task& task) const {
    const RefMixView mix = make_mix_view(&task);
    return slack_admission(cfg_.policy, task, mix, rank_pending(mix),
                           projected_free(), cfg_.admission.threshold,
                           cfg_.admission.literal_eq8,
                           !cfg_.use_slack_admission);
  }

  void submit(const Task& task) {
    MBTS_CHECK_MSG(!live_ids_.count(task.id), "duplicate live task id");
    MBTS_CHECK(task.width >= 1 && task.width <= pool_.capacity());

    // A down site declines without evaluating the bid (zeroed quote).
    RefAdmission decision;
    if (!down_) decision = quote(task);

    if (!saw_arrival_ || task.arrival < first_arrival_)
      first_arrival_ = task.arrival;
    saw_arrival_ = true;

    records_.push_back(TaskRecord{});
    TaskRecord& record = records_.back();
    record.task = task;
    record.submitted_at = now_;
    record.quoted_completion = decision.expected_completion;
    record.quoted_yield = decision.expected_yield;
    record.slack = decision.slack;

    if (!decision.accept) {
      record.outcome = TaskOutcome::kRejected;
      return;
    }

    tasks_.push_back(RTask{});
    RTask& rt = tasks_.back();
    rt.task = task;
    rt.record_idx = records_.size() - 1;
    rt.queue_rpt = scoring_remaining(rt);
    live_ids_.insert(task.id);
    mix_add(rt);
    pending_.push_back(&rt);
    request_dispatch();
  }

  void request_dispatch() {
    if (dispatch_pending_ || down_) return;
    dispatch_pending_ = true;
    push_event(now_, kPrDispatch, EvKind::kDispatch, 0);
  }

  void start_task(RTask& rt) {
    MBTS_CHECK(!rt.running);
    pool_.acquire(now_, rt.task.width);
    rt.running = true;
    rt.segment_start = now_;
    TaskRecord& record = records_[rt.record_idx];
    if (record.first_start < 0.0) record.first_start = now_;
    rt.completion_seq = push_event(now_ + remaining(rt), kPrCompletion,
                                   EvKind::kCompletion, task_index(rt));
    pending_.erase(std::find(pending_.begin(), pending_.end(), &rt));
    running_.push_back(&rt);
    if (record.outcome == TaskOutcome::kPending)
      record.outcome = TaskOutcome::kRunning;
  }

  void preempt_task(RTask& rt, bool count_preemption) {
    MBTS_CHECK(rt.running);
    cancel_completion(rt);
    pool_.release(now_, rt.task.width);
    rt.executed += now_ - rt.segment_start;
    rt.running = false;
    rt.queue_rpt = scoring_remaining(rt);
    TaskRecord& record = records_[rt.record_idx];
    if (count_preemption) {
      ++preemptions_;
      ++record.preemptions;
    } else {
      ++checkpoints_;
    }
    record.outcome = TaskOutcome::kPending;
    running_.erase(std::find(running_.begin(), running_.end(), &rt));
    pending_.push_back(&rt);
  }

  void fail_task(RTask& rt) {
    MBTS_CHECK(rt.running);
    cancel_completion(rt);
    pool_.release(now_, rt.task.width);
    TaskRecord& record = records_[rt.record_idx];
    record.completion = now_;
    record.realized_yield = rt.task.breach_yield(now_);
    record.outcome = TaskOutcome::kFailed;
    running_.erase(std::find(running_.begin(), running_.end(), &rt));
    mix_remove(rt);
    live_ids_.erase(rt.task.id);
  }

  void finish_task(RTask& rt) {
    MBTS_CHECK(rt.running);
    pool_.release(now_, rt.task.width);
    TaskRecord& record = records_[rt.record_idx];
    record.completion = now_;
    record.realized_yield = rt.task.yield_at_completion(now_);
    record.outcome = TaskOutcome::kCompleted;
    last_completion_ = std::max(last_completion_, now_);
    running_.erase(std::find(running_.begin(), running_.end(), &rt));
    mix_remove(rt);
    live_ids_.erase(rt.task.id);
  }

  void on_completion(std::size_t task_idx, std::uint64_t seq) {
    RTask& rt = tasks_[task_idx];
    MBTS_CHECK(rt.running && rt.completion_seq == seq);
    finish_task(rt);
    request_dispatch();
  }

  void crash() {
    MBTS_CHECK(!down_);
    down_ = true;
    ++crashes_;
    // Ascending-id drain, matching SiteScheduler::crash.
    std::vector<RTask*> victims(running_.begin(), running_.end());
    std::sort(victims.begin(), victims.end(),
              [](const RTask* a, const RTask* b) {
                return a->task.id < b->task.id;
              });
    for (RTask* rt : victims) {
      if (cfg_.crash_mode == CrashMode::kKill) {
        killed_.push_back(rt->task);
        fail_task(*rt);
      } else {
        preempt_task(*rt, /*count_preemption=*/false);
      }
    }
    pool_.begin_outage(now_);
  }

  void recover() {
    MBTS_CHECK(down_);
    down_ = false;
    pool_.end_outage(now_);
    if (!pending_.empty()) request_dispatch();
  }

  void dispatch() {
    // A dispatch already queued when the site crashed fires into a down
    // site and does nothing (not even counting itself).
    if (down_) return;
    ++dispatches_;
    if (pending_.empty()) return;

    const RefMixView mix = make_mix_view(nullptr);

    struct Scored {
      RTask* rt;
      double score;
      double rpt;
      bool running;
    };
    std::vector<Scored> scored;
    scored.reserve(pending_.size() + running_.size());
    for (RTask* rt : pending_)
      scored.push_back({rt,
                        ref_priority(cfg_.policy, rt->task, rt->queue_rpt,
                                     mix),
                        rt->queue_rpt, false});

    if (cfg_.scheduler.preemption) {
      for (RTask* rt : running_) {
        const double rpt = scoring_remaining(*rt);
        const double score =
            remaining(*rt) <= kDoneEpsilon
                ? kInf
                : ref_priority(cfg_.policy, rt->task, rpt, mix);
        scored.push_back({rt, score, rpt, true});
      }
      // (score desc, running first, id asc): ties never displace a running
      // task, so dispatches cannot flap.
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.score != b.score) return a.score > b.score;
                  if (a.running != b.running) return a.running;
                  return a.rt->task.id < b.rt->task.id;
                });
      // Gang walk with backfill: admit each ranked task while its width
      // fits the remaining capacity. With every width equal to 1 this
      // degenerates to "keep the top capacity tasks", the optimized width-1
      // fast path.
      std::size_t free = pool_.capacity();
      std::vector<RTask*> to_start;
      std::vector<RTask*> to_preempt;
      for (const Scored& entry : scored) {
        if (entry.rt->task.width <= free) {
          free -= entry.rt->task.width;
          if (!entry.running) to_start.push_back(entry.rt);
        } else if (entry.running) {
          to_preempt.push_back(entry.rt);
        }
      }
      for (RTask* rt : to_preempt) preempt_task(*rt, /*count_preemption=*/true);
      for (RTask* rt : to_start) start_task(*rt);
    } else {
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.rt->task.id < b.rt->task.id;
                });
      std::size_t free = pool_.free_count();
      for (const Scored& entry : scored) {
        if (entry.rt->task.width <= free) {
          free -= entry.rt->task.width;
          start_task(*entry.rt);
        }
      }
    }
  }

  std::size_t task_index(const RTask& rt) const {
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      if (&tasks_[i] == &rt) return i;
    MBTS_CHECK(false);
    return 0;
  }

  RunStats stats(SimTime stats_at) const {
    RunStats stats;
    stats.submitted = records_.size();
    stats.preemptions = preemptions_;
    stats.dispatches = dispatches_;
    stats.crashes = crashes_;
    stats.checkpoints = checkpoints_;
    stats.first_arrival = saw_arrival_ ? first_arrival_ : 0.0;
    stats.last_completion = last_completion_;
    for (const TaskRecord& record : records_) {
      switch (record.outcome) {
        case TaskOutcome::kRejected:
          ++stats.rejected;
          break;
        case TaskOutcome::kCompleted:
          ++stats.accepted;
          ++stats.completed;
          stats.total_yield += record.realized_yield;
          stats.realized_yield.add(record.realized_yield);
          stats.delay.add(
              record.task.delay_at_completion(record.completion));
          break;
        case TaskOutcome::kDropped:
          ++stats.accepted;
          ++stats.dropped;
          stats.total_yield += record.realized_yield;
          stats.realized_yield.add(record.realized_yield);
          break;
        case TaskOutcome::kFailed:
          ++stats.accepted;
          ++stats.failed;
          stats.total_yield += record.realized_yield;
          stats.realized_yield.add(record.realized_yield);
          break;
        case TaskOutcome::kPending:
        case TaskOutcome::kRunning:
          ++stats.accepted;
          break;
      }
    }
    const double span = stats.last_completion - stats.first_arrival;
    stats.yield_rate = span > 0.0 ? stats.total_yield / span : 0.0;
    stats.utilization = pool_.utilization(stats_at);
    return stats;
  }

  const RefSiteConfig& cfg_;
  const std::vector<RefSubmission>& submissions_;
  ProcessorPool pool_;

  std::vector<Ev> events_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;

  std::deque<RTask> tasks_;  // stable storage, one entry per accepted bid
  std::unordered_set<TaskId> live_ids_;
  std::vector<RTask*> pending_;
  std::vector<RTask*> running_;
  std::vector<RTask*> slots_;  // mix slots; nullptr == free
  std::vector<std::size_t> free_slots_;
  std::deque<TaskRecord> records_;
  std::vector<Task> killed_;

  bool dispatch_pending_ = false;
  bool down_ = false;
  std::uint64_t preemptions_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t checkpoints_ = 0;
  bool saw_arrival_ = false;
  SimTime first_arrival_ = 0.0;
  SimTime last_completion_ = 0.0;
};

}  // namespace

RefSiteResult simulate_site(const RefSiteConfig& config,
                            const std::vector<RefSubmission>& submissions,
                            const std::vector<RefOutage>& outages,
                            SimTime stats_at) {
  RefSim sim(config, submissions, outages);
  return sim.run(stats_at);
}

}  // namespace mbts::oracle
