// Reference settlement model for the market layer: a double-entry audit.
//
// After a Market run, every unit of client budget must be accounted for:
// a charge lands in a (non-breached) contract's agreed price, and every
// breach refunds its charge. Independently, every contract must settle
// exactly where the records say the task ended — at min(agreed, realized)
// for delivered work, at the task's breach yield when the site crashed —
// and the MarketStats counters must equal a from-scratch recount over the
// broker history and the per-site contract books.
//
// audit_market recomputes all of that the naive way (O(contracts * records)
// scans, no indices) and returns human-readable findings; an empty vector
// means the optimized settlement pipeline and the reference ledger agree.
// Count and per-contract price comparisons are bit-exact. The one deliberate
// tolerance is the per-client budget conservation sum: the ledger
// accumulates charge/refund pairs in chronological order while the audit
// sums surviving contracts only, and floating-point addition is not
// associative across the cancelled pairs.
#pragma once

#include <string>
#include <vector>

#include "market/market.hpp"

namespace mbts::oracle {

/// Audits `stats` (as returned by market.run()) against the market's own
/// broker history, contract books, records, and ledger. `expected_bids` is
/// the number of injected bids (the trace size). Returns one finding per
/// violated invariant; empty when clean.
std::vector<std::string> audit_market(Market& market, const MarketStats& stats,
                                      std::size_t expected_bids);

}  // namespace mbts::oracle
