// Economic extensions: fairness across value classes and incentive
// compatibility of the pricing rules (declared in ablations.hpp).
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "experiments/ablations.hpp"
#include "experiments/analysis.hpp"
#include "market/market.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace mbts {

namespace {

/// Mean/SEM grid over (series, x) filled by parallel replications — the
/// same shape ablations.cpp uses, duplicated here to keep that file's
/// helper internal.
struct Grid {
  std::vector<std::string> labels;
  std::vector<double> xs;
  std::vector<std::vector<Summary>> cells;

  Grid(std::vector<std::string> l, std::vector<double> x)
      : labels(std::move(l)), xs(std::move(x)),
        cells(labels.size(), std::vector<Summary>(xs.size())) {}

  FigureResult to_figure() const {
    FigureResult figure;
    for (std::size_t s = 0; s < labels.size(); ++s) {
      Series series;
      series.label = labels[s];
      for (std::size_t i = 0; i < xs.size(); ++i)
        series.points.push_back(
            {xs[i], cells[s][i].mean(), cells[s][i].sem()});
      figure.series.push_back(std::move(series));
    }
    return figure;
  }
};

}  // namespace

FigureResult extension_fairness(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  // The admission mix draws unit values from classes around 1 and 3; 2 is
  // a clean split.
  constexpr double kSplit = 2.0;

  struct Config {
    std::string name;
    PolicySpec policy;
    bool admission;
  };
  const std::vector<Config> configs{
      {"FCFS", PolicySpec::fcfs(), false},
      {"FirstPrice", PolicySpec::first_price(), false},
      {"FirstReward0.3", PolicySpec::first_reward(0.3), false},
      {"FirstReward0.3_AC", PolicySpec::first_reward(0.3), true},
  };

  std::vector<std::string> labels;
  for (const Config& c : configs) {
    labels.push_back(c.name + ":low");
    labels.push_back(c.name + ":high");
  }
  Grid grid(std::move(labels), {0.8, 1.0, 1.3, 2.0});

  const SeedSequence seeds(options.seed);
  std::mutex mutex;
  ThreadPool pool(options.threads);
  pool.parallel_for(options.replications, [&](std::size_t rep) {
    for (std::size_t l = 0; l < grid.xs.size(); ++l) {
      WorkloadSpec spec =
          presets::admission_mix(grid.xs[l], options.num_jobs);
      Xoshiro256 rng = seeds.stream(6000 + l, rep);
      const Trace trace = generate_trace(spec, rng);
      for (std::size_t c = 0; c < configs.size(); ++c) {
        SimEngine engine;
        SchedulerConfig config;
        config.processors = presets::kProcessors;
        config.preemption = true;
        config.discount_rate = kDiscount;
        std::unique_ptr<AdmissionPolicy> admit;
        if (configs[c].admission)
          admit = std::make_unique<SlackAdmission>(
              SlackAdmissionConfig{0.0, false});
        else
          admit = std::make_unique<AcceptAllAdmission>();
        SiteScheduler site(engine, config, make_policy(configs[c].policy),
                           std::move(admit));
        site.inject(trace.tasks);
        engine.run();
        const auto groups = by_value_class(site.records(), kSplit);
        std::lock_guard<std::mutex> lock(mutex);
        grid.cells[2 * c][l].add(groups[0].yield_fraction);
        grid.cells[2 * c + 1][l].add(groups[1].yield_fraction);
      }
    }
  });

  FigureResult figure = grid.to_figure();
  figure.id = "ext_fairness";
  figure.title = "Extension: realized yield fraction per value class";
  figure.xlabel = "load_factor";
  figure.ylabel = "realized / attainable value";
  return figure;
}

FigureResult extension_truthfulness(const ExperimentOptions& options) {
  constexpr ClientId kManipulator = 0;
  constexpr std::size_t kClients = 10;

  Grid grid({"bidprice_manipulator", "bidprice_honest_avg",
             "secondprice_manipulator", "secondprice_honest_avg"},
            {0.5, 0.8, 1.0, 1.25, 2.0, 4.0});

  const SeedSequence seeds(options.seed);
  std::mutex mutex;
  ThreadPool pool(options.threads);
  pool.parallel_for(options.replications, [&](std::size_t rep) {
    WorkloadSpec spec = presets::admission_mix(1.2, options.num_jobs);
    spec.processors = 32;  // two 16-processor sites
    Xoshiro256 rng = seeds.stream(7000, rep);
    const Trace honest = generate_trace(spec, rng);

    for (std::size_t k_index = 0; k_index < grid.xs.size(); ++k_index) {
      const double k = grid.xs[k_index];
      for (const PricingModel pricing :
           {PricingModel::kBidPrice, PricingModel::kSecondPrice}) {
        MarketConfig config;
        config.pricing = pricing;
        config.rng_seed = seeds.stream(7100, rep).next();
        for (SiteId i = 0; i < 2; ++i) {
          SiteAgentConfig sc;
          sc.id = i;
          sc.scheduler.processors = 16;
          sc.scheduler.preemption = true;
          sc.scheduler.discount_rate = 0.01;
          sc.policy = PolicySpec::first_reward(0.2);
          sc.admission.threshold = 0.0;
          config.sites.push_back(sc);
        }
        Market market(config);

        // Round-robin clients; the manipulator scales its bids by k.
        std::unordered_map<TaskId, const Task*> true_tasks;
        for (const Task& task : honest.tasks) {
          const auto client = static_cast<ClientId>(task.id % kClients);
          true_tasks[task.id] = &task;
          Trace one;
          one.tasks = {client == kManipulator ? scale_bid(task, k) : task};
          market.inject(one, client);
        }
        market.run();

        // Net honest utility per client: true yield at actual completion
        // minus settled price paid.
        std::vector<double> utility(kClients, 0.0);
        for (const auto& site : market.sites()) {
          std::unordered_map<TaskId, const TaskRecord*> records;
          for (const TaskRecord& r : site->scheduler().records())
            records[r.task.id] = &r;
          for (const Contract& contract : site->contracts()) {
            if (!contract.settled) continue;
            const TaskRecord* record = records.at(contract.task);
            const Task* true_task = true_tasks.at(contract.task);
            utility[contract.client] += client_net_utility(
                *true_task, *record, contract.settled_price);
          }
        }
        double honest_sum = 0.0;
        for (ClientId c = 1; c < kClients; ++c) honest_sum += utility[c];
        const double honest_avg =
            honest_sum / static_cast<double>(kClients - 1);

        const std::size_t base =
            pricing == PricingModel::kBidPrice ? 0 : 2;
        std::lock_guard<std::mutex> lock(mutex);
        grid.cells[base][k_index].add(utility[kManipulator]);
        grid.cells[base + 1][k_index].add(honest_avg);
      }
    }
  });

  FigureResult figure = grid.to_figure();
  figure.id = "ext_truthfulness";
  figure.title =
      "Extension: net honest utility when one client scales its bids";
  figure.xlabel = "bid_scale_k";
  figure.ylabel = "client net utility (true yield - price)";
  return figure;
}

}  // namespace mbts
