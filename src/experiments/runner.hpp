// Single-site experiment runner: one (trace, policy, admission) simulation,
// plus seeded replication helpers used by the figure sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/scheduler.hpp"
#include "workload/generator.hpp"

namespace mbts {

class MetricsRegistry;
class TraceRecorder;

/// Optional observability sinks for a run. Default-constructed = telemetry
/// off; either member may be set independently.
struct Telemetry {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Simulates one trace on one site to completion and returns its stats.
/// admission == nullopt selects AcceptAll (the §5 "must run all" regime).
/// `telemetry` (when set) records the run; attaching it never changes the
/// returned stats.
RunStats run_single_site(const Trace& trace, const SchedulerConfig& config,
                         const PolicySpec& policy,
                         std::optional<SlackAdmissionConfig> admission,
                         Telemetry telemetry = {});

/// Global experiment knobs every figure honors; benches expose them as CLI
/// flags so quick runs (fewer jobs/reps) and full runs share one code path.
struct ExperimentOptions {
  std::size_t num_jobs = 5000;
  std::size_t replications = 3;
  std::uint64_t seed = 42;
  /// Worker threads for independent replications; 0 = hardware.
  std::size_t threads = 0;
};

/// Mean (and SEM) of `metric` over replicated runs: for each replication r,
/// a fresh trace is generated from (seed, r) and handed to `run`, which
/// returns the metric value for that trace.
struct Replicated {
  double mean = 0.0;
  double sem = 0.0;
};
Replicated replicate(const ExperimentOptions& options, const WorkloadSpec& spec,
                     const std::function<double(const Trace&)>& run);

}  // namespace mbts
