// Figure data model: labeled (x, y) series plus table/CSV rendering, shared
// by every figure-reproduction bench.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mbts {

struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
  /// Std. error of y across replications (0 when reps == 1).
  double y_sem = 0.0;
};

struct Series {
  std::string label;
  std::vector<SeriesPoint> points;
};

struct FigureResult {
  std::string id;      // e.g. "fig3"
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<Series> series;
};

/// Renders an aligned table: one row per x, one column per series.
/// All series must share the same x grid (checked).
void print_figure(const FigureResult& figure, std::ostream& out);

/// Long-format CSV: id,series,x,y,y_sem.
void save_figure_csv(const FigureResult& figure, const std::string& path);

/// Percentage improvement of a over baseline b: 100 * (a - b) / |b|.
double improvement_pct(double a, double b);

}  // namespace mbts
