#include "experiments/analysis.hpp"

#include "util/check.hpp"

namespace mbts {

std::vector<GroupOutcome> by_value_class(
    const std::deque<TaskRecord>& records, double unit_value_split) {
  std::vector<GroupOutcome> groups(2);
  groups[0].name = "low";
  groups[1].name = "high";
  std::vector<double> max_value(2, 0.0);
  for (const TaskRecord& record : records) {
    const Task& task = record.task;
    const double resource =
        task.estimate() * static_cast<double>(task.width);
    const double unit = resource > 0.0 ? task.value.max_value() / resource
                                       : 0.0;
    GroupOutcome& group = groups[unit >= unit_value_split ? 1 : 0];
    double& attainable = max_value[unit >= unit_value_split ? 1 : 0];
    ++group.submitted;
    attainable += task.value.max_value();
    switch (record.outcome) {
      case TaskOutcome::kRejected:
        ++group.rejected;
        break;
      case TaskOutcome::kCompleted:
      case TaskOutcome::kDropped: {
        ++group.completed;
        group.total_yield += record.realized_yield;
        const double delay = task.delay_at_completion(record.completion);
        group.delay.add(delay);
        group.stretch.add(delay / task.estimate());
        break;
      }
      case TaskOutcome::kFailed:
        // Crash casualties: the breach penalty shows up in the yield but
        // the task never completed, so no delay/stretch sample.
        group.total_yield += record.realized_yield;
        break;
      case TaskOutcome::kPending:
      case TaskOutcome::kRunning:
        break;
    }
  }
  for (std::size_t g = 0; g < 2; ++g)
    groups[g].yield_fraction =
        max_value[g] > 0.0 ? groups[g].total_yield / max_value[g] : 0.0;
  return groups;
}

Task scale_bid(const Task& true_task, double k) {
  MBTS_CHECK_MSG(k > 0.0, "bid scale must be positive");
  Task scaled = true_task;
  const ValueFunction& vf = true_task.value;
  if (vf.is_linear()) {
    const double bound =
        vf.bounded() ? vf.penalty_bound() * k : kInf;
    scaled.value = ValueFunction(vf.max_value() * k, vf.decay() * k, bound);
  } else {
    std::vector<DecaySegment> segments = vf.segments();
    for (DecaySegment& s : segments) s.rate *= k;
    scaled.value = ValueFunction::piecewise(
        vf.max_value() * k, std::move(segments),
        vf.bounded() ? vf.penalty_bound() * k : kInf);
  }
  return scaled;
}

double client_net_utility(const Task& true_task, const TaskRecord& record,
                          double price_paid) {
  if (record.outcome == TaskOutcome::kRejected) return 0.0;
  if (record.completion < 0.0) return 0.0;  // still in flight
  return true_task.yield_at_completion(record.completion) - price_paid;
}

}  // namespace mbts
