// Ablation and extension experiments beyond the paper's five figures.
//
// Ablations probe implementation choices the paper leaves implicit (yield
// basis for ranking, the Eq. 8 typo, stale-vs-fresh priorities, preemption);
// extensions exercise the features the paper defers to future work (runtime
// misestimation, variable-rate value functions, market-level pricing and
// client strategies). Each returns the same FigureResult shape the paper
// figures use, so the bench binaries share one rendering path.
#pragma once

#include "experiments/runner.hpp"
#include "experiments/series.hpp"

namespace mbts {

/// Ablation A1 — yield basis. PV-vs-FirstPrice improvement as in Fig. 3,
/// with the value-aware policies ranking either by yield projected to
/// completion (Eq. 2, the paper's formulation) or by value remaining now
/// (a plausible reading of Millennium's "price"). Millennium mix, skew 4.
FigureResult ablation_yield_basis(const ExperimentOptions& options);

/// Ablation A2 — Eq. 8 as printed vs corrected. Slack-threshold sweep at
/// load 1.33 (as Fig. 7) charging admission cost either decay_j * runtime_i
/// (corrected; the delay task i actually inflicts) or decay_j * runtime_j
/// (the equation as printed). See DESIGN.md §4.
FigureResult ablation_eq8(const ExperimentOptions& options);

/// Ablation A3 — stale (enqueue-time) vs fresh priorities: yield rate vs
/// load for FirstPrice and FirstReward under both rescore policies — the
/// O(log n) heap regime of §5.2 against full rescans.
FigureResult ablation_stale_keys(const ExperimentOptions& options);

/// Ablation A4 — preemption. FirstReward-vs-FirstPrice improvement across
/// alpha (as Fig. 5, decay skew 5) with preemption on and off; each variant
/// is normalized against FirstPrice under the same preemption mode.
FigureResult ablation_preemption(const ExperimentOptions& options);

/// Extension E1 — runtime misestimation (§4 future work): yield rate vs
/// lognormal estimate-error sigma for FirstPrice, FirstReward, and
/// FirstReward with slack admission.
FigureResult extension_estimate_error(const ExperimentOptions& options);

/// Extension E2 — variable-rate value functions (§3): total yield vs the
/// deadline-cliff grace fraction for the main policies; at grace 0 the mix
/// is the paper's linear form.
FigureResult extension_piecewise(const ExperimentOptions& options);

/// Extension E5 — gang scheduling: yield rate vs the maximum task width in
/// the mix (widths uniform over [1, max]) for the main policies, with and
/// without admission control. Width 1 is the paper's model; wider mixes
/// exercise the backfilling dispatch and width-normalized unit gains.
FigureResult extension_gang(const ExperimentOptions& options);

/// Extension E3 — market negotiation (Fig. 1 at scale): settled market
/// revenue rate vs number of competing sites (fixed aggregate capacity) for
/// each client strategy, under bid-price and second-price rules.
FigureResult extension_market(const ExperimentOptions& options);

/// Extension E6 — fairness: realized-yield fraction per value class (low /
/// high unit value) vs load, for FCFS, FirstPrice, and FirstReward with and
/// without admission control. Quantifies how much value-based scheduling
/// starves the low class (§1's fairness tension).
FigureResult extension_fairness(const ExperimentOptions& options);

/// Extension E7 — truthfulness: one client scales its whole value function
/// by k while the rest bid honestly; y is that client's *honest* net
/// utility (true yield minus price paid) per unit time, under bid-price and
/// second-price contracts. Tests §2's motivation for Vickrey pricing.
FigureResult extension_truthfulness(const ExperimentOptions& options);

/// Extension E8 — failure model: settled revenue per unit time in a 3-site
/// market as the per-site outage rate grows, under deterministic seeded
/// fault injection. Series contrast the crash semantics (kill vs
/// checkpoint), breach re-bidding, and lossy quote responses — the market's
/// risk/reward balance when contracts can be breached and the paper's
/// penalty bound is actually charged.
FigureResult extension_faults(const ExperimentOptions& options);

}  // namespace mbts
