// Post-run analysis helpers over per-task records: class-conditional
// breakdowns (the fairness question value-based scheduling raises — §1
// notes users trade local control for "fairness, predictable performance")
// and client-manipulation accounting (the truthfulness question §2's
// Vickrey discussion raises).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "stats/summary.hpp"

namespace mbts {

/// Outcomes of one group of tasks (e.g. a value class).
struct GroupOutcome {
  std::string name;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double total_yield = 0.0;
  /// Realized yield over the group's maximum attainable value.
  double yield_fraction = 0.0;
  Summary delay;         // completed tasks' contract delay (Eq. 2; see
                         // RunStats::delay for the exact definition)
  Summary stretch;       // contract delay / declared runtime
};

/// Splits records into groups by unit value (value / (runtime * width))
/// against `unit_value_split`: tasks at or above the split are "high".
/// The paper's mixes put 20% of tasks in the high class.
std::vector<GroupOutcome> by_value_class(const std::deque<TaskRecord>& records,
                                         double unit_value_split);

/// A bidder that scales its whole value function by `k` (value and decay
/// alike — the function's zero crossing is preserved, its stakes are not).
/// Returns the scaled bid; `true_task` stays the honest valuation.
Task scale_bid(const Task& true_task, double k);

/// Net utility of a (possibly manipulated) outcome from the client's
/// honest perspective: true-value yield at the actual completion minus the
/// price actually paid. For rejected tasks both terms are zero.
double client_net_utility(const Task& true_task, const TaskRecord& record,
                          double price_paid);

}  // namespace mbts
