// One function per paper figure (Figs. 3–7). Each returns the figure's
// series averaged over seeded replications; bench binaries print the table
// and write the CSV. Parameters mirror the paper; ExperimentOptions scales
// job counts and replications for quick runs.
#pragma once

#include "experiments/runner.hpp"
#include "experiments/series.hpp"

namespace mbts {

/// Fig. 3 — PV yield improvement over FirstPrice vs. discount rate (%),
/// one series per value-skew ratio, Millennium mix (normal batched
/// arrivals, uniform decay, penalties bounded at zero, load 1).
FigureResult figure3(const ExperimentOptions& options);

/// Fig. 4 — FirstReward improvement over FirstPrice vs. alpha, penalties
/// bounded at zero, one series per decay-skew ratio, discount 1%.
FigureResult figure4(const ExperimentOptions& options);

/// Fig. 5 — as Fig. 4 with unbounded penalties (cost dominates).
FigureResult figure5(const ExperimentOptions& options);

/// Fig. 6 — average yield rate vs. load factor with slack-threshold
/// admission control (threshold 180), one series per alpha, plus FirstPrice
/// without admission control.
FigureResult figure6(const ExperimentOptions& options);

/// Fig. 7 — improvement over no-admission vs. slack threshold, one series
/// per load factor, FirstReward alpha = 0.2.
FigureResult figure7(const ExperimentOptions& options);

}  // namespace mbts
