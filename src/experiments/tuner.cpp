#include "experiments/tuner.hpp"

#include <mutex>

#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace mbts {

TuneResult tune_first_reward(const ExperimentOptions& options,
                             double load_factor, const TuneGrid& grid) {
  MBTS_CHECK(!grid.alphas.empty() && !grid.thresholds.empty());
  constexpr double kDiscount = 0.01;

  const SeedSequence seeds(options.seed);
  const std::size_t cells = grid.alphas.size() * grid.thresholds.size();
  std::vector<Summary> cell_stats(cells);
  std::vector<Summary> no_admission(grid.alphas.size());
  std::mutex mutex;

  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = kDiscount;

  ThreadPool pool(options.threads);
  pool.parallel_for(options.replications, [&](std::size_t rep) {
    WorkloadSpec spec = presets::admission_mix(load_factor, options.num_jobs);
    Xoshiro256 rng = seeds.stream(0x70E, rep);
    const Trace trace = generate_trace(spec, rng);

    std::vector<double> rates(cells);
    std::vector<double> base_rates(grid.alphas.size());
    for (std::size_t a = 0; a < grid.alphas.size(); ++a) {
      const PolicySpec policy = PolicySpec::first_reward(grid.alphas[a]);
      base_rates[a] =
          run_single_site(trace, config, policy, std::nullopt).yield_rate;
      for (std::size_t t = 0; t < grid.thresholds.size(); ++t) {
        rates[a * grid.thresholds.size() + t] =
            run_single_site(trace, config, policy,
                            SlackAdmissionConfig{grid.thresholds[t], false})
                .yield_rate;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < cells; ++i) cell_stats[i].add(rates[i]);
    for (std::size_t a = 0; a < grid.alphas.size(); ++a)
      no_admission[a].add(base_rates[a]);
  });

  TuneResult result;
  result.grid.reserve(cells);
  std::size_t best_alpha_index = 0;
  for (std::size_t a = 0; a < grid.alphas.size(); ++a) {
    for (std::size_t t = 0; t < grid.thresholds.size(); ++t) {
      const Summary& cell = cell_stats[a * grid.thresholds.size() + t];
      TunePoint point{grid.alphas[a], grid.thresholds[t], cell.mean(),
                      cell.sem()};
      if (result.grid.empty() || point.yield_rate > result.best.yield_rate) {
        result.best = point;
        best_alpha_index = a;
      }
      result.grid.push_back(point);
    }
  }
  result.no_admission_rate = no_admission[best_alpha_index].mean();
  return result;
}

}  // namespace mbts
