#include "experiments/figures.hpp"

#include <cmath>
#include <mutex>
#include <sstream>
#include <vector>

#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace mbts {

namespace {

/// Scheduler base config shared by all figures: the presets' 16-processor
/// site with preemption enabled (§4/§5 methodology).
SchedulerConfig base_config(double discount_rate) {
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = discount_rate;
  return config;
}

/// Shape shared by Figs. 3, 4, 5, 7: one workload per series, a shared
/// x grid of policy parameters, y = % improvement of candidate(x) over a
/// per-trace baseline. Replications are averaged; work fans out over
/// (series, replication) pairs.
FigureResult sweep_improvement(
    const ExperimentOptions& options,
    const std::vector<std::pair<std::string, WorkloadSpec>>& series_specs,
    const std::vector<double>& xs,
    const std::function<double(const Trace&)>& baseline,
    const std::function<double(const Trace&, double)>& candidate) {
  MBTS_CHECK(!series_specs.empty() && !xs.empty());
  const SeedSequence seeds(options.seed);

  std::vector<std::vector<Summary>> cells(
      series_specs.size(), std::vector<Summary>(xs.size()));
  std::mutex mutex;

  ThreadPool pool(options.threads);
  const std::size_t reps = options.replications;
  pool.parallel_for(series_specs.size() * reps, [&](std::size_t index) {
    const std::size_t s = index / reps;
    const std::size_t r = index % reps;
    WorkloadSpec spec = series_specs[s].second;
    spec.num_jobs = options.num_jobs;
    // Replication seed is shared across series so same-r traces differ only
    // by the series' workload parameters.
    Xoshiro256 rng = seeds.stream(s, r);
    const Trace trace = generate_trace(spec, rng);
    const double base = baseline(trace);
    std::vector<double> ys(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      ys[i] = improvement_pct(candidate(trace, xs[i]), base);
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < xs.size(); ++i) cells[s][i].add(ys[i]);
  });

  FigureResult figure;
  for (std::size_t s = 0; s < series_specs.size(); ++s) {
    Series series;
    series.label = series_specs[s].first;
    for (std::size_t i = 0; i < xs.size(); ++i)
      series.points.push_back(
          {xs[i], cells[s][i].mean(), cells[s][i].sem()});
    figure.series.push_back(std::move(series));
  }
  return figure;
}

std::string label(const std::string& prefix, double v) {
  std::ostringstream os;
  os << prefix << v;
  return os.str();
}

}  // namespace

FigureResult figure3(const ExperimentOptions& options) {
  const std::vector<double> value_skews{1.0, 1.5, 2.15, 4.0, 9.0};
  // x axis: discount rate in percent, log-spaced 0.001%..10% as in Fig. 3.
  const std::vector<double> discount_pct{0.001, 0.003, 0.01, 0.03, 0.1,
                                         0.3,   1.0,   3.0,  10.0};

  std::vector<std::pair<std::string, WorkloadSpec>> series_specs;
  for (double skew : value_skews)
    series_specs.emplace_back(label("skew=", skew),
                              presets::millennium_mix(skew));

  auto baseline = [](const Trace& trace) {
    return run_single_site(trace, base_config(0.0),
                           PolicySpec::first_price(), std::nullopt)
        .total_yield;
  };
  auto candidate = [](const Trace& trace, double pct) {
    return run_single_site(trace, base_config(pct / 100.0),
                           PolicySpec::present_value(), std::nullopt)
        .total_yield;
  };

  FigureResult figure =
      sweep_improvement(options, series_specs, discount_pct, baseline,
                        candidate);
  figure.id = "fig3";
  figure.title = "Present Value vs FirstPrice (Millennium mix, load 1)";
  figure.xlabel = "discount_rate_%";
  figure.ylabel = "yield improvement over FirstPrice (%)";
  return figure;
}

namespace {

FigureResult alpha_sweep(const ExperimentOptions& options,
                         PenaltyModel penalty) {
  const std::vector<double> decay_skews{3.0, 5.0, 7.0};
  const std::vector<double> alphas{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.8, 0.9};
  constexpr double kDiscount = 0.01;  // 1% per the paper

  std::vector<std::pair<std::string, WorkloadSpec>> series_specs;
  for (double skew : decay_skews)
    series_specs.emplace_back(label("decay_skew=", skew),
                              presets::decay_skew_mix(skew, penalty));

  auto baseline = [](const Trace& trace) {
    return run_single_site(trace, base_config(0.0),
                           PolicySpec::first_price(), std::nullopt)
        .total_yield;
  };
  auto candidate = [](const Trace& trace, double alpha) {
    return run_single_site(trace, base_config(kDiscount),
                           PolicySpec::first_reward(alpha), std::nullopt)
        .total_yield;
  };

  FigureResult figure =
      sweep_improvement(options, series_specs, alphas, baseline, candidate);
  figure.xlabel = "alpha";
  figure.ylabel = "yield improvement over FirstPrice (%)";
  return figure;
}

}  // namespace

FigureResult figure4(const ExperimentOptions& options) {
  FigureResult figure = alpha_sweep(options, PenaltyModel::kBoundedAtZero);
  figure.id = "fig4";
  figure.title = "FirstReward vs FirstPrice, bounded penalties";
  return figure;
}

FigureResult figure5(const ExperimentOptions& options) {
  FigureResult figure = alpha_sweep(options, PenaltyModel::kUnbounded);
  figure.id = "fig5";
  figure.title = "FirstReward vs FirstPrice, unbounded penalties";
  return figure;
}

FigureResult figure6(const ExperimentOptions& options) {
  const std::vector<double> loads{0.5, 1.0, 1.5, 2.0, 2.5,
                                  3.0, 3.5, 4.0, 4.5};
  const std::vector<double> alphas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  constexpr double kDiscount = 0.01;
  constexpr double kThreshold = 180.0;

  struct Config {
    std::string name;
    PolicySpec policy;
    std::optional<SlackAdmissionConfig> admission;
    double discount;
  };
  std::vector<Config> configs;
  for (double alpha : alphas)
    configs.push_back({label("alpha=", alpha), PolicySpec::first_reward(alpha),
                       SlackAdmissionConfig{kThreshold, false}, kDiscount});
  configs.push_back({"FirstPrice_noAC", PolicySpec::first_price(),
                     std::nullopt, 0.0});

  const SeedSequence seeds(options.seed);
  std::vector<std::vector<Summary>> cells(configs.size(),
                                          std::vector<Summary>(loads.size()));
  std::mutex mutex;
  ThreadPool pool(options.threads);
  const std::size_t reps = options.replications;
  pool.parallel_for(loads.size() * reps, [&](std::size_t index) {
    const std::size_t l = index / reps;
    const std::size_t r = index % reps;
    WorkloadSpec spec = presets::admission_mix(loads[l]);
    spec.num_jobs = options.num_jobs;
    Xoshiro256 rng = seeds.stream(l, r);
    const Trace trace = generate_trace(spec, rng);
    std::vector<double> ys(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
      ys[c] = run_single_site(trace, base_config(configs[c].discount),
                              configs[c].policy, configs[c].admission)
                  .yield_rate;
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t c = 0; c < configs.size(); ++c) cells[c][l].add(ys[c]);
  });

  FigureResult figure;
  figure.id = "fig6";
  figure.title = "Admission control: yield rate vs load (threshold 180)";
  figure.xlabel = "load_factor";
  figure.ylabel = "average yield rate";
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Series series;
    series.label = configs[c].name;
    for (std::size_t l = 0; l < loads.size(); ++l)
      series.points.push_back(
          {loads[l], cells[c][l].mean(), cells[c][l].sem()});
    figure.series.push_back(std::move(series));
  }
  return figure;
}

FigureResult figure7(const ExperimentOptions& options) {
  const std::vector<double> loads{0.5, 0.67, 0.89, 1.33, 2.0};
  const std::vector<double> thresholds{-200, -100, 0,   100, 200,
                                       300,  400,  500, 600, 700};
  constexpr double kDiscount = 0.01;
  constexpr double kAlpha = 0.2;

  std::vector<std::pair<std::string, WorkloadSpec>> series_specs;
  for (double load : loads)
    series_specs.emplace_back(label("load=", load),
                              presets::admission_mix(load));

  auto baseline = [](const Trace& trace) {
    return run_single_site(trace, base_config(kDiscount),
                           PolicySpec::first_reward(kAlpha), std::nullopt)
        .yield_rate;
  };
  auto candidate = [](const Trace& trace, double threshold) {
    return run_single_site(trace, base_config(kDiscount),
                           PolicySpec::first_reward(kAlpha),
                           SlackAdmissionConfig{threshold, false})
        .yield_rate;
  };

  FigureResult figure = sweep_improvement(options, series_specs, thresholds,
                                          baseline, candidate);
  figure.id = "fig7";
  figure.title =
      "Admission (slack) threshold vs improvement over no admission";
  figure.xlabel = "slack_threshold";
  figure.ylabel = "yield-rate improvement over no admission (%)";
  return figure;
}

}  // namespace mbts
