#include "experiments/runner.hpp"

#include <mutex>
#include <vector>

#include "sim/engine.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace mbts {

RunStats run_single_site(const Trace& trace, const SchedulerConfig& config,
                         const PolicySpec& policy,
                         std::optional<SlackAdmissionConfig> admission,
                         Telemetry telemetry) {
  SimEngine engine;
  std::unique_ptr<AdmissionPolicy> admit;
  if (admission)
    admit = std::make_unique<SlackAdmission>(*admission);
  else
    admit = std::make_unique<AcceptAllAdmission>();
  SiteScheduler site(engine, config, make_policy(policy), std::move(admit));
  if (telemetry.trace != nullptr || telemetry.metrics != nullptr)
    site.set_telemetry(telemetry.trace, telemetry.metrics, /*site=*/0);
  site.inject(trace.tasks);
  engine.run();
  MBTS_CHECK_MSG(site.idle(), "run did not drain the site");
  return site.stats();
}

Replicated replicate(const ExperimentOptions& options,
                     const WorkloadSpec& spec,
                     const std::function<double(const Trace&)>& run) {
  MBTS_CHECK_MSG(options.replications > 0, "need at least one replication");
  const SeedSequence seeds(options.seed);
  WorkloadSpec rep_spec = spec;
  rep_spec.num_jobs = options.num_jobs;

  Summary summary;
  std::mutex mutex;
  ThreadPool pool(options.threads);
  pool.parallel_for(options.replications, [&](std::size_t r) {
    const Trace trace = generate_trace(rep_spec, seeds, r);
    const double y = run(trace);
    std::lock_guard<std::mutex> lock(mutex);
    summary.add(y);
  });

  return Replicated{summary.mean(), summary.sem()};
}

}  // namespace mbts
