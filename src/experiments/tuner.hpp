// Grid-search tuner for FirstReward's (alpha, slack-threshold) pair.
//
// §8 concludes that the ideal parameters depend on the task mix — notably
// that the best slack threshold grows with load (Fig. 7). The tuner makes
// that operational: given a workload, it evaluates the full grid over
// seeded replications and reports the best setting with its margin over
// the worst and over no admission control.
#pragma once

#include <vector>

#include "experiments/runner.hpp"

namespace mbts {

struct TuneGrid {
  std::vector<double> alphas{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<double> thresholds{-100, 0, 100, 200, 300, 450, 600};
};

struct TunePoint {
  double alpha = 0.0;
  double threshold = 0.0;
  double yield_rate = 0.0;  // mean over replications
  double sem = 0.0;
};

struct TuneResult {
  std::vector<TunePoint> grid;  // row-major: alphas x thresholds
  TunePoint best;
  /// Yield rate of FirstReward(best alpha) without admission control.
  double no_admission_rate = 0.0;
};

/// Evaluates the grid on the Fig. 6/7 admission mix at `load_factor`.
TuneResult tune_first_reward(const ExperimentOptions& options,
                             double load_factor, const TuneGrid& grid);

}  // namespace mbts
