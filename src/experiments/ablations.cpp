#include "experiments/ablations.hpp"

#include <cstdlib>
#include <mutex>

#include "market/market.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"

namespace mbts {

namespace {

SchedulerConfig base_config(double discount_rate, bool preemption = true) {
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = preemption;
  config.discount_rate = discount_rate;
  return config;
}

/// Generic sweep: one trace family, series = config variants, shared x
/// grid, y computed per (variant, x, trace). Parallel over replications.
struct Sweep {
  std::function<Trace(std::uint64_t rep, Xoshiro256& rng)> make_trace;
  std::vector<std::string> series_labels;
  std::vector<double> xs;
  /// y(series, x, trace)
  std::function<double(std::size_t, double, const Trace&)> y;
};

FigureResult run_sweep(const ExperimentOptions& options, const Sweep& sweep) {
  const SeedSequence seeds(options.seed);
  std::vector<std::vector<Summary>> cells(
      sweep.series_labels.size(), std::vector<Summary>(sweep.xs.size()));
  std::mutex mutex;
  ThreadPool pool(options.threads);
  pool.parallel_for(options.replications, [&](std::size_t rep) {
    Xoshiro256 rng = seeds.stream(0xAB1A, rep);
    const Trace trace = sweep.make_trace(rep, rng);
    std::vector<std::vector<double>> ys(
        sweep.series_labels.size(), std::vector<double>(sweep.xs.size()));
    for (std::size_t s = 0; s < sweep.series_labels.size(); ++s)
      for (std::size_t i = 0; i < sweep.xs.size(); ++i)
        ys[s][i] = sweep.y(s, sweep.xs[i], trace);
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t s = 0; s < sweep.series_labels.size(); ++s)
      for (std::size_t i = 0; i < sweep.xs.size(); ++i)
        cells[s][i].add(ys[s][i]);
  });

  FigureResult figure;
  for (std::size_t s = 0; s < sweep.series_labels.size(); ++s) {
    Series series;
    series.label = sweep.series_labels[s];
    for (std::size_t i = 0; i < sweep.xs.size(); ++i)
      series.points.push_back(
          {sweep.xs[i], cells[s][i].mean(), cells[s][i].sem()});
    figure.series.push_back(std::move(series));
  }
  return figure;
}

}  // namespace

FigureResult ablation_yield_basis(const ExperimentOptions& options) {
  Sweep sweep;
  sweep.make_trace = [&](std::uint64_t, Xoshiro256& rng) {
    WorkloadSpec spec = presets::millennium_mix(4.0, options.num_jobs);
    return generate_trace(spec, rng);
  };
  sweep.series_labels = {"PV_at_completion", "PV_at_now",
                         "FirstPrice_at_now"};
  sweep.xs = {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};  // discount %
  sweep.y = [](std::size_t s, double pct, const Trace& trace) {
    const double base =
        run_single_site(trace, base_config(0.0), PolicySpec::first_price(),
                        std::nullopt)
            .total_yield;
    PolicySpec policy = PolicySpec::present_value();
    double discount = pct / 100.0;
    if (s == 1) policy = policy.with_basis(YieldBasis::kAtNow);
    if (s == 2) {
      policy = PolicySpec::first_price().with_basis(YieldBasis::kAtNow);
      discount = 0.0;  // FirstPrice ignores the discount rate anyway
    }
    const double y = run_single_site(trace, base_config(discount), policy,
                                     std::nullopt)
                         .total_yield;
    return improvement_pct(y, base);
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "abl_yield_basis";
  figure.title = "Ablation: ranking-yield basis (vs FirstPrice at Eq. 2)";
  figure.xlabel = "discount_rate_%";
  figure.ylabel = "yield improvement over FirstPrice (%)";
  return figure;
}

FigureResult ablation_eq8(const ExperimentOptions& options) {
  constexpr double kAlpha = 0.2;
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  sweep.make_trace = [&](std::uint64_t, Xoshiro256& rng) {
    WorkloadSpec spec = presets::admission_mix(1.33, options.num_jobs);
    return generate_trace(spec, rng);
  };
  sweep.series_labels = {"eq8_corrected", "eq8_literal"};
  sweep.xs = {-200, -100, 0, 100, 200, 300, 400, 500, 600, 700};
  sweep.y = [](std::size_t s, double threshold, const Trace& trace) {
    const double base =
        run_single_site(trace, base_config(kDiscount),
                        PolicySpec::first_reward(kAlpha), std::nullopt)
            .yield_rate;
    const double y =
        run_single_site(trace, base_config(kDiscount),
                        PolicySpec::first_reward(kAlpha),
                        SlackAdmissionConfig{threshold, /*literal=*/s == 1})
            .yield_rate;
    return improvement_pct(y, base);
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "abl_eq8";
  figure.title = "Ablation: Eq. 8 as printed vs corrected (load 1.33)";
  figure.xlabel = "slack_threshold";
  figure.ylabel = "yield-rate improvement over no admission (%)";
  return figure;
}

FigureResult ablation_stale_keys(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  // Per x (load), per rep a fresh trace — fold load into make_trace by
  // regenerating inside y instead (loads change the trace itself).
  sweep.make_trace = [&](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);  // trace made per (x, rep)
    return marker;
  };
  sweep.series_labels = {"FirstPrice_fresh", "FirstPrice_stale",
                         "FirstReward0.3_fresh", "FirstReward0.3_stale"};
  sweep.xs = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
  const SeedSequence seeds(options.seed);
  const std::size_t jobs = options.num_jobs;
  sweep.y = [seeds, jobs](std::size_t s, double load, const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    WorkloadSpec spec = presets::admission_mix(load, jobs);
    Xoshiro256 rng = seeds.stream(static_cast<std::uint64_t>(load * 1000),
                                  rep);
    const Trace trace = generate_trace(spec, rng);
    SchedulerConfig config = base_config(kDiscount);
    config.rescore =
        (s % 2 == 1) ? RescorePolicy::kAtEnqueue : RescorePolicy::kFresh;
    const PolicySpec policy =
        s < 2 ? PolicySpec::first_price() : PolicySpec::first_reward(0.3);
    return run_single_site(trace, config, policy, std::nullopt).yield_rate;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "abl_stale_keys";
  figure.title = "Ablation: enqueue-time (stale) vs fresh priorities";
  figure.xlabel = "load_factor";
  figure.ylabel = "average yield rate";
  return figure;
}

FigureResult ablation_preemption(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  sweep.make_trace = [&](std::uint64_t, Xoshiro256& rng) {
    WorkloadSpec spec = presets::decay_skew_mix(
        5.0, PenaltyModel::kUnbounded, options.num_jobs);
    return generate_trace(spec, rng);
  };
  sweep.series_labels = {"preemptive", "non_preemptive"};
  sweep.xs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  sweep.y = [](std::size_t s, double alpha, const Trace& trace) {
    const bool preemption = s == 0;
    const double base =
        run_single_site(trace, base_config(0.0, preemption),
                        PolicySpec::first_price(), std::nullopt)
            .total_yield;
    const double y =
        run_single_site(trace, base_config(kDiscount, preemption),
                        PolicySpec::first_reward(alpha), std::nullopt)
            .total_yield;
    return improvement_pct(y, base);
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "abl_preemption";
  figure.title =
      "Ablation: preemption (FirstReward vs FirstPrice, same mode)";
  figure.xlabel = "alpha";
  figure.ylabel = "yield improvement over FirstPrice (%)";
  return figure;
}

FigureResult extension_estimate_error(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  const std::size_t jobs = options.num_jobs;
  const SeedSequence seeds(options.seed);
  sweep.make_trace = [](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);
    return marker;
  };
  sweep.series_labels = {"FirstPrice", "FirstReward0.3",
                         "FirstReward0.3_admission"};
  sweep.xs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
  sweep.y = [seeds, jobs](std::size_t s, double sigma, const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    WorkloadSpec spec = presets::admission_mix(1.2, jobs);
    spec.estimate_error_sigma = sigma;
    Xoshiro256 rng =
        seeds.stream(static_cast<std::uint64_t>(sigma * 1000), rep);
    const Trace trace = generate_trace(spec, rng);
    std::optional<SlackAdmissionConfig> admission;
    PolicySpec policy = PolicySpec::first_price();
    if (s >= 1) policy = PolicySpec::first_reward(0.3);
    if (s == 2) admission = SlackAdmissionConfig{0.0, false};
    return run_single_site(trace, base_config(kDiscount), policy, admission)
        .yield_rate;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "ext_estimates";
  figure.title = "Extension: runtime misestimation (load 1.2, unbounded)";
  figure.xlabel = "estimate_error_sigma";
  figure.ylabel = "average yield rate";
  return figure;
}

FigureResult extension_piecewise(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  const std::size_t jobs = options.num_jobs;
  const SeedSequence seeds(options.seed);
  sweep.make_trace = [](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);
    return marker;
  };
  sweep.series_labels = {"FirstPrice", "PV", "FirstReward0.3", "SWPT"};
  sweep.xs = {0.0, 0.2, 0.4, 0.6, 0.8};
  sweep.y = [seeds, jobs](std::size_t s, double grace, const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    WorkloadSpec spec =
        presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, jobs);
    spec.cliff_grace = grace;
    Xoshiro256 rng =
        seeds.stream(static_cast<std::uint64_t>(grace * 1000), rep);
    const Trace trace = generate_trace(spec, rng);
    static const std::vector<PolicySpec> kPolicies{
        PolicySpec::first_price(), PolicySpec::present_value(),
        PolicySpec::first_reward(0.3), PolicySpec::swpt()};
    return run_single_site(trace, base_config(kDiscount), kPolicies[s],
                           std::nullopt)
        .total_yield;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "ext_piecewise";
  figure.title =
      "Extension: deadline-cliff value functions (same time-to-zero)";
  figure.xlabel = "cliff_grace_fraction";
  figure.ylabel = "total yield";
  return figure;
}

FigureResult extension_gang(const ExperimentOptions& options) {
  constexpr double kDiscount = 0.01;
  Sweep sweep;
  const std::size_t jobs = options.num_jobs;
  const SeedSequence seeds(options.seed);
  sweep.make_trace = [](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);
    return marker;
  };
  sweep.series_labels = {"FCFS", "FirstPrice", "FirstReward0.3",
                         "FirstReward0.3_admission"};
  sweep.xs = {1, 2, 4, 8, 12};
  sweep.y = [seeds, jobs](std::size_t s, double max_width,
                          const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    WorkloadSpec spec = presets::admission_mix(1.2, jobs);
    if (max_width > 1.0)
      spec.width = DistSpec::uniform(1.0, max_width + 1.0);
    Xoshiro256 rng =
        seeds.stream(4000 + static_cast<std::uint64_t>(max_width), rep);
    const Trace trace = generate_trace(spec, rng);
    std::optional<SlackAdmissionConfig> admission;
    PolicySpec policy = PolicySpec::fcfs();
    if (s == 1) policy = PolicySpec::first_price();
    if (s >= 2) policy = PolicySpec::first_reward(0.3);
    if (s == 3) admission = SlackAdmissionConfig{0.0, false};
    SchedulerConfig config = base_config(kDiscount);
    return run_single_site(trace, config, policy, admission).yield_rate;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "ext_gang";
  figure.title = "Extension: gang scheduling (widths uniform [1, max])";
  figure.xlabel = "max_width";
  figure.ylabel = "average yield rate";
  return figure;
}

FigureResult extension_market(const ExperimentOptions& options) {
  Sweep sweep;
  const std::size_t jobs = options.num_jobs;
  const SeedSequence seeds(options.seed);
  sweep.make_trace = [](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);
    return marker;
  };
  sweep.series_labels = {"value_bidprice", "value_secondprice",
                         "earliest_bidprice", "random_bidprice"};
  sweep.xs = {1, 2, 3, 4, 6};  // number of sites; total capacity fixed at 48
  sweep.y = [seeds, jobs](std::size_t s, double sites_d,
                          const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    const auto n_sites = static_cast<std::size_t>(sites_d);
    constexpr std::size_t kTotalProcs = 48;

    MarketConfig config;
    config.rng_seed = seeds.stream(s, rep).next();
    config.strategy = s == 2 ? ClientStrategy::kEarliestCompletion
                     : s == 3 ? ClientStrategy::kRandom
                              : ClientStrategy::kMaxExpectedValue;
    config.pricing =
        s == 1 ? PricingModel::kSecondPrice : PricingModel::kBidPrice;
    for (std::size_t i = 0; i < n_sites; ++i) {
      SiteAgentConfig sc;
      sc.id = static_cast<SiteId>(i);
      sc.name = "site" + std::to_string(i);
      sc.scheduler.processors = kTotalProcs / n_sites;
      sc.scheduler.preemption = true;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.use_slack_admission = true;
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }

    WorkloadSpec spec = presets::admission_mix(1.2, jobs);
    // Load is calibrated against the preset's 16 processors; rescale the
    // arrival rate to the market's aggregate capacity.
    spec.processors = kTotalProcs;
    Xoshiro256 rng = seeds.stream(1000 + n_sites, rep);
    const Trace trace = generate_trace(spec, rng);

    Market market(config);
    market.inject(trace);
    const MarketStats stats = market.run();
    double first = kInf, last = 0.0;
    for (const RunStats& rs : stats.site_stats) {
      if (rs.completed == 0) continue;
      first = std::min(first, rs.first_arrival);
      last = std::max(last, rs.last_completion);
    }
    return last > first ? stats.total_revenue / (last - first) : 0.0;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "ext_market";
  figure.title = "Extension: multi-site market (48 processors total)";
  figure.xlabel = "sites";
  figure.ylabel = "settled revenue per unit time";
  return figure;
}

FigureResult extension_faults(const ExperimentOptions& options) {
  Sweep sweep;
  const std::size_t jobs = options.num_jobs;
  const SeedSequence seeds(options.seed);
  sweep.make_trace = [](std::uint64_t rep, Xoshiro256&) {
    Trace marker;
    marker.description = std::to_string(rep);
    return marker;
  };
  sweep.series_labels = {"kill", "kill_rebid", "checkpoint",
                         "kill_rebid_lossy"};
  sweep.xs = {0.0, 0.001, 0.002, 0.004, 0.008};  // outages/site/unit time
  sweep.y = [seeds, jobs](std::size_t s, double outage_rate,
                          const Trace& marker) {
    const auto rep = static_cast<std::uint64_t>(
        std::strtoull(marker.description.c_str(), nullptr, 10));
    constexpr std::size_t kSites = 3;
    constexpr std::size_t kProcsPerSite = 16;

    MarketConfig config;
    config.rng_seed = seeds.stream(s, rep).next();
    config.pricing = PricingModel::kSecondPrice;
    for (std::size_t i = 0; i < kSites; ++i) {
      SiteAgentConfig sc;
      sc.id = static_cast<SiteId>(i);
      sc.name = "site" + std::to_string(i);
      sc.scheduler.processors = kProcsPerSite;
      sc.scheduler.preemption = true;
      sc.scheduler.discount_rate = 0.01;
      sc.policy = PolicySpec::first_reward(0.2);
      sc.use_slack_admission = true;
      sc.admission.threshold = 0.0;
      config.sites.push_back(sc);
    }
    config.faults.outage_rate = outage_rate;
    config.faults.mean_outage = 150.0;
    config.faults.crash_mode =
        s == 2 ? CrashMode::kCheckpoint : CrashMode::kKill;
    config.faults.quote_timeout_prob = s == 3 ? 0.1 : 0.0;
    config.retry.rebid_on_breach = s >= 1;

    WorkloadSpec spec = presets::admission_mix(1.2, jobs);
    // Load is calibrated against the preset's 16 processors; rescale the
    // arrival rate to the market's aggregate capacity.
    spec.processors = kSites * kProcsPerSite;
    Xoshiro256 rng = seeds.stream(2000 + s, rep);
    const Trace trace = generate_trace(spec, rng);

    Market market(config);
    market.inject(trace);
    const MarketStats stats = market.run();
    double first = kInf, last = 0.0;
    for (const RunStats& rs : stats.site_stats) {
      if (rs.completed == 0) continue;
      first = std::min(first, rs.first_arrival);
      last = std::max(last, rs.last_completion);
    }
    return last > first ? stats.total_revenue / (last - first) : 0.0;
  };
  FigureResult figure = run_sweep(options, sweep);
  figure.id = "ext_faults";
  figure.title = "Extension: deterministic fault injection (3 sites)";
  figure.xlabel = "outage rate (per site per unit time)";
  figure.ylabel = "settled revenue per unit time";
  return figure;
}

}  // namespace mbts
