#include "experiments/fingerprint.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <optional>

#include "core/admission.hpp"
#include "experiments/runner.hpp"
#include "sim/engine.hpp"
#include "workload/presets.hpp"

namespace mbts {

namespace {

std::string format(const char* fmt, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string fingerprint_line(const std::string& label, const RunStats& s) {
  return format(
      "%s submitted=%zu accepted=%zu rejected=%zu completed=%zu dropped=%zu "
      "total_yield=%.17g yield_rate=%.17g first_arrival=%.17g "
      "last_completion=%.17g utilization=%.17g preemptions=%" PRIu64
      " dispatches=%" PRIu64
      " delay_mean=%.17g delay_max=%.17g ryield_mean=%.17g\n",
      label.c_str(), s.submitted, s.accepted, s.rejected, s.completed,
      s.dropped, s.total_yield, s.yield_rate, s.first_arrival,
      s.last_completion, s.utilization, s.preemptions, s.dispatches,
      s.delay.mean(), s.delay.max(), s.realized_yield.mean());
}

std::string fingerprint_line(const std::string& label, const MarketStats& s) {
  std::string line = format(
      "%s bids=%zu awarded=%zu rejected=%zu unaffordable=%zu "
      "revenue=%.17g agreed=%.17g violated=%zu outages=%zu breached=%zu "
      "timeouts=%zu retries=%zu rebids=%zu re_awards=%zu",
      label.c_str(), s.bids, s.awarded, s.rejected_everywhere, s.unaffordable,
      s.total_revenue, s.total_agreed, s.violated_contracts, s.outages,
      s.breached_contracts, s.quote_timeouts, s.retries, s.rebids,
      s.re_awards);
  for (std::size_t i = 0; i < s.site_revenue.size(); ++i)
    line += format(" site%zu=%.17g", i, s.site_revenue[i]);
  line += '\n';
  return line;
}

MarketStats run_fingerprint_market(const FaultConfig& faults,
                                   std::size_t shards) {
  FingerprintMarketOptions options;
  options.faults = faults;
  options.shards = shards;
  return run_fingerprint_market(options);
}

MarketStats run_fingerprint_market(const FingerprintMarketOptions& options) {
  MarketConfig config;
  // Heterogeneous sites so the fingerprint covers real competition: every
  // site wins some contracts and every negotiation path (award, admission
  // rejection, budget refusal) is exercised.
  const std::size_t procs[3] = {4, 8, 12};
  const double thresholds[3] = {120.0, 180.0, 240.0};
  for (std::size_t i = 0; i < 3; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = procs[i];
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.scheduler.score_kernels =
        options.kernels ? ScoreKernelMode::kExact : ScoreKernelMode::kOff;
    site.policy = PolicySpec::first_reward(0.3);
    site.admission = SlackAdmissionConfig{thresholds[i], false};
    config.sites.push_back(site);
  }
  config.strategy = ClientStrategy::kMaxExpectedValue;
  config.pricing = PricingModel::kSecondPrice;
  config.client_budgets[0] = ClientBudget{1500.0, 250.0};
  config.rng_seed = 42;
  config.faults = options.faults;
  config.shards = options.shards;
  config.epoch_batching = options.batching;

  Market market(config);
  Xoshiro256 rng = SeedSequence(42).stream(8);
  const Trace trace =
      generate_trace(presets::admission_mix(1.3, 800), rng);
  market.inject(trace);
  return market.run();
}

namespace {

/// 100k-pending dispatch burst: every task arrives at t=0, the site drains
/// at 16 processors until t=5, and each completion rescores the whole
/// backlog through the SoA kernels (the scheduler default). Pins the
/// kernel path at the scale the EXPERIMENTS.md §"100k scaling" recipe
/// measures — including the piecewise scalar-fixup lane (every 16th task
/// is a two-segment profile). Unbounded penalties keep the mix on the
/// Eq. 5 cost path, so the fingerprint isolates batched scoring rather
/// than the inherently O(n) per-task Eq. 4 sum.
RunStats run_highload_burst(const PolicySpec& policy) {
  const std::size_t n = 100000;
  Xoshiro256 rng(23);
  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task& t = tasks[i];
    t.id = static_cast<TaskId>(i + 1);
    t.arrival = 0.0;
    t.runtime = rng.uniform(1.0, 10.0);
    const double value = rng.uniform(10.0, 100.0);
    const double decay = rng.uniform(0.001, 0.05);
    if (i % 16 == 0) {
      t.value = ValueFunction::piecewise(
          value, {{rng.uniform(2.0, 8.0), decay}, {kInf, decay * 2.0}}, kInf);
    } else {
      t.value = ValueFunction::unbounded(value, decay);
    }
  }
  SchedulerConfig config;
  config.processors = 16;
  config.preemption = true;
  config.discount_rate = 0.01;
  SimEngine engine;
  SiteScheduler site(engine, config, make_policy(policy),
                     std::make_unique<AcceptAllAdmission>());
  site.preload(tasks);
  engine.run_until(5.0);
  return site.stats();
}

}  // namespace

std::string stats_fingerprint() {
  const std::size_t jobs = 1500;
  SchedulerConfig config;
  config.processors = presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;
  std::string out;

  // Fig. 4: bounded penalties, FirstReward sweep point.
  {
    Xoshiro256 rng = SeedSequence(42).stream(4);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kBoundedAtZero, jobs), rng);
    out += fingerprint_line(
        "fig4_fr0.3", run_single_site(trace, config,
                                      PolicySpec::first_reward(0.3),
                                      std::nullopt));
    out += fingerprint_line(
        "fig4_pv", run_single_site(trace, config, PolicySpec::present_value(),
                                   std::nullopt));
  }
  // Fig. 5: unbounded penalties.
  {
    Xoshiro256 rng = SeedSequence(42).stream(5);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, jobs), rng);
    out += fingerprint_line(
        "fig5_fr0.1", run_single_site(trace, config,
                                      PolicySpec::first_reward(0.1),
                                      std::nullopt));
    out += fingerprint_line(
        "fig5_fp", run_single_site(trace, config, PolicySpec::first_price(),
                                   std::nullopt));
  }
  // Fig. 6: admission under overload.
  {
    Xoshiro256 rng = SeedSequence(42).stream(6);
    const Trace trace =
        generate_trace(presets::admission_mix(1.6, jobs), rng);
    out += fingerprint_line(
        "fig6_admit", run_single_site(trace, config,
                                      PolicySpec::first_reward(0.3),
                                      SlackAdmissionConfig{180.0, false}));
    out += fingerprint_line(
        "fig6_noadmit", run_single_site(trace, config,
                                        PolicySpec::first_reward(0.3),
                                        std::nullopt));
  }
  // Fig. 7: slack-threshold sweep point.
  {
    Xoshiro256 rng = SeedSequence(42).stream(7);
    const Trace trace =
        generate_trace(presets::admission_mix(1.3, jobs), rng);
    out += fingerprint_line(
        "fig7_thresh0", run_single_site(trace, config,
                                        PolicySpec::first_reward(0.3),
                                        SlackAdmissionConfig{0.0, false}));
    out += fingerprint_line(
        "fig7_thresh400",
        run_single_site(trace, config, PolicySpec::first_reward(0.3),
                        SlackAdmissionConfig{400.0, false}));
  }
  // FirstReward at the ends of the α spectrum: α→1 weighs risk so heavily
  // the policy approaches its SWPT limit, and the explicit SWPT run pins
  // that limit itself (decay-rate-over-runtime ordering, no reward term).
  {
    Xoshiro256 rng = SeedSequence(42).stream(9);
    const Trace trace = generate_trace(
        presets::decay_skew_mix(5.0, PenaltyModel::kUnbounded, jobs), rng);
    out += fingerprint_line(
        "fr_alpha0.9", run_single_site(trace, config,
                                       PolicySpec::first_reward(0.9),
                                       std::nullopt));
    out += fingerprint_line(
        "swpt_limit", run_single_site(trace, config, PolicySpec::swpt(),
                                      std::nullopt));
  }
  // The fault-free economy (negotiation + settlement + all failure
  // counters, which must print as zeros here).
  out += fingerprint_line("market", run_fingerprint_market());
  // The same economy under a seeded fault plan: outages, quote timeouts,
  // retries, breaches, and re-awards all pinned at full precision.
  {
    FaultConfig faults;
    faults.outage_rate = 0.003;
    faults.mean_outage = 150.0;
    faults.quote_timeout_prob = 0.05;
    faults.crash_mode = CrashMode::kKill;
    out += fingerprint_line("market_faults", run_fingerprint_market(faults));
  }
  // 100k-pending dispatch bursts, one per kernelized policy: the SoA
  // batch-scoring path at high load. Any reassociation, tie-break drift,
  // or stale column slot shows up as a changed line here.
  out += fingerprint_line("highload100k_fp",
                          run_highload_burst(PolicySpec::first_price()));
  out += fingerprint_line("highload100k_pv",
                          run_highload_burst(PolicySpec::present_value()));
  out += fingerprint_line("highload100k_swpt",
                          run_highload_burst(PolicySpec::swpt()));
  out += fingerprint_line("highload100k_fr0.3",
                          run_highload_burst(PolicySpec::first_reward(0.3)));
  return out;
}

}  // namespace mbts
