// Full-precision behavioral fingerprints for seeded regression runs.
//
// A fingerprint is a text block with one line per canonical run, every float
// printed at %.17g so two binaries agree iff the runs are bit-identical.
// tools/stats_fingerprint prints it; tests/test_fingerprint.cpp compares it
// against the checked-in golden file, turning "seeded runs stay
// bit-identical across refactors" into a ctest failure instead of a manual
// diff. The line format is a stable interface: changing it (or the presets
// behind it) means regenerating the golden file and saying so in the PR.
#pragma once

#include <string>

#include "core/scheduler.hpp"
#include "market/market.hpp"

namespace mbts {

/// One `label k=v ...` line for a single-site run (trailing newline).
std::string fingerprint_line(const std::string& label, const RunStats& s);

/// One line for an economy run, covering the negotiation and failure-model
/// counters (trailing newline).
std::string fingerprint_line(const std::string& label, const MarketStats& s);

/// Execution knobs for run_fingerprint_market. None of them may move the
/// output a single bit — the determinism matrix sweeps the cross-product
/// and compares every combination against the same golden line.
struct FingerprintMarketOptions {
  /// Failure model; force_enable with all rates zero must be a no-op.
  FaultConfig faults{};
  /// >= 2 runs the economy through the sharded engine.
  std::size_t shards = 1;
  /// ScoreKernelMode::kExact (the scheduler default) vs kOff per site.
  bool kernels = true;
  /// MarketConfig::epoch_batching (observable only when sharded).
  bool batching = true;
};

/// The canonical seeded market run behind the `market` fingerprint line.
/// Every option combination must reproduce the golden line bit-for-bit.
MarketStats run_fingerprint_market(const FingerprintMarketOptions& options);

/// Back-compatible shorthand for the fault/shard sweeps.
MarketStats run_fingerprint_market(const FaultConfig& faults = {},
                                   std::size_t shards = 1);

/// The full fingerprint: seeded Fig. 4-7 preset points plus the economy
/// line. This is what the tool prints and the golden test pins.
std::string stats_fingerprint();

}  // namespace mbts
