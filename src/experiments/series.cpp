#include "experiments/series.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace mbts {

double improvement_pct(double a, double b) {
  const double denom = std::abs(b);
  if (denom == 0.0) return 0.0;
  return 100.0 * (a - b) / denom;
}

void print_figure(const FigureResult& figure, std::ostream& out) {
  out << figure.id << ": " << figure.title << '\n';
  out << "x = " << figure.xlabel << ", y = " << figure.ylabel << "\n\n";
  if (figure.series.empty()) return;

  const Series& first = figure.series.front();
  for (const Series& s : figure.series) {
    MBTS_CHECK_MSG(s.points.size() == first.points.size(),
                   "series must share one x grid");
  }

  std::vector<std::string> header{figure.xlabel};
  for (const Series& s : figure.series) header.push_back(s.label);
  ConsoleTable table(header);
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    std::vector<std::string> row{ConsoleTable::num(first.points[i].x, 4)};
    for (const Series& s : figure.series) {
      MBTS_CHECK(s.points[i].x == first.points[i].x);
      row.push_back(ConsoleTable::num(s.points[i].y, 2));
    }
    table.row(std::move(row));
  }
  out << table.render() << '\n';
}

void save_figure_csv(const FigureResult& figure, const std::string& path) {
  std::ofstream out(path);
  MBTS_CHECK_MSG(out.good(), "cannot write figure CSV: " + path);
  CsvWriter writer(out, {"figure", "series", "x", "y", "y_sem"});
  for (const Series& s : figure.series)
    for (const SeriesPoint& p : s.points)
      writer.row({figure.id, s.label, CsvWriter::field(p.x),
                  CsvWriter::field(p.y), CsvWriter::field(p.y_sem)});
}

}  // namespace mbts
