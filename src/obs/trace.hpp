// Structured run tracing: the per-decision telemetry substrate behind the
// paper's evaluation figures (abort rates, admission behavior, schedule
// churn) and the ROADMAP's production observability rung.
//
// A TraceRecorder is an opt-in, bounded ring buffer of fixed-size binary
// events. Producers (SiteScheduler, Broker, SiteAgent, Market,
// FaultInjector, and the SimEngine via obs/engine_tap.hpp) hold a nullable
// pointer and pay one null test per hook when tracing is off — the
// telemetry-off path is observationally identical to a build without the
// recorder, and the golden stats fingerprint pins that.
//
// Determinism contract: every recorded field derives from simulated state
// (sim time, ids, scores, prices) — never from wall clocks, pointers, or
// hashes — so the same seed yields a byte-identical trace file across runs,
// machines, and compilers. tests/test_determinism.cpp asserts this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mbts {

/// Event vocabulary. One enumerator per decision point; `a`/`b` carry the
/// kind-specific payload documented next to each entry.
enum class TraceEventKind : std::uint32_t {
  // --- scheduler / admission (site-scoped) ---
  kSubmit = 0,       // bid committed to a site; a = arrival
  kAdmitAccept = 1,  // a = slack, b = expected completion
  kAdmitReject = 2,  // a = slack, b = expected completion
  kQuoteAccept = 3,  // non-binding probe accepted; a = slack, b = price
  kQuoteReject = 4,  // a = slack, b = price
  kStart = 5,        // task got processors; a = executed service so far
  kPreempt = 6,      // displaced by a higher-scored task; a = executed
  kCheckpoint = 7,   // suspended by a crash; a = executed
  kComplete = 8,     // a = realized yield, b = contract delay
  kDrop = 9,         // expired task discarded; a = realized yield
  kTaskFail = 10,    // killed by a crash; a = realized (breach) yield
  kDispatch = 11,    // one dispatch pass; a = pending, b = running (before)
  // --- site availability ---
  kSiteCrash = 12,   // a = running tasks at the crash, b = 1 if checkpointed
  kSiteRecover = 13,
  // --- market / negotiation ---
  kBid = 14,          // negotiation round opened; a = sites polled
  kAward = 15,        // a = agreed price, b = expected completion
  kNoAward = 16,      // round ended unawarded; a = 1 if unaffordable
  kBreach = 17,       // contract breached; a = settled price, b = agreed
  kRebid = 18,        // breached task re-entered the market
  kRetry = 19,        // availability retry scheduled; a = next round
                      // (1-based), b = backoff delay
  kQuoteTimeout = 20, // a site's quote response was lost in transit
  // --- fault injector ---
  kOutageDown = 21,   // a = planned recovery time
  kOutageUp = 22,
  // --- engine lifecycle (obs/engine_tap.hpp; high volume) ---
  kEvtSchedule = 23,  // a = event priority
  kEvtCancel = 24,
  kEvtExecute = 25,   // a = event priority
};

/// Short stable mnemonic ("admit_accept", "start", ...), used by the JSONL
/// export and trace_view; also the spelling filters accept.
const char* to_string(TraceEventKind kind);

inline constexpr SiteId kNoSite = 0xFFFFFFFFu;

/// One fixed-size trace record. `task` is kInvalidTask and `site` kNoSite
/// when the event has no task/site subject.
struct TraceEvent {
  SimTime t = 0.0;
  TraceEventKind kind = TraceEventKind::kDispatch;
  SiteId site = kNoSite;
  TaskId task = kInvalidTask;
  double a = 0.0;
  double b = 0.0;

  bool operator==(const TraceEvent&) const = default;
};

struct TraceConfig {
  /// Ring capacity in events (40 bytes each). When full, the oldest events
  /// are overwritten and counted in dropped(); size a recorder to the run
  /// when the full history matters (determinism tests do).
  std::size_t capacity = 1u << 20;
};

/// Bounded in-memory event ring with binary + JSONL export.
///
/// Single-threaded like the simulation that feeds it: one recorder belongs
/// to one engine's run. Concurrent sweeps use one recorder per replication.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  void record(SimTime t, TraceEventKind kind, SiteId site = kNoSite,
              TaskId task = kInvalidTask, double a = 0.0, double b = 0.0);
  void record(const TraceEvent& event);

  /// Events currently retained (<= capacity).
  std::size_t size() const { return buffer_.size(); }
  /// Events ever recorded / overwritten by ring wraparound.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - buffer_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// i-th retained event, oldest first.
  const TraceEvent& at(std::size_t i) const;

  void clear();

  /// Binary trace file: fixed little-endian layout (see trace.cpp), written
  /// oldest-first. Byte-identical for identical event sequences.
  void write_binary(std::ostream& out) const;
  /// One JSON object per line, full round-trip double precision.
  void write_jsonl(std::ostream& out) const;

  /// Retained events, oldest first (copy; for tools and tests).
  std::vector<TraceEvent> events() const;

  /// Parses a binary trace written by write_binary. Throws CheckError on a
  /// bad magic, truncated stream, or unknown event kind.
  static std::vector<TraceEvent> read_binary(std::istream& in);

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // slot of the oldest retained event
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> buffer_;
};

}  // namespace mbts
