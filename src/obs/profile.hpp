// Scoped wall-clock profiling for the dispatch/quote hot paths.
//
// MBTS_PROF_SCOPE("name") drops an RAII timer into a function. Disabled
// (the default) it costs one relaxed atomic load and a predictable branch —
// cheap enough for the PR-1 hot paths to keep the tools/bench_dispatch.sh
// regression budget (< 2%) with room to spare. Enabled, each scope adds its
// elapsed time to a process-wide table under a mutex (sweeps profile from
// several threads at once).
//
// Wall-clock times are inherently non-deterministic, so profiling data is
// reported out-of-band (Profiler::report) and never enters trace files,
// metrics CSVs, or anything else the determinism contract covers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mbts {

class Profiler {
 public:
  struct Section {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };

  static Profiler& instance();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enabling mid-run is safe; scopes opened while disabled simply don't
  /// report. reset() is the usual companion at run start.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Accumulates one timed scope. `name` must be a string with static
  /// storage duration (the macro passes literals).
  void add(const char* name, std::uint64_t ns);

  /// Sections sorted by total time descending (ties by name).
  std::vector<Section> sections() const;

  /// Human-readable per-run table: name, calls, total ms, mean us.
  std::string report() const;

  void reset();

 private:
  Profiler() = default;

  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  // Keyed by the literal's address: hot-path accumulation never hashes or
  // compares strings. Distinct literals with equal text get distinct rows
  // merged at report time.
  std::map<const char*, Section> sections_;
};

namespace detail {

class ProfScope {
 public:
  explicit ProfScope(const char* name)
      : name_(Profiler::enabled() ? name : nullptr) {
    if (name_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (name_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().add(
        name_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail
}  // namespace mbts

#define MBTS_PROF_CONCAT2(a, b) a##b
#define MBTS_PROF_CONCAT(a, b) MBTS_PROF_CONCAT2(a, b)
#define MBTS_PROF_SCOPE(name) \
  ::mbts::detail::ProfScope MBTS_PROF_CONCAT(mbts_prof_scope_, __LINE__)(name)
