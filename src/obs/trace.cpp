#include "obs/trace.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace mbts {

namespace {

// Binary trace layout, all little-endian:
//   8-byte magic "MBTSTRC1"
//   u64 event count, u64 dropped count
//   then per event: u32 kind, u32 site, u64 task, f64 t, f64 a, f64 b
// (40 bytes/event). Fields are serialized one by one, never via struct
// memcpy, so padding bytes can't leak indeterminate memory into the file
// and the byte-identity guarantee holds across compilers.
constexpr char kMagic[8] = {'M', 'B', 'T', 'S', 'T', 'R', 'C', '1'};
constexpr TraceEventKind kMaxKind = TraceEventKind::kEvtExecute;

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(b, 8);
}

void put_f64(std::ostream& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  MBTS_CHECK_MSG(in.gcount() == 4, "truncated trace file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  MBTS_CHECK_MSG(in.gcount() == 8, "truncated trace file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

double get_f64(std::istream& in) {
  return std::bit_cast<double>(get_u64(in));
}

}  // namespace

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmit: return "submit";
    case TraceEventKind::kAdmitAccept: return "admit_accept";
    case TraceEventKind::kAdmitReject: return "admit_reject";
    case TraceEventKind::kQuoteAccept: return "quote_accept";
    case TraceEventKind::kQuoteReject: return "quote_reject";
    case TraceEventKind::kStart: return "start";
    case TraceEventKind::kPreempt: return "preempt";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kComplete: return "complete";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kTaskFail: return "task_fail";
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kSiteCrash: return "site_crash";
    case TraceEventKind::kSiteRecover: return "site_recover";
    case TraceEventKind::kBid: return "bid";
    case TraceEventKind::kAward: return "award";
    case TraceEventKind::kNoAward: return "no_award";
    case TraceEventKind::kBreach: return "breach";
    case TraceEventKind::kRebid: return "rebid";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kQuoteTimeout: return "quote_timeout";
    case TraceEventKind::kOutageDown: return "outage_down";
    case TraceEventKind::kOutageUp: return "outage_up";
    case TraceEventKind::kEvtSchedule: return "evt_schedule";
    case TraceEventKind::kEvtCancel: return "evt_cancel";
    case TraceEventKind::kEvtExecute: return "evt_execute";
  }
  return "?";
}

TraceRecorder::TraceRecorder(TraceConfig config)
    : capacity_(config.capacity) {
  MBTS_CHECK_MSG(capacity_ > 0, "trace recorder needs capacity > 0");
}

void TraceRecorder::record(SimTime t, TraceEventKind kind, SiteId site,
                           TaskId task, double a, double b) {
  record(TraceEvent{t, kind, site, task, a, b});
}

void TraceRecorder::record(const TraceEvent& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

const TraceEvent& TraceRecorder::at(std::size_t i) const {
  MBTS_CHECK_MSG(i < buffer_.size(), "trace event index out of range");
  return buffer_[(head_ + i) % buffer_.size()];
}

void TraceRecorder::clear() {
  buffer_.clear();
  head_ = 0;
  recorded_ = 0;
}

void TraceRecorder::write_binary(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  put_u64(out, buffer_.size());
  put_u64(out, dropped());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const TraceEvent& e = at(i);
    put_u32(out, static_cast<std::uint32_t>(e.kind));
    put_u32(out, e.site);
    put_u64(out, e.task);
    put_f64(out, e.t);
    put_f64(out, e.a);
    put_f64(out, e.b);
  }
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  char buffer[256];
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const TraceEvent& e = at(i);
    std::snprintf(buffer, sizeof(buffer),
                  "{\"t\":%.17g,\"kind\":\"%s\",\"site\":%" PRId64
                  ",\"task\":%" PRId64 ",\"a\":%.17g,\"b\":%.17g}\n",
                  e.t, to_string(e.kind),
                  e.site == kNoSite ? std::int64_t{-1}
                                    : static_cast<std::int64_t>(e.site),
                  e.task == kInvalidTask ? std::int64_t{-1}
                                         : static_cast<std::int64_t>(e.task),
                  e.a, e.b);
    out << buffer;
  }
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) out.push_back(at(i));
  return out;
}

std::vector<TraceEvent> TraceRecorder::read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  MBTS_CHECK_MSG(in.gcount() == 8 &&
                     std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "not a mbts binary trace (bad magic)");
  const std::uint64_t count = get_u64(in);
  get_u64(in);  // dropped count: informational, not needed to reconstruct
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    const std::uint32_t kind = get_u32(in);
    MBTS_CHECK_MSG(kind <= static_cast<std::uint32_t>(kMaxKind),
                   "unknown trace event kind " + std::to_string(kind));
    e.kind = static_cast<TraceEventKind>(kind);
    e.site = get_u32(in);
    e.task = get_u64(in);
    e.t = get_f64(in);
    e.a = get_f64(in);
    e.b = get_f64(in);
    events.push_back(e);
  }
  return events;
}

}  // namespace mbts
