// Trace filtering, pretty-printing, and summarizing — the library core of
// tools/trace_view, kept out of the CLI so tests can pin its output golden.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mbts {

/// Conjunctive event filter; default-constructed it matches everything.
struct TraceFilter {
  std::optional<TraceEventKind> kind;
  std::optional<SiteId> site;
  std::optional<TaskId> task;
  std::optional<double> t_from;  // inclusive
  std::optional<double> t_to;    // exclusive

  bool matches(const TraceEvent& event) const;
};

/// Inverse of to_string(TraceEventKind); nullopt for unknown names.
std::optional<TraceEventKind> parse_event_kind(const std::string& name);

/// One aligned human-readable line (no trailing newline):
///   [t] kind site=N task=N a=... b=...
/// site/task are omitted when absent. Payloads print at %.6g — readable,
/// and stable because the underlying values are deterministic.
std::string format_trace_event(const TraceEvent& event);

/// Multi-line digest: event count, time span, per-kind counts (enum order),
/// per-site counts (ascending id). Deterministic for identical inputs.
std::string summarize_trace(const std::vector<TraceEvent>& events);

/// Filtered copy, order preserved.
std::vector<TraceEvent> filter_trace(const std::vector<TraceEvent>& events,
                                     const TraceFilter& filter);

}  // namespace mbts
