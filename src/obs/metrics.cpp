#include "obs/metrics.hpp"

#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace mbts {

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, std::make_unique<Histogram>(lo, hi, bins))
             .first;
  return *it->second;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  CsvWriter csv(out,
                {"name", "kind", "count", "value", "p50", "p90", "p99"});
  for (const auto& [name, counter] : counters_) {
    const std::string v = CsvWriter::field(counter.value());
    csv.row({name, "counter", v, v, "", "", ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    csv.row({name, "gauge", "", CsvWriter::field(gauge.value()), "", "", ""});
    csv.row({name + "/max", "gauge", "", CsvWriter::field(gauge.max()), "",
             "", ""});
  }
  for (const auto& [name, hist] : histograms_) {
    const bool any = hist->count() > 0;
    csv.row({name, "histogram",
             CsvWriter::field(static_cast<std::uint64_t>(hist->count())), "",
             any ? CsvWriter::field(hist->quantile(0.5)) : "",
             any ? CsvWriter::field(hist->quantile(0.9)) : "",
             any ? CsvWriter::field(hist->quantile(0.99)) : ""});
  }
}

}  // namespace mbts
