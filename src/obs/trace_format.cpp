#include "obs/trace_format.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace mbts {

namespace {

constexpr std::uint32_t kKindCount =
    static_cast<std::uint32_t>(TraceEventKind::kEvtExecute) + 1;

}  // namespace

bool TraceFilter::matches(const TraceEvent& event) const {
  if (kind && event.kind != *kind) return false;
  if (site && event.site != *site) return false;
  if (task && event.task != *task) return false;
  if (t_from && event.t < *t_from) return false;
  if (t_to && event.t >= *t_to) return false;
  return true;
}

std::optional<TraceEventKind> parse_event_kind(const std::string& name) {
  for (std::uint32_t k = 0; k < kKindCount; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::string format_trace_event(const TraceEvent& event) {
  char buffer[192];
  int n = std::snprintf(buffer, sizeof(buffer), "[%14.6f] %-13s", event.t,
                        to_string(event.kind));
  if (event.site != kNoSite)
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       " site=%" PRIu32, event.site);
  if (event.task != kInvalidTask)
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       " task=%" PRIu64, event.task);
  std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                " a=%.6g b=%.6g", event.a, event.b);
  return buffer;
}

std::string summarize_trace(const std::vector<TraceEvent>& events) {
  char line[160];
  std::string out;
  if (events.empty()) return "empty trace (0 events)\n";

  double t_lo = events.front().t, t_hi = events.front().t;
  std::uint64_t by_kind[kKindCount] = {};
  std::map<SiteId, std::uint64_t> by_site;
  for (const TraceEvent& e : events) {
    t_lo = std::min(t_lo, e.t);
    t_hi = std::max(t_hi, e.t);
    ++by_kind[static_cast<std::uint32_t>(e.kind)];
    if (e.site != kNoSite) ++by_site[e.site];
  }

  std::snprintf(line, sizeof(line),
                "%zu events over t=[%.6g, %.6g]\n", events.size(), t_lo,
                t_hi);
  out += line;
  out += "by kind:\n";
  for (std::uint32_t k = 0; k < kKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    std::snprintf(line, sizeof(line), "  %-13s %10" PRIu64 "\n",
                  to_string(static_cast<TraceEventKind>(k)), by_kind[k]);
    out += line;
  }
  if (!by_site.empty()) {
    out += "by site:\n";
    for (const auto& [site, count] : by_site) {
      std::snprintf(line, sizeof(line), "  site%-9" PRIu32 " %10" PRIu64 "\n",
                    site, count);
      out += line;
    }
  }
  return out;
}

std::vector<TraceEvent> filter_trace(const std::vector<TraceEvent>& events,
                                     const TraceFilter& filter) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events)
    if (filter.matches(e)) out.push_back(e);
  return out;
}

}  // namespace mbts
