// Metrics registry: named counters, gauges, and histograms with per-run and
// per-site scopes, exported as CSV for tools/plot_figures.py.
//
// Names are hierarchical by convention ("site0/dispatches"); a MetricsScope
// is a cheap prefixing view that producers use for per-site scoping. The
// registry owns its instruments; pointers returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime, so hot paths resolve
// a name once and bump a cached pointer thereafter.
//
// Deterministic export: instruments live in ordered maps and the CSV emits
// them in name order, so two identical runs write identical files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "stats/histogram.hpp"

namespace mbts {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins level; also tracks the maximum it ever held (peak queue
/// depth and friends come free).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  double value() const { return value_; }
  double max() const { return seen_ ? max_ : 0.0; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

class MetricsRegistry {
 public:
  /// Instruments are created on first use; later lookups return the same
  /// object. A histogram's (lo, hi, bins) are fixed by the creating call
  /// (re-lookups may pass anything; the shape is checked only on creation).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  std::size_t instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// CSV: name,kind,count,value,p50,p90,p99. Counters fill count and value,
  /// gauges fill value (their running max gets its own "<name>/max" row),
  /// histograms fill count and the quantile columns. Rows are grouped by
  /// kind (counters, gauges, histograms) and name-ordered within a group.
  void write_csv(std::ostream& out) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  // Histogram is non-copyable (it owns a mutex); box it.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Name-prefixing view over a registry ("site3" scope turns "dispatches"
/// into "site3/dispatches"). Copyable; the registry must outlive it.
class MetricsScope {
 public:
  MetricsScope(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) {
    return registry_->counter(full(name));
  }
  Gauge& gauge(const std::string& name) {
    return registry_->gauge(full(name));
  }
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins) {
    return registry_->histogram(full(name), lo, hi, bins);
  }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string full(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "/" + name;
  }

  MetricsRegistry* registry_;
  std::string prefix_;
};

}  // namespace mbts
