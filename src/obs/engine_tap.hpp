// Bridges the SimEngine's EventObserver seam into a TraceRecorder.
//
// Header-only so mbts_obs never links against mbts_sim (mbts_sim links
// mbts_obs for the fault-injector hooks; this adapter is the other
// direction and lives with whoever wants engine-level traces). Event
// lifecycle traffic is one to two orders of magnitude denser than decision
// events, so the tap is its own opt-in rather than part of the scheduler
// telemetry: attach it only when diagnosing the event queue itself.
//
// Note the engine has a single observer slot — attaching a tap displaces a
// differential event checker and vice versa.
#pragma once

#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace mbts {

class EngineTap final : public EventObserver {
 public:
  /// Does not attach; call engine.set_observer(&tap) explicitly so the
  /// displacement of any existing observer is visible at the call site.
  EngineTap(const SimEngine& engine, TraceRecorder& trace)
      : engine_(engine), trace_(trace) {}

  void on_schedule(EventId id, double t, int priority,
                   EventKind /*kind*/) override {
    // Scheduling happens at engine_.now(); `t` is the fire time (payload).
    trace_.record(engine_.now(), TraceEventKind::kEvtSchedule, kNoSite, id,
                  static_cast<double>(priority), t);
  }
  void on_cancel(EventId id) override {
    trace_.record(engine_.now(), TraceEventKind::kEvtCancel, kNoSite, id);
  }
  void on_execute(EventId id, double t, int priority,
                  EventKind /*kind*/) override {
    trace_.record(t, TraceEventKind::kEvtExecute, kNoSite, id,
                  static_cast<double>(priority));
  }

 private:
  const SimEngine& engine_;
  TraceRecorder& trace_;
};

}  // namespace mbts
