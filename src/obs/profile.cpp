#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace mbts {

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::add(const char* name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  Section& section = sections_[name];
  if (section.calls == 0) section.name = name;
  ++section.calls;
  section.total_ns += ns;
}

std::vector<Profiler::Section> Profiler::sections() const {
  std::map<std::string, Section> merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, section] : sections_) {
      Section& m = merged[section.name];
      m.name = section.name;
      m.calls += section.calls;
      m.total_ns += section.total_ns;
    }
  }
  std::vector<Section> out;
  out.reserve(merged.size());
  for (auto& [name, section] : merged) out.push_back(section);
  std::sort(out.begin(), out.end(), [](const Section& a, const Section& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

std::string Profiler::report() const {
  const std::vector<Section> rows = sections();
  if (rows.empty()) return "profiler: no sections recorded\n";
  std::string out =
      "section                          calls     total_ms   mean_us\n";
  char line[128];
  for (const Section& s : rows) {
    std::snprintf(line, sizeof(line), "%-28s %10llu %12.3f %9.3f\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.total_ns) / 1e6,
                  s.calls ? static_cast<double>(s.total_ns) / 1e3 /
                                static_cast<double>(s.calls)
                          : 0.0);
    out += line;
  }
  return out;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sections_.clear();
}

}  // namespace mbts
