// Processor pool for one task-service site (paper §4 assumptions).
//
// Processors are interchangeable, tasks are single-processor, and context
// switches are free, so the pool only tracks how many processors are busy —
// which processor a task occupies never matters. Utilization is integrated
// over simulated time for the evaluation harness.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "stats/timeseries.hpp"

namespace mbts {

class ProcessorPool {
 public:
  explicit ProcessorPool(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t busy() const { return busy_; }
  std::size_t free_count() const { return capacity_ - busy_; }
  bool has_free() const { return busy_ < capacity_; }

  /// Marks `count` processors busy; requires free_count() >= count.
  void acquire(SimTime now, std::size_t count = 1);

  /// Releases `count` processors; requires busy() >= count.
  void release(SimTime now, std::size_t count = 1);

  /// Time-averaged fraction of busy processors since the first transition.
  double utilization(SimTime now) const;

 private:
  std::size_t capacity_;
  std::size_t busy_ = 0;
  TimeWeighted busy_series_;
};

}  // namespace mbts
