// Processor pool for one task-service site (paper §4 assumptions).
//
// Processors are interchangeable, tasks are single-processor, and context
// switches are free, so the pool only tracks how many processors are busy —
// which processor a task occupies never matters. Utilization is integrated
// over simulated time for the evaluation harness.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "stats/timeseries.hpp"

namespace mbts {

class ProcessorPool {
 public:
  explicit ProcessorPool(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t busy() const { return busy_; }
  std::size_t free_count() const { return offline_ ? 0 : capacity_ - busy_; }
  bool has_free() const { return !offline_ && busy_ < capacity_; }

  /// Marks `count` processors busy; requires free_count() >= count (and in
  /// particular that the pool is online).
  void acquire(SimTime now, std::size_t count = 1);

  /// Releases `count` processors; requires busy() >= count. Allowed while
  /// offline so a crashing site can hand back the processors of the tasks
  /// it is killing or checkpointing.
  void release(SimTime now, std::size_t count = 1);

  // --- Crash semantics (fault injection) ---

  /// Takes every processor offline; requires busy() == 0 — the site must
  /// kill or checkpoint its in-flight tasks (releasing their processors)
  /// before declaring the hardware gone.
  void begin_outage(SimTime now);

  /// Brings the pool back online.
  void end_outage(SimTime now);

  bool offline() const { return offline_; }
  std::size_t outages() const { return outages_; }
  /// Total simulated time spent offline, up to `now`.
  double downtime(SimTime now) const;

  /// Time-averaged fraction of busy processors since the first transition.
  /// Outage intervals count as zero-busy time: dead capacity earns nothing.
  double utilization(SimTime now) const;

 private:
  std::size_t capacity_;
  std::size_t busy_ = 0;
  bool offline_ = false;
  std::size_t outages_ = 0;
  SimTime offline_since_ = 0.0;
  double downtime_ = 0.0;
  TimeWeighted busy_series_;
};

}  // namespace mbts
