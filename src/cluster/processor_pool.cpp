#include "cluster/processor_pool.hpp"

#include "util/check.hpp"

namespace mbts {

ProcessorPool::ProcessorPool(std::size_t capacity) : capacity_(capacity) {
  MBTS_CHECK_MSG(capacity > 0, "a site needs at least one processor");
}

void ProcessorPool::acquire(SimTime now, std::size_t count) {
  MBTS_CHECK_MSG(!offline_, "acquire on an offline pool");
  MBTS_CHECK_MSG(free_count() >= count, "acquire exceeds free processors");
  busy_ += count;
  busy_series_.set(now, static_cast<double>(busy_));
}

void ProcessorPool::release(SimTime now, std::size_t count) {
  MBTS_CHECK_MSG(busy_ >= count, "release exceeds busy processors");
  busy_ -= count;
  busy_series_.set(now, static_cast<double>(busy_));
}

void ProcessorPool::begin_outage(SimTime now) {
  MBTS_CHECK_MSG(!offline_, "pool is already offline");
  MBTS_CHECK_MSG(busy_ == 0,
                 "outage with busy processors: kill or checkpoint in-flight "
                 "tasks first");
  offline_ = true;
  offline_since_ = now;
  ++outages_;
  // Pin the busy signal at zero across the outage so utilization charges
  // the dead interval.
  busy_series_.set(now, 0.0);
}

void ProcessorPool::end_outage(SimTime now) {
  MBTS_CHECK_MSG(offline_, "recovery on an online pool");
  offline_ = false;
  downtime_ += now - offline_since_;
  busy_series_.set(now, 0.0);
}

double ProcessorPool::downtime(SimTime now) const {
  return downtime_ + (offline_ ? now - offline_since_ : 0.0);
}

double ProcessorPool::utilization(SimTime now) const {
  if (busy_series_.empty()) return 0.0;
  return busy_series_.average(now) / static_cast<double>(capacity_);
}

}  // namespace mbts
