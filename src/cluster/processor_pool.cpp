#include "cluster/processor_pool.hpp"

#include "util/check.hpp"

namespace mbts {

ProcessorPool::ProcessorPool(std::size_t capacity) : capacity_(capacity) {
  MBTS_CHECK_MSG(capacity > 0, "a site needs at least one processor");
}

void ProcessorPool::acquire(SimTime now, std::size_t count) {
  MBTS_CHECK_MSG(free_count() >= count, "acquire exceeds free processors");
  busy_ += count;
  busy_series_.set(now, static_cast<double>(busy_));
}

void ProcessorPool::release(SimTime now, std::size_t count) {
  MBTS_CHECK_MSG(busy_ >= count, "release exceeds busy processors");
  busy_ -= count;
  busy_series_.set(now, static_cast<double>(busy_));
}

double ProcessorPool::utilization(SimTime now) const {
  if (busy_series_.empty()) return 0.0;
  return busy_series_.average(now) / static_cast<double>(capacity_);
}

}  // namespace mbts
